//! The paper's E. coli 30× workload (scaled): full pipeline run with the
//! three seed policies of §5, reporting per-stage time, exchange volume,
//! recall against ground truth, and the reliable-k-mer statistics of §2.
//!
//! ```sh
//! cargo run --release --example ecoli_pipeline           # default 1% scale
//! DIBELLA_SCALE=0.05 cargo run --release --example ecoli_pipeline
//! # hybrid-parallel: 8 ranks × 4 threads per rank, all four stages
//! DIBELLA_THREADS=4 cargo run --release --example ecoli_pipeline
//! # run "on" a virtual AWS cluster (modeled exchange times, same results)
//! DIBELLA_TRANSPORT=sim:aws:16 cargo run --release --example ecoli_pipeline
//! # stream every stage's exchange in 1 MiB rounds (same results, bounded memory)
//! DIBELLA_ROUND_MB=1 cargo run --release --example ecoli_pipeline
//! ```

use dibella::datagen::ecoli_30x_like;
use dibella::prelude::*;

fn main() {
    let scale: f64 = std::env::var("DIBELLA_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.01);
    let ranks: usize = std::env::var("DIBELLA_RANKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let threads: usize = PipelineConfig::env_threads();
    let transport: TransportKind = std::env::var("DIBELLA_TRANSPORT")
        .ok()
        .map(|v| v.parse().expect("DIBELLA_TRANSPORT"))
        .unwrap_or_default();
    let round_bytes: usize = std::env::var("DIBELLA_ROUND_MB")
        .ok()
        .map(|v| {
            let mb: f64 = v
                .parse()
                .ok()
                .filter(|&m| m > 0.0)
                .expect("DIBELLA_ROUND_MB: positive MiB");
            (mb * (1 << 20) as f64) as usize
        })
        .unwrap_or(usize::MAX);

    println!("== E. coli 30x-like workload at scale {scale} ==");
    println!("{ranks} ranks x {threads} thread(s) per rank, transport {transport}");
    let ds = ecoli_30x_like(scale, 42);
    println!(
        "genome {:.0} kb | {} reads | {:.1} Mb | depth {:.1}x | mean read {:.0} bp",
        ds.genome.len() as f64 / 1e3,
        ds.reads.len(),
        ds.reads.total_bases() as f64 / 1e6,
        ds.realized_depth(),
        ds.mean_read_len()
    );
    let truth = ds.true_overlaps(2_000);
    println!("ground truth: {} overlapping pairs (≥ 2 kb)", truth.len());

    for (name, policy) in SeedPolicy::paper_settings(17) {
        let cfg = PipelineConfig {
            k: 17,
            depth: 30.0,
            error_rate: 0.15,
            seed_policy: policy,
            max_seeds_per_pair: 8,
            threads: Some(threads),
            transport,
            max_exchange_bytes_per_round: round_bytes,
            ..Default::default()
        };
        let t = std::time::Instant::now();
        let result = run_pipeline(&ds.reads, ranks, &cfg);
        let wall = t.elapsed();

        let found: std::collections::HashSet<(u32, u32)> =
            result.alignments.iter().map(|a| (a.pair.a, a.pair.b)).collect();
        let recalled = truth.iter().filter(|p| found.contains(p)).count();

        // Aggregate statistics across ranks.
        let retained: u64 = result.reports.iter().map(|r| r.filter.retained).sum();
        let singles: u64 = result.reports.iter().map(|r| r.filter.singletons_removed).sum();
        let highf: u64 = result.reports.iter().map(|r| r.filter.high_freq_removed).sum();
        let kmers: u64 = result.reports.iter().map(|r| r.bloom.kmers_received).sum();
        let bytes: u64 = result
            .reports
            .iter()
            .map(|r| {
                r.bloom_comm.total_bytes()
                    + r.hash_comm.total_bytes()
                    + r.overlap_comm.total_bytes()
                    + r.align_comm.total_bytes()
            })
            .sum();
        let iota = retained as f64 / (retained + singles + highf).max(1) as f64;

        println!("\n-- seed policy: {name} ({ranks} ranks) --");
        println!(
            "  wall {:.2?} | pairs {} | alignments {} | recall(≥2kb) {:.1}%",
            wall,
            result.n_pairs(),
            result.n_alignments_computed(),
            100.0 * recalled as f64 / truth.len().max(1) as f64
        );
        println!(
            "  k-mer bag {kmers} | retained {retained} (ι_set = {iota:.3}) | singletons {singles} | >m {highf}"
        );
        println!("  exchanged {:.2} MB total", bytes as f64 / 1e6);
        let slowest = result.wall();
        println!("  slowest rank wall {slowest:.2?}");
        if transport != TransportKind::SharedMem {
            let exch = result.reports.iter().map(|r| r.total_exchange()).max().unwrap();
            println!("  modeled exchange ({transport}): slowest rank {exch:.3?}");
        }
    }
}
