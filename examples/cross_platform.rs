//! Cross-architecture projection (the Figure 12/13 machinery as an API
//! example): run the pipeline once per world size, then project the
//! measured per-rank work and traffic onto Cori, Edison, Titan and AWS,
//! printing modeled stage times and strong-scaling efficiency.
//!
//! ```sh
//! cargo run --release --example cross_platform
//! ```

use dibella::datagen::ecoli_30x_like;
use dibella::netmodel::{strong_efficiency, NodeMapping, Platform};
use dibella::pipeline::{project, run_pipeline, Stage};
use dibella::prelude::*;

fn main() {
    let ds = ecoli_30x_like(0.01, 42);
    let cfg = PipelineConfig { k: 17, depth: 30.0, error_rate: 0.15, ..Default::default() };
    println!(
        "workload: {} reads, {:.1} Mb (E. coli 30x-like, scale 0.01)\n",
        ds.reads.len(),
        ds.reads.total_bases() as f64 / 1e6
    );

    for platform in Platform::all() {
        println!(
            "== {} ({} cores/node, {}) ==",
            platform.name, platform.cores_per_node, platform.network
        );
        println!("nodes\tranks\ttotal(s)\texchange(s)\tefficiency\tdominant stage");
        let mut t1 = None;
        for nodes in [1usize, 2, 4, 8] {
            let mapping = NodeMapping::for_platform(platform, nodes);
            let result = run_pipeline(&ds.reads, mapping.ranks(), &cfg);
            let proj = project(platform, mapping, &result.reports);
            let total = proj.total_seconds();
            let t1v = *t1.get_or_insert(total);
            let dominant = Stage::ALL
                .into_iter()
                .max_by(|a, b| {
                    proj.stage(*a)
                        .stage_seconds()
                        .total_cmp(&proj.stage(*b).stage_seconds())
                })
                .unwrap();
            println!(
                "{nodes}\t{}\t{:.4}\t{:.4}\t{:.2}\t{}",
                mapping.ranks(),
                total,
                proj.exchange_seconds(),
                strong_efficiency(t1v, total, nodes),
                dominant.name()
            );
        }
        println!();
    }
    println!("(Absolute seconds are modeled; relations between platforms and the");
    println!(" scaling shapes are the reproduction target — see EXPERIMENTS.md.)");
}
