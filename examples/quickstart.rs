//! Quickstart: simulate a tiny PacBio-like dataset, run the distributed
//! pipeline on 4 ranks, and print the overlaps it finds as PAF lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dibella::datagen::{simulate_reads, ErrorModel, GenomeSpec, ReadSimSpec};
use dibella::prelude::*;

fn main() {
    // 1. A 30 kb random genome with a little repeat structure, sequenced
    //    at 15x with PacBio-CLR-like 12% errors — fully deterministic.
    let genome = GenomeSpec { size: 30_000, seed: 2024, ..Default::default() }.generate();
    let ds = simulate_reads(
        &genome,
        &ReadSimSpec {
            depth: 15.0,
            mean_len: 3_000,
            min_len: 500,
            errors: ErrorModel::pacbio(0.12),
            seed: 7,
            ..Default::default()
        },
    );
    println!(
        "simulated {} reads, {:.1} Mb, mean length {:.0} bp",
        ds.reads.len(),
        ds.reads.total_bases() as f64 / 1e6,
        ds.reads.mean_length()
    );

    // 2. Configure the pipeline: BELLA-style parameter selection kicks in
    //    for the high-occurrence threshold m; k = 15 suits the short toy
    //    genome.
    let cfg = PipelineConfig {
        k: 15,
        depth: 15.0,
        error_rate: 0.12,
        seed_policy: SeedPolicy::Single,
        ..Default::default()
    };
    println!(
        "k = {}, derived high-occurrence threshold m = {}",
        cfg.k,
        cfg.multiplicity_threshold()
    );

    // 3. Run the four-stage pipeline on 4 ranks (threads standing in for
    //    MPI processes — same collectives, same data movement).
    let result = run_pipeline(&ds.reads, 4, &cfg);
    println!(
        "found {} overlapping pairs, computed {} alignments",
        result.n_pairs(),
        result.n_alignments_computed()
    );

    // 4. Evaluate against the simulator's ground truth.
    let truth = ds.true_overlaps(1_000);
    let found: std::collections::HashSet<(u32, u32)> =
        result.alignments.iter().map(|a| (a.pair.a, a.pair.b)).collect();
    let recalled = truth.iter().filter(|p| found.contains(p)).count();
    println!(
        "recall on ≥1 kb true overlaps: {recalled}/{} = {:.1}%",
        truth.len(),
        100.0 * recalled as f64 / truth.len().max(1) as f64
    );

    // 5. Print the ten best alignments as PAF-like lines.
    let mut best: Vec<&AlignmentRecord> = result.alignments.iter().collect();
    best.sort_by_key(|r| -r.score);
    println!("\ntop alignments (PAF-like):");
    let names = |id: ReadId| format!("read{id}");
    let lens = |id: ReadId| ds.reads.reads()[id as usize].len() as u32;
    for rec in best.into_iter().take(10) {
        println!("{}", rec.to_paf(&names, &lens));
    }

    // 6. Per-stage timing summary from rank 0's report.
    let r0 = &result.reports[0];
    println!("\nrank 0 stage walls:");
    println!("  bloom   {:>9.2?} ({} k-mers owned)", r0.bloom_wall.total, r0.bloom.kmers_received);
    println!("  hash    {:>9.2?} ({} retained k-mers)", r0.hash_wall.total, r0.filter.retained);
    println!("  overlap {:>9.2?} ({} pairs emitted)", r0.overlap_wall.total, r0.overlap.pairs_emitted);
    println!("  align   {:>9.2?} ({} alignments, {} DP cells)",
        r0.align_wall.total, r0.align.alignments, r0.align.dp_cells);
}
