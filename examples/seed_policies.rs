//! Seed exploration policies (paper §5, Figure 11's workload axis):
//! compare one-seed, d = 1000 and d = k on the same dataset, showing the
//! compute-intensity / alignment-quality trade-off the paper sweeps.
//!
//! ```sh
//! cargo run --release --example seed_policies
//! ```

use dibella::datagen::ecoli_30x_like;
use dibella::prelude::*;

fn main() {
    let ds = ecoli_30x_like(0.01, 123);
    let truth = ds.true_overlaps(2_000);
    println!(
        "{} reads, {} true pairs (≥2 kb)\n",
        ds.reads.len(),
        truth.len()
    );
    println!("policy      alignments  DP cells(M)  cells/pair  pairs   recall%  best-score sum");

    for (name, policy) in SeedPolicy::paper_settings(17) {
        let cfg = PipelineConfig {
            k: 17,
            depth: 30.0,
            error_rate: 0.15,
            seed_policy: policy,
            max_seeds_per_pair: 8,
            ..Default::default()
        };
        let result = run_pipeline(&ds.reads, 4, &cfg);
        let cells: u64 = result.reports.iter().map(|r| r.align.dp_cells).sum();
        let aligns = result.n_alignments_computed();
        let pairs = result.n_pairs();

        let found: std::collections::HashSet<(u32, u32)> =
            result.alignments.iter().map(|a| (a.pair.a, a.pair.b)).collect();
        let recalled = truth.iter().filter(|p| found.contains(p)).count();

        // Sum of each pair's best score: more seeds → better chance the
        // best seed anchors the true overlap.
        let mut best: std::collections::HashMap<ReadPair, i32> = std::collections::HashMap::new();
        for a in &result.alignments {
            let e = best.entry(a.pair).or_insert(i32::MIN);
            *e = (*e).max(a.score);
        }
        let score_sum: i64 = best.values().map(|&s| s as i64).sum();

        println!(
            "{name:<11} {aligns:>10} {:>12.1} {:>11.0} {pairs:>6} {:>8.1} {score_sum:>15}",
            cells as f64 / 1e6,
            cells as f64 / pairs.max(1) as f64,
            100.0 * recalled as f64 / truth.len().max(1) as f64,
        );
    }
    println!("\nMore seeds per pair cost proportionally more DP work (the paper's");
    println!("computational-intensity axis) while recall is already saturated by");
    println!("one seed on this data — exactly BELLA's §5 rationale for the d=1000");
    println!("intermediate setting.");
}
