//! `dibella` — command-line front end for the pipeline.
//!
//! ```text
//! dibella overlap <reads.fastq> [options]     find + align overlaps → PAF
//! dibella simulate [options] <out.fastq>      generate PacBio-like reads
//! dibella stats <reads.fastq>                 dataset statistics & k/m advice
//! ```
//!
//! Run `dibella <command> --help` for the options of each command.

use dibella::datagen::{simulate_reads, ErrorModel, GenomeSpec, ReadSimSpec};
use dibella::kmer::params;
use dibella::prelude::*;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("overlap") => cmd_overlap(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "dibella — distributed long-read overlap and alignment (ICPP 2019 reproduction)

USAGE:
  dibella overlap <reads.fastq> [-k K] [-p RANKS] [-t|--threads N]
                  [--transport shared|sim:<platform>[:<ranks_per_node>]
                              |faulty:<inner>:<seed>:<spec>]
                  [--checkpoint-dir DIR] [--round-mb MB]
                  [--policy one|1000|k] [-e ERR] [-d DEPTH]
                  [--seed-mode reliable|minimizer] [--minimizer-w W]
                  [--overlap-engine pairs|spgemm] [--pair-batch N]
                  [--spgemm-block ROWS]
                  [-x XDROP] [--min-score S] [--simd scalar|auto]
                  [-o out.paf] [--gfa out.gfa]
  dibella simulate <out.fastq> [-g GENOME_BP] [-d DEPTH] [-l MEAN_LEN]
                  [-e ERR] [-s SEED]
  dibella stats <reads.fastq> [-k K] [-e ERR] [-d DEPTH]";

/// Minimal flag parser: positional args plus `-f value` / `--flag value`.
struct Flags {
    positional: Vec<String>,
    named: std::collections::HashMap<String, String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut positional = Vec::new();
    let mut named = std::collections::HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "-h" || a == "--help" {
            return Err(USAGE.to_owned());
        }
        if let Some(name) = a.strip_prefix('-') {
            let name = name.trim_start_matches('-').to_owned();
            let value = it
                .next()
                .ok_or_else(|| format!("flag -{name} expects a value"))?;
            named.insert(name, value.clone());
        } else {
            positional.push(a.clone());
        }
    }
    Ok(Flags { positional, named })
}

impl Flags {
    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.named.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value {v:?} for -{name}")),
        }
    }
}

fn load_fastq(path: &str) -> Result<ReadSet, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    dibella::io::read_fastq(BufReader::new(file), 0).map_err(|e| format!("parse {path}: {e}"))
}

fn cmd_overlap(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let path = flags
        .positional
        .first()
        .ok_or("overlap: missing <reads.fastq>")?;
    let reads = load_fastq(path)?;
    if reads.is_empty() {
        return Err("no reads in input".into());
    }

    let k: usize = flags.get("k", 17)?;
    let ranks: usize = flags.get(
        "p",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
    )?;
    let error_rate: f64 = flags.get("e", 0.15)?;
    let depth: f64 = flags.get("d", 30.0)?;
    let xdrop: i32 = flags.get("x", 25)?;
    let min_score: i32 = flags.get("min-score", 0)?;
    // Intra-rank threads for all four stages (hybrid parallelism; 0 = all
    // cores). `--align-threads` is the deprecated spelling of `--threads`.
    let threads: usize =
        flags.get("threads", flags.get("align-threads", flags.get("t", 1)?)?)?;
    // Communication backend: real shared memory, a simulated network
    // ("sim:<platform>[:<ranks_per_node>]" — virtual cori|edison|titan|aws),
    // or either of those wrapped in the fault-injecting chaos transport
    // ("faulty:<inner>:<seed>:<spec>" — see DIBELLA_FAULTS / ARCHITECTURE.md).
    let transport: TransportKind = match flags.named.get("transport") {
        None => TransportKind::SharedMem,
        Some(v) => v.parse()?,
    };
    // Stage-boundary checkpoints: persist per-rank stage outputs under DIR
    // and resume from the last completed stage on the next identical run.
    let checkpoint_dir: Option<std::path::PathBuf> =
        flags.named.get("checkpoint-dir").map(Into::into);
    // Streaming-exchange byte cap per rank and round, in MiB (fractions
    // allowed); unset = unbounded, i.e. one monolithic exchange per stage.
    let round_bytes: usize = match flags.named.get("round-mb") {
        None => usize::MAX,
        Some(v) => {
            let mb: f64 = v
                .parse()
                .ok()
                .filter(|&m| m > 0.0)
                .ok_or_else(|| format!("invalid --round-mb {v:?} (positive MiB)"))?;
            (mb * (1 << 20) as f64) as usize
        }
    };
    let policy = match flags.named.get("policy").map(String::as_str) {
        None | Some("one") => SeedPolicy::Single,
        Some("1000") => SeedPolicy::MinDistance(1000),
        Some("k") => SeedPolicy::MinDistance(k as u32),
        Some(other) => return Err(format!("unknown --policy {other:?} (one|1000|k)")),
    };
    // Alignment-kernel implementation: unset defers to the DIBELLA_SIMD
    // environment knob (default auto = lane-SIMD; bit-identical output).
    let simd: Option<dibella::align::SimdMode> = match flags.named.get("simd") {
        None => None,
        Some(v) => Some(v.parse()?),
    };
    // Seed front end: the paper's two-pass reliable-k-mer counter, or the
    // single-pass (w,k) minimizer sketch. Unset defers to DIBELLA_SEED_MODE.
    let seed_mode: SeedMode = match flags.named.get("seed-mode") {
        None => PipelineConfig::env_seed_mode(),
        Some(v) => v.parse()?,
    };
    let minimizer_w: usize = flags.get("minimizer-w", 7)?;
    // Overlap exchange engine: the paper's per-seed task records, or the
    // source-deduplicating SpGEMM reformulation (bit-identical output).
    // Unset defers to DIBELLA_OVERLAP_ENGINE.
    let overlap_engine: OverlapEngine = match flags.named.get("overlap-engine") {
        None => PipelineConfig::env_overlap_engine(),
        Some(v) => v.parse()?,
    };
    let pair_batch: usize =
        flags.get("pair-batch", dibella::overlap::OverlapConfig::DEFAULT_PAIR_BATCH)?;
    let spgemm_block: usize =
        flags.get("spgemm-block", dibella::overlap::OverlapConfig::DEFAULT_SPGEMM_BLOCK)?;

    let cfg = PipelineConfig {
        k,
        depth,
        error_rate,
        seed_policy: policy,
        xdrop,
        min_align_score: min_score,
        threads: Some(threads),
        transport,
        max_exchange_bytes_per_round: round_bytes,
        simd,
        seed_mode,
        minimizer_w,
        overlap_engine,
        pair_batch,
        spgemm_block,
        checkpoint_dir,
        ..Default::default()
    };
    let round_cap = if round_bytes == usize::MAX {
        "unbounded".to_owned()
    } else {
        format!("{:.2} MiB", round_bytes as f64 / (1 << 20) as f64)
    };
    eprintln!(
        "dibella: {} reads ({:.1} Mb), k={k}, m={}, seeds {seed_mode}, engine {overlap_engine}, {ranks} ranks x {} thread(s), transport {}, round cap {round_cap}",
        reads.len(),
        reads.total_bases() as f64 / 1e6,
        cfg.multiplicity_threshold(),
        cfg.effective_threads(),
        cfg.transport
    );
    let t = std::time::Instant::now();
    let result = run_pipeline(&reads, ranks, &cfg);
    eprintln!(
        "dibella: {} pairs, {} alignments in {:.2?}",
        result.n_pairs(),
        result.n_alignments_computed(),
        t.elapsed()
    );
    if round_bytes != usize::MAX {
        // Streaming rounds were capped: report the realized high-water
        // mark so the memory bound is visible.
        let peak = result
            .reports
            .iter()
            .flat_map(|r| {
                [&r.bloom_comm, &r.hash_comm, &r.overlap_comm, &r.align_comm]
                    .map(|c| c.peak_round_bytes)
            })
            .max()
            .unwrap_or(0);
        eprintln!(
            "dibella: peak exchange round {peak} B on any rank (cap {round_bytes} B)"
        );
    }
    if matches!(cfg.transport, TransportKind::Faulty(_)) {
        // Chaos run: summarize what the hardened exchange layer absorbed.
        // All counters are injected-and-survived events; the run's output
        // above is bit-identical to a fault-free run regardless.
        let mut all = dibella::comm::CommStats::new(ranks);
        for r in &result.reports {
            all.merge(&r.total_comm());
        }
        eprintln!(
            "dibella: chaos survived: {} corrupt frames detected, {} frames retransmitted, {} duplicates dropped, {} wait timeouts, {:.2?} spent in recovery",
            all.frames_corrupt_detected,
            all.frames_retransmitted,
            all.duplicates_dropped,
            all.wait_timeouts,
            all.retry_wall
        );
    }
    if cfg.transport != TransportKind::SharedMem {
        // Under a simulated network the recorded exchange time is the
        // modeled platform's, not the host's — surface it.
        let slowest = result
            .reports
            .iter()
            .map(|r| r.total_exchange())
            .max()
            .unwrap_or_default();
        eprintln!(
            "dibella: modeled exchange on {}: slowest rank {:.3?}",
            cfg.transport, slowest
        );
    }

    // PAF output.
    let names = |id: ReadId| reads.reads()[id as usize].name.clone();
    let lens = |id: ReadId| reads.reads()[id as usize].len() as u32;
    let mut out: Box<dyn Write> = match flags.named.get("o") {
        Some(p) => Box::new(BufWriter::new(
            File::create(p).map_err(|e| format!("create {p}: {e}"))?,
        )),
        None => Box::new(BufWriter::new(std::io::stdout())),
    };
    for rec in &result.alignments {
        writeln!(out, "{}", rec.to_paf(&names, &lens)).map_err(|e| e.to_string())?;
    }
    out.flush().map_err(|e| e.to_string())?;

    // Optional GFA overlap graph.
    if let Some(gfa_path) = flags.named.get("gfa") {
        let graph = dibella::pipeline::OverlapGraph::from_alignments(
            reads.len(),
            &result.alignments,
            min_score,
        );
        let (_, components) = graph.connected_components();
        eprintln!(
            "dibella: overlap graph: {} edges, {components} components",
            graph.n_edges()
        );
        let gfa = graph.to_gfa(&names, &|id| Some(reads.reads()[id as usize].seq.clone()));
        std::fs::write(gfa_path, gfa).map_err(|e| format!("write {gfa_path}: {e}"))?;
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let out_path = flags
        .positional
        .first()
        .ok_or("simulate: missing <out.fastq>")?;
    let genome_bp: usize = flags.get("g", 100_000)?;
    let depth: f64 = flags.get("d", 30.0)?;
    let mean_len: usize = flags.get("l", 10_000)?;
    let error: f64 = flags.get("e", 0.15)?;
    let seed: u64 = flags.get("s", 42)?;

    let genome = GenomeSpec { size: genome_bp, seed, ..Default::default() }.generate();
    let ds = simulate_reads(
        &genome,
        &ReadSimSpec {
            depth,
            mean_len: mean_len.min(genome_bp / 2),
            min_len: (mean_len / 10).max(100),
            errors: ErrorModel::pacbio(error),
            seed: seed ^ 0x0D1B_E11A,
            ..Default::default()
        },
    );
    let file = File::create(out_path).map_err(|e| format!("create {out_path}: {e}"))?;
    dibella::io::write_fastq(BufWriter::new(file), &ds.reads).map_err(|e| e.to_string())?;
    eprintln!(
        "dibella: wrote {} reads ({:.1} Mb, {:.1}x of {genome_bp} bp) to {out_path}",
        ds.reads.len(),
        ds.reads.total_bases() as f64 / 1e6,
        ds.realized_depth()
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let path = flags.positional.first().ok_or("stats: missing <reads.fastq>")?;
    let reads = load_fastq(path)?;
    let k: usize = flags.get("k", 17)?;
    let error: f64 = flags.get("e", 0.15)?;
    let depth_flag: f64 = flags.get("d", 0.0)?;

    let total = reads.total_bases();
    println!("reads:          {}", reads.len());
    println!("bases:          {total}");
    println!("mean length:    {:.0}", reads.mean_length());
    let longest = reads.iter().map(|r| r.len()).max().unwrap_or(0);
    println!("longest read:   {longest}");
    println!("k-mer bag (~):  {total}  (Eq. 2: ≈ G·d)");
    if depth_flag > 0.0 {
        let m = params::reliable_max_multiplicity(depth_flag, error, k, 1e-4);
        let genome_est = total as f64 / depth_flag;
        println!("assumed depth:  {depth_flag}");
        println!("genome (G=N/d): {:.0}", genome_est);
        println!("reliable m:     {m}  (k={k}, e={error})");
    } else {
        println!("(pass -d DEPTH to derive the high-occurrence threshold m)");
    }
    let p_one = params::prob_shared_correct_kmer(2000, k, error);
    println!("P(shared correct {k}-mer | 2kb overlap) = {p_one:.4}");
    Ok(())
}
