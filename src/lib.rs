//! # dibella
//!
//! A production-quality Rust reproduction of **diBELLA: Distributed Long
//! Read to Long Read Alignment** (Ellis, Guidi, Buluç, Oliker, Yelick —
//! ICPP 2019, DOI 10.1145/3337821.3337919): the first distributed-memory
//! overlapper and aligner designed for noisy long reads.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`kmer`] | `dibella-kmer` | packed k-mers, extraction, hashing, BELLA's k/m selection |
//! | [`io`] | `dibella-io` | FASTQ/FASTA, block-parallel input, distributed read store |
//! | [`sketch`] | `dibella-sketch` | Bloom filter, HyperLogLog |
//! | [`comm`] | `dibella-comm` | SPMD thread-per-rank world with MPI-style collectives and pluggable transports (shared-mem / simulated network) |
//! | [`netmodel`] | `dibella-netmodel` | Table-1 platform models + LogGP cost projection |
//! | [`kcount`] | `dibella-kcount` | stages 1–2: distributed k-mer analysis |
//! | [`overlap`] | `dibella-overlap` | stage 3: Algorithm 1 pair generation + seed policies |
//! | [`align`] | `dibella-align` | stage 4 kernels: x-drop, banded SW, full SW oracle |
//! | [`pipeline`] | `dibella-core` | the four-stage pipeline, reports, cost-model bridge |
//! | [`baseline`] | `dibella-baseline` | DALIGNER-style single-node comparator (Table 2) |
//! | [`datagen`] | `dibella-datagen` | synthetic PacBio-like data with ground truth |
//!
//! ## Quickstart
//!
//! ```
//! use dibella::prelude::*;
//!
//! // Simulate a tiny PacBio-like dataset (deterministic).
//! let genome = dibella::datagen::GenomeSpec { size: 20_000, seed: 7, ..Default::default() }
//!     .generate();
//! let ds = dibella::datagen::simulate_reads(
//!     &genome,
//!     &dibella::datagen::ReadSimSpec {
//!         depth: 12.0,
//!         mean_len: 2_500,
//!         min_len: 400,
//!         errors: dibella::datagen::ErrorModel::pacbio(0.12),
//!         seed: 1,
//!         ..Default::default()
//!     },
//! );
//!
//! // Run the 4-stage pipeline on 4 ranks.
//! let cfg = PipelineConfig { k: 15, depth: 12.0, error_rate: 0.12, ..Default::default() };
//! let result = run_pipeline(&ds.reads, 4, &cfg);
//! assert!(result.n_pairs() > 0);
//! ```

#![warn(missing_docs)]

pub use dibella_align as align;
pub use dibella_baseline as baseline;
pub use dibella_comm as comm;
pub use dibella_core as pipeline;
pub use dibella_datagen as datagen;
pub use dibella_io as io;
pub use dibella_kcount as kcount;
pub use dibella_kmer as kmer;
pub use dibella_netmodel as netmodel;
pub use dibella_overlap as overlap;
pub use dibella_sketch as sketch;

/// The most common imports in one place.
pub mod prelude {
    pub use dibella_align::{Scoring, SeedHit};
    pub use dibella_comm::{CommWorld, SimNetConfig, TransportKind};
    pub use dibella_core::{
        run_pipeline, run_pipeline_fastq, AlignmentRecord, PipelineConfig, PipelineResult,
        SeedMode,
    };
    pub use dibella_io::{Read, ReadId, ReadSet};
    pub use dibella_netmodel::{NodeMapping, Platform, PlatformId};
    pub use dibella_overlap::{OverlapEngine, ReadPair, SeedPolicy};
}
