//! Offline stand-in for `rayon`.
//!
//! The build environment for this repository has no registry access, so this
//! vendored crate implements the slice of rayon's API the workspace uses.
//! Since PR 2 it is **no longer fully sequential**: it ships a real thread
//! pool ([`ThreadPool`] / [`ThreadPoolBuilder`]) and genuinely parallel
//! indexed maps ([`ParallelSlice::par_chunks`] and
//! [`IntoParallelIterator::into_par_iter`] on `Range<usize>`, each followed
//! by `.map(f).collect()`), built on `std::thread::scope` with an atomic
//! work-claiming cursor — dynamic scheduling in the spirit of rayon's work
//! stealing, minus the per-thread deques. Results are reassembled in task
//! index order, so a `collect()` is **bit-identical** to the sequential
//! execution no matter how many threads run it (the same
//! order-preservation guarantee real rayon gives indexed parallel
//! iterators).
//!
//! The older adapter traits (`par_iter`, `flat_map_iter`, the
//! `par_sort_unstable*` family) remain sequential std equivalents:
//! semantics and results are identical to real rayon, only their parallel
//! speedup is lost. Swapping the registry crate back in requires no source
//! changes anywhere in the workspace — every name here resolves against
//! real rayon's `prelude`/root exports.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

// ---------------------------------------------------------------------------
// Thread pool
// ---------------------------------------------------------------------------

thread_local! {
    /// Pool width "installed" on this thread (see [`ThreadPool::install`]).
    static AMBIENT_WIDTH: Cell<Option<usize>> = const { Cell::new(None) };
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of threads parallel operations on the current thread will use:
/// the width of the innermost [`ThreadPool::install`] in scope, else the
/// hardware parallelism (mirrors `rayon::current_num_threads`).
pub fn current_num_threads() -> usize {
    AMBIENT_WIDTH
        .with(|w| w.get())
        .unwrap_or_else(hardware_threads)
}

/// Error building a [`ThreadPool`] (mirrors rayon's opaque error type;
/// construction here cannot actually fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`] (mirrors `rayon::ThreadPoolBuilder`).
#[derive(Clone, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (thread count = hardware threads).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of worker threads; `0` means "use the hardware
    /// parallelism", as in real rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. Infallible here, but kept `Result` for API parity.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = if self.num_threads == 0 {
            hardware_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { width })
    }
}

/// A bounded-width thread pool.
///
/// Unlike real rayon this pool keeps no resident worker threads: workers
/// are spawned scoped per parallel operation (`std::thread::scope`), which
/// keeps the vendored crate dependency-free and leak-proof while preserving
/// rayon's observable behavior — `install` bounds the parallelism of every
/// parallel operation run inside it.
#[derive(Debug)]
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.width
    }

    /// Run `op` with this pool's width governing any parallel operation it
    /// performs (mirrors `rayon::ThreadPool::install`). Nested installs
    /// restore the outer width on exit, including on panic. Parallel
    /// operations nested *inside* a running parallel operation execute
    /// sequentially on their worker, so the total thread count never
    /// exceeds the installed width.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        struct Restore<'a>(&'a Cell<Option<usize>>, Option<usize>);
        impl Drop for Restore<'_> {
            fn drop(&mut self) {
                self.0.set(self.1);
            }
        }
        AMBIENT_WIDTH.with(|w| {
            let _guard = Restore(w, w.replace(Some(self.width)));
            op()
        })
    }
}

// ---------------------------------------------------------------------------
// Fire-and-forget spawn
// ---------------------------------------------------------------------------

/// Spawn an asynchronous task (mirrors `rayon::spawn`'s signature).
///
/// Real rayon queues the closure onto its resident, *bounded* global
/// pool; this stand-in dedicates a fresh OS thread per call, which is a
/// semantic the workspace deliberately relies on: `dibella-comm`'s split
/// exchange helpers **block on a P-party barrier**, so all P of them must
/// be able to run concurrently — on a bounded pool narrower than the rank
/// world they would deadlock. Swapping the registry rayon back in
/// therefore requires routing those helpers to dedicated threads (e.g.
/// `std::thread::spawn`) rather than this function; see
/// `vendor/README.md`. Every other use in the workspace is
/// pool-compatible. Callers that need the result back use a channel,
/// exactly as they would with real rayon.
pub fn spawn<F>(func: F)
where
    F: FnOnce() + Send + 'static,
{
    std::thread::Builder::new()
        .name("rayon-spawn".into())
        .spawn(func)
        .expect("failed to spawn rayon task thread");
}

// ---------------------------------------------------------------------------
// Parallel indexed maps (the genuinely parallel part)
// ---------------------------------------------------------------------------

/// Shared engine behind every parallel `collect()`: run `f(0..n_tasks)` at
/// the ambient width and gather the results **in task-index order**.
///
/// Scheduling is dynamic — workers claim the next unprocessed index from a
/// shared atomic cursor, so a slow task never idles the other workers — but
/// the output order is the index order, identical to `(0..n).map(f)` bit
/// for bit. The calling thread participates as one of the workers (like
/// real rayon's `install`), workers pin their ambient width to 1 so nested
/// parallel operations run sequentially instead of over-spawning, and
/// worker panics are propagated to the caller after all workers stop.
fn parallel_collect_indexed<R, F, C>(n_tasks: usize, f: F) -> C
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    C: FromIterator<R>,
{
    let width = current_num_threads().min(n_tasks);
    if width <= 1 {
        return (0..n_tasks).map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor = &cursor;
    // Each worker (shared-ref captures only, so the closure is Copy)
    // drains the task queue until empty.
    let work = move || {
        let sequential = ThreadPool { width: 1 };
        sequential.install(|| {
            let mut produced = Vec::new();
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n_tasks {
                    break;
                }
                produced.push((i, f(i)));
            }
            produced
        })
    };
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (1..width).map(|_| s.spawn(work)).collect();
        let mut all = vec![work()];
        for h in handles {
            match h.join() {
                Ok(v) => all.push(v),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        all
    });

    // Reassemble in task-index order.
    let mut slots: Vec<Option<R>> = (0..n_tasks).map(|_| None).collect();
    for (i, r) in per_worker.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "task {i} computed twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("task claimed but never computed"))
        .collect()
}

/// `par_chunks` on slices (the subset of rayon's `ParallelSlice` used by
/// this workspace).
pub trait ParallelSlice<T: Sync> {
    /// Split the slice into contiguous chunks of at most `chunk_size`
    /// elements, to be mapped in parallel. Chunk boundaries are a pure
    /// function of the slice length — never of the thread count — which is
    /// what makes downstream `collect()`s deterministic.
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be non-zero");
        ParChunks { slice: self, chunk_size }
    }
}

/// Parallel iterator over contiguous slice chunks (see
/// [`ParallelSlice::par_chunks`]).
#[derive(Clone, Copy, Debug)]
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    /// Number of chunks this iterator will produce.
    pub fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    /// `true` when the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.slice.is_empty()
    }

    /// Map every chunk through `f` (executed in parallel at `collect`).
    pub fn map<R, F>(self, f: F) -> ParChunksMap<'a, T, F>
    where
        F: Fn(&'a [T]) -> R + Sync,
        R: Send,
    {
        ParChunksMap { chunks: self, f }
    }
}

/// The mapped form of [`ParChunks`]; terminal `collect` runs the map on
/// the ambient pool.
#[derive(Clone, Copy, Debug)]
pub struct ParChunksMap<'a, T, F> {
    chunks: ParChunks<'a, T>,
    f: F,
}

impl<'a, T, R, F> ParChunksMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a [T]) -> R + Sync,
{
    /// Execute the chunk map and collect results **in chunk order**.
    ///
    /// Chunk boundaries are a pure function of the slice length, so the
    /// output is identical to a sequential
    /// `slice.chunks(n).map(f).collect()` bit for bit at any width (see
    /// `parallel_collect_indexed`).
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let ParChunksMap { chunks: ParChunks { slice, chunk_size }, f } = self;
        let n_chunks = slice.len().div_ceil(chunk_size);
        parallel_collect_indexed(n_chunks, |i| {
            let lo = i * chunk_size;
            let hi = (lo + chunk_size).min(slice.len());
            f(&slice[lo..hi])
        })
    }
}

/// `into_par_iter` on owned collections (the subset of rayon's
/// `IntoParallelIterator` used by this workspace: index ranges).
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// The parallel form of `Self`.
    type Iter;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over a `Range<usize>` — rayon's canonical way to run
/// an indexed map without materializing a slice of descriptors.
#[derive(Clone, Debug)]
pub struct ParRange {
    range: std::ops::Range<usize>,
}

impl ParRange {
    /// Number of indices this iterator will produce.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// `true` when the range is empty.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// Map every index through `f` (executed in parallel at `collect`).
    pub fn map<R, F>(self, f: F) -> ParRangeMap<F>
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
    {
        ParRangeMap { range: self.range, f }
    }
}

/// The mapped form of [`ParRange`]; terminal `collect` runs the map on the
/// ambient pool.
#[derive(Clone, Debug)]
pub struct ParRangeMap<F> {
    range: std::ops::Range<usize>,
    f: F,
}

impl<R, F> ParRangeMap<F>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    /// Execute the indexed map and collect results **in index order** —
    /// identical to `range.map(f).collect()` bit for bit at any width (see
    /// `parallel_collect_indexed`).
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let ParRangeMap { range, f } = self;
        let start = range.start;
        parallel_collect_indexed(range.len(), |i| f(start + i))
    }
}

// ---------------------------------------------------------------------------
// Sequential adapter traits (unchanged semantics from the original stub)
// ---------------------------------------------------------------------------

/// Adapter methods on iterators standing in for rayon's `ParallelIterator`.
pub trait ParallelIterator: Iterator + Sized {
    /// Sequential stand-in for `ParallelIterator::flat_map_iter`.
    fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
    where
        U: IntoIterator,
        F: FnMut(Self::Item) -> U,
    {
        self.flat_map(f)
    }

    /// Sequential stand-in for `ParallelIterator::map` (already on Iterator;
    /// present so fully-qualified rayon calls keep resolving).
    fn par_map<U, F>(self, f: F) -> std::iter::Map<Self, F>
    where
        F: FnMut(Self::Item) -> U,
    {
        self.map(f)
    }
}

impl<I: Iterator> ParallelIterator for I {}

/// `par_iter` on slices (and things that deref to slices, e.g. `Vec`).
pub trait IntoParallelRefIterator {
    /// Element type.
    type Item;
    /// Sequential stand-in for rayon's `par_iter`.
    fn par_iter(&self) -> std::slice::Iter<'_, Self::Item>;
}

impl<T> IntoParallelRefIterator for [T] {
    type Item = T;
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

/// `par_iter_mut` on slices.
pub trait IntoParallelRefMutIterator {
    /// Element type.
    type Item;
    /// Sequential stand-in for rayon's `par_iter_mut`.
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, Self::Item>;
}

impl<T> IntoParallelRefMutIterator for [T] {
    type Item = T;
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
}

/// Sequential stand-ins for rayon's parallel slice sorts.
pub trait ParallelSliceMut<T> {
    /// Stand-in for `par_sort_unstable`.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    /// Stand-in for `par_sort_unstable_by_key`.
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);

    /// Stand-in for `par_sort_unstable_by`.
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, cmp: F);
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable()
    }

    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
        self.sort_unstable_by_key(key)
    }

    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, cmp: F) {
        self.sort_unstable_by(cmp)
    }
}

/// The usual glob import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::ThreadPoolBuilder;

    #[test]
    fn par_surface_matches_sequential() {
        let v = vec![3u32, 1, 2];
        let doubled: Vec<u32> = v.par_iter().flat_map_iter(|&x| [x, x]).collect();
        assert_eq!(doubled, vec![3, 3, 1, 1, 2, 2]);
        let mut s = v.clone();
        s.par_sort_unstable();
        assert_eq!(s, vec![1, 2, 3]);
        let mut t = v;
        t.par_sort_unstable_by_key(|&x| std::cmp::Reverse(x));
        assert_eq!(t, vec![3, 2, 1]);
    }

    #[test]
    fn par_chunks_is_order_preserving_at_any_width() {
        let data: Vec<u32> = (0..1000).collect();
        let expected: Vec<u64> = data
            .chunks(7)
            .map(|c| c.iter().map(|&x| x as u64).sum())
            .collect();
        for threads in [1usize, 2, 3, 4, 8] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let got: Vec<u64> = pool.install(|| {
                data.par_chunks(7)
                    .map(|c| c.iter().map(|&x| x as u64).sum())
                    .collect()
            });
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn par_chunks_actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let data: Vec<u32> = (0..64).collect();
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let _: Vec<()> = pool.install(|| {
            data.par_chunks(1)
                .map(|_| {
                    seen.lock().unwrap().insert(std::thread::current().id());
                    // Yield the core so other workers get to claim chunks
                    // even on a single-CPU machine.
                    std::thread::sleep(std::time::Duration::from_micros(500));
                })
                .collect()
        });
        // 64 chunks × 0.5 ms over a width-4 pool: more than one distinct
        // thread must have executed chunks (the caller participates, so a
        // broken single-worker pool would show exactly one ID here).
        assert!(
            seen.lock().unwrap().len() >= 2,
            "only {} distinct worker thread(s)",
            seen.lock().unwrap().len()
        );
    }

    #[test]
    fn par_range_is_order_preserving_at_any_width() {
        let expected: Vec<usize> = (3..350).map(|i| i * i).collect();
        for threads in [1usize, 2, 3, 4, 8] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let got: Vec<usize> =
                pool.install(|| (3..350).into_par_iter().map(|i| i * i).collect());
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn par_range_empty_and_len() {
        let empty = (5..5).into_par_iter();
        assert!(empty.is_empty());
        let got: Vec<usize> = empty.map(|i| i).collect();
        assert!(got.is_empty());
        assert_eq!((2..9).into_par_iter().len(), 7);
    }

    #[test]
    fn empty_and_single_chunk_inputs() {
        let empty: Vec<u32> = Vec::new();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let got: Vec<u64> = pool.install(|| empty.par_chunks(8).map(|_| 0u64).collect());
        assert!(got.is_empty());
        let one = [5u32];
        let got: Vec<u64> =
            pool.install(|| one.par_chunks(8).map(|c| c[0] as u64).collect());
        assert_eq!(got, vec![5]);
    }

    #[test]
    fn install_sets_and_restores_ambient_width() {
        let outside = crate::current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| {
            assert_eq!(crate::current_num_threads(), 3);
            let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
            inner.install(|| assert_eq!(crate::current_num_threads(), 2));
            assert_eq!(crate::current_num_threads(), 3);
        });
        assert_eq!(crate::current_num_threads(), outside);
    }

    #[test]
    fn nested_parallel_ops_run_sequentially_in_workers() {
        let data: Vec<u32> = (0..16).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let widths: Vec<usize> = pool.install(|| {
            data.par_chunks(1).map(|_| crate::current_num_threads()).collect()
        });
        // Inside a running parallel operation the ambient width is pinned
        // to 1, so a nested par_chunks cannot over-spawn.
        assert!(widths.iter().all(|&w| w == 1), "widths = {widths:?}");
    }

    #[test]
    fn spawn_runs_concurrently_and_delivers_result() {
        let (tx, rx) = std::sync::mpsc::channel();
        crate::spawn(move || {
            tx.send(6u32 * 7).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn zero_threads_means_hardware_default() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }
}
