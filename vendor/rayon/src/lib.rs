//! Offline stand-in for `rayon`.
//!
//! The build environment for this repository has no registry access, so this
//! vendored crate maps the parallel-iterator surface the workspace uses onto
//! **sequential** std equivalents: `par_iter` → `iter`, `flat_map_iter` →
//! `flat_map`, `par_sort_unstable*` → `sort_unstable*`. Semantics (and, for
//! the deterministic baseline, results) are identical to real rayon; only
//! wall-clock parallel speedup is lost. Swapping the real crate back in
//! requires no source changes.

/// Adapter methods on iterators standing in for rayon's `ParallelIterator`.
pub trait ParallelIterator: Iterator + Sized {
    /// Sequential stand-in for `ParallelIterator::flat_map_iter`.
    fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
    where
        U: IntoIterator,
        F: FnMut(Self::Item) -> U,
    {
        self.flat_map(f)
    }

    /// Sequential stand-in for `ParallelIterator::map` (already on Iterator;
    /// present so fully-qualified rayon calls keep resolving).
    fn par_map<U, F>(self, f: F) -> std::iter::Map<Self, F>
    where
        F: FnMut(Self::Item) -> U,
    {
        self.map(f)
    }
}

impl<I: Iterator> ParallelIterator for I {}

/// `par_iter` on slices (and things that deref to slices, e.g. `Vec`).
pub trait IntoParallelRefIterator {
    /// Element type.
    type Item;
    /// Sequential stand-in for rayon's `par_iter`.
    fn par_iter(&self) -> std::slice::Iter<'_, Self::Item>;
}

impl<T> IntoParallelRefIterator for [T] {
    type Item = T;
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

/// `par_iter_mut` on slices.
pub trait IntoParallelRefMutIterator {
    /// Element type.
    type Item;
    /// Sequential stand-in for rayon's `par_iter_mut`.
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, Self::Item>;
}

impl<T> IntoParallelRefMutIterator for [T] {
    type Item = T;
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
}

/// Sequential stand-ins for rayon's parallel slice sorts.
pub trait ParallelSliceMut<T> {
    /// Stand-in for `par_sort_unstable`.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    /// Stand-in for `par_sort_unstable_by_key`.
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);

    /// Stand-in for `par_sort_unstable_by`.
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, cmp: F);
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable()
    }

    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
        self.sort_unstable_by_key(key)
    }

    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, cmp: F) {
        self.sort_unstable_by(cmp)
    }
}

/// The usual glob import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn par_surface_matches_sequential() {
        let v = vec![3u32, 1, 2];
        let doubled: Vec<u32> = v.par_iter().flat_map_iter(|&x| [x, x]).collect();
        assert_eq!(doubled, vec![3, 3, 1, 1, 2, 2]);
        let mut s = v.clone();
        s.par_sort_unstable();
        assert_eq!(s, vec![1, 2, 3]);
        let mut t = v;
        t.par_sort_unstable_by_key(|&x| std::cmp::Reverse(x));
        assert_eq!(t, vec![3, 2, 1]);
    }
}
