//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment for this repository has no registry access, so this
//! vendored crate provides the API surface the workspace's benches use —
//! [`Criterion`], [`criterion_group!`], [`criterion_main!`], benchmark
//! groups with `sample_size`/`throughput`, [`BenchmarkId`], [`Throughput`]
//! and `Bencher::iter` — with a deliberately simple measurement loop: warm
//! up once, run `sample_size` timed samples, print the mean per-iteration
//! wall time. No statistics, plots or comparisons; it keeps
//! `cargo bench --no-run` and `cargo bench` working end to end.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working like the real crate.
pub use std::hint::black_box;

/// The top-level harness handle passed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.render(), 10, None, f);
        self
    }
}

/// A named collection of benchmarks sharing sample-size and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare the amount of work one iteration represents.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.render());
        run_one(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (printing happens as benches run).
    pub fn finish(self) {}
}

/// Identifies one benchmark: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter rendering.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter (grouped under the group name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: String::new(), parameter: Some(parameter.to_string()) }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { function: s.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { function: s, parameter: None }
    }
}

/// Work represented by one iteration, for ops/s style reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Passed to each benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `sample_size` runs of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, tp: Option<Throughput>, mut f: F) {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let rate = match tp {
        Some(Throughput::Bytes(n)) if mean.as_nanos() > 0 => {
            format!("  {:>10.1} MiB/s", n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if mean.as_nanos() > 0 => {
            format!("  {:>10.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{label:<48} {mean:>12.3?}/iter{rate}");
}

/// Collect bench functions into a runnable group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups, mirroring criterion's macro.
///
/// `cargo test` and `cargo bench` pass harness flags (`--bench`, filters);
/// they are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
