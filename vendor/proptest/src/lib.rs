//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this repository has no registry access, so this
//! vendored crate implements the slice of proptest's API that the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * [`Strategy`] with `prop_map`, implemented for numeric ranges, tuples,
//!   [`any`], `prop::collection::vec` and `prop::sample::select`.
//!
//! Differences from real proptest, on purpose: inputs are generated from a
//! deterministic per-test RNG (seeded from the test name) so CI is
//! reproducible, and there is **no shrinking** — a failing case panics with
//! the case number and assertion message. That is enough to act on in a
//! codebase where every generator is cheap to re-run.

use std::ops::{Range, RangeInclusive};

pub mod test_runner;

use test_runner::TestRng;

/// Runtime knobs for a `proptest!` block, mirroring
/// `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest's default.
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped, not failed.
    Reject,
    /// An assertion failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                ((rng.next_u64() as u128 % span) as i128 + self.start as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                ((rng.next_u64() as u128 % span) as i128 + lo as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Types with a canonical "arbitrary value" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Sub-strategy namespaces (`prop::collection`, `prop::sample`), re-exported
/// from the prelude as `prop` like the real crate.
pub mod prop {
    /// Strategies for collections.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Length bounds for [`vec()`]; converts from `usize` and ranges.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi_inclusive: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
            }
        }

        /// A strategy for `Vec<S::Value>` with length drawn from `size`.
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `Vec` strategy: each element from `element`, length from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
                let len = self.size.lo + (rng.next_u64() % span) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Strategies that sample from explicit value pools.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// A strategy yielding clones of elements of a non-empty `Vec`.
        #[derive(Clone, Debug)]
        pub struct Select<T> {
            items: Vec<T>,
        }

        /// Uniformly select one of `items` (must be non-empty).
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select() needs at least one item");
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                self.items[(rng.next_u64() as usize) % self.items.len()].clone()
            }
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}` ({}:{})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}` ({}:{}): {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}` ({}:{})\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                l
            )));
        }
    }};
}

/// Skip the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ..) { body }` becomes
/// a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategies = ( $( $strat, )+ );
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut rejected: u32 = 0;
                let mut case: u32 = 0;
                while case < config.cases {
                    let ( $($pat,)+ ) = $crate::Strategy::sample(&strategies, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => case += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected < config.cases.saturating_mul(64).max(1024),
                                "too many prop_assume! rejections in {}",
                                stringify!($name)
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed at case {}: {}", stringify!($name), case, msg)
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(a in 3usize..9, b in 0u8..2, x in 1i32..60) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b < 2);
            prop_assert!((1..60).contains(&x));
        }

        /// vec + select produce the right lengths and alphabet.
        #[test]
        fn vec_select(seq in prop::collection::vec(prop::sample::select(b"ACGT".to_vec()), 5..12)) {
            prop_assert!(seq.len() >= 5 && seq.len() < 12);
            prop_assert!(seq.iter().all(|c| b"ACGT".contains(c)));
        }

        /// Tuples + prop_map compose.
        #[test]
        fn tuple_map(v in (1usize..5, any::<u64>()).prop_map(|(n, s)| vec![s; n])) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        /// prop_assume skips without failing.
        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(
            (0..32).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..32).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
