//! The deterministic RNG behind the vendored proptest stand-in.

/// Deterministic SplitMix64 generator seeded from a test's name, so every
//  run of a given test explores the same input sequence.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary label (FNV-1a over its bytes).
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &b in label.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
