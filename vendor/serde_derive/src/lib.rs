//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` expand to nothing. Types in this workspace only
//! carry the derives as forward-looking annotations; nothing serializes
//! through serde at runtime (the wire format is the hand-rolled
//! `dibella_comm::wire`). If real serialization lands, replace `vendor/serde*`
//! with the registry crates — no source changes needed.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
