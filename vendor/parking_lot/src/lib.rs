//! Offline stand-in for `parking_lot`.
//!
//! The build environment for this repository has no registry access, so this
//! vendored crate wraps `std::sync::Mutex` behind parking_lot's API shape:
//! `lock()` returns the guard directly (poisoning is absorbed with
//! `into_inner`, matching parking_lot's poison-free behavior). Only the
//! surface the workspace uses is implemented — `Mutex` — so the stub stays
//! trivially auditable (no unsafe code). Extend it alongside new callers, or
//! swap in the registry crate via `[workspace.dependencies]`.

use std::sync::PoisonError;

/// Guard type for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Mutual exclusion with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking; never panics on poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Get mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn contended_from_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
