//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *minimal* slice of the `rand` 0.8 API that the
//! code actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] methods `gen`, `gen_bool` and `gen_range` over integer and
//! float ranges. The generator is SplitMix64 — statistically fine for test
//! data synthesis, deliberately not cryptographic.
//!
//! Sequences differ from the real `rand::StdRng` (which is ChaCha12); all
//! in-repo consumers only rely on determinism-given-seed, not on specific
//! streams.

use std::ops::{Range, RangeInclusive};

/// A seedable RNG, mirroring `rand::SeedableRng`'s `seed_from_u64` entry.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's full range
/// (the stand-in for sampling from `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw 64-bit source every higher-level method builds on.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Types `gen_range` can sample uniformly, mirroring
/// `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]` (`true`).
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

/// Sampling a value of type `T` from a range expression, mirroring
/// `rand::distributions::uniform::SampleRange`.
///
/// Implemented as single blanket impls over [`SampleUniform`] (not one impl
/// per numeric type) so integer literals in expressions like
/// `b"ACGT"[rng.gen_range(0..4)]` unify with the surrounding context the
/// same way they do with the real crate.
pub trait SampleRange<T> {
    /// Sample one value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty inclusive range in gen_range");
        T::sample_between(lo, hi, true, rng)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                (((rng.next_u64() as u128) % span) as i128 + lo as i128) as $t
            }
        }
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let unit = if inclusive {
                    // Uniform over [0, 1]: 2^53 equally likely dyadics incl. 1.
                    (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
                } else {
                    unit_f64(rng)
                };
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The user-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its full uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`, like the real crate.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..2000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
