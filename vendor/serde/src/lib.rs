//! Offline stand-in for `serde`.
//!
//! The build environment for this repository has no registry access, and the
//! workspace only *annotates* types with `Serialize`/`Deserialize` (the
//! actual wire format is the hand-rolled `dibella_comm::wire`). So this
//! vendored crate provides marker traits and re-exports no-op derive macros
//! of the same names; `use serde::{Deserialize, Serialize}` imports both the
//! trait and the derive, exactly like the real crate.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
