//! Read records and identifiers.
//!
//! diBELLA identifies reads by dense integer IDs assigned in input order
//! (paper Figure 2: `R1, R2, ...`). IDs are global across ranks; the
//! odd/even task-owner heuristic of Algorithm 1 depends on their parity, so
//! the assignment must be deterministic regardless of the rank count.

use std::fmt;

/// Global read identifier: dense, 0-based, assigned in input order.
///
/// `u32` comfortably covers the paper's data sets (16 890 and 91 394
/// reads) and keeps wire messages small; the type alias makes a future
/// widening mechanical.
pub type ReadId = u32;

/// A single long read.
#[derive(Clone, PartialEq, Eq)]
pub struct Read {
    /// Global identifier (position in the input ordering).
    pub id: ReadId,
    /// Record name (FASTQ/FASTA header up to the first whitespace).
    pub name: String,
    /// Nucleotide sequence (ASCII, may contain ambiguous bases).
    pub seq: Vec<u8>,
}

impl Read {
    /// Construct a read.
    pub fn new(id: ReadId, name: impl Into<String>, seq: impl Into<Vec<u8>>) -> Self {
        Self {
            id,
            name: name.into(),
            seq: seq.into(),
        }
    }

    /// Sequence length in bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// `true` if the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

impl fmt::Debug for Read {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Read(id={}, name={:?}, len={})",
            self.id,
            self.name,
            self.seq.len()
        )
    }
}

/// An owned collection of reads with summary statistics.
#[derive(Clone, Debug, Default)]
pub struct ReadSet {
    reads: Vec<Read>,
}

impl ReadSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a vector of reads.
    pub fn from_reads(reads: Vec<Read>) -> Self {
        Self { reads }
    }

    /// Append a read.
    pub fn push(&mut self, read: Read) {
        self.reads.push(read);
    }

    /// Number of reads.
    pub fn len(&self) -> usize {
        self.reads.len()
    }

    /// `true` if there are no reads.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
    }

    /// Slice of all reads.
    pub fn reads(&self) -> &[Read] {
        &self.reads
    }

    /// Consume into the underlying vector.
    pub fn into_reads(self) -> Vec<Read> {
        self.reads
    }

    /// Iterate over reads.
    pub fn iter(&self) -> std::slice::Iter<'_, Read> {
        self.reads.iter()
    }

    /// Total bases across all reads (`N = G·d` of paper Eq. 1).
    pub fn total_bases(&self) -> u64 {
        self.reads.iter().map(|r| r.len() as u64).sum()
    }

    /// Mean read length, or 0.0 for an empty set.
    pub fn mean_length(&self) -> f64 {
        if self.reads.is_empty() {
            0.0
        } else {
            self.total_bases() as f64 / self.reads.len() as f64
        }
    }
}

impl<'a> IntoIterator for &'a ReadSet {
    type Item = &'a Read;
    type IntoIter = std::slice::Iter<'a, Read>;
    fn into_iter(self) -> Self::IntoIter {
        self.reads.iter()
    }
}

impl IntoIterator for ReadSet {
    type Item = Read;
    type IntoIter = std::vec::IntoIter<Read>;
    fn into_iter(self) -> Self::IntoIter {
        self.reads.into_iter()
    }
}

impl FromIterator<Read> for ReadSet {
    fn from_iter<T: IntoIterator<Item = Read>>(iter: T) -> Self {
        Self {
            reads: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_basics() {
        let r = Read::new(3, "r3", b"ACGT".to_vec());
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert_eq!(format!("{r:?}"), "Read(id=3, name=\"r3\", len=4)");
    }

    #[test]
    fn readset_stats() {
        let mut set = ReadSet::new();
        assert!(set.is_empty());
        assert_eq!(set.mean_length(), 0.0);
        set.push(Read::new(0, "a", b"ACGT".to_vec()));
        set.push(Read::new(1, "b", b"ACGTACGT".to_vec()));
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_bases(), 12);
        assert_eq!(set.mean_length(), 6.0);
    }

    #[test]
    fn readset_collect() {
        let set: ReadSet = (0..5)
            .map(|i| Read::new(i, format!("r{i}"), vec![b'A'; i as usize]))
            .collect();
        assert_eq!(set.len(), 5);
        assert_eq!(set.reads()[4].len(), 4);
    }
}
