//! # dibella-io
//!
//! Input handling for the diBELLA pipeline: FASTQ/FASTA parsing and
//! writing, byte-range parallel input with record resynchronization,
//! size-balanced contiguous read partitioning, and the per-rank
//! [`ReadStore`] with replication support for the alignment stage.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod fastq;
pub mod partition;
pub mod read;
pub mod store;

pub use checkpoint::{CheckpointError, CheckpointStore};
pub use fastq::{
    read_fasta, read_fastq, write_fasta, write_fastq, FastqReader, FastqRecord, ParseError,
};
pub use partition::{byte_ranges, parse_block, partition_reads, resync_fastq, ReadPartition};
pub use read::{Read, ReadId, ReadSet};
pub use store::ReadStore;
