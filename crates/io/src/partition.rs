//! Input partitioning for parallel I/O and block read ownership.
//!
//! Paper §4/§6: "the input reads are distributed roughly uniformly over the
//! processors using parallel I/O, but there is no locality inherent in the
//! input files", and §9: reads are partitioned "as uniformly as possible at
//! the beginning of the computation (by the read size in memory)".
//!
//! Two mechanisms live here:
//!
//! * **byte-range partitioning with FASTQ resynchronization** — each rank
//!   takes `[start, end)` bytes of the file and parses the records that
//!   *begin* in its range, which requires finding the first true record
//!   boundary at or after `start` (quality lines may legally begin with
//!   `@`, so a lookahead test is used);
//! * **size-balanced contiguous read partitioning** — assigning consecutive
//!   read IDs to ranks so each rank holds roughly the same number of
//!   bases. Contiguity makes read ownership a binary search over `P + 1`
//!   boundaries instead of a table of all reads.

use crate::fastq::{FastqReader, ParseError};
use crate::read::{Read, ReadId, ReadSet};
use std::io::Cursor;

/// Split `total` bytes into `parts` half-open ranges of near-equal size.
///
/// Every byte belongs to exactly one range; empty ranges are produced when
/// `parts > total`.
pub fn byte_ranges(total: usize, parts: usize) -> Vec<(usize, usize)> {
    assert!(parts > 0);
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for r in 0..parts {
        let len = base + usize::from(r < extra);
        out.push((start, start + len));
        start += len;
    }
    debug_assert_eq!(start, total);
    out
}

/// Returns true if the line starting at `pos` looks like a FASTQ header:
/// it begins with `@` and the line two lines later begins with `+`.
///
/// A quality line may also begin with `@`, but then the line two later is a
/// *sequence* line, which never begins with `+` — so the test disambiguates
/// every well-formed file.
fn is_record_start(bytes: &[u8], pos: usize) -> bool {
    if bytes.get(pos) != Some(&b'@') {
        return false;
    }
    // Walk two line breaks forward.
    let mut p = pos;
    for _ in 0..2 {
        match bytes[p..].iter().position(|&b| b == b'\n') {
            Some(off) => p += off + 1,
            None => return false,
        }
    }
    bytes.get(p) == Some(&b'+')
}

/// Find the first FASTQ record boundary at or after `from`.
///
/// Returns `bytes.len()` when no record starts in the remainder (the block
/// contains only the tail of the previous rank's record).
pub fn resync_fastq(bytes: &[u8], from: usize) -> usize {
    if from == 0 {
        return 0;
    }
    let mut pos = from;
    // Step to the start of the next line unless we are already on one.
    if pos > 0 && bytes.get(pos - 1) != Some(&b'\n') {
        match bytes[pos..].iter().position(|&b| b == b'\n') {
            Some(off) => pos += off + 1,
            None => return bytes.len(),
        }
    }
    loop {
        if pos >= bytes.len() {
            return bytes.len();
        }
        if is_record_start(bytes, pos) {
            return pos;
        }
        match bytes[pos..].iter().position(|&b| b == b'\n') {
            Some(off) => pos += off + 1,
            None => return bytes.len(),
        }
    }
}

/// Parse the FASTQ records *beginning* in `range` of `bytes`.
///
/// The caller passes the rank's byte range from [`byte_ranges`]; the rank
/// resynchronizes to the first record starting at or after `range.0` and
/// parses up to (but not including) the first record starting at or after
/// `range.1`. Reads receive placeholder ID 0 — global IDs are assigned
/// after a prefix sum of per-rank record counts (see
/// `dibella_comm`-based loaders).
pub fn parse_block(bytes: &[u8], range: (usize, usize)) -> Result<Vec<Read>, ParseError> {
    let begin = resync_fastq(bytes, range.0);
    let end = resync_fastq(bytes, range.1);
    if begin >= end {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for rec in FastqReader::new(Cursor::new(&bytes[begin..end])) {
        let rec = rec?;
        out.push(Read::new(0, rec.name, rec.seq));
    }
    Ok(out)
}

/// Contiguous, size-balanced assignment of read IDs to `p` ranks.
///
/// `boundaries` has `p + 1` entries; rank `r` owns IDs
/// `boundaries[r] .. boundaries[r + 1]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadPartition {
    boundaries: Vec<ReadId>,
}

impl ReadPartition {
    /// Greedily split `lengths[i]` (bases of read `i`) into `p` contiguous
    /// chunks of near-equal total size.
    ///
    /// The greedy rule closes a chunk once it reaches the ideal share of
    /// the *remaining* bases over the *remaining* ranks, which guarantees
    /// every rank gets a non-pathological share and later ranks are never
    /// starved.
    pub fn balance_by_size(lengths: &[usize], p: usize) -> Self {
        assert!(p > 0);
        let total: u64 = lengths.iter().map(|&l| l as u64).sum();
        let mut boundaries = Vec::with_capacity(p + 1);
        boundaries.push(0 as ReadId);
        let mut next = 0usize;
        let mut remaining = total;
        for rank in 0..p {
            let ranks_left = (p - rank) as u64;
            let target = remaining.div_ceil(ranks_left.max(1));
            let mut acc = 0u64;
            while next < lengths.len() && (acc < target || ranks_left == 1) {
                // Final rank absorbs everything left.
                if ranks_left == 1 && next == lengths.len() {
                    break;
                }
                acc += lengths[next] as u64;
                next += 1;
                if ranks_left > 1 && acc >= target {
                    break;
                }
            }
            remaining -= acc;
            boundaries.push(next as ReadId);
        }
        // All reads must be assigned.
        *boundaries.last_mut().unwrap() = lengths.len() as ReadId;
        Self { boundaries }
    }

    /// Build from per-rank read counts (the result of block-parallel input
    /// plus an exclusive scan): rank `r` owns `counts[r]` consecutive IDs.
    pub fn from_counts(counts: &[usize]) -> Self {
        assert!(!counts.is_empty());
        let mut boundaries = Vec::with_capacity(counts.len() + 1);
        let mut acc = 0usize;
        boundaries.push(0 as ReadId);
        for &c in counts {
            acc += c;
            boundaries.push(acc as ReadId);
        }
        Self { boundaries }
    }

    /// Uniform count-based partition (for tests and unweighted inputs).
    pub fn uniform(n_reads: usize, p: usize) -> Self {
        assert!(p > 0);
        let ranges = byte_ranges(n_reads, p);
        let mut boundaries: Vec<ReadId> = ranges.iter().map(|&(s, _)| s as ReadId).collect();
        boundaries.push(n_reads as ReadId);
        Self { boundaries }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Total number of reads.
    pub fn n_reads(&self) -> usize {
        *self.boundaries.last().unwrap() as usize
    }

    /// The rank owning read `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn owner_of(&self, id: ReadId) -> usize {
        assert!(
            (id as usize) < self.n_reads(),
            "read id {id} out of range (n = {})",
            self.n_reads()
        );
        // partition_point returns the first boundary > id; ranks are that
        // index minus one.
        self.boundaries.partition_point(|&b| b <= id) - 1
    }

    /// Half-open ID range owned by `rank`.
    pub fn range_of(&self, rank: usize) -> std::ops::Range<ReadId> {
        self.boundaries[rank]..self.boundaries[rank + 1]
    }

    /// Reads owned by `rank`, sliced out of a full input ordering.
    pub fn slice<'a>(&self, rank: usize, reads: &'a [Read]) -> &'a [Read] {
        let r = self.range_of(rank);
        &reads[r.start as usize..r.end as usize]
    }
}

/// Split a fully-loaded [`ReadSet`] into per-rank [`ReadSet`]s according to
/// a size-balanced partition, returning the partition map as well.
pub fn partition_reads(set: &ReadSet, p: usize) -> (ReadPartition, Vec<ReadSet>) {
    let lengths: Vec<usize> = set.iter().map(|r| r.len()).collect();
    let part = ReadPartition::balance_by_size(&lengths, p);
    let mut out = Vec::with_capacity(p);
    for rank in 0..p {
        out.push(ReadSet::from_reads(part.slice(rank, set.reads()).to_vec()));
    }
    (part, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fastq::write_fastq;

    #[test]
    fn byte_ranges_cover_exactly() {
        for total in [0usize, 1, 7, 100, 101] {
            for parts in [1usize, 2, 3, 16] {
                let ranges = byte_ranges(total, parts);
                assert_eq!(ranges.len(), parts);
                assert_eq!(ranges[0].0, 0);
                assert_eq!(ranges[parts - 1].1, total);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                }
            }
        }
    }

    fn sample_file(n: usize) -> (Vec<u8>, ReadSet) {
        let mut set = ReadSet::new();
        for i in 0..n {
            let len = 20 + (i * 37) % 80;
            let seq: Vec<u8> = (0..len).map(|j| b"ACGT"[(i + j) % 4]).collect();
            set.push(Read::new(i as ReadId, format!("r{i}"), seq));
        }
        let mut bytes = Vec::new();
        write_fastq(&mut bytes, &set).unwrap();
        (bytes, set)
    }

    #[test]
    fn resync_finds_record_starts() {
        let (bytes, _) = sample_file(5);
        assert_eq!(resync_fastq(&bytes, 0), 0);
        // From byte 1 we must land on the second record, whose offset we
        // find by scanning for "@r1".
        let second = bytes
            .windows(4)
            .position(|w| w == b"@r1\n")
            .unwrap();
        assert_eq!(resync_fastq(&bytes, 1), second);
    }

    #[test]
    fn parallel_blocks_reconstruct_the_file() {
        let (bytes, set) = sample_file(23);
        for p in [1usize, 2, 3, 4, 7, 16, 64] {
            let mut all: Vec<Read> = Vec::new();
            for range in byte_ranges(bytes.len(), p) {
                all.extend(parse_block(&bytes, range).unwrap());
            }
            assert_eq!(all.len(), set.len(), "p={p}");
            for (got, want) in all.iter().zip(set.iter()) {
                assert_eq!(got.name, want.name, "p={p}");
                assert_eq!(got.seq, want.seq, "p={p}");
            }
        }
    }

    #[test]
    fn quality_line_starting_with_at_does_not_confuse_resync() {
        // Craft a record whose quality line starts with '@' (legal: Q31).
        let file = b"@r0\nACGTACGT\n+\n@IIIIIII\n@r1\nTTTT\n+\nIIII\n".to_vec();
        // Any split point must still yield exactly 2 records total.
        for p in [2usize, 3, 5] {
            let mut n = 0;
            for range in byte_ranges(file.len(), p) {
                n += parse_block(&file, range).unwrap().len();
            }
            assert_eq!(n, 2, "p={p}");
        }
    }

    #[test]
    fn balance_by_size_is_contiguous_and_fair() {
        let lengths: Vec<usize> = (0..100).map(|i| 50 + (i * 131) % 200).collect();
        let total: usize = lengths.iter().sum();
        for p in [1usize, 2, 4, 8, 16] {
            let part = ReadPartition::balance_by_size(&lengths, p);
            assert_eq!(part.ranks(), p);
            assert_eq!(part.n_reads(), lengths.len());
            let ideal = total as f64 / p as f64;
            for rank in 0..p {
                let r = part.range_of(rank);
                let load: usize = lengths[r.start as usize..r.end as usize].iter().sum();
                // Within one max-read-length of ideal.
                assert!(
                    (load as f64) < ideal + 250.0,
                    "p={p} rank={rank} load={load} ideal={ideal}"
                );
            }
            // Ownership agrees with ranges.
            for id in 0..lengths.len() as ReadId {
                let owner = part.owner_of(id);
                assert!(part.range_of(owner).contains(&id));
            }
        }
    }

    #[test]
    fn more_ranks_than_reads() {
        let part = ReadPartition::balance_by_size(&[10, 10], 5);
        assert_eq!(part.ranks(), 5);
        assert_eq!(part.n_reads(), 2);
        let owners: Vec<usize> = (0..2).map(|id| part.owner_of(id)).collect();
        assert_eq!(owners.len(), 2);
        // Every read has exactly one owner; empty ranks are fine.
        let total: usize = (0..5).map(|r| part.range_of(r).len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn from_counts_round_trip() {
        let part = ReadPartition::from_counts(&[3, 0, 5, 2]);
        assert_eq!(part.ranks(), 4);
        assert_eq!(part.n_reads(), 10);
        assert_eq!(part.range_of(0), 0..3);
        assert_eq!(part.range_of(1), 3..3);
        assert_eq!(part.range_of(2), 3..8);
        assert_eq!(part.owner_of(4), 2);
        assert_eq!(part.owner_of(9), 3);
    }

    #[test]
    fn uniform_partition_counts() {
        let part = ReadPartition::uniform(10, 3);
        let sizes: Vec<usize> = (0..3).map(|r| part.range_of(r).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owner_of_out_of_range_panics() {
        ReadPartition::uniform(3, 2).owner_of(3);
    }

    #[test]
    fn partition_reads_round_trip() {
        let (_, set) = sample_file(17);
        let (part, chunks) = partition_reads(&set, 4);
        assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), 17);
        for (rank, chunk) in chunks.iter().enumerate() {
            for read in chunk {
                assert_eq!(part.owner_of(read.id), rank);
            }
        }
    }
}
