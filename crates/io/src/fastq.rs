//! FASTQ and FASTA parsing and writing.
//!
//! The input to diBELLA is a FASTQ file of long reads (paper §4). The
//! parser here is streaming (works over any `BufRead`), validates record
//! structure, and is reused by both the whole-file loader and the
//! block-partitioned parallel loader in [`crate::partition`].

use crate::read::{Read, ReadId, ReadSet};
use std::io::{self, BufRead, Write};

/// Errors produced while parsing sequence files.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structurally invalid record, with a 1-based line number and message.
    Malformed {
        /// 1-based line number where the problem was detected.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "I/O error: {e}"),
            ParseError::Malformed { line, msg } => {
                write!(f, "malformed record at line {line}: {msg}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// One raw FASTQ record (before read-ID assignment).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FastqRecord {
    /// Header without the leading `@`, truncated at the first whitespace.
    pub name: String,
    /// Sequence bytes.
    pub seq: Vec<u8>,
    /// Quality bytes (same length as `seq`).
    pub qual: Vec<u8>,
}

/// Streaming FASTQ parser over any buffered reader.
pub struct FastqReader<R: BufRead> {
    inner: R,
    line_no: usize,
    buf: String,
}

impl<R: BufRead> FastqReader<R> {
    /// Wrap a buffered reader.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            line_no: 0,
            buf: String::new(),
        }
    }

    fn read_line(&mut self) -> Result<Option<&str>, ParseError> {
        self.buf.clear();
        let n = self.inner.read_line(&mut self.buf)?;
        if n == 0 {
            return Ok(None);
        }
        self.line_no += 1;
        Ok(Some(self.buf.trim_end_matches(['\n', '\r'])))
    }

    /// Parse the next record, or `Ok(None)` at a clean end of file.
    pub fn next_record(&mut self) -> Result<Option<FastqRecord>, ParseError> {
        // Skip blank lines between records.
        let header = loop {
            match self.read_line()? {
                None => return Ok(None),
                Some("") => continue,
                Some(l) => break l.to_owned(),
            }
        };
        let line = self.line_no;
        let name = header
            .strip_prefix('@')
            .ok_or_else(|| ParseError::Malformed {
                line,
                msg: format!("expected '@' header, found {header:?}"),
            })?
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_owned();

        let seq = match self.read_line()? {
            Some(l) => l.as_bytes().to_vec(),
            None => {
                return Err(ParseError::Malformed {
                    line: self.line_no + 1,
                    msg: "EOF where sequence line expected".into(),
                })
            }
        };
        let line = self.line_no;
        let sep = self.read_line()?.map(str::to_owned);
        match sep.as_deref() {
            Some(l) if l.starts_with('+') => {}
            other => {
                return Err(ParseError::Malformed {
                    line: self.line_no.max(line),
                    msg: format!("expected '+' separator, found {other:?}"),
                })
            }
        }
        let qual = match self.read_line()? {
            Some(l) => l.as_bytes().to_vec(),
            None => {
                return Err(ParseError::Malformed {
                    line: self.line_no + 1,
                    msg: "EOF where quality line expected".into(),
                })
            }
        };
        if qual.len() != seq.len() {
            return Err(ParseError::Malformed {
                line: self.line_no,
                msg: format!(
                    "quality length {} != sequence length {}",
                    qual.len(),
                    seq.len()
                ),
            });
        }
        Ok(Some(FastqRecord { name, seq, qual }))
    }
}

impl<R: BufRead> Iterator for FastqReader<R> {
    type Item = Result<FastqRecord, ParseError>;
    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// Parse an entire FASTQ stream into a [`ReadSet`], assigning dense IDs
/// starting from `first_id`.
pub fn read_fastq<R: BufRead>(reader: R, first_id: ReadId) -> Result<ReadSet, ParseError> {
    let mut set = ReadSet::new();
    for (id, rec) in (first_id..).zip(FastqReader::new(reader)) {
        let rec = rec?;
        set.push(Read::new(id, rec.name, rec.seq));
    }
    Ok(set)
}

/// Parse a FASTA stream (headers `>`; sequences may span multiple lines).
pub fn read_fasta<R: BufRead>(reader: R, first_id: ReadId) -> Result<ReadSet, ParseError> {
    let mut set = ReadSet::new();
    let mut id = first_id;
    let mut name: Option<String> = None;
    let mut seq: Vec<u8> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(h) = line.strip_prefix('>') {
            if let Some(n) = name.take() {
                set.push(Read::new(id, n, std::mem::take(&mut seq)));
                id += 1;
            }
            name = Some(h.split_whitespace().next().unwrap_or("").to_owned());
        } else {
            if name.is_none() {
                return Err(ParseError::Malformed {
                    line: line_no,
                    msg: "sequence data before any '>' header".into(),
                });
            }
            seq.extend_from_slice(line.as_bytes());
        }
    }
    if let Some(n) = name {
        set.push(Read::new(id, n, seq));
    }
    Ok(set)
}

/// Write a [`ReadSet`] as FASTQ. A flat quality score (`'I'`, Q40) is
/// emitted — diBELLA itself never consumes qualities.
pub fn write_fastq<W: Write>(mut w: W, reads: &ReadSet) -> io::Result<()> {
    for r in reads {
        w.write_all(b"@")?;
        w.write_all(r.name.as_bytes())?;
        w.write_all(b"\n")?;
        w.write_all(&r.seq)?;
        w.write_all(b"\n+\n")?;
        // Reuse a small chunked fill to avoid allocating a full quality row.
        const CHUNK: [u8; 64] = [b'I'; 64];
        let mut remaining = r.seq.len();
        while remaining > 0 {
            let n = remaining.min(CHUNK.len());
            w.write_all(&CHUNK[..n])?;
            remaining -= n;
        }
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Write a [`ReadSet`] as FASTA with 80-column wrapping.
pub fn write_fasta<W: Write>(mut w: W, reads: &ReadSet) -> io::Result<()> {
    for r in reads {
        w.write_all(b">")?;
        w.write_all(r.name.as_bytes())?;
        w.write_all(b"\n")?;
        for chunk in r.seq.chunks(80) {
            w.write_all(chunk)?;
            w.write_all(b"\n")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "@r0 extra words\nACGT\n+\nIIII\n@r1\nTTGCA\n+anything\nIIIII\n";

    #[test]
    fn parses_two_records() {
        let set = read_fastq(Cursor::new(SAMPLE), 0).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.reads()[0].name, "r0");
        assert_eq!(set.reads()[0].seq, b"ACGT");
        assert_eq!(set.reads()[1].id, 1);
        assert_eq!(set.reads()[1].seq, b"TTGCA");
    }

    #[test]
    fn id_offset_respected() {
        let set = read_fastq(Cursor::new(SAMPLE), 100).unwrap();
        assert_eq!(set.reads()[0].id, 100);
        assert_eq!(set.reads()[1].id, 101);
    }

    #[test]
    fn rejects_missing_at() {
        let err = read_fastq(Cursor::new("r0\nACGT\n+\nIIII\n"), 0).unwrap_err();
        assert!(matches!(err, ParseError::Malformed { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_bad_separator() {
        let err = read_fastq(Cursor::new("@r0\nACGT\nIIII\n"), 0).unwrap_err();
        assert!(matches!(err, ParseError::Malformed { .. }));
    }

    #[test]
    fn rejects_length_mismatch() {
        let err = read_fastq(Cursor::new("@r0\nACGT\n+\nII\n"), 0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("quality length"), "{msg}");
    }

    #[test]
    fn rejects_truncated_record() {
        let err = read_fastq(Cursor::new("@r0\nACGT\n"), 0).unwrap_err();
        assert!(matches!(err, ParseError::Malformed { .. }));
    }

    #[test]
    fn tolerates_blank_lines_and_crlf() {
        let s = "\n@r0\r\nACGT\r\n+\r\nIIII\r\n\n";
        let set = read_fastq(Cursor::new(s), 0).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.reads()[0].seq, b"ACGT");
    }

    #[test]
    fn fastq_round_trip() {
        let set = read_fastq(Cursor::new(SAMPLE), 0).unwrap();
        let mut out = Vec::new();
        write_fastq(&mut out, &set).unwrap();
        let back = read_fastq(Cursor::new(out), 0).unwrap();
        assert_eq!(back.len(), set.len());
        for (a, b) in back.iter().zip(set.iter()) {
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.name, b.name);
        }
    }

    #[test]
    fn fasta_round_trip_with_wrapping() {
        let mut set = ReadSet::new();
        set.push(Read::new(0, "long", vec![b'A'; 205]));
        set.push(Read::new(1, "short", b"ACGT".to_vec()));
        let mut out = Vec::new();
        write_fasta(&mut out, &set).unwrap();
        let back = read_fasta(Cursor::new(out), 0).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.reads()[0].seq.len(), 205);
        assert_eq!(back.reads()[1].seq, b"ACGT");
    }

    #[test]
    fn fasta_rejects_headerless_sequence() {
        assert!(read_fasta(Cursor::new("ACGT\n"), 0).is_err());
    }

    #[test]
    fn quality_line_plus_prefix_allowed_content() {
        // '+' line may repeat the name.
        let s = "@r0\nACGT\n+r0\nIIII\n";
        let set = read_fastq(Cursor::new(s), 0).unwrap();
        assert_eq!(set.len(), 1);
    }
}
