//! Stage-boundary checkpoint files.
//!
//! A hardened run (`--checkpoint-dir`) serializes each rank's completed
//! stage output so a later run — typically one restarted after a rank
//! exhausted its exchange retries — can resume from the last completed
//! stage bit-identically instead of recomputing it. The store is
//! deliberately dumb: one file per (stage, rank), a fixed header, a CRC32
//! over the payload, atomic tmp-then-rename writes. The payload itself is
//! produced by the caller through the existing [`dibella_comm::Wire`]
//! codec (see `dibella_core::checkpoint` for the stage codecs), so the
//! bytes on disk are the same fixed-layout records the network moves.
//!
//! File layout (all little-endian):
//!
//! ```text
//! offset  size  field
//!      0     8  magic        0xD1BE11A5_C4EC_0001
//!      8     4  version      bumped on any layout change
//!     12     4  world        ranks in the writing run
//!     16     4  rank         writing rank
//!     20     8  fingerprint  caller-supplied run/config fingerprint
//!     28     8  payload_len
//!     36     4  crc32        over the payload bytes
//!     40     …  payload
//! ```
//!
//! A reader rejects (as a typed [`CheckpointError`], never a panic) any
//! file whose magic, version, world size, rank, fingerprint, length or
//! CRC disagrees — a stale or foreign checkpoint must degrade to
//! recomputation, not poison a run.

use dibella_comm::frame::crc32;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// First eight bytes of every checkpoint file.
pub const CHECKPOINT_MAGIC: u64 = 0xD1BE_11A5_C4EC_0001;

/// Bump on any change to the header or any stage payload codec.
pub const CHECKPOINT_VERSION: u32 = 1;

const HEADER_BYTES: usize = 40;

/// Why a checkpoint file was rejected.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// File shorter than the fixed header.
    Truncated {
        /// Bytes actually present.
        got: usize,
    },
    /// Magic bytes did not match — not a checkpoint file.
    BadMagic,
    /// Written by a different checkpoint-format version.
    BadVersion {
        /// Version found in the file.
        got: u32,
    },
    /// Written by a different world size, rank, or run configuration.
    Mismatch {
        /// Human-readable description of the disagreeing field.
        what: &'static str,
    },
    /// Payload length or CRC32 disagrees with the header — the file was
    /// truncated or corrupted after writing.
    BadCrc,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Truncated { got } => {
                write!(f, "checkpoint truncated: {got} bytes < {HEADER_BYTES}-byte header")
            }
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::BadVersion { got } => {
                write!(f, "checkpoint version {got} (expected {CHECKPOINT_VERSION})")
            }
            CheckpointError::Mismatch { what } => {
                write!(f, "checkpoint does not match this run ({what} differs)")
            }
            CheckpointError::BadCrc => write!(f, "checkpoint payload corrupt (length/CRC mismatch)"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Handle to one run's checkpoint directory, scoped to a world size and a
/// caller-supplied configuration fingerprint (fold the inputs that must
/// match for a stage payload to be reusable — k, seed mode, corpus size —
/// into it; see `dibella_core::checkpoint::run_fingerprint`).
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    world: u32,
    fingerprint: u64,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory.
    pub fn new(
        dir: impl Into<PathBuf>,
        world: usize,
        fingerprint: u64,
    ) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir, world: world as u32, fingerprint })
    }

    /// The file a given stage/rank pair saves to.
    pub fn path(&self, stage: &str, rank: usize) -> PathBuf {
        self.dir.join(format!("dibella-{stage}.r{rank}of{}.ckpt", self.world))
    }

    /// Atomically write `payload` as the checkpoint of `stage` on `rank`:
    /// the full file is assembled in a `.tmp` sibling and renamed into
    /// place, so readers never observe a half-written checkpoint.
    pub fn save(&self, stage: &str, rank: usize, payload: &[u8]) -> Result<(), CheckpointError> {
        let path = self.path(stage, rank);
        let tmp = path.with_extension("ckpt.tmp");
        let mut buf = Vec::with_capacity(HEADER_BYTES + payload.len());
        buf.extend_from_slice(&CHECKPOINT_MAGIC.to_le_bytes());
        buf.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        buf.extend_from_slice(&self.world.to_le_bytes());
        buf.extend_from_slice(&(rank as u32).to_le_bytes());
        buf.extend_from_slice(&self.fingerprint.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(&crc32(payload).to_le_bytes());
        buf.extend_from_slice(payload);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Load the checkpoint of `stage` on `rank`. `Ok(None)` means no
    /// checkpoint exists (a fresh run); every other defect is a typed
    /// error the caller is expected to log and recover from by
    /// recomputing the stage.
    pub fn load(&self, stage: &str, rank: usize) -> Result<Option<Vec<u8>>, CheckpointError> {
        let bytes = match fs::read(self.path(stage, rank)) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        if bytes.len() < HEADER_BYTES {
            return Err(CheckpointError::Truncated { got: bytes.len() });
        }
        let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        if u64_at(0) != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = u32_at(8);
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::BadVersion { got: version });
        }
        if u32_at(12) != self.world {
            return Err(CheckpointError::Mismatch { what: "world size" });
        }
        if u32_at(16) != rank as u32 {
            return Err(CheckpointError::Mismatch { what: "rank" });
        }
        if u64_at(20) != self.fingerprint {
            return Err(CheckpointError::Mismatch { what: "run fingerprint" });
        }
        let payload = &bytes[HEADER_BYTES..];
        if u64_at(28) != payload.len() as u64 {
            return Err(CheckpointError::BadCrc);
        }
        if u32_at(36) != crc32(payload) {
            return Err(CheckpointError::BadCrc);
        }
        Ok(Some(payload.to_vec()))
    }

    /// Remove a stage's checkpoint if present (e.g. when a later run
    /// decides it is stale). Missing files are not an error.
    pub fn remove(&self, stage: &str, rank: usize) -> Result<(), CheckpointError> {
        match fs::remove_file(self.path(stage, rank)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

/// Convenience for tests and tools: is `path` a plausible checkpoint
/// file (right magic and version), without validating payload integrity?
pub fn is_checkpoint_file(path: &Path) -> bool {
    let Ok(bytes) = fs::read(path) else { return false };
    bytes.len() >= 12
        && u64::from_le_bytes(bytes[0..8].try_into().unwrap()) == CHECKPOINT_MAGIC
        && u32::from_le_bytes(bytes[8..12].try_into().unwrap()) == CHECKPOINT_VERSION
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dibella-ckpt-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trip() {
        let dir = tmpdir("roundtrip");
        let store = CheckpointStore::new(&dir, 4, 0xFEED).unwrap();
        let payload: Vec<u8> = (0..=255).cycle().take(10_000).collect();
        store.save("table", 2, &payload).unwrap();
        assert_eq!(store.load("table", 2).unwrap(), Some(payload));
        // Other ranks and stages are absent, not errors.
        assert_eq!(store.load("table", 3).unwrap(), None);
        assert_eq!(store.load("tasks", 2).unwrap(), None);
        assert!(is_checkpoint_file(&store.path("table", 2)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatches_are_typed_errors() {
        let dir = tmpdir("mismatch");
        let store = CheckpointStore::new(&dir, 4, 7).unwrap();
        store.save("table", 0, b"payload").unwrap();

        // Different fingerprint (config changed between runs).
        let other = CheckpointStore::new(&dir, 4, 8).unwrap();
        assert!(matches!(
            other.load("table", 0),
            Err(CheckpointError::Mismatch { what: "run fingerprint" })
        ));

        // Different world size: the filename encodes the world, so the
        // file is simply not found.
        let other = CheckpointStore::new(&dir, 2, 7).unwrap();
        assert_eq!(other.load("table", 0).unwrap(), None);

        // A rank mismatch inside a correctly-named file.
        fs::rename(store.path("table", 0), store.path("table", 1)).unwrap();
        assert!(matches!(
            store.load("table", 1),
            Err(CheckpointError::Mismatch { what: "rank" })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_detected() {
        let dir = tmpdir("corrupt");
        let store = CheckpointStore::new(&dir, 1, 1).unwrap();
        store.save("tasks", 0, &vec![0xAB; 4096]).unwrap();
        let path = store.path("tasks", 0);
        let clean = fs::read(&path).unwrap();

        // Flip one payload bit.
        let mut bad = clean.clone();
        *bad.last_mut().unwrap() ^= 0x10;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(store.load("tasks", 0), Err(CheckpointError::BadCrc)));

        // Truncate the payload.
        fs::write(&path, &clean[..clean.len() - 100]).unwrap();
        assert!(matches!(store.load("tasks", 0), Err(CheckpointError::BadCrc)));

        // Truncate into the header.
        fs::write(&path, &clean[..10]).unwrap();
        assert!(matches!(store.load("tasks", 0), Err(CheckpointError::Truncated { .. })));

        // Garbage long enough to reach the magic check.
        fs::write(&path, b"not a checkpoint file at all, sorry - just ascii filler!").unwrap();
        assert!(matches!(store.load("tasks", 0), Err(CheckpointError::BadMagic)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_gate() {
        let dir = tmpdir("version");
        let store = CheckpointStore::new(&dir, 1, 1).unwrap();
        store.save("table", 0, b"x").unwrap();
        let path = store.path("table", 0);
        let mut bytes = fs::read(&path).unwrap();
        bytes[8] = bytes[8].wrapping_add(1); // bump the version field
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(store.load("table", 0), Err(CheckpointError::BadVersion { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_is_idempotent() {
        let dir = tmpdir("remove");
        let store = CheckpointStore::new(&dir, 1, 1).unwrap();
        store.save("table", 0, b"x").unwrap();
        store.remove("table", 0).unwrap();
        store.remove("table", 0).unwrap();
        assert_eq!(store.load("table", 0).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }
}
