//! The distributed read store.
//!
//! Each rank holds the reads it owns (a contiguous ID block from
//! [`crate::partition::ReadPartition`]) plus a cache of *replicated* remote
//! reads fetched during the alignment stage (paper §4 step 4:
//! "redistribute and replicate reads (the original strings) to match
//! read-pair distribution").

use crate::partition::ReadPartition;
use crate::read::{Read, ReadId};
use std::collections::HashMap;

/// Per-rank view of the distributed read set.
#[derive(Clone, Debug)]
pub struct ReadStore {
    rank: usize,
    partition: ReadPartition,
    /// Reads owned by this rank, indexed by `id - first_local_id`.
    local: Vec<Read>,
    /// Remote read bytes replicated here for alignment, packed into one
    /// per-rank arena (one allocation pool instead of one `Vec` per
    /// fetched read — the alignment stage installs thousands of remote
    /// reads back-to-back).
    arena: Vec<u8>,
    /// Remote read index: id → `(offset, len)` into [`Self::arena`].
    replicated: HashMap<ReadId, (usize, usize)>,
}

impl ReadStore {
    /// Build the store for `rank` given the global partition and this
    /// rank's owned reads (must be exactly the partition's ID range, in
    /// order).
    ///
    /// # Panics
    /// Panics if `local` disagrees with the partition's range for `rank`.
    pub fn new(rank: usize, partition: ReadPartition, local: Vec<Read>) -> Self {
        let range = partition.range_of(rank);
        assert_eq!(
            local.len(),
            range.len(),
            "rank {rank}: got {} reads for range {range:?}",
            local.len()
        );
        for (i, r) in local.iter().enumerate() {
            assert_eq!(
                r.id,
                range.start + i as ReadId,
                "rank {rank}: read at slot {i} has id {} (expected {})",
                r.id,
                range.start + i as ReadId
            );
        }
        Self {
            rank,
            partition,
            local,
            arena: Vec::new(),
            replicated: HashMap::new(),
        }
    }

    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The global read partition.
    pub fn partition(&self) -> &ReadPartition {
        &self.partition
    }

    /// Number of locally owned reads.
    pub fn n_local(&self) -> usize {
        self.local.len()
    }

    /// Number of replicated (fetched) remote reads.
    pub fn n_replicated(&self) -> usize {
        self.replicated.len()
    }

    /// Owned reads in ID order.
    pub fn local_reads(&self) -> &[Read] {
        &self.local
    }

    /// The rank owning a read ID.
    pub fn owner_of(&self, id: ReadId) -> usize {
        self.partition.owner_of(id)
    }

    /// `true` if this rank owns `id`.
    pub fn is_local(&self, id: ReadId) -> bool {
        self.partition.range_of(self.rank).contains(&id)
    }

    /// Sequence of a locally owned read.
    pub fn local_seq(&self, id: ReadId) -> Option<&[u8]> {
        if !self.is_local(id) {
            return None;
        }
        let first = self.partition.range_of(self.rank).start;
        Some(&self.local[(id - first) as usize].seq)
    }

    /// Sequence of any read available on this rank (owned or replicated).
    pub fn seq(&self, id: ReadId) -> Option<&[u8]> {
        self.local_seq(id)
            .or_else(|| self.replicated.get(&id).map(|&(off, len)| &self.arena[off..off + len]))
    }

    /// Record a replicated remote read (from the alignment-stage read
    /// exchange): the bytes are appended to the per-rank arena, not boxed
    /// into their own allocation. Replicating a read this rank already
    /// owns — or one already replicated — is a no-op.
    pub fn insert_replicated(&mut self, id: ReadId, seq: &[u8]) {
        if self.is_local(id) || self.replicated.contains_key(&id) {
            return;
        }
        let off = self.arena.len();
        self.arena.extend_from_slice(seq);
        self.replicated.insert(id, (off, seq.len()));
    }

    /// Pre-size the replication arena for `additional` incoming sequence
    /// bytes (an upper bound is fine), so a burst of
    /// [`Self::insert_replicated`] calls never reallocates mid-install.
    pub fn reserve_replicated(&mut self, additional: usize) {
        self.arena.reserve(additional);
    }

    /// Drop all replicated reads (frees alignment-stage memory).
    pub fn clear_replicated(&mut self) {
        self.arena.clear();
        self.arena.shrink_to_fit();
        self.replicated.clear();
        self.replicated.shrink_to_fit();
    }

    /// Bytes held locally (owned + replicated) — the per-rank memory
    /// footprint the paper's streaming design constrains.
    pub fn resident_bytes(&self) -> u64 {
        let owned: u64 = self.local.iter().map(|r| r.len() as u64).sum();
        owned + self.arena.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_reads;
    use crate::read::ReadSet;

    fn sample_set(n: usize) -> ReadSet {
        (0..n as u32)
            .map(|i| {
                let len = 10 + (i as usize * 13) % 30;
                Read::new(i, format!("r{i}"), vec![b"ACGT"[i as usize % 4]; len])
            })
            .collect()
    }

    fn build_stores(n: usize, p: usize) -> Vec<ReadStore> {
        let set = sample_set(n);
        let (part, chunks) = partition_reads(&set, p);
        chunks
            .into_iter()
            .enumerate()
            .map(|(rank, chunk)| ReadStore::new(rank, part.clone(), chunk.into_reads()))
            .collect()
    }

    #[test]
    fn local_lookup() {
        let stores = build_stores(20, 4);
        for store in &stores {
            for read in store.local_reads() {
                assert!(store.is_local(read.id));
                assert_eq!(store.local_seq(read.id).unwrap(), read.seq.as_slice());
                assert_eq!(store.seq(read.id).unwrap(), read.seq.as_slice());
            }
        }
    }

    #[test]
    fn every_read_has_exactly_one_owner() {
        let stores = build_stores(33, 5);
        for id in 0..33u32 {
            let owners: Vec<usize> = stores
                .iter()
                .filter(|s| s.is_local(id))
                .map(|s| s.rank())
                .collect();
            assert_eq!(owners.len(), 1, "id {id}");
            assert_eq!(owners[0], stores[0].owner_of(id));
        }
    }

    #[test]
    fn replication_behaviour() {
        let mut stores = build_stores(10, 2);
        let (left, right) = stores.split_at_mut(1);
        let s0 = &mut left[0];
        let s1 = &mut right[0];
        // Find a read owned by rank 1 and replicate it to rank 0.
        let remote_id = s1.local_reads()[0].id;
        let seq = s1.local_seq(remote_id).unwrap().to_vec();
        assert!(s0.seq(remote_id).is_none());
        s0.insert_replicated(remote_id, &seq);
        assert_eq!(s0.seq(remote_id).unwrap(), seq.as_slice());
        assert_eq!(s0.n_replicated(), 1);
        // Re-replicating an already-installed read is ignored.
        s0.insert_replicated(remote_id, b"YYY");
        assert_eq!(s0.seq(remote_id).unwrap(), seq.as_slice());
        // Replicating an owned read is ignored.
        let own_id = s0.local_reads()[0].id;
        s0.insert_replicated(own_id, b"XXX");
        assert_ne!(s0.seq(own_id).unwrap(), b"XXX");
        // Clearing frees the cache but keeps owned reads.
        s0.clear_replicated();
        assert_eq!(s0.n_replicated(), 0);
        assert!(s0.seq(remote_id).is_none());
        assert!(s0.seq(own_id).is_some());
    }

    #[test]
    fn resident_bytes_tracks_replication() {
        let mut stores = build_stores(6, 3);
        let base = stores[0].resident_bytes();
        stores[0].insert_replicated(5, &[b'A'; 100]);
        assert_eq!(stores[0].resident_bytes(), base + 100);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn mismatched_ids_panic() {
        let set = sample_set(4);
        let (part, chunks) = partition_reads(&set, 2);
        let mut wrong = chunks[1].clone().into_reads();
        wrong[0].id = 999;
        let _ = ReadStore::new(1, part, wrong);
    }
}
