//! HyperLogLog cardinality estimation.
//!
//! Paper §6: HipMer resorts to "the more expensive HyperLogLog algorithm"
//! to size the Bloom filter when the Eq.-2 estimate is unreliable
//! (extremely large, repetitive genomes). diBELLA's authors did not need it
//! for their data sets but flag it for tens-of-trillions-of-base-pair
//! inputs; we implement it as the optional sizing path.
//!
//! Standard HLL (Flajolet et al. 2007): `2^b` registers, each holding the
//! maximum leading-zero rank observed in its substream; harmonic-mean
//! estimator with small-range (linear counting) correction. Registers
//! merge by `max`, which is exactly an all-reduce — ideal for the
//! distributed setting.

/// HyperLogLog sketch over pre-hashed 64-bit keys.
#[derive(Clone, Debug)]
pub struct HyperLogLog {
    registers: Vec<u8>,
    /// log2 of the register count.
    precision: u8,
}

impl HyperLogLog {
    /// Create a sketch with `2^precision` registers. `precision` must be in
    /// `4..=18`; 12 (4096 registers, ~1.6 % error) is a good default.
    ///
    /// # Panics
    /// Panics if precision is out of range.
    pub fn new(precision: u8) -> Self {
        assert!((4..=18).contains(&precision), "precision {precision} out of 4..=18");
        Self {
            registers: vec![0u8; 1usize << precision],
            precision,
        }
    }

    /// Number of registers.
    pub fn n_registers(&self) -> usize {
        self.registers.len()
    }

    /// Insert a (pre-hashed) key.
    #[inline]
    pub fn insert(&mut self, hash: u64) {
        let idx = (hash >> (64 - self.precision)) as usize;
        // Rank = leading zeros of the remaining bits + 1, capped so it fits
        // the sub-hash width.
        let rest = hash << self.precision;
        let rank = (rest.leading_zeros() as u8).min(64 - self.precision) + 1;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Merge another sketch of identical precision (register-wise max) —
    /// the distributed all-reduce combiner.
    ///
    /// # Panics
    /// Panics on precision mismatch.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.precision, other.precision, "precision mismatch");
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(*b);
        }
    }

    /// Raw register bytes (for wire transfer); rebuild with
    /// [`Self::from_registers`].
    pub fn registers(&self) -> &[u8] {
        &self.registers
    }

    /// Reconstruct from raw registers.
    ///
    /// # Panics
    /// Panics if the length is not a power of two in the valid range.
    pub fn from_registers(registers: Vec<u8>) -> Self {
        let n = registers.len();
        assert!(n.is_power_of_two(), "register count must be a power of two");
        let precision = n.trailing_zeros() as u8;
        assert!((4..=18).contains(&precision));
        Self { registers, precision }
    }

    /// Estimate the number of distinct keys inserted.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m {
            // Small-range correction: linear counting on empty registers.
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// The theoretical relative standard error, `1.04 / sqrt(m)`.
    pub fn standard_error(&self) -> f64 {
        1.04 / (self.registers.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn estimates_within_error_bound() {
        for &n in &[1_000u64, 50_000, 400_000] {
            let mut hll = HyperLogLog::new(12);
            for x in 0..n {
                hll.insert(mix(x));
            }
            let est = hll.estimate();
            let rel = (est - n as f64).abs() / n as f64;
            // Allow 4 standard errors.
            assert!(
                rel < 4.0 * hll.standard_error(),
                "n={n} est={est} rel={rel}"
            );
        }
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut hll = HyperLogLog::new(12);
        for x in 0..10_000u64 {
            hll.insert(mix(x % 100));
        }
        let est = hll.estimate();
        assert!((est - 100.0).abs() < 25.0, "est={est}");
    }

    #[test]
    fn small_range_linear_counting() {
        let mut hll = HyperLogLog::new(10);
        for x in 0..10u64 {
            hll.insert(mix(x));
        }
        let est = hll.estimate();
        assert!((est - 10.0).abs() <= 2.0, "est={est}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new(12);
        let mut b = HyperLogLog::new(12);
        let mut union = HyperLogLog::new(12);
        for x in 0..30_000u64 {
            a.insert(mix(x));
            union.insert(mix(x));
        }
        for x in 20_000..60_000u64 {
            b.insert(mix(x));
            union.insert(mix(x));
        }
        a.merge(&b);
        assert_eq!(a.registers(), union.registers());
    }

    #[test]
    fn register_round_trip() {
        let mut hll = HyperLogLog::new(8);
        for x in 0..500u64 {
            hll.insert(mix(x));
        }
        let rebuilt = HyperLogLog::from_registers(hll.registers().to_vec());
        assert_eq!(rebuilt.estimate(), hll.estimate());
    }

    #[test]
    #[should_panic(expected = "precision mismatch")]
    fn merge_rejects_mismatch() {
        let mut a = HyperLogLog::new(8);
        let b = HyperLogLog::new(9);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "out of 4..=18")]
    fn precision_bounds() {
        let _ = HyperLogLog::new(3);
    }
}
