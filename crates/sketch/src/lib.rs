//! # dibella-sketch
//!
//! Probabilistic data structures for the k-mer analysis stages of diBELLA:
//! the [`BloomFilter`] that eliminates singleton k-mers before hash-table
//! construction (paper §6) and the [`HyperLogLog`] cardinality estimator
//! HipMer-style pipelines use to size the filter for extreme inputs.
//!
//! Both operate on pre-hashed 64-bit keys: routing a k-mer to its owner
//! rank and probing these sketches share one strong hash
//! (`dibella_kmer::hash`).

#![warn(missing_docs)]

pub mod bloom;
pub mod hll;

pub use bloom::BloomFilter;
pub use hll::HyperLogLog;
