//! Bloom filter used to drop singleton k-mers (paper §6).
//!
//! "A Bloom filter is an array of bits that uses multiple hash functions on
//! each element to set bits in the array ... it may allow false positives,
//! but does not contain false negatives." diBELLA builds a *distributed*
//! Bloom filter — each rank holds the partition for the k-mers it owns
//! (routing by k-mer hash happens before insertion), so the local structure
//! here plus owner routing in `dibella-kcount` reproduces the design.
//!
//! Up to 98 % of long-read k-mers are singletons, so filtering them before
//! hash-table construction is the pipeline's key memory optimization.
//!
//! Bits are dispersed with the Kirsch–Mitzenmacher double-hashing family
//! over a single 64-bit input hash: `h_i(x) = h1(x) + i·h2(x)`.

/// A fixed-size Bloom filter over pre-hashed 64-bit keys.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    /// Bit-index mask (`capacity_bits − 1`; capacity is a power of two).
    mask: u64,
    n_hashes: u32,
    n_inserted: u64,
}

impl BloomFilter {
    /// Create a filter with at least `min_bits` capacity (rounded up to a
    /// power of two) and `n_hashes` probes per key.
    ///
    /// # Panics
    /// Panics if `n_hashes == 0`.
    pub fn with_bits(min_bits: usize, n_hashes: u32) -> Self {
        assert!(n_hashes > 0, "need at least one hash function");
        let bits = min_bits.next_power_of_two().max(64);
        Self {
            bits: vec![0u64; bits / 64],
            mask: bits as u64 - 1,
            n_hashes,
            n_inserted: 0,
        }
    }

    /// Size a filter for `expected_items` keys at the target false-positive
    /// rate, using the standard optima `m = −n·ln p / (ln 2)²` and
    /// `h = (m/n)·ln 2`.
    pub fn for_items(expected_items: u64, fp_rate: f64) -> Self {
        assert!(expected_items > 0);
        assert!((0.0..1.0).contains(&fp_rate) && fp_rate > 0.0);
        let ln2 = std::f64::consts::LN_2;
        let m = -(expected_items as f64) * fp_rate.ln() / (ln2 * ln2);
        let h = ((m / expected_items as f64) * ln2).round().clamp(1.0, 16.0);
        Self::with_bits(m.ceil() as usize, h as u32)
    }

    /// Capacity in bits.
    pub fn capacity_bits(&self) -> usize {
        self.bits.len() * 64
    }

    /// Number of probe hashes per key.
    pub fn n_hashes(&self) -> u32 {
        self.n_hashes
    }

    /// Number of `insert` calls so far.
    pub fn n_inserted(&self) -> u64 {
        self.n_inserted
    }

    /// Heap footprint in bytes (the quantity the paper's streaming design
    /// bounds).
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    #[inline]
    fn bit_index(&self, hash: u64, i: u32) -> (usize, u64) {
        let idx = dibella_hash_double(hash, i as u64) & self.mask;
        ((idx / 64) as usize, 1u64 << (idx % 64))
    }

    /// Insert a key; returns `true` if the key was (apparently) already
    /// present — i.e. every probed bit was set before this insert.
    ///
    /// That return value drives the paper's promotion rule: a k-mer whose
    /// second sighting hits the Bloom filter is inserted into the hash
    /// table (§6: "If a k-mer was already present, it is also inserted into
    /// the local hash table partition").
    #[inline]
    pub fn insert(&mut self, hash: u64) -> bool {
        let mut already = true;
        for i in 0..self.n_hashes {
            let (word, bit) = self.bit_index(hash, i);
            if self.bits[word] & bit == 0 {
                already = false;
                self.bits[word] |= bit;
            }
        }
        self.n_inserted += 1;
        already
    }

    /// Query without modifying. Guaranteed `true` for every previously
    /// inserted key (no false negatives); may be `true` for absent keys
    /// with probability ≈ the design false-positive rate.
    #[inline]
    pub fn contains(&self, hash: u64) -> bool {
        (0..self.n_hashes).all(|i| {
            let (word, bit) = self.bit_index(hash, i);
            self.bits[word] & bit != 0
        })
    }

    /// Fraction of set bits — diagnostic for sizing (≈ ½ at design load).
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        set as f64 / self.capacity_bits() as f64
    }

    /// Release the bit array (the paper frees the Bloom filter once the
    /// hash table is initialized).
    pub fn clear_and_shrink(&mut self) {
        self.bits = Vec::new();
        self.mask = 63;
        self.n_inserted = 0;
    }
}

/// Double-hashing probe family (re-exported logic; kept local so the crate
/// stands alone). Matches `dibella_kmer::hash::double_hash`.
#[inline]
fn dibella_hash_double(hash: u64, i: u64) -> u64 {
    let mut x = hash ^ 0xA076_1D64_78BD_642F;
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let h2 = (x ^ (x >> 31)) | 1;
    hash.wrapping_add(i.wrapping_mul(h2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(x: u64) -> u64 {
        // splitmix64 for test key generation
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::for_items(10_000, 0.01);
        for x in 0..10_000u64 {
            bf.insert(mix(x));
        }
        for x in 0..10_000u64 {
            assert!(bf.contains(mix(x)), "lost key {x}");
        }
    }

    #[test]
    fn false_positive_rate_near_design() {
        let mut bf = BloomFilter::for_items(20_000, 0.01);
        for x in 0..20_000u64 {
            bf.insert(mix(x));
        }
        let fps = (20_000..120_000u64).filter(|&x| bf.contains(mix(x))).count();
        let rate = fps as f64 / 100_000.0;
        // Power-of-two rounding can only make the filter bigger (better).
        assert!(rate < 0.02, "fp rate {rate}");
    }

    #[test]
    fn insert_reports_second_sighting() {
        let mut bf = BloomFilter::for_items(1000, 0.001);
        assert!(!bf.insert(mix(42)));
        assert!(bf.insert(mix(42)));
        assert_eq!(bf.n_inserted(), 2);
    }

    #[test]
    fn sizing_formulas() {
        let bf = BloomFilter::for_items(1_000_000, 0.01);
        // Optimal m ≈ 9.59 Mbit → next power of two = 16 Mbit.
        assert_eq!(bf.capacity_bits(), 16 * 1024 * 1024);
        assert!((6..=8).contains(&bf.n_hashes()));
        assert_eq!(bf.memory_bytes(), bf.capacity_bits() / 8);
    }

    #[test]
    fn fill_ratio_grows() {
        let mut bf = BloomFilter::with_bits(1 << 12, 4);
        assert_eq!(bf.fill_ratio(), 0.0);
        for x in 0..500u64 {
            bf.insert(mix(x));
        }
        let r = bf.fill_ratio();
        assert!(r > 0.1 && r < 0.6, "fill {r}");
    }

    #[test]
    fn clear_releases_memory() {
        let mut bf = BloomFilter::with_bits(1 << 16, 4);
        bf.insert(1);
        bf.clear_and_shrink();
        assert_eq!(bf.memory_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one hash")]
    fn zero_hashes_rejected() {
        let _ = BloomFilter::with_bits(64, 0);
    }
}
