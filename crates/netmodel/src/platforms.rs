//! The four evaluated platforms (paper Table 1) and their model parameters.
//!
//! The first block of constants in each [`Platform`] is transcribed from
//! Table 1; the second block are calibration constants for the cost model
//! (per-core speed relative to a Cori Haswell core, effective cache per
//! core, collective-latency coefficients). Calibration follows the paper's
//! qualitative facts: Cori has the fastest cores and node (32 × Haswell),
//! Edison's Aries NIC measured the highest per-node bandwidth at 8 KB
//! messages, Titan's CPU-only nodes are the slowest with an older Gemini
//! torus, and "the AWS node has similar performance to a Titan CPU node"
//! (§5) while its commodity Ethernet has order-of-magnitude higher latency
//! and lower effective injection bandwidth.

use serde::{Deserialize, Serialize};

/// Identifier for one of the paper's four platforms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformId {
    /// Cori Phase I, Cray XC40, Intel Haswell, Aries dragonfly.
    CoriXC40,
    /// Edison, Cray XC30, Intel Ivy Bridge, Aries dragonfly.
    EdisonXC30,
    /// Titan, Cray XK7, AMD Opteron (CPU side only), Gemini 3-D torus.
    TitanXK7,
    /// AWS c3.8xlarge cluster, 10 GbE placement group.
    Aws,
}

impl PlatformId {
    /// All four platforms in the paper's presentation order.
    pub const ALL: [PlatformId; 4] = [
        PlatformId::CoriXC40,
        PlatformId::EdisonXC30,
        PlatformId::TitanXK7,
        PlatformId::Aws,
    ];

    /// Canonical lower-case CLI name, the inverse of [`Self::parse`]:
    /// `cori`, `edison`, `titan`, `aws`.
    pub fn cli_name(self) -> &'static str {
        match self {
            PlatformId::CoriXC40 => "cori",
            PlatformId::EdisonXC30 => "edison",
            PlatformId::TitanXK7 => "titan",
            PlatformId::Aws => "aws",
        }
    }

    /// Parse a user-facing platform name (as accepted by the CLI's
    /// `--transport sim:<platform>` syntax), case-insensitively:
    /// `cori`/`xc40`, `edison`/`xc30`, `titan`/`xk7`, `aws`.
    pub fn parse(name: &str) -> Option<PlatformId> {
        match name.to_ascii_lowercase().as_str() {
            "cori" | "xc40" => Some(PlatformId::CoriXC40),
            "edison" | "xc30" => Some(PlatformId::EdisonXC30),
            "titan" | "xk7" => Some(PlatformId::TitanXK7),
            "aws" => Some(PlatformId::Aws),
            _ => None,
        }
    }
}

/// Architectural description + calibrated model constants for a platform.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Platform {
    /// Which machine this is.
    pub id: PlatformId,
    /// Display name as used in the figures.
    pub name: &'static str,
    // ----- Table 1 facts -------------------------------------------------
    /// Cores per node used for MPI ranks (paper pins 1 rank per core;
    /// 16–32 across machines).
    pub cores_per_node: usize,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// 128-byte Get latency in microseconds (Table 1 "Intranode LAT").
    pub latency_us: f64,
    /// Measured per-node bandwidth with 8 KB messages, MB/s.
    pub bw_node_mb_s: f64,
    /// Node memory in GB.
    pub memory_gb: f64,
    /// Interconnect name.
    pub network: &'static str,
    // ----- Calibration ---------------------------------------------------
    /// Per-core compute throughput relative to a Cori Haswell core (1.0).
    pub core_perf: f64,
    /// Effective cache per core in bytes (L2 + L3 share); drives the
    /// superlinear strong-scaling term.
    pub cache_per_core: f64,
    /// Effective injection bandwidth per node for large irregular
    /// exchanges, MB/s. Table 1's `bw_node_mb_s` is an 8 KB-message
    /// microbenchmark dominated by per-message costs; sustained Aries
    /// injection is several GB/s while virtualized 10 GbE sustains well
    /// under 1 GB/s — the relation behind the paper's AWS exchange
    /// collapse (Figs. 4, 12).
    pub inj_bw_mb_s: f64,
    /// On-node memory bandwidth per node, MB/s (for self/intra-node
    /// copies in an exchange).
    pub mem_bw_mb_s: f64,
    /// Constant latency per collective call, microseconds.
    pub coll_alpha_us: f64,
    /// Additional latency per participating rank per collective call,
    /// microseconds (process-count term of a flat alltoallv).
    pub coll_per_rank_us: f64,
    /// Extra cost of the job's *first* `MPI_Alltoallv`, expressed as a
    /// multiple of one average call of the charged stage (paper §6/§10:
    /// "the first call ... is almost twice as expensive ... as the
    /// second" → factor 1.0). Charged to the Bloom stage.
    pub first_alltoallv_factor: f64,
    /// Per-peer connection/buffer setup of the first irregular collective,
    /// microseconds per rank in the job ("internal data structure
    /// initialization, related to process coordination and communication
    /// buffers setup", §6). Also charged once, to the Bloom stage.
    pub setup_us_per_rank: f64,
}

impl Platform {
    /// Look up the model for a platform.
    pub fn get(id: PlatformId) -> &'static Platform {
        match id {
            PlatformId::CoriXC40 => &CORI,
            PlatformId::EdisonXC30 => &EDISON,
            PlatformId::TitanXK7 => &TITAN,
            PlatformId::Aws => &AWS,
        }
    }

    /// All four platform models.
    pub fn all() -> [&'static Platform; 4] {
        PlatformId::ALL.map(Self::get)
    }

    /// Node-level relative compute throughput (`cores × per-core perf`).
    pub fn node_perf(&self) -> f64 {
        self.cores_per_node as f64 * self.core_perf
    }
}

/// Cori Phase I (Cray XC40): 32 × 2.3 GHz Haswell, Aries dragonfly.
pub static CORI: Platform = Platform {
    id: PlatformId::CoriXC40,
    name: "Cori (XC40)",
    cores_per_node: 32,
    freq_ghz: 2.3,
    latency_us: 2.7,
    bw_node_mb_s: 113.0,
    memory_gb: 128.0,
    network: "Aries Dragonfly",
    core_perf: 1.0,
    cache_per_core: 2_500_000.0, // 256 KiB L2 + ~2.3 MiB L3 share
    inj_bw_mb_s: 8_000.0,
    mem_bw_mb_s: 110_000.0,
    coll_alpha_us: 18.0,
    coll_per_rank_us: 0.15,
    first_alltoallv_factor: 1.0,
    setup_us_per_rank: 8.0,
};

/// Edison (Cray XC30): 24 × 2.4 GHz Ivy Bridge, Aries dragonfly. Its NIC
/// measured the best per-node 8 KB-message bandwidth of the four (Table 1).
pub static EDISON: Platform = Platform {
    id: PlatformId::EdisonXC30,
    name: "Edison (XC30)",
    cores_per_node: 24,
    freq_ghz: 2.4,
    latency_us: 0.8,
    bw_node_mb_s: 436.2,
    memory_gb: 64.0,
    network: "Aries Dragonfly",
    core_perf: 0.82,
    cache_per_core: 2_300_000.0,
    inj_bw_mb_s: 9_500.0,
    mem_bw_mb_s: 90_000.0,
    coll_alpha_us: 10.0,
    coll_per_rank_us: 0.10,
    first_alltoallv_factor: 1.0,
    setup_us_per_rank: 6.0,
};

/// Titan (Cray XK7): 16 Opteron integer cores per node (GPUs unused, §5),
/// Gemini 3-D torus.
pub static TITAN: Platform = Platform {
    id: PlatformId::TitanXK7,
    name: "Titan (XK7)",
    cores_per_node: 16,
    freq_ghz: 2.2,
    latency_us: 1.1,
    bw_node_mb_s: 99.2,
    memory_gb: 32.0,
    network: "Gemini 3D Torus",
    core_perf: 0.45,
    cache_per_core: 1_300_000.0,
    inj_bw_mb_s: 3_200.0,
    mem_bw_mb_s: 50_000.0,
    coll_alpha_us: 14.0,
    coll_per_rank_us: 0.25,
    first_alltoallv_factor: 1.2,
    setup_us_per_rank: 10.0,
};

/// AWS c3.8xlarge cluster: 16 ranks per node in a placement group over
/// 10 GbE. Node compute "similar ... to a Titan CPU node" (§5); network
/// latency is dominated by the kernel/virtualized stack.
pub static AWS: Platform = Platform {
    id: PlatformId::Aws,
    name: "AWS",
    cores_per_node: 16,
    freq_ghz: 2.8,
    latency_us: 50.0,
    bw_node_mb_s: 1_000.0, // 10 GbE ≈ 1.25 GB/s raw; ~1.0 effective
    memory_gb: 60.0,
    network: "10 GbE",
    core_perf: 0.50,
    cache_per_core: 1_600_000.0,
    inj_bw_mb_s: 900.0,
    mem_bw_mb_s: 60_000.0,
    coll_alpha_us: 120.0,
    coll_per_rank_us: 3.0,
    first_alltoallv_factor: 1.5,
    setup_us_per_rank: 40.0,
};

/// Render the paper's Table 1 as aligned text rows.
pub fn table1() -> String {
    let mut out = String::new();
    out.push_str(
        "platform          cores/node  GHz   LAT(us)  BW/node(MB/s)  mem(GB)  network\n",
    );
    for p in Platform::all() {
        out.push_str(&format!(
            "{:<17} {:>10}  {:<4} {:>8} {:>14} {:>8}  {}\n",
            p.name, p.cores_per_node, p.freq_ghz, p.latency_us, p.bw_node_mb_s, p.memory_gb,
            p.network
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_facts_match_paper() {
        assert_eq!(CORI.cores_per_node, 32);
        assert_eq!(EDISON.cores_per_node, 24);
        assert_eq!(TITAN.cores_per_node, 16);
        assert_eq!(AWS.cores_per_node, 16);
        assert_eq!(CORI.latency_us, 2.7);
        assert_eq!(EDISON.latency_us, 0.8);
        assert_eq!(TITAN.latency_us, 1.1);
        assert_eq!(EDISON.bw_node_mb_s, 436.2);
        assert_eq!(TITAN.bw_node_mb_s, 99.2);
        assert_eq!(CORI.memory_gb, 128.0);
    }

    #[test]
    fn qualitative_rankings_hold() {
        // Per-core: Cori fastest. Node-level: Cori > Edison > AWS ≈ Titan.
        assert!(CORI.core_perf > EDISON.core_perf);
        assert!(EDISON.core_perf > AWS.core_perf);
        assert!(CORI.node_perf() > EDISON.node_perf());
        assert!(EDISON.node_perf() > TITAN.node_perf());
        let ratio = AWS.node_perf() / TITAN.node_perf();
        assert!((0.8..1.5).contains(&ratio), "AWS ≈ Titan violated: {ratio}");
        // Commodity network is the latency outlier.
        assert!(AWS.coll_alpha_us > 3.0 * CORI.coll_alpha_us);
        assert!(AWS.coll_per_rank_us > 5.0 * CORI.coll_per_rank_us);
    }

    #[test]
    fn lookup_round_trip() {
        for id in PlatformId::ALL {
            assert_eq!(Platform::get(id).id, id);
        }
        assert_eq!(Platform::all().len(), 4);
    }

    #[test]
    fn name_parsing() {
        assert_eq!(PlatformId::parse("cori"), Some(PlatformId::CoriXC40));
        assert_eq!(PlatformId::parse("CORI"), Some(PlatformId::CoriXC40));
        assert_eq!(PlatformId::parse("xc30"), Some(PlatformId::EdisonXC30));
        assert_eq!(PlatformId::parse("titan"), Some(PlatformId::TitanXK7));
        assert_eq!(PlatformId::parse("aws"), Some(PlatformId::Aws));
        assert_eq!(PlatformId::parse("summit"), None);
        // cli_name is the exact inverse of parse for every platform.
        for id in PlatformId::ALL {
            assert_eq!(PlatformId::parse(id.cli_name()), Some(id));
        }
    }

    #[test]
    fn table1_renders_every_platform() {
        let t = table1();
        for p in Platform::all() {
            assert!(t.contains(p.name), "missing {}", p.name);
        }
        assert_eq!(t.lines().count(), 5);
    }
}
