//! Reference per-operation costs (nanoseconds on one Cori Haswell core,
//! in-cache).
//!
//! (Formerly `costs.rs`; renamed to avoid the near-collision with
//! [`crate::cost`], which holds the *stage* cost model. A deprecated
//! `costs` module alias remains in the crate root for old call sites.)
//!
//! The pipeline counts *operations* (k-mers packed, Bloom probes, hash
//! inserts, pairs emitted, DP cells updated); multiplying by these
//! constants gives the `compute_ns` fed to [`crate::cost::stage_cost`].
//! They are calibration knobs, chosen so single-node stage rates land in
//! the regime of the paper's Figures 3–7 and so the qualitative relations
//! the paper highlights hold (hash-table stage processes k-mers roughly 2×
//! faster than the Bloom stage; alignment dominates compute-heavy runs).

/// Packing one k-mer record into a per-destination send buffer
/// (extraction + owner hash + copy). Applies in both k-mer passes.
pub const NS_PER_KMER_PACK: f64 = 14.0;

/// Bloom-stage processing of one received k-mer: multi-probe Bloom insert
/// plus (on second sighting) a hash-table key insert.
pub const NS_PER_KMER_BLOOM: f64 = 62.0;

/// Hash-table-stage processing of one received k-mer: single lookup plus
/// (if resident) appending the (read, position) occurrence. Cheaper per
/// k-mer than the Bloom pass — the paper's Fig. 5 vs Fig. 3 observation.
pub const NS_PER_KMER_HT: f64 = 30.0;

/// Post-pass scan of one resident hash-table entry (filter singletons and
/// the > m tail).
pub const NS_PER_HT_SCAN: f64 = 18.0;

/// Overlap-stage traversal cost per retained k-mer (read-ID list walk).
pub const NS_PER_RETAINED_KMER: f64 = 45.0;

/// Emitting one alignment task (pair formation, owner heuristic, buffer).
pub const NS_PER_PAIR_TASK: f64 = 28.0;

/// Consolidating one received task into the per-pair seed list.
pub const NS_PER_TASK_MERGE: f64 = 35.0;

/// One x-drop dynamic-programming cell update.
pub const NS_PER_DP_CELL: f64 = 1.1;

/// Fixed setup per pairwise alignment (seed decode, buffer setup).
pub const NS_PER_ALIGNMENT: f64 = 900.0;

/// Packing/unpacking one byte of read sequence during the alignment-stage
/// read exchange.
pub const NS_PER_READ_BYTE: f64 = 0.35;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_qualitative_relations() {
        // Hash-table pass processes k-mers about twice as fast as the
        // Bloom pass (paper §7).
        let ratio = NS_PER_KMER_BLOOM / NS_PER_KMER_HT;
        assert!((1.6..2.6).contains(&ratio), "BF/HT cost ratio {ratio}");
        // A single alignment (setup + ~thousands of cells) dwarfs a pair
        // task emission.
        let (align, pair) = (NS_PER_ALIGNMENT, NS_PER_PAIR_TASK);
        assert!(align > 10.0 * pair);
        // Everything is positive.
        for c in [
            NS_PER_KMER_PACK,
            NS_PER_KMER_BLOOM,
            NS_PER_KMER_HT,
            NS_PER_HT_SCAN,
            NS_PER_RETAINED_KMER,
            NS_PER_PAIR_TASK,
            NS_PER_TASK_MERGE,
            NS_PER_DP_CELL,
            NS_PER_ALIGNMENT,
            NS_PER_READ_BYTE,
        ] {
            assert!(c > 0.0);
        }
    }
}
