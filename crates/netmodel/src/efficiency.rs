//! Strong-scaling efficiency and rate arithmetic used by every figure.
//!
//! All the paper's efficiency plots are *relative to one node of the same
//! machine*: `eff(n) = T(1) / (n · T(n))`. Rates are `work / time`, e.g.
//! millions of k-mers per second (Figs. 3, 5, 6) or millions of alignments
//! per second (Figs. 7, 13).

/// Strong-scaling efficiency relative to the 1-node time of the same
/// platform: `t1 / (n · tn)`. Values above 1.0 are superlinear.
pub fn strong_efficiency(t1: f64, tn: f64, n: usize) -> f64 {
    assert!(n > 0);
    if tn <= 0.0 {
        return f64::NAN;
    }
    t1 / (n as f64 * tn)
}

/// Throughput in *millions of items per second*.
pub fn mrate(items: u64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return f64::NAN;
    }
    items as f64 / seconds / 1e6
}

/// Parallel speedup `t1 / tn`.
pub fn speedup(t1: f64, tn: f64) -> f64 {
    if tn <= 0.0 {
        return f64::NAN;
    }
    t1 / tn
}

/// A labelled series over node counts, as plotted in the figures.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label, e.g. `"Cori (XC40)"`.
    pub label: String,
    /// `(nodes, value)` points in increasing node order.
    pub points: Vec<(usize, f64)>,
}

impl Series {
    /// Create a series from points.
    pub fn new(label: impl Into<String>, points: Vec<(usize, f64)>) -> Self {
        Self { label: label.into(), points }
    }

    /// Value at a node count, if present.
    pub fn at(&self, nodes: usize) -> Option<f64> {
        self.points.iter().find(|&&(n, _)| n == nodes).map(|&(_, v)| v)
    }
}

/// Render series as a tab-separated table: header row of labels, one row
/// per node count — directly comparable to the paper's figure axes.
pub fn render_table(node_counts: &[usize], series: &[Series]) -> String {
    let mut out = String::from("nodes");
    for s in series {
        out.push('\t');
        out.push_str(&s.label);
    }
    out.push('\n');
    for &n in node_counts {
        out.push_str(&n.to_string());
        for s in series {
            out.push('\t');
            match s.at(n) {
                Some(v) => out.push_str(&format!("{v:.4}")),
                None => out.push('-'),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_formulae() {
        assert!((strong_efficiency(10.0, 5.0, 2) - 1.0).abs() < 1e-12);
        assert!((strong_efficiency(10.0, 2.0, 2) - 2.5).abs() < 1e-12);
        assert!(strong_efficiency(10.0, 10.0, 4) < 0.3);
        assert!(strong_efficiency(1.0, 0.0, 2).is_nan());
    }

    #[test]
    fn rates_and_speedups() {
        assert!((mrate(2_000_000, 2.0) - 1.0).abs() < 1e-12);
        assert!((speedup(8.0, 2.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn series_lookup_and_render() {
        let s = Series::new("Cori (XC40)", vec![(1, 1.0), (2, 1.8), (4, 3.0)]);
        assert_eq!(s.at(2), Some(1.8));
        assert_eq!(s.at(8), None);
        let t = render_table(&[1, 2, 4, 8], &[s]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "nodes\tCori (XC40)");
        assert!(lines[2].starts_with("2\t1.8"));
        assert!(lines[4].ends_with('-'));
    }
}
