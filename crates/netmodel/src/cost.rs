//! The LogGP-style cost model projecting measured work onto platforms.
//!
//! The pipeline runs for real (every byte exchanged, every DP cell
//! computed) and records per-rank counters; this module converts those into
//! per-platform stage times:
//!
//! ```text
//! T_local(r)    = compute_ns(r) · 1e-9 / core_perf · cache_penalty(ws/cache)
//! T_exchange(r) = calls · (α + α_rank·P)                        [latency]
//!               + off_node_bytes(node(r)) / bw_node              [injection]
//!               + on_node_bytes(node(r)) / bw_mem                [local copy]
//!               + first_alltoallv_setup (once per job)
//! T_stage       = max_r T_local(r) + max_r T_exchange(r)         [BSP]
//! ```
//!
//! `cache_penalty ≥ 1` shrinks as strong scaling shrinks the per-rank
//! working set — the mechanism behind the paper's superlinear local
//! speedups (Figs. 4–5) — and the first-call term reproduces the
//! first-`MPI_Alltoallv` anomaly (§6, §10).

use crate::platforms::Platform;

/// Placement of ranks onto nodes: rank `r` lives on node `r / ranks_per_node`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeMapping {
    /// Number of nodes.
    pub nodes: usize,
    /// MPI ranks per node (the paper pins one rank per core).
    pub ranks_per_node: usize,
}

impl NodeMapping {
    /// Create a mapping.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(nodes: usize, ranks_per_node: usize) -> Self {
        assert!(nodes > 0 && ranks_per_node > 0);
        Self { nodes, ranks_per_node }
    }

    /// One rank per core on `nodes` nodes of `platform`.
    pub fn for_platform(platform: &Platform, nodes: usize) -> Self {
        Self::new(nodes, platform.cores_per_node)
    }

    /// Total ranks.
    pub fn ranks(&self) -> usize {
        self.nodes * self.ranks_per_node
    }

    /// Node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node
    }

    /// Whether two ranks share a node.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

/// Per-rank measured load for one pipeline stage.
#[derive(Clone, Debug, Default)]
pub struct RankLoad {
    /// Weighted compute nanoseconds at reference (Cori-core, in-cache)
    /// speed. Producers multiply raw op counts by the `ns-per-op`
    /// constants in [`crate::costs`].
    pub compute_ns: f64,
    /// Bytes this rank's local phase touches repeatedly (hash-table
    /// partition, Bloom partition, read buffers) — drives the cache term.
    pub working_set: f64,
    /// Bytes sent to each rank (from `dibella_comm::CommStats`).
    pub dest_bytes: Vec<u64>,
    /// Irregular collective calls this stage issued.
    pub alltoallv_calls: u64,
}

/// Modeled per-rank times for one stage on one platform.
#[derive(Clone, Debug)]
pub struct StageCost {
    /// Per-rank local compute seconds.
    pub local_s: Vec<f64>,
    /// Per-rank exchange seconds.
    pub exchange_s: Vec<f64>,
}

impl StageCost {
    /// BSP stage wall time: slowest local phase plus slowest exchange.
    pub fn stage_seconds(&self) -> f64 {
        self.max_local() + self.max_exchange()
    }

    /// Slowest rank's local time.
    pub fn max_local(&self) -> f64 {
        self.local_s.iter().copied().fold(0.0, f64::max)
    }

    /// Slowest rank's exchange time.
    pub fn max_exchange(&self) -> f64 {
        self.exchange_s.iter().copied().fold(0.0, f64::max)
    }

    /// Load imbalance `max / avg` over per-rank total stage time
    /// (1.0 = perfect; the metric of paper Figure 8).
    pub fn imbalance(&self) -> f64 {
        let totals: Vec<f64> = self
            .local_s
            .iter()
            .zip(&self.exchange_s)
            .map(|(&l, &e)| l + e)
            .collect();
        let max = totals.iter().copied().fold(0.0, f64::max);
        let avg = totals.iter().sum::<f64>() / totals.len() as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    }
}

/// Cache-capacity penalty multiplier: 1.0 when the working set fits in
/// the per-core cache, rising smoothly toward `1 + MAX_CACHE_PENALTY`
/// as the set grows — so halving the per-rank data (strong scaling) can
/// speed local work up by *more* than 2×.
pub fn cache_penalty(working_set: f64, cache_per_core: f64) -> f64 {
    const MAX_CACHE_PENALTY: f64 = 1.6;
    if working_set <= cache_per_core || cache_per_core <= 0.0 {
        1.0
    } else {
        let r = working_set / cache_per_core;
        1.0 + MAX_CACHE_PENALTY * (1.0 - 1.0 / r)
    }
}

/// Latency of one collective call on `platform` with `ranks` participants:
/// `α + α_rank·P`, in seconds. The per-call term of both the analytic
/// stage model below and the executable `SimNet` transport in
/// `dibella-comm`, so the two charge identical latencies.
pub fn collective_latency_s(platform: &Platform, ranks: usize) -> f64 {
    (platform.coll_alpha_us + platform.coll_per_rank_us * ranks as f64) * 1e-6
}

/// Transfer seconds for one node's share of an irregular exchange:
/// off-node bytes drain through the NIC at the platform's effective
/// injection bandwidth, on-node bytes move at memory bandwidth.
pub fn exchange_transfer_s(platform: &Platform, on_node_bytes: u64, off_node_bytes: u64) -> f64 {
    off_node_bytes as f64 / (platform.inj_bw_mb_s * 1e6)
        + on_node_bytes as f64 / (platform.mem_bw_mb_s * 1e6)
}

/// One-time overhead of the job's *first* `MPI_Alltoallv` (paper §6/§10):
/// per-peer connection/buffer establishment, linear in `ranks`, plus
/// `first_alltoallv_factor` extra calls of cost `base_call_s` (one average
/// call of the charged stage, or the first call itself when charged
/// per-call by `SimNet`).
pub fn first_alltoallv_setup_s(platform: &Platform, ranks: usize, base_call_s: f64) -> f64 {
    platform.setup_us_per_rank * ranks as f64 * 1e-6
        + platform.first_alltoallv_factor * base_call_s
}

/// Wall time of one streaming-exchange round when the packing of the next
/// round overlaps the in-flight exchange (double buffering): the slower of
/// the two hides the faster. This is the netmodel's *single* definition of
/// an overlapped round — the executable `SimNet` transport charges it per
/// round, and [`pipelined_rounds_s`] composes it into a whole-stage cost —
/// so simulated runs and analytic projections cannot drift apart.
pub fn overlapped_round_s(pack_s: f64, exchange_s: f64) -> f64 {
    pack_s.max(exchange_s)
}

/// Total wall of an `R`-round streaming exchange with double buffering:
/// round 0 is packed up front, then every round's exchange overlaps the
/// packing of its successor —
///
/// ```text
/// T = pack[0] + Σ_i max(exchange[i], pack[i+1])      (pack[R] ≡ 0)
/// ```
///
/// With one round this degenerates to `pack[0] + exchange[0]` (nothing to
/// overlap), and a perfectly balanced pipeline approaches
/// `max(Σ pack, Σ exchange)` — the upside the streaming engine buys.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn pipelined_rounds_s(pack_s: &[f64], exchange_s: &[f64]) -> f64 {
    assert_eq!(
        pack_s.len(),
        exchange_s.len(),
        "need one pack and one exchange time per round"
    );
    let rounds = pack_s.len();
    if rounds == 0 {
        return 0.0;
    }
    let mut total = pack_s[0];
    for (i, &ex) in exchange_s.iter().enumerate() {
        let next_pack = if i + 1 < rounds { pack_s[i + 1] } else { 0.0 };
        total += overlapped_round_s(next_pack, ex);
    }
    total
}

/// Model one stage.
///
/// `loads.len()` must equal `mapping.ranks()`. `first_exchange` charges the
/// platform's one-time `MPI_Alltoallv` setup cost (give `true` only for the
/// first exchanging stage of a job — the Bloom filter stage).
pub fn stage_cost(
    platform: &Platform,
    mapping: NodeMapping,
    loads: &[RankLoad],
    first_exchange: bool,
) -> StageCost {
    let p = mapping.ranks();
    assert_eq!(loads.len(), p, "need one RankLoad per rank");

    // ---- local compute ----------------------------------------------------
    let local_s: Vec<f64> = loads
        .iter()
        .map(|l| {
            l.compute_ns * 1e-9 / platform.core_perf
                * cache_penalty(l.working_set, platform.cache_per_core)
        })
        .collect();

    // ---- exchange ----------------------------------------------------------
    // Aggregate traffic per node: a node's NIC carries the off-node bytes of
    // all its ranks; on-node traffic moves at memory bandwidth.
    let mut node_off = vec![0u64; mapping.nodes];
    let mut node_on = vec![0u64; mapping.nodes];
    for (r, l) in loads.iter().enumerate() {
        let home = mapping.node_of(r);
        for (d, &b) in l.dest_bytes.iter().enumerate() {
            if mapping.node_of(d) == home {
                node_on[home] += b;
            } else {
                node_off[home] += b;
            }
        }
    }
    let exchange_s: Vec<f64> = loads
        .iter()
        .enumerate()
        .map(|(r, l)| {
            let home = mapping.node_of(r);
            let latency = l.alltoallv_calls as f64 * collective_latency_s(platform, p);
            let base = latency + exchange_transfer_s(platform, node_on[home], node_off[home]);
            // First-Alltoallv setup (paper §6/§10): the job's first call
            // pays (a) per-peer connection/buffer establishment, linear in
            // P, and (b) an extra `factor` average calls of this stage.
            let setup = if first_exchange && l.alltoallv_calls > 0 {
                first_alltoallv_setup_s(platform, p, base / l.alltoallv_calls as f64)
            } else {
                0.0
            };
            base + setup
        })
        .collect();

    StageCost { local_s, exchange_s }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::{AWS, CORI, TITAN};

    fn uniform_loads(p: usize, compute_ns: f64, bytes_each: u64, calls: u64) -> Vec<RankLoad> {
        (0..p)
            .map(|_| RankLoad {
                compute_ns,
                working_set: 0.0,
                dest_bytes: vec![bytes_each; p],
                alltoallv_calls: calls,
            })
            .collect()
    }

    #[test]
    fn mapping_basics() {
        let m = NodeMapping::new(4, 8);
        assert_eq!(m.ranks(), 32);
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(31), 3);
        assert!(m.same_node(8, 15));
        assert!(!m.same_node(7, 8));
    }

    #[test]
    fn cache_penalty_bounds_and_monotonicity() {
        let c = 1e6;
        assert_eq!(cache_penalty(0.5e6, c), 1.0);
        assert_eq!(cache_penalty(1e6, c), 1.0);
        let p2 = cache_penalty(2e6, c);
        let p8 = cache_penalty(8e6, c);
        assert!(p2 > 1.0 && p8 > p2 && p8 < 2.7);
    }

    #[test]
    fn single_node_has_no_injection_cost() {
        let m = NodeMapping::new(1, 4);
        let loads = uniform_loads(4, 0.0, 1_000_000, 1);
        let cost = stage_cost(&CORI, m, &loads, false);
        // All traffic on-node → only latency + memory copies; should be
        // well below what the same volume costs across nodes.
        let m2 = NodeMapping::new(4, 1);
        let cost2 = stage_cost(&CORI, m2, &loads, false);
        assert!(cost.max_exchange() < cost2.max_exchange() / 2.0);
    }

    #[test]
    fn more_bytes_cost_more() {
        let m = NodeMapping::new(2, 2);
        let small = stage_cost(&CORI, m, &uniform_loads(4, 0.0, 1_000, 1), false);
        let big = stage_cost(&CORI, m, &uniform_loads(4, 0.0, 1_000_000, 1), false);
        assert!(big.max_exchange() > small.max_exchange());
    }

    #[test]
    fn aws_exchange_slower_than_aries() {
        let m = NodeMapping::new(4, 4);
        let loads = uniform_loads(16, 0.0, 100_000, 3);
        let cori = stage_cost(&CORI, m, &loads, false);
        let aws = stage_cost(&AWS, m, &loads, false);
        assert!(aws.max_exchange() > cori.max_exchange());
    }

    #[test]
    fn titan_compute_slower_than_cori() {
        let m = NodeMapping::new(1, 2);
        let loads = uniform_loads(2, 1e9, 0, 0);
        let cori = stage_cost(&CORI, m, &loads, false);
        let titan = stage_cost(&TITAN, m, &loads, false);
        assert!(titan.max_local() > 2.0 * cori.max_local());
    }

    #[test]
    fn first_call_overhead_scales_with_call_cost() {
        let m = NodeMapping::new(2, 2);
        // One call: first-call factor 1.0 doubles the exchange.
        let p = 4usize;
        let conn = CORI.setup_us_per_rank * p as f64 * 1e-6;
        let loads = uniform_loads(p, 0.0, 10_000, 1);
        let without = stage_cost(&CORI, m, &loads, false);
        let with = stage_cost(&CORI, m, &loads, true);
        let ratio = (with.max_exchange() - conn) / without.max_exchange();
        assert!((ratio - (1.0 + CORI.first_alltoallv_factor)).abs() < 1e-9, "{ratio}");
        // Four calls: only the first is doubled → +25% plus connection setup.
        let loads4 = uniform_loads(p, 0.0, 10_000, 4);
        let w4 = stage_cost(&CORI, m, &loads4, true);
        let wo4 = stage_cost(&CORI, m, &loads4, false);
        let ratio4 = (w4.max_exchange() - conn) / wo4.max_exchange();
        assert!((ratio4 - 1.25).abs() < 1e-9, "{ratio4}");
    }

    #[test]
    fn per_collective_delay_components() {
        // Latency grows with rank count and is slowest on the commodity net.
        assert!(collective_latency_s(&CORI, 64) > collective_latency_s(&CORI, 4));
        assert!(collective_latency_s(&AWS, 16) > 5.0 * collective_latency_s(&CORI, 16));
        // A byte is cheaper over the memory bus than through the NIC.
        assert!(
            exchange_transfer_s(&CORI, 1_000_000, 0) < exchange_transfer_s(&CORI, 0, 1_000_000)
        );
        assert_eq!(exchange_transfer_s(&CORI, 0, 0), 0.0);
        // Setup = per-peer connection term + `factor` extra base calls.
        let s = first_alltoallv_setup_s(&CORI, 8, 1e-3);
        let expect = CORI.setup_us_per_rank * 8.0 * 1e-6 + CORI.first_alltoallv_factor * 1e-3;
        assert!((s - expect).abs() < 1e-15);
    }

    #[test]
    fn stage_cost_decomposes_into_delay_functions() {
        // One uniform call: per-rank exchange equals latency + transfer of
        // the node's aggregated volume (no setup).
        let m = NodeMapping::new(2, 2);
        let loads = uniform_loads(4, 0.0, 1_000, 1);
        let cost = stage_cost(&CORI, m, &loads, false);
        // Each node hosts 2 ranks, each sending 1000 B to all 4 ranks:
        // on-node = 2 ranks × 2 on-node dests, off-node likewise.
        let on = 2 * 2 * 1_000;
        let off = 2 * 2 * 1_000;
        let expect = collective_latency_s(&CORI, 4) + exchange_transfer_s(&CORI, on, off);
        for &e in &cost.exchange_s {
            assert!((e - expect).abs() < 1e-15, "{e} vs {expect}");
        }
    }

    #[test]
    fn overlapped_round_takes_the_slower_side() {
        assert_eq!(overlapped_round_s(1.0, 3.0), 3.0);
        assert_eq!(overlapped_round_s(3.0, 1.0), 3.0);
        assert_eq!(overlapped_round_s(0.0, 0.0), 0.0);
    }

    #[test]
    fn pipelined_rounds_closed_form() {
        assert_eq!(pipelined_rounds_s(&[], &[]), 0.0);
        // One round: nothing overlaps.
        assert_eq!(pipelined_rounds_s(&[2.0], &[5.0]), 7.0);
        // Three balanced rounds: pack(0) + 3 × round (exchange hides the
        // packing of the successor exactly).
        let t = pipelined_rounds_s(&[1.0, 1.0, 1.0], &[1.0, 1.0, 1.0]);
        assert!((t - 4.0).abs() < 1e-12, "{t}");
        // Exchange-bound pipeline: packing fully hidden after round 0.
        let t = pipelined_rounds_s(&[1.0, 1.0, 1.0], &[4.0, 4.0, 4.0]);
        assert!((t - 13.0).abs() < 1e-12, "{t}");
        // Pipelining never beats the exchange total, never exceeds the
        // unoverlapped sum.
        let pack = [0.5, 2.0, 0.25, 1.0];
        let exch = [1.5, 0.75, 3.0, 0.5];
        let t = pipelined_rounds_s(&pack, &exch);
        let serial: f64 = pack.iter().chain(&exch).sum();
        let floor = exch.iter().sum::<f64>().max(pack.iter().sum());
        assert!(t >= floor && t <= serial, "{floor} <= {t} <= {serial}");
    }

    #[test]
    #[should_panic(expected = "one pack and one exchange time per round")]
    fn pipelined_rounds_rejects_mismatched_lengths() {
        let _ = pipelined_rounds_s(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn imbalance_metric() {
        let cost = StageCost {
            local_s: vec![1.0, 1.0, 2.0, 0.0],
            exchange_s: vec![0.0; 4],
        };
        assert!((cost.imbalance() - 2.0).abs() < 1e-12);
        let perfect = StageCost {
            local_s: vec![1.0; 4],
            exchange_s: vec![1.0; 4],
        };
        assert!((perfect.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn superlinear_scaling_via_cache() {
        // Fixed total work/bytes split over more ranks with a shrinking
        // working set → more-than-proportional local speedup.
        let total_ns = 32e9;
        let ws_total = 640e6;
        let t = |nodes: usize| {
            let m = NodeMapping::for_platform(&CORI, nodes);
            let p = m.ranks();
            let loads: Vec<RankLoad> = (0..p)
                .map(|_| RankLoad {
                    compute_ns: total_ns / p as f64,
                    working_set: ws_total / p as f64,
                    dest_bytes: vec![0; p],
                    alltoallv_calls: 0,
                })
                .collect();
            stage_cost(&CORI, m, &loads, false).max_local()
        };
        let t1 = t(1);
        let t8 = t(8);
        let eff = t1 / (8.0 * t8);
        assert!(eff > 1.05, "expected superlinear efficiency, got {eff}");
    }
}
