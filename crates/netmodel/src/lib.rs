//! # dibella-netmodel
//!
//! Cross-architecture performance projection for the diBELLA reproduction.
//!
//! The paper evaluates on Cori (Cray XC40), Edison (XC30), Titan (XK7) and
//! an AWS c3.8xlarge cluster (Table 1). Those machines are not available
//! here, so the pipeline executes for real on a shared-memory SPMD world
//! while recording exact per-rank operation counts and per-destination
//! traffic, and this crate converts the records into modeled stage times
//! per platform: a LogGP-style latency/bandwidth exchange model plus a
//! calibrated compute model with a cache-capacity term (the source of the
//! paper's superlinear strong-scaling efficiencies) and the one-time
//! first-`MPI_Alltoallv` setup cost the paper twice calls out.
//!
//! See DESIGN.md §2 and §5 for the substitution rationale.

#![warn(missing_docs)]

pub mod cost;
pub mod efficiency;
pub mod op_costs;
pub mod platforms;

/// Deprecated alias of [`op_costs`] (the module was renamed to end the
/// `cost` / `costs` near-collision); update imports to `op_costs`.
#[doc(hidden)]
pub use op_costs as costs;

pub use cost::{
    cache_penalty, collective_latency_s, exchange_transfer_s, first_alltoallv_setup_s,
    overlapped_round_s, pipelined_rounds_s, stage_cost, NodeMapping, RankLoad, StageCost,
};
pub use efficiency::{mrate, render_table, speedup, strong_efficiency, Series};
pub use platforms::{table1, Platform, PlatformId, AWS, CORI, EDISON, TITAN};
