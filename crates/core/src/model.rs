//! Bridge from measured [`RankReport`]s to the cross-architecture cost
//! model — the substitution that regenerates the paper's cross-platform
//! figures without the paper's machines (DESIGN.md §2, §5).
//!
//! Each stage's raw counters (k-mers packed/processed, pairs emitted, DP
//! cells, bytes per destination) are weighted by the reference per-op
//! costs of `dibella_netmodel::op_costs` and fed to the LogGP stage model.

use crate::pipeline::RankReport;
use dibella_netmodel::{op_costs, stage_cost, NodeMapping, Platform, RankLoad, StageCost};

/// The four pipeline stages, in order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Stage 1 — distributed Bloom filter.
    Bloom,
    /// Stage 2 — distributed hash table.
    Hash,
    /// Stage 3 — overlap detection.
    Overlap,
    /// Stage 4 — read exchange + alignment.
    Align,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 4] = [Stage::Bloom, Stage::Hash, Stage::Overlap, Stage::Align];

    /// Display name used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Bloom => "Bloom Filter",
            Stage::Hash => "Hash Table",
            Stage::Overlap => "Overlap",
            Stage::Align => "Alignment",
        }
    }
}

/// Convert one rank's report into the model's per-stage load.
pub fn rank_load(report: &RankReport, stage: Stage) -> RankLoad {
    match stage {
        Stage::Bloom => RankLoad {
            compute_ns: report.bloom.kmers_parsed as f64 * op_costs::NS_PER_KMER_PACK
                + report.bloom.kmers_received as f64 * op_costs::NS_PER_KMER_BLOOM,
            working_set: report.bloom_bytes as f64 + report.table_keys as f64 * 32.0,
            dest_bytes: report.bloom_comm.dest_bytes.clone(),
            alltoallv_calls: report.bloom_comm.alltoallv_calls,
        },
        Stage::Hash => RankLoad {
            compute_ns: report.hash.kmers_parsed as f64 * op_costs::NS_PER_KMER_PACK
                + report.hash.kmers_received as f64 * op_costs::NS_PER_KMER_HT
                + (report.filter.singletons_removed
                    + report.filter.high_freq_removed
                    + report.filter.retained) as f64
                    * op_costs::NS_PER_HT_SCAN,
            working_set: report.table_bytes as f64,
            dest_bytes: report.hash_comm.dest_bytes.clone(),
            alltoallv_calls: report.hash_comm.alltoallv_calls,
        },
        Stage::Overlap => RankLoad {
            compute_ns: report.overlap.retained_kmers as f64 * op_costs::NS_PER_RETAINED_KMER
                + report.overlap.pairs_emitted as f64 * op_costs::NS_PER_PAIR_TASK
                + report.overlap.tasks_received as f64 * op_costs::NS_PER_TASK_MERGE,
            working_set: report.table_bytes as f64,
            dest_bytes: report.overlap_comm.dest_bytes.clone(),
            alltoallv_calls: report.overlap_comm.alltoallv_calls,
        },
        Stage::Align => RankLoad {
            compute_ns: report.align.alignments as f64 * op_costs::NS_PER_ALIGNMENT
                + report.align.dp_cells as f64 * op_costs::NS_PER_DP_CELL
                + (report.align.read_bytes_served + report.align.read_bytes_fetched) as f64
                    * op_costs::NS_PER_READ_BYTE,
            working_set: (report.local_bases + report.align.read_bytes_fetched) as f64,
            dest_bytes: report.align_comm.dest_bytes.clone(),
            alltoallv_calls: report.align_comm.alltoallv_calls,
        },
    }
}

/// Modeled per-stage times of a pipeline run on one platform.
#[derive(Clone, Debug)]
pub struct PipelineProjection {
    /// Stage costs in pipeline order (Bloom, Hash, Overlap, Align).
    pub stages: [StageCost; 4],
}

impl PipelineProjection {
    /// Cost of one stage.
    pub fn stage(&self, s: Stage) -> &StageCost {
        &self.stages[Stage::ALL.iter().position(|&x| x == s).unwrap()]
    }

    /// Total modeled pipeline seconds (sum of BSP stage times).
    pub fn total_seconds(&self) -> f64 {
        self.stages.iter().map(|s| s.stage_seconds()).sum()
    }

    /// Total modeled exchange seconds.
    pub fn exchange_seconds(&self) -> f64 {
        self.stages.iter().map(|s| s.max_exchange()).sum()
    }

    /// Total modeled local-compute seconds.
    pub fn local_seconds(&self) -> f64 {
        self.stages.iter().map(|s| s.max_local()).sum()
    }
}

/// Project a measured run onto a platform at a node count.
///
/// `reports.len()` must equal `mapping.ranks()` — i.e. the pipeline was
/// executed with one rank per modeled core. The Bloom stage is charged the
/// platform's first-`Alltoallv` setup cost (paper §6/§10).
pub fn project(platform: &Platform, mapping: NodeMapping, reports: &[RankReport]) -> PipelineProjection {
    assert_eq!(
        reports.len(),
        mapping.ranks(),
        "need one report per modeled rank"
    );
    let per_stage = |stage: Stage, first: bool| {
        let loads: Vec<RankLoad> = reports.iter().map(|r| rank_load(r, stage)).collect();
        stage_cost(platform, mapping, &loads, first)
    };
    PipelineProjection {
        stages: [
            per_stage(Stage::Bloom, true),
            per_stage(Stage::Hash, false),
            per_stage(Stage::Overlap, false),
            per_stage(Stage::Align, false),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::pipeline::run_pipeline;
    use dibella_io::{Read, ReadSet};
    use dibella_netmodel::CORI;
    use dibella_overlap::SeedPolicy;

    fn dataset(n: usize, read_len: usize, stride: usize) -> ReadSet {
        let mut state = 0xFACEu64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let genome: Vec<u8> = (0..(n * stride + read_len))
            .map(|_| b"ACGT"[(rnd() % 4) as usize])
            .collect();
        (0..n as u32)
            .map(|i| Read::new(i, format!("r{i}"), genome[i as usize * stride..][..read_len].to_vec()))
            .collect()
    }

    fn cfg() -> PipelineConfig {
        PipelineConfig {
            k: 11,
            seed_policy: SeedPolicy::MinDistance(11),
            max_multiplicity: Some(24),
            max_kmers_per_round: 1024,
            ..Default::default()
        }
    }

    #[test]
    fn projection_produces_positive_times() {
        let reads = dataset(12, 150, 50);
        let res = run_pipeline(&reads, 4, &cfg());
        let mapping = NodeMapping::new(2, 2);
        let proj = project(&CORI, mapping, &res.reports);
        assert!(proj.total_seconds() > 0.0);
        assert!(proj.exchange_seconds() > 0.0);
        assert!(proj.local_seconds() > 0.0);
        for s in Stage::ALL {
            assert!(proj.stage(s).stage_seconds() >= 0.0, "{}", s.name());
        }
        // First-call overhead makes bloom exchange exceed hash exchange on
        // this tiny workload despite 2.5x volume — the §10 anomaly.
        assert!(
            proj.stage(Stage::Bloom).max_exchange() > proj.stage(Stage::Hash).max_exchange()
        );
    }

    #[test]
    fn loads_reflect_counters() {
        let reads = dataset(10, 150, 50);
        let res = run_pipeline(&reads, 2, &cfg());
        let r = &res.reports[0];
        let bloom = rank_load(r, Stage::Bloom);
        assert!(bloom.compute_ns > 0.0);
        assert_eq!(bloom.dest_bytes.len(), 2);
        let align = rank_load(r, Stage::Align);
        assert!(align.compute_ns > 0.0, "alignment work missing");
    }

    #[test]
    #[should_panic(expected = "one report per modeled rank")]
    fn rank_mismatch_rejected() {
        let reads = dataset(6, 120, 40);
        let res = run_pipeline(&reads, 2, &cfg());
        let _ = project(&CORI, NodeMapping::new(2, 2), &res.reports);
    }
}
