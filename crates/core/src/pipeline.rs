//! The four-stage diBELLA pipeline driver (paper §4).
//!
//! [`pipeline_rank`] is the SPMD body one rank executes; [`run_pipeline`]
//! launches a whole world over an in-memory read set, and
//! [`run_pipeline_fastq`] additionally exercises the parallel-input path
//! (block-partitioned FASTQ with an exclusive scan assigning global read
//! IDs). Every stage is timed and its communication counters snapshotted,
//! producing one [`RankReport`] per rank — the raw material for Table 2
//! and, through `crate::model`, Figures 3–13.
//!
//! Execution is hybrid-parallel: ranks are the distributed dimension, and
//! within each rank **all four stages** fan their compute out over one
//! shared `BatchedExecutor` of [`PipelineConfig::threads`] workers with
//! deterministic batching — results are bit-identical at every thread
//! count. Across the stage-1/stage-2 boundary the driver additionally
//! overlaps: while the Bloom pass's last exchange round is in flight, the
//! hash pass's first round is already being packed
//! ([`dibella_kcount::bloom_stage_overlapping`]).
//!
//! The communication substrate is pluggable via
//! [`PipelineConfig::transport`]: the same run can execute over real
//! shared memory or "on" a modeled interconnect (`SimNet`), in which case
//! each stage's `exchange` timing reflects the virtual platform while
//! alignments and traffic counters stay byte-identical.

use crate::alignment_stage::{align_tasks, fetch_remote_reads, AlignCounters};
use crate::checkpoint::{
    decode_table, decode_tasks, encode_table, encode_tasks, run_fingerprint, TableCheckpoint,
    TABLE_STAGE, TASKS_STAGE,
};
use crate::config::{PipelineConfig, SeedMode};
use crate::record::AlignmentRecord;
use dibella_comm::{BatchedExecutor, Comm, CommStats, CommWorld};
use dibella_io::{
    parse_block, partition_reads, byte_ranges, CheckpointStore, Read, ReadPartition, ReadSet,
    ReadStore,
};
use dibella_kcount::{
    bloom_stage_overlapping, hash_stage_prepacked, minimizer_stage, FilterStats, KmerHashTable,
    KmerStageCounters,
};
use dibella_overlap::{
    overlap_stage_with_lengths, OverlapCounters, OverlapOutput, OverlapTask, TaskPlacement,
};
use std::time::{Duration, Instant};

/// Wall-clock split of one stage on one rank.
///
/// `exchange` and `pack` measure concurrent intervals — rounds are packed
/// *while* the previous exchange is in flight — so `exchange + pack` can
/// legitimately exceed `total`; the excess is exactly the overlap the
/// streaming engine bought.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTiming {
    /// Total stage time on this rank.
    pub total: Duration,
    /// Portion spent inside collectives (from `CommStats::exchange_wall`).
    pub exchange: Duration,
    /// Wall time spent packing exchange rounds (from
    /// `CommStats::pack_wall`); overlapped with `exchange` whenever a
    /// previous round was in flight.
    pub pack: Duration,
}

impl StageTiming {
    /// Local compute portion (`total − exchange`).
    pub fn local(&self) -> Duration {
        self.total.saturating_sub(self.exchange)
    }

    /// Compute portion outside both collectives and round packing
    /// (`total − exchange − pack`, saturating — overlap can drive the
    /// subtrahends past `total`).
    pub fn compute(&self) -> Duration {
        self.total.saturating_sub(self.exchange).saturating_sub(self.pack)
    }
}

/// Everything one rank measured while running the pipeline.
#[derive(Clone, Debug)]
pub struct RankReport {
    /// Rank index.
    pub rank: usize,
    /// World size.
    pub ranks: usize,
    /// Reads owned by this rank.
    pub local_reads: u64,
    /// Bases owned by this rank.
    pub local_bases: u64,
    // ---- stage 1: Bloom filter ----
    /// Bloom-pass work counters (all-zero under
    /// [`SeedMode::Minimizer`], which skips the Bloom pass entirely).
    pub bloom: KmerStageCounters,
    /// Bloom-pass traffic.
    pub bloom_comm: CommStats,
    /// Bloom-pass timing.
    pub bloom_wall: StageTiming,
    /// Peak Bloom partition bytes.
    pub bloom_bytes: u64,
    /// Keys promoted into the hash table.
    pub table_keys: u64,
    // ---- stage 2: hash table ----
    /// Hash-pass work counters. Under [`SeedMode::Minimizer`] this slot
    /// holds the single minimizer-index pass instead.
    pub hash: KmerStageCounters,
    /// Hash-pass traffic.
    pub hash_comm: CommStats,
    /// Hash-pass timing.
    pub hash_wall: StageTiming,
    /// Reliable-k-mer filter outcome.
    pub filter: FilterStats,
    /// Resident bytes of the filtered table partition.
    pub table_bytes: u64,
    // ---- stage 3: overlap ----
    /// Overlap work counters.
    pub overlap: OverlapCounters,
    /// Overlap traffic.
    pub overlap_comm: CommStats,
    /// Overlap timing.
    pub overlap_wall: StageTiming,
    // ---- stage 4: alignment ----
    /// Alignment work counters.
    pub align: AlignCounters,
    /// Alignment traffic (read redistribution).
    pub align_comm: CommStats,
    /// Alignment timing.
    pub align_wall: StageTiming,
}

impl RankReport {
    /// The four stage timings in pipeline order (Bloom, Hash, Overlap,
    /// Align) — the single place that enumerates them, so aggregate
    /// accessors cannot silently miss a stage when one is added.
    pub fn stage_timings(&self) -> [StageTiming; 4] {
        [self.bloom_wall, self.hash_wall, self.overlap_wall, self.align_wall]
    }

    /// Total pipeline wall time on this rank.
    pub fn total_wall(&self) -> Duration {
        self.stage_timings().iter().map(|t| t.total).sum()
    }

    /// Total time this rank spent inside collectives, across all stages.
    pub fn total_exchange(&self) -> Duration {
        self.stage_timings().iter().map(|t| t.exchange).sum()
    }

    /// The four stage traffic snapshots in pipeline order — the
    /// counterpart of [`Self::stage_timings`] for [`CommStats`].
    pub fn stage_comms(&self) -> [&CommStats; 4] {
        [&self.bloom_comm, &self.hash_comm, &self.overlap_comm, &self.align_comm]
    }

    /// All four stages' traffic counters merged into one snapshot —
    /// including the hardened-exchange fault counters
    /// (`frames_corrupt_detected`, `frames_retransmitted`,
    /// `duplicates_dropped`, `wait_timeouts`, `retry_wall`), which are
    /// zero unless the transport injected faults.
    pub fn total_comm(&self) -> CommStats {
        let mut merged = CommStats::new(self.ranks);
        for stage in self.stage_comms() {
            merged.merge(stage);
        }
        merged
    }
}

/// Result of a whole-world pipeline run.
#[derive(Debug)]
pub struct PipelineResult {
    /// All alignments, merged across ranks and deterministically sorted.
    pub alignments: Vec<AlignmentRecord>,
    /// Per-rank measurements, indexed by rank.
    pub reports: Vec<RankReport>,
}

impl PipelineResult {
    /// Distinct overlapping read pairs found.
    pub fn n_pairs(&self) -> usize {
        let mut pairs: Vec<_> = self.alignments.iter().map(|a| a.pair).collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs.len()
    }

    /// Total alignments computed (not just accepted) across ranks.
    pub fn n_alignments_computed(&self) -> u64 {
        self.reports.iter().map(|r| r.align.alignments).sum()
    }

    /// The slowest rank's wall time (the BSP job time).
    pub fn wall(&self) -> Duration {
        self.reports.iter().map(|r| r.total_wall()).max().unwrap_or_default()
    }
}

/// SPMD pipeline body: run all four stages for one rank.
///
/// `local` must be exactly the reads of `part.range_of(comm.rank())`, in
/// ID order.
pub fn pipeline_rank(
    comm: &Comm,
    local: Vec<Read>,
    part: &ReadPartition,
    cfg: &PipelineConfig,
) -> (Vec<AlignmentRecord>, RankReport) {
    let rank = comm.rank();
    let local_reads = local.len() as u64;
    let local_bases: u64 = local.iter().map(|r| r.len() as u64).sum();

    // Agree on dataset-wide parameters before timing the stages.
    let total_bases = comm.allreduce_sum_u64(local_bases);
    let total_reads = comm.allreduce_sum_u64(local_reads);
    let mut kc = cfg.kcount(total_bases);
    if let Some(precision) = cfg.hll_precision {
        // Optional HyperLogLog cardinality pre-pass for Bloom sizing
        // (paper §6; one extra streaming pass, O(2^precision) traffic).
        kc.expected_distinct =
            dibella_kcount::hll_cardinality(comm, &local, cfg.k, precision).max(1024);
    }
    let oc = cfg.overlap();
    let exec = BatchedExecutor::new(cfg.effective_threads());

    // ---- checkpoint/restart setup -----------------------------------------
    // Open the store and *decode* any stage snapshots up front, then agree
    // world-wide on which (if any) to resume from. The agreement must be
    // unanimous and must follow a successful decode on every rank: stages
    // are collectives, so a world where one rank skips a stage and another
    // recomputes it would deadlock. A rank whose file is missing, damaged,
    // or from a different run votes "recompute" and the whole world falls
    // back — a bad checkpoint costs time, never correctness or liveness.
    let checkpoint = cfg.checkpoint_dir.as_ref().map(|dir| {
        CheckpointStore::new(dir, comm.size(), run_fingerprint(cfg, total_reads, total_bases))
            .unwrap_or_else(|e| panic!("cannot open checkpoint dir {}: {e}", dir.display()))
    });
    let loaded_tasks: Option<Vec<OverlapTask>> = checkpoint
        .as_ref()
        .and_then(|store| load_stage(store, TASKS_STAGE, rank, decode_tasks));
    let loaded_table: Option<TableCheckpoint> = checkpoint
        .as_ref()
        .and_then(|store| load_stage(store, TABLE_STAGE, rank, decode_table));
    // Both votes run unconditionally — every rank must join every collective.
    let p = comm.size() as u64;
    let all_tasks = comm.allreduce_sum_u64(loaded_tasks.is_some() as u64) == p;
    let all_table = comm.allreduce_sum_u64(loaded_table.is_some() as u64) == p;
    let resume_tasks = all_tasks.then_some(loaded_tasks).flatten();
    let resume_table = (!all_tasks && all_table).then_some(loaded_table).flatten();
    let resumed_front_end = resume_tasks.is_some() || resume_table.is_some();

    comm.take_stats(); // reset counters; setup traffic is not charged to a stage

    // ---- stages 1 + 2: seed-source front end ------------------------------
    // Reliable mode runs the paper's two passes (Bloom, then hash, with
    // the cross-stage pack overlap). Minimizer mode replaces both with
    // one sketch pass that fills the stage-2 slot of the report; the
    // stage-1 slot stays zeroed — no Bloom pass runs, nothing is timed
    // or exchanged there.
    #[allow(clippy::type_complexity)]
    let (table, bloom_counters, bloom_comm, bloom_wall, bloom_bytes, table_keys, hash_counters, hash_comm, hash_wall, filter) =
        if resume_tasks.is_some() {
            // Stages 1–3 are skipped wholesale; their report slots stay
            // zeroed, like the Bloom slot under minimizer mode. The table
            // is not rebuilt — stage 4 only needs the task list.
            (
                KmerHashTable::default(),
                KmerStageCounters::default(),
                CommStats::new(comm.size()),
                StageTiming::default(),
                0,
                0,
                KmerStageCounters::default(),
                CommStats::new(comm.size()),
                StageTiming::default(),
                FilterStats::default(),
            )
        } else if let Some(restored) = resume_table {
            // Resume from the post-stage-2 snapshot: stages 1–2 are
            // skipped; the filter statistics and pre-filter key count are
            // restored so those report fields survive the restart. The
            // work/traffic/timing slots of the skipped passes stay zeroed.
            (
                restored.table,
                KmerStageCounters::default(),
                CommStats::new(comm.size()),
                StageTiming::default(),
                0,
                restored.table_keys,
                KmerStageCounters::default(),
                CommStats::new(comm.size()),
                StageTiming::default(),
                restored.filter,
            )
        } else { match cfg.seed_mode {
            SeedMode::Reliable => {
                // Cross-stage overlap: the hash pass's first round is
                // packed while the Bloom pass's last exchange is still in
                // flight (the pre-pack reads only local data, which
                // nothing in flight can change).
                let t = Instant::now();
                let (bloom_out, prepacked) = bloom_stage_overlapping(comm, &local, &kc, &exec);
                let bloom_comm = comm.take_stats();
                let bloom_wall = StageTiming {
                    total: t.elapsed(),
                    exchange: bloom_comm.exchange_wall,
                    pack: bloom_comm.pack_wall,
                };
                let mut table = bloom_out.table;
                let table_keys = table.len() as u64;

                let t = Instant::now();
                let hash_out =
                    hash_stage_prepacked(comm, &local, &mut table, &kc, &exec, Some(prepacked));
                let hash_comm = comm.take_stats();
                let hash_wall = StageTiming {
                    total: t.elapsed(),
                    exchange: hash_comm.exchange_wall,
                    pack: hash_comm.pack_wall,
                };
                (
                    table,
                    bloom_out.counters,
                    bloom_comm,
                    bloom_wall,
                    bloom_out.bloom_bytes as u64,
                    table_keys,
                    hash_out.counters,
                    hash_comm,
                    hash_wall,
                    hash_out.filter,
                )
            }
            SeedMode::Minimizer => {
                let t = Instant::now();
                let mo = minimizer_stage(comm, &local, cfg.minimizer_w, &kc, &exec);
                let hash_comm = comm.take_stats();
                let hash_wall = StageTiming {
                    total: t.elapsed(),
                    exchange: hash_comm.exchange_wall,
                    pack: hash_comm.pack_wall,
                };
                let table_keys = mo.counters.promoted_keys;
                (
                    mo.table,
                    KmerStageCounters::default(),
                    CommStats::new(comm.size()),
                    StageTiming::default(),
                    0,
                    table_keys,
                    mo.counters,
                    hash_comm,
                    hash_wall,
                    mo.filter,
                )
            }
        } };
    let table_bytes = table.memory_bytes();
    if let Some(store) = checkpoint.as_ref().filter(|_| !resumed_front_end) {
        // Persist the stage-2 output (outside the stage's timing window;
        // checkpoint I/O is not pipeline work).
        save_stage(store, TABLE_STAGE, rank, &encode_table(&table, table_keys, &filter));
    }

    // ---- stage 3: overlap ---------------------------------------------------
    let (overlap_out, overlap_comm, overlap_wall) = match resume_tasks {
        // Stage 3 skipped: tasks come from the snapshot; the work,
        // traffic, and timing slots stay zeroed like the other skipped
        // stages'. (The skip is safe precisely because it is unanimous —
        // no rank enters the stage's collectives.)
        Some(tasks) => (
            OverlapOutput { tasks, counters: OverlapCounters::default() },
            CommStats::new(comm.size()),
            StageTiming::default(),
        ),
        None => {
            // Length-aware placement needs every read's length; one dense
            // allgather of u32s (id order equals rank-concatenation order).
            let lengths: Option<Vec<u32>> = (oc.placement == TaskPlacement::LongerRead).then(|| {
                let local_lens: Vec<u32> = local.iter().map(|r| r.len() as u32).collect();
                comm.allgather(local_lens).into_iter().flatten().collect()
            });
            let t = Instant::now();
            let out =
                overlap_stage_with_lengths(comm, &table, part, &oc, lengths.as_deref(), &exec);
            let overlap_comm = comm.take_stats();
            let overlap_wall = StageTiming {
                total: t.elapsed(),
                exchange: overlap_comm.exchange_wall,
                pack: overlap_comm.pack_wall,
            };
            if let Some(store) = &checkpoint {
                save_stage(store, TASKS_STAGE, rank, &encode_tasks(&out.tasks));
            }
            (out, overlap_comm, overlap_wall)
        }
    };
    drop(table); // the hash table is no longer needed once tasks exist

    // ---- stage 4: read redistribution + alignment ---------------------------
    let t = Instant::now();
    let mut align_counters = AlignCounters::default();
    let mut store = ReadStore::new(rank, part.clone(), local);
    fetch_remote_reads(
        comm,
        &mut store,
        &overlap_out.tasks,
        cfg.max_exchange_bytes_per_round,
        &mut align_counters,
    );
    let alignments = align_tasks(&store, &overlap_out.tasks, cfg, &mut align_counters, &exec);
    let align_comm = comm.take_stats();
    let align_wall = StageTiming {
        total: t.elapsed(),
        exchange: align_comm.exchange_wall,
        pack: align_comm.pack_wall,
    };

    let report = RankReport {
        rank,
        ranks: comm.size(),
        local_reads,
        local_bases,
        bloom: bloom_counters,
        bloom_comm,
        bloom_wall,
        bloom_bytes,
        table_keys,
        hash: hash_counters,
        hash_comm,
        hash_wall,
        filter,
        table_bytes,
        overlap: overlap_out.counters,
        overlap_comm,
        overlap_wall,
        align: align_counters,
        align_comm,
        align_wall,
    };
    (alignments, report)
}

/// Load and decode one stage snapshot, degrading *every* failure — a
/// missing file, a damaged envelope, a foreign fingerprint, a payload a
/// different build wrote — to `None` (recompute) with a warning on
/// stderr. Checkpoints are an optimization; they must never be able to
/// fail a run that could succeed from scratch.
fn load_stage<T>(
    store: &CheckpointStore,
    stage: &str,
    rank: usize,
    decode: impl FnOnce(&[u8]) -> Result<T, String>,
) -> Option<T> {
    match store.load(stage, rank) {
        Ok(None) => None,
        Ok(Some(payload)) => match decode(&payload) {
            Ok(v) => Some(v),
            Err(e) => {
                eprintln!(
                    "warning: rank {rank}: checkpoint '{stage}' payload rejected ({e}); recomputing"
                );
                None
            }
        },
        Err(e) => {
            eprintln!("warning: rank {rank}: checkpoint '{stage}' rejected ({e}); recomputing");
            None
        }
    }
}

/// Write one stage snapshot; failing to persist is a warning, not an
/// error — it only costs the *next* run a recompute.
fn save_stage(store: &CheckpointStore, stage: &str, rank: usize, payload: &[u8]) {
    if let Err(e) = store.save(stage, rank, payload) {
        eprintln!("warning: rank {rank}: failed to write checkpoint '{stage}': {e}");
    }
}

fn merge(results: Vec<(Vec<AlignmentRecord>, RankReport)>) -> PipelineResult {
    let mut alignments = Vec::new();
    let mut reports = Vec::with_capacity(results.len());
    for (recs, rep) in results {
        alignments.extend(recs);
        reports.push(rep);
    }
    alignments.sort_unstable();
    PipelineResult { alignments, reports }
}

/// Run the full pipeline on `p` ranks over an in-memory read set (IDs must
/// be dense input-order, as produced by the loaders in `dibella-io`).
pub fn run_pipeline(reads: &ReadSet, p: usize, cfg: &PipelineConfig) -> PipelineResult {
    let (part, chunks) = partition_reads(reads, p);
    let results = CommWorld::run_with(p, &cfg.transport, |comm| {
        pipeline_rank(
            comm,
            chunks[comm.rank()].clone().into_reads(),
            &part,
            cfg,
        )
    });
    merge(results)
}

/// Run the pipeline from raw FASTQ bytes using the block-parallel input
/// path: every rank parses the records beginning in its byte range, a
/// world-wide exclusive scan assigns global read IDs, and the partition is
/// built from the per-rank counts (paper §6: "the input reads are
/// distributed roughly uniformly over the processors using parallel I/O").
pub fn run_pipeline_fastq(fastq: &[u8], p: usize, cfg: &PipelineConfig) -> PipelineResult {
    let ranges = byte_ranges(fastq.len(), p);
    let results = CommWorld::run_with(p, &cfg.transport, |comm| {
        let mut local = parse_block(fastq, ranges[comm.rank()])
            .expect("malformed FASTQ block");
        // Global, input-order read IDs via exclusive scan of counts.
        let first = comm.exscan_sum_u64(local.len() as u64) as u32;
        for (i, r) in local.iter_mut().enumerate() {
            r.id = first + i as u32;
        }
        let counts = comm.allgather(local.len());
        let part = ReadPartition::from_counts(&counts);
        pipeline_rank(comm, local, &part, cfg)
    });
    merge(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibella_io::write_fastq;
    use dibella_overlap::SeedPolicy;

    /// Overlapping reads off one random genome.
    fn dataset(n: usize, read_len: usize, stride: usize, seed: u64) -> ReadSet {
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let genome: Vec<u8> = (0..(n * stride + read_len))
            .map(|_| b"ACGT"[(rnd() % 4) as usize])
            .collect();
        (0..n as u32)
            .map(|i| {
                let s = i as usize * stride;
                Read::new(i, format!("r{i}"), genome[s..s + read_len].to_vec())
            })
            .collect()
    }

    fn small_cfg() -> PipelineConfig {
        PipelineConfig {
            k: 11,
            seed_policy: SeedPolicy::MinDistance(11),
            max_seeds_per_pair: 32,
            max_kmers_per_round: 512,
            // Error-free toy data: multiplicity grows with true genomic
            // copies, cap high to keep neighbours' shared k-mers.
            max_multiplicity: Some(24),
            ..Default::default()
        }
    }

    #[test]
    fn finds_neighbour_overlaps_end_to_end() {
        let reads = dataset(10, 200, 60, 42);
        let res = run_pipeline(&reads, 3, &small_cfg());
        // Adjacent reads overlap by 140 bases — all 9 pairs must align
        // with score ≈ overlap length.
        for i in 0..9u32 {
            let rec = res
                .alignments
                .iter()
                .find(|r| r.pair == dibella_overlap::ReadPair::new(i, i + 1))
                .unwrap_or_else(|| panic!("missing alignment ({i},{})", i + 1));
            assert!(rec.score >= 120, "pair ({i},{}): score {}", i, rec.score);
            assert!(!rec.reverse);
        }
        assert!(res.n_pairs() >= 9);
    }

    #[test]
    fn world_size_invariance() {
        let reads = dataset(12, 150, 50, 7);
        let cfg = small_cfg();
        let baseline = run_pipeline(&reads, 1, &cfg);
        for p in [2usize, 4, 5] {
            let r = run_pipeline(&reads, p, &cfg);
            assert_eq!(
                r.alignments, baseline.alignments,
                "P={p} diverges from serial"
            );
        }
    }

    #[test]
    fn fastq_path_matches_in_memory_path() {
        let reads = dataset(9, 150, 50, 3);
        let mut fastq = Vec::new();
        write_fastq(&mut fastq, &reads).unwrap();
        let cfg = small_cfg();
        let mem = run_pipeline(&reads, 3, &cfg);
        let via_fastq = run_pipeline_fastq(&fastq, 3, &cfg);
        assert_eq!(mem.alignments, via_fastq.alignments);
    }

    #[test]
    fn reports_are_complete_and_consistent() {
        let reads = dataset(10, 150, 50, 11);
        let res = run_pipeline(&reads, 4, &small_cfg());
        assert_eq!(res.reports.len(), 4);
        let total_reads: u64 = res.reports.iter().map(|r| r.local_reads).sum();
        assert_eq!(total_reads, 10);
        // k-mers parsed in both passes match.
        let b: u64 = res.reports.iter().map(|r| r.bloom.kmers_parsed).sum();
        let h: u64 = res.reports.iter().map(|r| r.hash.kmers_parsed).sum();
        assert_eq!(b, h);
        // Hash pass moves 2.5x the bytes of the bloom pass.
        let bb: u64 = res.reports.iter().map(|r| r.bloom_comm.total_bytes()).sum();
        let hb: u64 = res.reports.iter().map(|r| r.hash_comm.total_bytes()).sum();
        assert_eq!(hb, bb * 20 / 8, "wire ratio should be exactly 2.5x");
        // Alignments computed equal the accepted ones here (threshold 0).
        let computed: u64 = res.reports.iter().map(|r| r.align.alignments).sum();
        assert_eq!(computed, res.n_alignments_computed());
        assert!(computed >= res.alignments.len() as u64);
        // Round-aware exchange accounting: every stage executed at least
        // one round on every rank, and the irregular-collective count of
        // each stage equals the rounds its counters report — true at any
        // round cap, not just the monolithic default.
        for r in &res.reports {
            assert!(r.bloom.rounds >= 1);
            assert!(r.hash.rounds >= 1);
            assert!(r.overlap.rounds >= 1);
            assert!(r.align.rounds >= 2, "ID requests + sequence replies");
            assert_eq!(r.bloom_comm.alltoallv_calls, r.bloom.rounds);
            assert_eq!(r.hash_comm.alltoallv_calls, r.hash.rounds);
            assert_eq!(r.overlap_comm.alltoallv_calls, r.overlap.rounds);
            assert_eq!(r.align_comm.alltoallv_calls, r.align.rounds);
            // The round-peak high-water mark never exceeds a stage's total
            // send volume.
            for comm in [&r.bloom_comm, &r.hash_comm, &r.overlap_comm, &r.align_comm] {
                assert!(comm.peak_round_bytes <= comm.total_bytes());
            }
        }
    }

    #[test]
    fn total_wall_sums_all_stage_timings() {
        let reads = dataset(8, 150, 50, 9);
        let res = run_pipeline(&reads, 2, &small_cfg());
        for r in &res.reports {
            let timings = r.stage_timings();
            assert_eq!(timings.len(), 4);
            let sum: Duration = timings.iter().map(|t| t.total).sum();
            assert_eq!(r.total_wall(), sum);
            let exch: Duration = timings.iter().map(|t| t.exchange).sum();
            assert_eq!(r.total_exchange(), exch);
            assert!(r.total_wall() >= r.bloom_wall.total + r.align_wall.total);
            // Pack walls are recorded per stage; with data flowing, some
            // stage must have packed something, and the derived compute
            // split never exceeds the stage total.
            let pack: Duration = timings.iter().map(|t| t.pack).sum();
            assert!(pack > Duration::ZERO);
            for t in &timings {
                assert!(t.compute() <= t.total);
            }
        }
    }

    #[test]
    fn single_rank_pipeline_works() {
        let reads = dataset(6, 120, 40, 5);
        let res = run_pipeline(&reads, 1, &small_cfg());
        assert!(!res.alignments.is_empty());
        assert_eq!(res.reports.len(), 1);
    }

    fn minimizer_cfg() -> PipelineConfig {
        PipelineConfig {
            seed_mode: SeedMode::Minimizer,
            minimizer_w: 5,
            min_chain_seeds: 2,
            ..small_cfg()
        }
    }

    #[test]
    fn minimizer_mode_finds_neighbour_overlaps() {
        let reads = dataset(10, 200, 60, 42);
        let res = run_pipeline(&reads, 3, &minimizer_cfg());
        // Adjacent reads overlap by 140 bases; the sketch keeps enough
        // shared minimizers for every neighbour pair to survive chaining.
        for i in 0..9u32 {
            let rec = res
                .alignments
                .iter()
                .find(|r| r.pair == dibella_overlap::ReadPair::new(i, i + 1))
                .unwrap_or_else(|| panic!("missing alignment ({i},{})", i + 1));
            assert!(rec.score >= 120, "pair ({i},{}): score {}", i, rec.score);
            assert!(!rec.reverse);
        }
        for r in &res.reports {
            // The Bloom pass is skipped: its report slot is all-zero.
            assert_eq!(r.bloom, dibella_kcount::KmerStageCounters::default());
            assert_eq!(r.bloom_comm.total_bytes(), 0);
            assert_eq!(r.bloom_bytes, 0);
            assert!(r.hash.rounds >= 1);
            assert_eq!(r.hash_comm.alltoallv_calls, r.hash.rounds);
        }
        // The sketch samples a subset of windows, so it must ship strictly
        // fewer seed-stage bytes than the two-pass reliable front end.
        let reliable = run_pipeline(&reads, 3, &small_cfg());
        let sketch_bytes: u64 = res.reports.iter().map(|r| r.hash_comm.total_bytes()).sum();
        let two_pass_bytes: u64 = reliable
            .reports
            .iter()
            .map(|r| r.bloom_comm.total_bytes() + r.hash_comm.total_bytes())
            .sum();
        assert!(
            sketch_bytes * 2 < two_pass_bytes,
            "sketch {sketch_bytes} B vs reliable {two_pass_bytes} B"
        );
    }

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dibella-pipeline-ckpt-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let reads = dataset(12, 150, 50, 21);
        let dir = ckpt_dir("resume");
        let cfg = PipelineConfig { checkpoint_dir: Some(dir.clone()), ..small_cfg() };
        let p = 3;

        let first = run_pipeline(&reads, p, &cfg);
        for r in 0..p {
            for stage in [crate::checkpoint::TABLE_STAGE, crate::checkpoint::TASKS_STAGE] {
                assert!(
                    dir.join(format!("dibella-{stage}.r{r}of{p}.ckpt")).exists(),
                    "missing {stage} checkpoint for rank {r}"
                );
            }
        }

        // Second run resumes from the tasks snapshot: stages 1–3 are
        // skipped (zeroed slots), yet alignments are bit-identical.
        let resumed = run_pipeline(&reads, p, &cfg);
        assert_eq!(resumed.alignments, first.alignments);
        for r in &resumed.reports {
            assert_eq!(r.bloom_comm.total_bytes(), 0);
            assert_eq!(r.hash_comm.total_bytes(), 0);
            assert_eq!(r.overlap_comm.total_bytes(), 0);
            assert_eq!(r.overlap.rounds, 0, "overlap stage must not have run");
            assert!(r.align.rounds >= 2, "alignment stage always runs");
        }

        // Drop the tasks snapshots: the world falls back to the table
        // snapshot, re-runs the overlap stage only, and still matches.
        for r in 0..p {
            std::fs::remove_file(dir.join(format!("dibella-tasks.r{r}of{p}.ckpt"))).unwrap();
        }
        let from_table = run_pipeline(&reads, p, &cfg);
        assert_eq!(from_table.alignments, first.alignments);
        for (r, fresh) in from_table.reports.iter().zip(&first.reports) {
            assert_eq!(r.bloom_comm.total_bytes(), 0, "bloom pass must be skipped");
            assert_eq!(r.overlap.rounds, fresh.overlap.rounds);
            assert_eq!(r.overlap_comm.total_bytes(), fresh.overlap_comm.total_bytes());
            assert_eq!(r.filter, fresh.filter, "filter stats restored from the snapshot");
            assert_eq!(r.table_keys, fresh.table_keys);
        }

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_or_partial_checkpoints_degrade_to_recompute() {
        let reads = dataset(10, 150, 50, 33);
        let dir = ckpt_dir("degrade");
        let cfg = PipelineConfig { checkpoint_dir: Some(dir.clone()), ..small_cfg() };
        let p = 2;
        let first = run_pipeline(&reads, p, &cfg);

        // Corrupt rank 0's tasks snapshot and delete rank 1's table
        // snapshot: neither resume point is unanimous anymore, so the
        // world must recompute everything — and still match.
        let tasks0 = dir.join(format!("dibella-tasks.r0of{p}.ckpt"));
        let mut bytes = std::fs::read(&tasks0).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&tasks0, &bytes).unwrap();
        std::fs::remove_file(dir.join(format!("dibella-table.r1of{p}.ckpt"))).unwrap();

        let rerun = run_pipeline(&reads, p, &cfg);
        assert_eq!(rerun.alignments, first.alignments);
        for r in &rerun.reports {
            assert!(r.bloom.rounds >= 1, "full recompute must run the Bloom pass");
            assert!(r.overlap.rounds >= 1);
        }

        // A config change (different k) invalidates the fingerprint: the
        // rewritten snapshots are ignored, not misapplied.
        let other = PipelineConfig { k: 13, ..cfg.clone() };
        let other_res = run_pipeline(&reads, p, &other);
        for r in &other_res.reports {
            assert!(r.bloom.rounds >= 1, "foreign-fingerprint snapshots must be ignored");
        }

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn minimizer_mode_world_size_invariance() {
        let reads = dataset(12, 150, 50, 7);
        let cfg = minimizer_cfg();
        let baseline = run_pipeline(&reads, 1, &cfg);
        assert!(!baseline.alignments.is_empty());
        for p in [2usize, 4, 5] {
            let r = run_pipeline(&reads, p, &cfg);
            assert_eq!(
                r.alignments, baseline.alignments,
                "P={p} diverges from serial"
            );
        }
    }
}
