//! Stage-boundary checkpoint payloads for the pipeline.
//!
//! The hardened exchange layer (`dibella-comm`) turns an unrecoverable
//! transport fault into a clean stage failure; this module is the other
//! half of that story — it lets the *next* run skip the stages the failed
//! run already completed. Two per-rank snapshots exist:
//!
//! * **`table`** — written after stage 2: the reliable-k-mer (or
//!   minimizer) table partition, its pre-filter key count, and the filter
//!   statistics. Resuming from it skips stages 1–2.
//! * **`tasks`** — written after stage 3: the alignment tasks homed on
//!   this rank. Resuming from it skips stages 1–3.
//!
//! Payloads go through the same [`Wire`] codec as the exchange rounds and
//! are wrapped by [`dibella_io::CheckpointStore`], which adds the magic /
//! version / world / rank / fingerprint / CRC-32 envelope. A payload that
//! fails to decode is treated exactly like a missing file: the rank warns
//! and recomputes — a stale or corrupt checkpoint can cost time, never
//! correctness.
//!
//! Determinism note: a reloaded table inserts entries in sorted-key order
//! rather than the original pass's arrival order, so the `HashMap`
//! iteration order can differ from the run that wrote the snapshot. That
//! is harmless — the overlap stage sorts and deduplicates its output, and
//! all its work counters are order-independent sums — so alignments and
//! stage counters stay bit-identical (asserted by `tests/chaos.rs`).

use crate::config::{PipelineConfig, SeedMode};
use dibella_comm::{encode_slice, try_decode_vec, Wire};
use dibella_kcount::{FilterStats, KmerEntry, KmerHashTable, Occurrence};
use dibella_kmer::{Kmer1, Strand};
use dibella_overlap::{OverlapTask, ReadPair, SharedSeed};

/// Stage name of the post-stage-2 snapshot (see [`crate::checkpoint`]).
pub const TABLE_STAGE: &str = "table";
/// Stage name of the post-stage-3 snapshot (see [`crate::checkpoint`]).
pub const TASKS_STAGE: &str = "tasks";

/// splitmix64 finalizer — the fingerprint fold below only needs good
/// avalanche, not cryptographic strength.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Fingerprint of everything a checkpoint's contents depend on: the
/// dataset (read and base totals) and every config knob that shapes the
/// table or the task list. A run whose fingerprint differs silently
/// ignores the other run's checkpoints ([`dibella_io::CheckpointStore`]
/// rejects the file with a typed mismatch, and the rank recomputes).
pub fn run_fingerprint(cfg: &PipelineConfig, total_reads: u64, total_bases: u64) -> u64 {
    let mut h = 0xD1BE_11A5u64;
    for word in [
        cfg.k as u64,
        match cfg.seed_mode {
            SeedMode::Reliable => 0,
            SeedMode::Minimizer => 1,
        },
        cfg.minimizer_w as u64,
        cfg.min_chain_seeds as u64,
        cfg.max_multiplicity.map_or(u64::MAX, |m| m as u64),
        total_reads,
        total_bases,
    ] {
        h = mix(h ^ word);
    }
    h
}

/// Decoded contents of a `table` checkpoint.
#[derive(Debug)]
pub struct TableCheckpoint {
    /// Keys promoted into the table before the reliable filter ran
    /// (`RankReport::table_keys`; not reconstructible from the filtered
    /// table itself).
    pub table_keys: u64,
    /// Outcome of the reliable-k-mer filter.
    pub filter: FilterStats,
    /// The filtered table partition.
    pub table: KmerHashTable,
}

/// Per-entry wire record: `(packed k-mer word, (k, count, n_occurrences))`.
type EntryMsg = (u64, (u32, u32, u32));
/// Per-occurrence wire record: `(read, pos, strand)`.
type OccMsg = (u32, u32, u32);
/// Per-task wire record: `(read a, read b, n_seeds)`.
type TaskMsg = (u32, u32, u32);
/// Per-seed wire record: `(a_pos, b_pos, reverse)`.
type SeedMsg = (u32, u32, u32);

/// Encode a `table` checkpoint payload.
///
/// Layout: six `u64` counters (`table_keys`, the three [`FilterStats`]
/// fields, entry count, occurrence count) followed by the entry records
/// sorted by packed key — so the payload, like every other artifact of
/// the pipeline, is bit-identical across runs — and the concatenated
/// occurrence lists in the same order.
pub fn encode_table(table: &KmerHashTable, table_keys: u64, filter: &FilterStats) -> Vec<u8> {
    let mut entries: Vec<(&Kmer1, &KmerEntry)> = table.iter().collect();
    entries.sort_unstable_by_key(|(kmer, _)| (*kmer.words(), kmer.k()));

    let metas: Vec<EntryMsg> = entries
        .iter()
        .map(|(kmer, e)| {
            (
                kmer.words()[0],
                (kmer.k() as u32, e.count, e.occurrences.len() as u32),
            )
        })
        .collect();
    let occs: Vec<OccMsg> = entries
        .iter()
        .flat_map(|(_, e)| {
            e.occurrences
                .iter()
                .map(|o| (o.read, o.pos, o.strand.as_u8() as u32))
        })
        .collect();

    let mut out = Vec::new();
    for word in [
        table_keys,
        filter.singletons_removed,
        filter.high_freq_removed,
        filter.retained,
        metas.len() as u64,
        occs.len() as u64,
    ] {
        word.write(&mut out);
    }
    out.extend_from_slice(&encode_slice(&metas));
    out.extend_from_slice(&encode_slice(&occs));
    out
}

/// Read the six-`u64` counter header shared by both payload kinds'
/// decoders, returning the remaining payload bytes.
fn read_counters<const N: usize>(buf: &[u8]) -> Result<([u64; N], &[u8]), String> {
    let need = N * u64::SIZE;
    if buf.len() < need {
        return Err(format!("payload too short for header: {} < {need} bytes", buf.len()));
    }
    let mut words = [0u64; N];
    for (i, w) in words.iter_mut().enumerate() {
        *w = u64::read(&buf[i * u64::SIZE..]);
    }
    Ok((words, &buf[need..]))
}

/// Split `buf` into a decoded record vector of `n` records and the rest.
fn take_records<'a, T: Wire>(
    buf: &'a [u8],
    n: u64,
    what: &str,
) -> Result<(Vec<T>, &'a [u8]), String> {
    let bytes = (n as usize)
        .checked_mul(T::SIZE)
        .filter(|&b| b <= buf.len())
        .ok_or_else(|| format!("{what} section claims {n} records but only {} bytes remain", buf.len()))?;
    let recs = try_decode_vec(&buf[..bytes]).map_err(|e| format!("{what} section: {e}"))?;
    Ok((recs, &buf[bytes..]))
}

/// Decode a `table` checkpoint payload (inverse of [`encode_table`]).
///
/// Every structural claim in the payload is cross-checked — section
/// lengths, the occurrence-count sum, trailing bytes — so a payload that
/// survived the envelope CRC but was written by a different build still
/// degrades to recomputation instead of a corrupt table.
pub fn decode_table(buf: &[u8]) -> Result<TableCheckpoint, String> {
    let ([table_keys, singletons, high_freq, retained, n_entries, n_occs], rest) =
        read_counters::<6>(buf)?;
    let (metas, rest) = take_records::<EntryMsg>(rest, n_entries, "entry")?;
    let (occs, rest) = take_records::<OccMsg>(rest, n_occs, "occurrence")?;
    if !rest.is_empty() {
        return Err(format!("{} trailing bytes after occurrence section", rest.len()));
    }
    let claimed: u64 = metas.iter().map(|&(_, (_, _, n))| n as u64).sum();
    if claimed != n_occs {
        return Err(format!(
            "entries claim {claimed} occurrences but the payload holds {n_occs}"
        ));
    }
    if retained != n_entries {
        return Err(format!(
            "filter stats retain {retained} keys but {n_entries} entries are present"
        ));
    }

    let mut table = KmerHashTable::with_capacity(metas.len());
    let mut occ_iter = occs.into_iter();
    for (word, (k, count, n_occ)) in metas {
        if k == 0 || k > u16::MAX as u32 {
            return Err(format!("entry has impossible k = {k}"));
        }
        let kmer = Kmer1::from_words([word], k as u16);
        let occurrences = occ_iter
            .by_ref()
            .take(n_occ as usize)
            .map(|(read, pos, strand)| Occurrence {
                read,
                pos,
                strand: Strand::from_u8(strand as u8),
            })
            .collect();
        table.insert_entry(kmer, KmerEntry { count, occurrences });
    }
    Ok(TableCheckpoint {
        table_keys,
        filter: FilterStats {
            singletons_removed: singletons,
            high_freq_removed: high_freq,
            retained,
        },
        table,
    })
}

/// Encode a `tasks` checkpoint payload.
///
/// Layout: six `u64` counters (task count, seed count, four reserved
/// zeros keeping the header the same shape as the table payload's)
/// followed by the task records and the concatenated seed lists. Tasks
/// are stored in the stage's output order, which is already sorted and
/// deterministic.
pub fn encode_tasks(tasks: &[OverlapTask]) -> Vec<u8> {
    let msgs: Vec<TaskMsg> = tasks
        .iter()
        .map(|t| (t.pair.a, t.pair.b, t.seeds.len() as u32))
        .collect();
    let seeds: Vec<SeedMsg> = tasks
        .iter()
        .flat_map(|t| t.seeds.iter().map(|s| (s.a_pos, s.b_pos, s.reverse as u32)))
        .collect();
    let mut out = Vec::new();
    for word in [msgs.len() as u64, seeds.len() as u64, 0, 0, 0, 0] {
        word.write(&mut out);
    }
    out.extend_from_slice(&encode_slice(&msgs));
    out.extend_from_slice(&encode_slice(&seeds));
    out
}

/// Decode a `tasks` checkpoint payload (inverse of [`encode_tasks`]).
pub fn decode_tasks(buf: &[u8]) -> Result<Vec<OverlapTask>, String> {
    let ([n_tasks, n_seeds, r0, r1, r2, r3], rest) = read_counters::<6>(buf)?;
    if r0 != 0 || r1 != 0 || r2 != 0 || r3 != 0 {
        return Err("reserved header words are nonzero".into());
    }
    let (msgs, rest) = take_records::<TaskMsg>(rest, n_tasks, "task")?;
    let (seeds, rest) = take_records::<SeedMsg>(rest, n_seeds, "seed")?;
    if !rest.is_empty() {
        return Err(format!("{} trailing bytes after seed section", rest.len()));
    }
    let claimed: u64 = msgs.iter().map(|&(_, _, n)| n as u64).sum();
    if claimed != n_seeds {
        return Err(format!("tasks claim {claimed} seeds but the payload holds {n_seeds}"));
    }

    let mut seed_iter = seeds.into_iter();
    let mut tasks = Vec::with_capacity(msgs.len());
    for (a, b, n) in msgs {
        if a >= b {
            return Err(format!("task pair ({a},{b}) is not normalized"));
        }
        let seeds: Vec<SharedSeed> = seed_iter
            .by_ref()
            .take(n as usize)
            .map(|(a_pos, b_pos, reverse)| SharedSeed {
                a_pos,
                b_pos,
                reverse: reverse != 0,
            })
            .collect();
        tasks.push(OverlapTask { pair: ReadPair::new(a, b), seeds });
    }
    Ok(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibella_kcount::KcountConfig;

    fn sample_table() -> (KmerHashTable, u64, FilterStats) {
        let cfg = KcountConfig {
            k: 7,
            max_multiplicity: 8,
            bloom_fp_rate: 0.05,
            expected_distinct: 64,
            max_kmers_per_round: 1 << 12,
            max_exchange_bytes_per_round: usize::MAX,
            extract_batch: KcountConfig::DEFAULT_EXTRACT_BATCH,
        };
        let mut t = KmerHashTable::with_capacity(8);
        for (i, s) in [b"ACGTACG", b"TTTTAAA", b"GGGCCCA"].iter().enumerate() {
            let km = Kmer1::from_ascii(*s).unwrap();
            t.insert_key(km);
            for j in 0..=i as u32 + 1 {
                t.record_occurrence(
                    &km,
                    Occurrence {
                        read: j,
                        pos: 3 * j + i as u32,
                        strand: if j % 2 == 0 { Strand::Forward } else { Strand::Reverse },
                    },
                    &cfg,
                );
            }
        }
        let filter = t.retain_reliable(8);
        (t, 3, filter)
    }

    fn entries_sorted(t: &KmerHashTable) -> Vec<(Kmer1, u32, Vec<Occurrence>)> {
        let mut v: Vec<_> = t
            .iter()
            .map(|(k, e)| (*k, e.count, e.occurrences.clone()))
            .collect();
        v.sort_unstable_by_key(|(k, _, _)| *k.words());
        v
    }

    #[test]
    fn table_round_trips() {
        let (table, keys, filter) = sample_table();
        let buf = encode_table(&table, keys, &filter);
        let back = decode_table(&buf).unwrap();
        assert_eq!(back.table_keys, keys);
        assert_eq!(back.filter, filter);
        assert_eq!(entries_sorted(&back.table), entries_sorted(&table));
    }

    #[test]
    fn table_encoding_is_deterministic() {
        let (table, keys, filter) = sample_table();
        let a = encode_table(&table, keys, &filter);
        // Re-insert in a different order: same payload bytes.
        let mut shuffled = KmerHashTable::with_capacity(8);
        let mut entries = entries_sorted(&table);
        entries.reverse();
        for (k, count, occurrences) in entries {
            shuffled.insert_entry(k, KmerEntry { count, occurrences });
        }
        assert_eq!(a, encode_table(&shuffled, keys, &filter));
    }

    #[test]
    fn table_decode_rejects_structural_damage() {
        let (table, keys, filter) = sample_table();
        let buf = encode_table(&table, keys, &filter);
        // Truncation inside the occurrence section.
        assert!(decode_table(&buf[..buf.len() - 4]).is_err());
        // Trailing garbage.
        let mut long = buf.clone();
        long.extend_from_slice(&[0; 12]);
        assert!(decode_table(&long).is_err());
        // Occurrence-count sum mismatch (lie in one entry's n_occ).
        let mut lie = buf.clone();
        let entry0_nocc = 6 * 8 + 8 + 8; // counters + word + (k, count)
        lie[entry0_nocc] = lie[entry0_nocc].wrapping_add(1);
        assert!(decode_table(&lie).is_err());
        // Retained-count mismatch.
        let mut bad_filter = buf;
        bad_filter[3 * 8] ^= 1;
        assert!(decode_table(&bad_filter).is_err());
    }

    fn sample_tasks() -> Vec<OverlapTask> {
        vec![
            OverlapTask {
                pair: ReadPair::new(0, 3),
                seeds: vec![
                    SharedSeed { a_pos: 5, b_pos: 40, reverse: false },
                    SharedSeed { a_pos: 19, b_pos: 54, reverse: true },
                ],
            },
            OverlapTask { pair: ReadPair::new(1, 2), seeds: vec![] },
            OverlapTask {
                pair: ReadPair::new(2, 7),
                seeds: vec![SharedSeed { a_pos: 0, b_pos: 0, reverse: false }],
            },
        ]
    }

    #[test]
    fn tasks_round_trip() {
        let tasks = sample_tasks();
        let buf = encode_tasks(&tasks);
        assert_eq!(decode_tasks(&buf).unwrap(), tasks);
        assert_eq!(decode_tasks(&encode_tasks(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn tasks_decode_rejects_structural_damage() {
        let buf = encode_tasks(&sample_tasks());
        assert!(decode_tasks(&buf[..buf.len() - 1]).is_err());
        // Seed-count lie.
        let mut lie = buf.clone();
        let task0_nseeds = 6 * 8 + 8; // counters + (a, b)
        lie[task0_nseeds] = lie[task0_nseeds].wrapping_add(1);
        assert!(decode_tasks(&lie).is_err());
        // Denormalized pair (a >= b).
        let mut swap = buf.clone();
        swap[6 * 8] = 9; // task 0 becomes (9, 3)
        assert!(decode_tasks(&swap).is_err());
        // Nonzero reserved header word.
        let mut reserved = buf;
        reserved[2 * 8] = 1;
        assert!(decode_tasks(&reserved).is_err());
    }

    #[test]
    fn fingerprint_tracks_config_and_dataset() {
        let cfg = PipelineConfig::default();
        let base = run_fingerprint(&cfg, 100, 50_000);
        assert_eq!(base, run_fingerprint(&cfg, 100, 50_000));
        assert_ne!(base, run_fingerprint(&cfg, 101, 50_000));
        assert_ne!(base, run_fingerprint(&cfg, 100, 50_001));
        let other_k = PipelineConfig { k: cfg.k + 2, ..cfg.clone() };
        assert_ne!(base, run_fingerprint(&other_k, 100, 50_000));
        let sketch = PipelineConfig { seed_mode: SeedMode::Minimizer, ..cfg };
        assert_ne!(base, run_fingerprint(&sketch, 100, 50_000));
    }
}
