//! # dibella-core
//!
//! The diBELLA pipeline (Ellis et al., ICPP 2019): a four-stage
//! distributed-memory overlapper and aligner for noisy long reads.
//!
//! 1. **Bloom filter** — stream k-mers to their owner ranks; drop
//!    singletons probabilistically, seed the hash table with the rest.
//! 2. **Hash table** — second pass attaches (read, position, strand)
//!    occurrence lists; filter to *reliable* k-mers (2 ≤ count ≤ m).
//! 3. **Overlap** — Algorithm 1 forms all read pairs sharing a reliable
//!    k-mer and routes each task to the home of one of its reads.
//! 4. **Alignment** — fetch remote reads, then x-drop seed-and-extend on
//!    every (pair, seed) task.
//!
//! ```
//! use dibella_core::{run_pipeline, PipelineConfig};
//! use dibella_io::{Read, ReadSet};
//!
//! // Three overlapping slices of one tiny random "genome".
//! let mut s = 0x0123_4567_89AB_CDEFu64;
//! let g: Vec<u8> = (0..160).map(|_| {
//!     s ^= s << 13; s ^= s >> 7; s ^= s << 17;
//!     b"ACGT"[(s % 4) as usize]
//! }).collect();
//! let reads: ReadSet = (0..3u32)
//!     .map(|i| Read::new(i, format!("r{i}"), g[i as usize * 30..][..100].to_vec()))
//!     .collect();
//! let cfg = PipelineConfig { k: 11, max_multiplicity: Some(16), ..Default::default() };
//! let result = run_pipeline(&reads, 2, &cfg);
//! assert!(result.n_pairs() >= 2);
//! ```

#![warn(missing_docs)]

pub mod alignment_stage;
pub mod checkpoint;
pub mod config;
pub mod graph;
pub mod model;
pub mod pipeline;
pub mod record;

pub use alignment_stage::{align_tasks, fetch_remote_reads, AlignCounters};
pub use checkpoint::{
    decode_table, decode_tasks, encode_table, encode_tasks, run_fingerprint, TableCheckpoint,
    TABLE_STAGE, TASKS_STAGE,
};
pub use config::{PipelineConfig, SeedMode};
pub use graph::{OverlapEdge, OverlapGraph};
pub use model::{project, rank_load, PipelineProjection, Stage};
pub use pipeline::{
    pipeline_rank, run_pipeline, run_pipeline_fastq, PipelineResult, RankReport, StageTiming,
};
pub use record::AlignmentRecord;
