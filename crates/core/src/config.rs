//! End-to-end pipeline configuration.

use dibella_align::{Scoring, SimdMode};
use dibella_comm::TransportKind;
use dibella_kcount::KcountConfig;
use dibella_kmer::params;
use dibella_overlap::{ChainConfig, OverlapConfig, OverlapEngine, SeedPolicy, TaskPlacement};
use std::fmt;
use std::str::FromStr;

/// Which seed source feeds the overlap stage (the pipeline's front end).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SeedMode {
    /// The paper's reliable-k-mer front end: a distributed Bloom pass
    /// eliminates singletons, then a full hash pass attaches occurrence
    /// lists — every k-mer instance crosses the wire twice (8 + 20
    /// bytes).
    #[default]
    Reliable,
    /// Minimizer-sketch front end (minimap-style): one pass exchanges
    /// only (w, k) window-minimum k-mers (~`2/(w+1)` of instances, 20
    /// bytes each), and candidate pairs are colinear-chained before
    /// alignment. Traffic shrinks several-fold; recall on genuine
    /// overlaps stays within a few percent (see `tests/seed_modes.rs`).
    Minimizer,
}

impl FromStr for SeedMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "reliable" => Ok(SeedMode::Reliable),
            "minimizer" => Ok(SeedMode::Minimizer),
            other => Err(format!("unknown seed mode {other:?} (expected reliable|minimizer)")),
        }
    }
}

impl fmt::Display for SeedMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SeedMode::Reliable => "reliable",
            SeedMode::Minimizer => "minimizer",
        })
    }
}

/// Configuration of the full four-stage pipeline.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// k-mer length (≤ 32; the paper's typical value is 17).
    pub k: usize,
    /// Assumed per-base error rate of the data (drives `m`).
    pub error_rate: f64,
    /// Assumed depth of coverage (drives `m`).
    pub depth: f64,
    /// Override the derived high-occurrence threshold `m`.
    pub max_multiplicity: Option<u32>,
    /// Seed source for the overlap stage: the paper's reliable-k-mer
    /// passes, or the minimizer sketch (`--seed-mode`,
    /// `DIBELLA_SEED_MODE`).
    pub seed_mode: SeedMode,
    /// Minimizer window width `w` (number of consecutive k-mer windows a
    /// selected k-mer must win; only used under
    /// [`SeedMode::Minimizer`]). Expected sketch density is
    /// `2/(w + 1)`.
    pub minimizer_w: usize,
    /// Minimum colinear-chain length for a minimizer-mode candidate pair
    /// to survive into alignment (only used under
    /// [`SeedMode::Minimizer`]).
    pub min_chain_seeds: usize,
    /// Seed exploration policy (one-seed / min-distance; paper §5).
    pub seed_policy: SeedPolicy,
    /// Cap on seeds explored per pair.
    pub max_seeds_per_pair: usize,
    /// Overlap-stage exchange engine (`--overlap-engine`,
    /// `DIBELLA_OVERLAP_ENGINE`): the paper's per-seed `pairs` records, or
    /// the source-deduplicating `spgemm` reformulation. Bit-identical
    /// alignments either way.
    pub overlap_engine: OverlapEngine,
    /// Pair indices per executor batch in the `pairs` engine
    /// (`--pair-batch`, `DIBELLA_PAIR_BATCH`).
    pub pair_batch: usize,
    /// Rows per SpGEMM block in the `spgemm` engine (`--spgemm-block`,
    /// `DIBELLA_SPGEMM_BLOCK`).
    pub spgemm_block: usize,
    /// x-drop termination parameter `X` of the alignment kernel.
    pub xdrop: i32,
    /// Alignment scoring scheme.
    pub scoring: Scoring,
    /// Alignments scoring below this are dropped from the output (the
    /// per-seed alignment is still *computed* — cost is unchanged).
    pub min_align_score: i32,
    /// Streaming cap per rank and round in the k-mer passes.
    pub max_kmers_per_round: usize,
    /// Byte cap per rank and exchange round, across **all four stages**
    /// (`usize::MAX` = unbounded). Every stage streams its irregular
    /// exchange through the `RoundExchange` engine in rounds of at most
    /// this many send bytes (plus at most one record of slack — records
    /// never split across rounds), packing each round while the previous
    /// one is in flight. The CLI exposes this as `--round-mb`, the bench
    /// harness as `DIBELLA_ROUND_MB`. Results are bit-identical at every
    /// setting; only memory footprint and comm/compute overlap change.
    pub max_exchange_bytes_per_round: usize,
    /// Bloom filter false-positive target.
    pub bloom_fp_rate: f64,
    /// When set, run a distributed HyperLogLog pre-pass of this precision
    /// to size the Bloom filter instead of the Eq.-2 estimate (paper §6:
    /// HipMer's fallback for extremely large / repetitive genomes).
    pub hll_precision: Option<u8>,
    /// Alignment-task placement: the paper's parity heuristic, or the §9
    /// future-work longer-read placement that minimizes read movement.
    pub placement: TaskPlacement,
    /// **Deprecated alias** for [`PipelineConfig::threads`], kept so
    /// existing configs and the `--align-threads` / `DIBELLA_ALIGN_THREADS`
    /// spellings keep working: it is only consulted when `threads` is
    /// `None`. Historically this knob threaded the alignment stage alone;
    /// the whole pipeline now runs on one executor.
    pub align_threads: usize,
    /// Intra-rank threads for **all four stages** (hybrid parallelism,
    /// paper §9 / diBELLA 2D lineage): `1` = sequential, `0` = one thread
    /// per hardware core, `n` = exactly `n` threads. `None` (the default)
    /// falls back to the deprecated [`PipelineConfig::align_threads`].
    /// Every stage shards its work into fixed-size batches on the shared
    /// `BatchedExecutor` and merges in batch order, so results are
    /// bit-identical for every value.
    pub threads: Option<usize>,
    /// Communication backend the SPMD world runs on: `SharedMem` (the
    /// default) executes collectives through real shared memory;
    /// `SimNet(platform, ranks_per_node)` runs the same byte-identical
    /// exchanges but reports the `exchange_wall` a modeled interconnect
    /// (virtual Cori, Edison, Titan or AWS) would have charged.
    pub transport: TransportKind,
    /// Alignment-kernel implementation for stage 4: `Some(mode)` pins it
    /// for every worker thread; `None` (the default) defers to the
    /// `DIBELLA_SIMD` environment knob (itself defaulting to
    /// [`SimdMode::Auto`], the lane-SIMD kernels). Scalar and SIMD
    /// kernels are bit-identical, so this only moves throughput. The CLI
    /// exposes this as `--simd`, the bench harness as `DIBELLA_SIMD`.
    pub simd: Option<SimdMode>,
    /// When set (`--checkpoint-dir`), each rank serializes its completed
    /// stage outputs (reliable/minimizer k-mer table after stage 2, the
    /// overlap task list after stage 3) into this directory through the
    /// `Wire` codec, and a fresh run over the same inputs resumes from
    /// the last completed stage bit-identically instead of recomputing —
    /// the recovery path a rank that exhausted its exchange retries
    /// points at. `None` (the default) neither reads nor writes
    /// checkpoints.
    pub checkpoint_dir: Option<std::path::PathBuf>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            k: 17,
            error_rate: 0.15,
            depth: 30.0,
            max_multiplicity: None,
            seed_mode: SeedMode::Reliable,
            minimizer_w: 7,
            min_chain_seeds: 2,
            seed_policy: SeedPolicy::Single,
            max_seeds_per_pair: 16,
            overlap_engine: OverlapEngine::Pairs,
            pair_batch: OverlapConfig::DEFAULT_PAIR_BATCH,
            spgemm_block: OverlapConfig::DEFAULT_SPGEMM_BLOCK,
            xdrop: 25,
            scoring: Scoring::bella(),
            min_align_score: 0,
            max_kmers_per_round: 1 << 20,
            max_exchange_bytes_per_round: usize::MAX,
            bloom_fp_rate: 0.05,
            hll_precision: None,
            placement: TaskPlacement::Parity,
            align_threads: 1,
            threads: None,
            transport: TransportKind::SharedMem,
            simd: None,
            checkpoint_dir: None,
        }
    }
}

impl PipelineConfig {
    /// The effective high-occurrence threshold: the override if set, else
    /// BELLA's Poisson-derived value for (depth, error, k).
    pub fn multiplicity_threshold(&self) -> u32 {
        self.max_multiplicity.unwrap_or_else(|| {
            params::reliable_max_multiplicity(
                self.depth,
                self.error_rate,
                self.k,
                params::defaults::EPSILON,
            )
        })
    }

    /// Derive the k-mer-analysis configuration for a given input size.
    pub fn kcount(&self, total_bases: u64) -> KcountConfig {
        let mut kc = KcountConfig::from_dataset(total_bases.max(1), self.depth, self.error_rate, self.k);
        kc.max_multiplicity = self.multiplicity_threshold();
        kc.bloom_fp_rate = self.bloom_fp_rate;
        kc.max_kmers_per_round = self.max_kmers_per_round;
        kc.max_exchange_bytes_per_round = self.max_exchange_bytes_per_round;
        kc
    }

    /// The intra-rank thread count every stage actually runs with — the
    /// single resolution point for the `threads` knob: `threads` if set
    /// (falling back to the deprecated `align_threads`), with `0` resolved
    /// to the hardware parallelism.
    pub fn effective_threads(&self) -> usize {
        let n = self.threads.unwrap_or(self.align_threads);
        if n == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            n
        }
    }

    /// **Deprecated alias** for [`PipelineConfig::effective_threads`] —
    /// the stages share one thread pool, so there is no longer a separate
    /// alignment-stage width.
    pub fn effective_align_threads(&self) -> usize {
        self.effective_threads()
    }

    /// The thread count requested via the environment: `DIBELLA_THREADS`,
    /// falling back to the deprecated `DIBELLA_ALIGN_THREADS` spelling,
    /// defaulting to `1` (sequential) when neither is set. Panics on an
    /// unparsable value — a silently ignored perf knob is worse than a
    /// crash. Feed the result to [`PipelineConfig::threads`].
    pub fn env_threads() -> usize {
        for var in ["DIBELLA_THREADS", "DIBELLA_ALIGN_THREADS"] {
            if let Ok(v) = std::env::var(var) {
                return v
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("{var} must be a thread count, got {v:?}"));
            }
        }
        1
    }

    /// The seed mode requested via the environment (`DIBELLA_SEED_MODE`),
    /// defaulting to [`SeedMode::Reliable`] when unset. Panics on an
    /// unparsable value — a silently ignored mode switch is worse than a
    /// crash. Feed the result to [`PipelineConfig::seed_mode`].
    pub fn env_seed_mode() -> SeedMode {
        match std::env::var("DIBELLA_SEED_MODE") {
            Err(_) => SeedMode::Reliable,
            Ok(v) => v
                .parse()
                .unwrap_or_else(|e| panic!("DIBELLA_SEED_MODE: {e}")),
        }
    }

    /// The overlap engine requested via the environment
    /// (`DIBELLA_OVERLAP_ENGINE`), defaulting to [`OverlapEngine::Pairs`]
    /// when unset. Panics on an unparsable value — a silently ignored
    /// engine switch is worse than a crash. Feed the result to
    /// [`PipelineConfig::overlap_engine`].
    pub fn env_overlap_engine() -> OverlapEngine {
        match std::env::var("DIBELLA_OVERLAP_ENGINE") {
            Err(_) => OverlapEngine::Pairs,
            Ok(v) => v
                .trim()
                .parse()
                .unwrap_or_else(|e| panic!("DIBELLA_OVERLAP_ENGINE: {e}")),
        }
    }

    /// Derive the overlap-stage configuration. The chain filter is
    /// enabled exactly when the minimizer front end feeds the stage.
    pub fn overlap(&self) -> OverlapConfig {
        OverlapConfig {
            policy: self.seed_policy,
            max_seeds_per_pair: self.max_seeds_per_pair,
            placement: self.placement,
            max_exchange_bytes_per_round: self.max_exchange_bytes_per_round,
            pair_batch: self.pair_batch,
            chain: match self.seed_mode {
                SeedMode::Reliable => None,
                SeedMode::Minimizer => {
                    Some(ChainConfig { min_chain_seeds: self.min_chain_seeds })
                }
            },
            engine: self.overlap_engine,
            spgemm_block: self.spgemm_block,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = PipelineConfig::default();
        assert_eq!(cfg.k, 17);
        assert_eq!(cfg.seed_policy, SeedPolicy::Single);
        assert_eq!(cfg.transport, TransportKind::SharedMem);
        assert!(cfg.xdrop > 0);
        // Derived m is the BELLA Poisson threshold.
        let m = cfg.multiplicity_threshold();
        assert!((2..=12).contains(&m), "m = {m}");
    }

    #[test]
    fn override_wins() {
        let cfg = PipelineConfig { max_multiplicity: Some(77), ..Default::default() };
        assert_eq!(cfg.multiplicity_threshold(), 77);
        assert_eq!(cfg.kcount(1_000_000).max_multiplicity, 77);
    }

    #[test]
    fn kcount_inherits_knobs() {
        let cfg = PipelineConfig { max_kmers_per_round: 4096, bloom_fp_rate: 0.2, ..Default::default() };
        let kc = cfg.kcount(1_000_000);
        assert_eq!(kc.max_kmers_per_round, 4096);
        assert_eq!(kc.bloom_fp_rate, 0.2);
        assert_eq!(kc.k, 17);
    }

    #[test]
    fn round_byte_cap_reaches_every_stage_config() {
        // Default: unbounded everywhere.
        let cfg = PipelineConfig::default();
        assert_eq!(cfg.max_exchange_bytes_per_round, usize::MAX);
        assert_eq!(cfg.kcount(1_000).max_exchange_bytes_per_round, usize::MAX);
        assert_eq!(cfg.overlap().max_exchange_bytes_per_round, usize::MAX);
        // A cap flows into both derived configs (stage 4 reads it off the
        // PipelineConfig directly).
        let capped = PipelineConfig { max_exchange_bytes_per_round: 1 << 20, ..Default::default() };
        assert_eq!(capped.kcount(1_000).max_exchange_bytes_per_round, 1 << 20);
        assert_eq!(capped.overlap().max_exchange_bytes_per_round, 1 << 20);
    }

    #[test]
    fn simd_knob_defaults_to_env_fallback() {
        // None = resolve per worker thread from DIBELLA_SIMD at batch time.
        assert_eq!(PipelineConfig::default().simd, None);
        let cfg = PipelineConfig { simd: Some(SimdMode::Scalar), ..Default::default() };
        assert_eq!(cfg.simd, Some(SimdMode::Scalar));
    }

    #[test]
    fn seed_mode_parses_and_wires_the_chain() {
        assert_eq!("reliable".parse::<SeedMode>().unwrap(), SeedMode::Reliable);
        assert_eq!("Minimizer".parse::<SeedMode>().unwrap(), SeedMode::Minimizer);
        assert!("bloom".parse::<SeedMode>().is_err());
        assert_eq!(SeedMode::Minimizer.to_string(), "minimizer");
        // Reliable mode: no chain filter. Minimizer mode: chain on, with
        // the configured minimum.
        let cfg = PipelineConfig::default();
        assert_eq!(cfg.seed_mode, SeedMode::Reliable);
        assert!(cfg.overlap().chain.is_none());
        let cfg = PipelineConfig {
            seed_mode: SeedMode::Minimizer,
            min_chain_seeds: 3,
            ..Default::default()
        };
        assert_eq!(cfg.overlap().chain, Some(ChainConfig { min_chain_seeds: 3 }));
        assert_eq!(cfg.minimizer_w, 7);
    }

    #[test]
    fn overlap_engine_knobs_reach_the_stage_config() {
        let cfg = PipelineConfig::default();
        assert_eq!(cfg.overlap_engine, OverlapEngine::Pairs);
        assert_eq!(cfg.overlap().engine, OverlapEngine::Pairs);
        assert_eq!(cfg.overlap().pair_batch, OverlapConfig::DEFAULT_PAIR_BATCH);
        assert_eq!(cfg.overlap().spgemm_block, OverlapConfig::DEFAULT_SPGEMM_BLOCK);
        let cfg = PipelineConfig {
            overlap_engine: OverlapEngine::Spgemm,
            pair_batch: 17,
            spgemm_block: 5,
            ..Default::default()
        };
        let oc = cfg.overlap();
        assert_eq!(oc.engine, OverlapEngine::Spgemm);
        assert_eq!(oc.pair_batch, 17);
        assert_eq!(oc.spgemm_block, 5);
    }

    #[test]
    fn threads_knob_resolution() {
        // Default: sequential via the deprecated alias.
        assert_eq!(PipelineConfig::default().effective_threads(), 1);
        // threads wins over align_threads when set.
        let cfg = PipelineConfig { threads: Some(3), align_threads: 7, ..Default::default() };
        assert_eq!(cfg.effective_threads(), 3);
        assert_eq!(cfg.effective_align_threads(), 3, "alias must delegate");
        // Unset threads falls back to the alias.
        let cfg = PipelineConfig { align_threads: 5, ..Default::default() };
        assert_eq!(cfg.effective_threads(), 5);
        // 0 means hardware parallelism, through either spelling.
        assert!(PipelineConfig { threads: Some(0), ..Default::default() }.effective_threads() >= 1);
        assert!(PipelineConfig { align_threads: 0, ..Default::default() }.effective_threads() >= 1);
    }
}
