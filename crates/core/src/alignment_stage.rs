//! Stage 4 — read redistribution and pairwise alignment (paper §9).
//!
//! "Because the pairwise alignments require the full reads, any non-local
//! reads are requested and received by the respective processor." Each
//! rank collects the remote read IDs its tasks reference, requests them
//! from their owners, receives the sequences as variable-length records,
//! then runs the x-drop kernel on every (pair, seed) task locally. Both
//! the request and the reply exchange stream through the
//! [`dibella_comm::RoundExchange`] engine in byte-bounded
//! rounds ([`dibella_comm::ByteRounds`] keeps records whole), so the
//! read redistribution's *wire traffic* is bounded per round by
//! [`PipelineConfig::max_exchange_bytes_per_round`] (the serving rank
//! still stages its full reply volume locally before shipping, exactly as
//! the monolithic path always did — replicated reads are resident on the
//! requester afterwards either way); unbounded, each exchange is the
//! single monolithic `Alltoallv` of the paper.
//!
//! # Intra-rank parallelism
//!
//! The local alignment loop is the pipeline's dominant compute cost
//! (paper Figure 7 and the §9 breakdowns), so [`align_tasks`] runs on the
//! pipeline's shared [`BatchedExecutor`]: tasks are sharded into
//! fixed-size batches of [`ALIGN_BATCH_TASKS`], each batch is aligned
//! independently, and the per-batch `(records, counters)` results are
//! merged back **in batch order**. Batch boundaries depend only on the
//! task list — never on the thread count — so output records and
//! [`AlignCounters`] are bit-identical for every
//! [`PipelineConfig::threads`] value, including the sequential `1`.

use crate::config::PipelineConfig;
use crate::record::AlignmentRecord;
use dibella_align::{extend_seed_with_workspace, AlignWorkspace, SeedHit};
use dibella_comm::{decode_iter, encode_slice, BatchedExecutor, ByteRounds, Comm, RoundExchange};
use dibella_io::{ReadId, ReadStore};
use dibella_kmer::base::reverse_complement_ascii_into;
use dibella_overlap::OverlapTask;
use std::cell::RefCell;
use std::collections::HashSet;

thread_local! {
    /// One [`AlignWorkspace`] per OS thread, shared by every batch that
    /// thread processes (and, on the sequential path, by every
    /// [`align_tasks`] call in the rank's lifetime). The kernels fully
    /// re-initialize what they read, so dirty reuse is safe and the
    /// steady-state alignment loop performs zero heap allocations per
    /// task — see `docs/ARCHITECTURE.md` § "Hot path & memory discipline".
    static WORKSPACE: RefCell<AlignWorkspace> = RefCell::new(AlignWorkspace::new());
}

/// Tasks per batch in the parallel alignment executor. Fixed (not derived
/// from the thread count) so the sharding — and therefore the merged
/// output order — is identical no matter how many threads run it. Small
/// enough to load-balance the heavy-tailed per-task DP cost of Figure 8,
/// large enough to amortize scheduling.
pub const ALIGN_BATCH_TASKS: usize = 32;

/// Work counters of the alignment stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AlignCounters {
    /// Alignment tasks (pairs) processed on this rank.
    pub tasks: u64,
    /// Pairwise alignments computed (one per explored seed).
    pub alignments: u64,
    /// Total DP cells updated by the x-drop kernel.
    pub dp_cells: u64,
    /// Remote reads this rank requested.
    pub reads_requested: u64,
    /// Read-sequence bytes this rank served to others.
    pub read_bytes_served: u64,
    /// Read-sequence bytes this rank received.
    pub read_bytes_fetched: u64,
    /// Alignments meeting the output score threshold.
    pub accepted: u64,
    /// Exchange rounds of the read redistribution (request rounds plus
    /// reply rounds; equals the stage's `alltoallv` call count — 2 unless
    /// a round cap forces streaming).
    pub rounds: u64,
}

impl AlignCounters {
    /// Add another counter set into this one (used to fold per-batch
    /// counters from the parallel executor; field-wise sum, so the result
    /// is independent of fold order).
    pub fn merge(&mut self, other: &AlignCounters) {
        // Exhaustive destructuring (no `..`): adding a counter field
        // without merging it is a compile error, not a silent zero.
        let AlignCounters {
            tasks,
            alignments,
            dp_cells,
            reads_requested,
            read_bytes_served,
            read_bytes_fetched,
            accepted,
            rounds,
        } = *other;
        self.tasks += tasks;
        self.alignments += alignments;
        self.dp_cells += dp_cells;
        self.reads_requested += reads_requested;
        self.read_bytes_served += read_bytes_served;
        self.read_bytes_fetched += read_bytes_fetched;
        self.accepted += accepted;
        self.rounds += rounds;
    }
}

/// Fetch every remote read referenced by `tasks` into `store`: one
/// streaming exchange of ID requests, then one of variable-length
/// sequence replies, each in rounds of at most `max_round_bytes` send
/// bytes per rank (plus at most one record of slack — records never split
/// across rounds). The cap bounds each round's in-flight wire buffers,
/// not the serving rank's staged reply volume (built in full before the
/// reply rounds, as the monolithic path always did). `usize::MAX`
/// reproduces the paper's two monolithic exchanges; the installed reads
/// are identical at every cap.
pub fn fetch_remote_reads(
    comm: &Comm,
    store: &mut ReadStore,
    tasks: &[OverlapTask],
    max_round_bytes: usize,
    counters: &mut AlignCounters,
) {
    let p = comm.size();

    // ---- request IDs from their owners -----------------------------------
    let mut needed: HashSet<ReadId> = HashSet::new();
    for t in tasks {
        for id in [t.pair.a, t.pair.b] {
            if !store.is_local(id) {
                needed.insert(id);
            }
        }
    }
    counters.reads_requested = needed.len() as u64;
    let mut req_bufs: Vec<Vec<u32>> = vec![Vec::new(); p];
    for id in needed {
        req_bufs[store.owner_of(id)].push(id);
    }
    // Sort requests for determinism.
    for b in req_bufs.iter_mut() {
        b.sort_unstable();
    }
    let req_bytes: Vec<Vec<u8>> = req_bufs.iter().map(|b| encode_slice(b)).collect();
    let req_counts: Vec<usize> = req_bufs.iter().map(Vec::len).collect();
    let req_split = ByteRounds::plan_uniform(&req_counts, 4, max_round_bytes);

    // Serving side: replies accumulate per requester in request-arrival
    // order — the rounds slice each sorted request list in order, so the
    // concatenated reply stream is byte-identical to the monolithic one.
    // Reply record: u32 id, u32 len, then `len` sequence bytes.
    let mut reply_bufs: Vec<Vec<u8>> = vec![Vec::new(); p];
    let mut reply_lens: Vec<Vec<usize>> = vec![Vec::new(); p];
    let mut rounds = RoundExchange::run(
        comm,
        req_split.round_plan(),
        |round| req_split.pack(round, &req_bytes),
        |_round, recv| {
            for (src, buf) in recv.into_iter().enumerate() {
                for id in decode_iter::<u32>(&buf) {
                    let seq = store
                        .local_seq(id)
                        .unwrap_or_else(|| panic!("rank {} asked rank {} for read {id} it does not own",
                            src, comm.rank()));
                    counters.read_bytes_served += seq.len() as u64;
                    let out = &mut reply_bufs[src];
                    out.extend_from_slice(&id.to_le_bytes());
                    out.extend_from_slice(&(seq.len() as u32).to_le_bytes());
                    out.extend_from_slice(seq);
                    reply_lens[src].push(8 + seq.len());
                }
            }
        },
    );

    // ---- serve sequences, install replicated reads -------------------------
    // All sequences land in the store's single arena; reserving each
    // round's reply volume as it arrives (a slight over-estimate: it
    // includes the 8-byte record headers) keeps the install loop
    // reallocation-free while never holding more than ~one round cap of
    // undelivered replies.
    let reply_split = ByteRounds::plan(&reply_lens, max_round_bytes);
    rounds += RoundExchange::run(
        comm,
        reply_split.round_plan(),
        |round| reply_split.pack(round, &reply_bufs),
        |_round, recv| {
            store.reserve_replicated(recv.iter().map(Vec::len).sum());
            for buf in recv {
                let mut at = 0usize;
                while at < buf.len() {
                    let id = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
                    let len = u32::from_le_bytes(buf[at + 4..at + 8].try_into().unwrap()) as usize;
                    at += 8;
                    counters.read_bytes_fetched += len as u64;
                    store.insert_replicated(id, &buf[at..at + len]);
                    at += len;
                }
            }
        },
    );
    counters.rounds = rounds;
}

/// Align every (pair, seed) task against the now-complete local read set.
///
/// Seed coordinates are stored on each read's forward strand; when the
/// pair's relative orientation is reversed, read `b` is reverse-
/// complemented and the seed position mapped to `len(b) − k − pos`
/// (coordinates in the output stay in the oriented frame, flagged by
/// [`AlignmentRecord::reverse`]).
pub fn align_tasks(
    store: &ReadStore,
    tasks: &[OverlapTask],
    cfg: &PipelineConfig,
    counters: &mut AlignCounters,
    exec: &BatchedExecutor,
) -> Vec<AlignmentRecord> {
    if exec.threads() <= 1 {
        // Sequential fast path: one pass over the whole task list (batch
        // boundaries cannot affect output, so sharding would only cost
        // allocations on the pipeline's default hot path).
        let (out, pass_counters) = align_batch(store, tasks, cfg);
        counters.merge(&pass_counters);
        return out;
    }
    let batches =
        exec.map_batches(tasks, ALIGN_BATCH_TASKS, |batch| align_batch(store, batch, cfg));
    // Merge in batch order: records concatenate to exactly the sequential
    // output; counters are field-wise sums.
    let mut out = Vec::new();
    for (records, batch_counters) in batches {
        out.extend(records);
        counters.merge(&batch_counters);
    }
    out
}

/// Align one batch of tasks sequentially — the per-worker unit of
/// [`align_tasks`]. Returns the batch's records (task order) and its
/// isolated counters.
///
/// All kernel scratch comes from this thread's [`WORKSPACE`], so the
/// per-task steady state allocates only when a record is accepted into
/// the output vector.
fn align_batch(
    store: &ReadStore,
    tasks: &[OverlapTask],
    cfg: &PipelineConfig,
) -> (Vec<AlignmentRecord>, AlignCounters) {
    let mut counters = AlignCounters::default();
    let mut out = Vec::new();
    let k = cfg.k;
    // Pin this worker thread's kernel implementation for the batch:
    // `Some(mode)` from the config wins, `None` defers to the
    // `DIBELLA_SIMD` environment knob. Set per batch (not per pipeline)
    // because executor threads outlive any one `PipelineConfig`.
    dibella_align::set_thread_simd_mode(cfg.simd);
    WORKSPACE.with(|cell| {
        let ws = &mut *cell.borrow_mut();
        // Detach the reverse-complement buffer so the kernels can borrow
        // `ws` mutably while an oriented `b` borrows the buffer (a move,
        // not an allocation); reattached after the batch.
        let mut rc = std::mem::take(&mut ws.rc);
        for task in tasks {
            counters.tasks += 1;
            let a_seq = store
                .seq(task.pair.a)
                .unwrap_or_else(|| panic!("read {} unavailable for alignment", task.pair.a));
            let b_seq = store
                .seq(task.pair.b)
                .unwrap_or_else(|| panic!("read {} unavailable for alignment", task.pair.b));
            // Orientation of b, computed at most once per task, into the
            // reusable buffer.
            let mut rc_filled = false;
            for seed in &task.seeds {
                let (b_oriented, b_pos): (&[u8], usize) = if seed.reverse {
                    if !rc_filled {
                        reverse_complement_ascii_into(b_seq, &mut rc);
                        rc_filled = true;
                    }
                    (rc.as_slice(), b_seq.len() - k - seed.b_pos as usize)
                } else {
                    (b_seq, seed.b_pos as usize)
                };
                let hit = SeedHit { a_pos: seed.a_pos as usize, b_pos, k };
                let al = extend_seed_with_workspace(a_seq, b_oriented, hit, cfg.scoring, cfg.xdrop, ws);
                counters.alignments += 1;
                counters.dp_cells += al.cells;
                if al.score >= cfg.min_align_score {
                    counters.accepted += 1;
                    out.push(AlignmentRecord {
                        pair: task.pair,
                        reverse: seed.reverse,
                        score: al.score,
                        a_start: al.a_start as u32,
                        a_end: al.a_end as u32,
                        b_start: al.b_start as u32,
                        b_end: al.b_end as u32,
                        cells: al.cells,
                    });
                }
            }
        }
        ws.rc = rc;
    });
    (out, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibella_comm::CommWorld;
    use dibella_io::{partition_reads, Read, ReadPartition, ReadSet};
    use dibella_overlap::{ReadPair, SharedSeed};

    fn store_world(
        reads: &ReadSet,
        p: usize,
    ) -> (ReadPartition, Vec<ReadSet>) {
        partition_reads(reads, p)
    }

    fn mk_reads() -> ReadSet {
        let mut state = 0xABCDu64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..6u32)
            .map(|i| {
                let seq: Vec<u8> = (0..60).map(|_| b"ACGT"[(rnd() % 4) as usize]).collect();
                Read::new(i, format!("r{i}"), seq)
            })
            .collect()
    }

    #[test]
    fn fetch_installs_exactly_the_needed_remotes() {
        let reads = mk_reads();
        let (part, chunks) = store_world(&reads, 3);
        let all: Vec<Read> = reads.reads().to_vec();
        let outs = CommWorld::run(3, |comm| {
            let mut store = ReadStore::new(
                comm.rank(),
                part.clone(),
                chunks[comm.rank()].clone().into_reads(),
            );
            // Every rank needs reads 0 and 5 (owners: rank 0 and rank 2).
            let tasks = vec![OverlapTask {
                pair: ReadPair::new(0, 5),
                seeds: vec![SharedSeed { a_pos: 0, b_pos: 0, reverse: false }],
            }];
            let mut c = AlignCounters::default();
            fetch_remote_reads(comm, &mut store, &tasks, usize::MAX, &mut c);
            (
                store.seq(0).map(|s| s.to_vec()),
                store.seq(5).map(|s| s.to_vec()),
                c,
            )
        });
        for (rank, (s0, s5, c)) in outs.iter().enumerate() {
            assert_eq!(s0.as_deref(), Some(all[0].seq.as_slice()), "rank {rank}");
            assert_eq!(s5.as_deref(), Some(all[5].seq.as_slice()), "rank {rank}");
            // Owners of both reads requested fewer.
            assert!(c.reads_requested <= 2);
        }
    }

    #[test]
    fn bounded_fetch_rounds_install_identical_reads() {
        // Every rank needs every remote read; a 100-byte round cap forces
        // several reply rounds (each reply record is 8 + 60 bytes), which
        // must install exactly the same sequences as the unbounded path
        // and keep the per-round send volume under cap + one record.
        let reads = mk_reads();
        let (part, chunks) = store_world(&reads, 3);
        let all: Vec<Read> = reads.reads().to_vec();
        let tasks: Vec<OverlapTask> = (0..5u32)
            .map(|a| OverlapTask {
                pair: ReadPair::new(a, a + 1),
                seeds: vec![SharedSeed { a_pos: 0, b_pos: 0, reverse: false }],
            })
            .collect();
        for cap in [usize::MAX, 100] {
            let outs = CommWorld::run(3, |comm| {
                let mut store = ReadStore::new(
                    comm.rank(),
                    part.clone(),
                    chunks[comm.rank()].clone().into_reads(),
                );
                let mut c = AlignCounters::default();
                fetch_remote_reads(comm, &mut store, &tasks, cap, &mut c);
                let seqs: Vec<Vec<u8>> =
                    (0..6u32).map(|id| store.seq(id).unwrap().to_vec()).collect();
                (seqs, c, comm.take_stats())
            });
            for (rank, (seqs, c, stats)) in outs.iter().enumerate() {
                for (id, seq) in seqs.iter().enumerate() {
                    assert_eq!(seq, &all[id].seq, "cap {cap} rank {rank} read {id}");
                }
                assert_eq!(stats.alltoallv_calls, c.rounds, "calls must equal rounds");
                if cap == usize::MAX {
                    assert_eq!(c.rounds, 2, "unbounded fetch is two exchanges");
                } else {
                    assert!(c.rounds > 2, "tiny cap must force streaming rounds");
                    assert!(
                        stats.peak_round_bytes <= (cap + 8 + 60) as u64,
                        "peak {} exceeds cap + record",
                        stats.peak_round_bytes
                    );
                }
            }
        }
    }

    #[test]
    fn align_tasks_on_engineered_overlap() {
        // Two reads overlapping over their halves.
        let mut state = 0x77u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let genome: Vec<u8> = (0..150).map(|_| b"ACGT"[(rnd() % 4) as usize]).collect();
        let a = genome[0..100].to_vec();
        let b = genome[50..150].to_vec();
        let reads: ReadSet = vec![Read::new(0, "a", a.clone()), Read::new(1, "b", b.clone())]
            .into_iter()
            .collect();
        let (part, chunks) = partition_reads(&reads, 1);
        let store = ReadStore::new(0, part, chunks[0].clone().into_reads());
        // Shared seed: a[60..77] == b[10..27].
        let cfg = PipelineConfig { k: 17, xdrop: 30, ..Default::default() };
        let tasks = vec![OverlapTask {
            pair: ReadPair::new(0, 1),
            seeds: vec![SharedSeed { a_pos: 60, b_pos: 10, reverse: false }],
        }];
        let mut c = AlignCounters::default();
        let recs = align_tasks(&store, &tasks, &cfg, &mut c, &BatchedExecutor::sequential());
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        // Perfect 50-base overlap: score = 50, spanning a[50..100], b[0..50].
        assert_eq!(r.score, 50);
        assert_eq!((r.a_start, r.a_end), (50, 100));
        assert_eq!((r.b_start, r.b_end), (0, 50));
        assert_eq!(c.alignments, 1);
        assert!(c.dp_cells > 0);
    }

    #[test]
    fn reverse_oriented_task_aligns() {
        let mut state = 0x99u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let template: Vec<u8> = (0..80).map(|_| b"ACGT"[(rnd() % 4) as usize]).collect();
        let a = template.clone();
        let b = dibella_kmer::base::reverse_complement_ascii(&template);
        // Canonical k-mer of a[20..37]: find its position in b's forward
        // coords: the window maps to b[80-37 .. 80-20] = b[43..60].
        let reads: ReadSet = vec![Read::new(0, "a", a.clone()), Read::new(1, "b", b.clone())]
            .into_iter()
            .collect();
        let (part, chunks) = partition_reads(&reads, 1);
        let store = ReadStore::new(0, part, chunks[0].clone().into_reads());
        let cfg = PipelineConfig { k: 17, xdrop: 30, ..Default::default() };
        let tasks = vec![OverlapTask {
            pair: ReadPair::new(0, 1),
            seeds: vec![SharedSeed { a_pos: 20, b_pos: 43, reverse: true }],
        }];
        let mut c = AlignCounters::default();
        let recs = align_tasks(&store, &tasks, &cfg, &mut c, &BatchedExecutor::sequential());
        assert_eq!(recs.len(), 1);
        // Full-length reverse overlap: 80 matches.
        assert_eq!(recs[0].score, 80);
        assert!(recs[0].reverse);
    }

    #[test]
    fn parallel_executor_is_bit_identical_to_sequential() {
        // Enough overlapping reads to produce several hundred tasks —
        // many multiples of ALIGN_BATCH_TASKS, so every thread count
        // below exercises multi-batch scheduling.
        let mut state = 0xD15EA5Eu64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let genome: Vec<u8> = (0..3_000).map(|_| b"ACGT"[(rnd() % 4) as usize]).collect();
        let n = 40u32;
        let reads: ReadSet = (0..n)
            .map(|i| Read::new(i, format!("r{i}"), genome[i as usize * 60..][..400].to_vec()))
            .collect();
        let (part, chunks) = partition_reads(&reads, 1);
        let store = ReadStore::new(0, part, chunks[0].clone().into_reads());
        // All-pairs tasks with a few seeds each (coordinates need not be
        // true shared k-mers — the kernel aligns whatever it is given).
        let mut tasks = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                tasks.push(OverlapTask {
                    pair: ReadPair::new(a, b),
                    seeds: vec![
                        SharedSeed { a_pos: 5, b_pos: 9, reverse: false },
                        SharedSeed { a_pos: 120, b_pos: 60, reverse: (a + b) % 2 == 0 },
                    ],
                });
            }
        }
        assert!(tasks.len() > 10 * ALIGN_BATCH_TASKS);

        let cfg = PipelineConfig { k: 17, ..Default::default() };
        let mut seq_counters = AlignCounters::default();
        let seq = align_tasks(&store, &tasks, &cfg, &mut seq_counters, &BatchedExecutor::sequential());
        assert_eq!(seq_counters.tasks, tasks.len() as u64);

        for threads in [2usize, 4, 0] {
            let exec = BatchedExecutor::new(threads);
            let mut counters = AlignCounters::default();
            let par = align_tasks(&store, &tasks, &cfg, &mut counters, &exec);
            assert_eq!(par, seq, "records diverge at threads = {threads}");
            assert_eq!(counters, seq_counters, "counters diverge at threads = {threads}");
        }
    }

    #[test]
    fn score_threshold_filters_output_not_cost() {
        let reads = mk_reads();
        let (part, chunks) = partition_reads(&reads, 1);
        let store = ReadStore::new(0, part, chunks[0].clone().into_reads());
        // Random unrelated reads: any seed yields a tiny score.
        let cfg = PipelineConfig { k: 8, min_align_score: 1_000, ..Default::default() };
        let tasks = vec![OverlapTask {
            pair: ReadPair::new(0, 1),
            seeds: vec![SharedSeed { a_pos: 0, b_pos: 0, reverse: false }],
        }];
        let mut c = AlignCounters::default();
        let recs = align_tasks(&store, &tasks, &cfg, &mut c, &BatchedExecutor::sequential());
        assert!(recs.is_empty());
        assert_eq!(c.alignments, 1);
        assert_eq!(c.accepted, 0);
        assert!(c.dp_cells > 0, "alignment must still be computed");
    }
}
