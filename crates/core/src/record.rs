//! Alignment output records.

use dibella_io::ReadId;
use dibella_overlap::ReadPair;

/// One computed pairwise alignment (one explored seed of one read pair).
///
/// The derived ordering (field order below) is total, giving merged
/// multi-rank outputs a canonical order independent of the world size.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct AlignmentRecord {
    /// The aligned read pair (`a < b`).
    pub pair: ReadPair,
    /// Relative orientation: `true` if `b` was reverse-complemented.
    pub reverse: bool,
    /// Alignment score under the run's scoring scheme.
    pub score: i32,
    /// Aligned range on read `a` (forward coordinates).
    pub a_start: u32,
    /// End (exclusive) on read `a`.
    pub a_end: u32,
    /// Aligned range on read `b` in *oriented* coordinates (reverse-
    /// complement frame when [`Self::reverse`]).
    pub b_start: u32,
    /// End (exclusive) on `b`, oriented frame.
    pub b_end: u32,
    /// DP cells the x-drop kernel spent on this alignment.
    pub cells: u64,
}

impl AlignmentRecord {
    /// Map the `b` range back to forward-strand coordinates.
    pub fn b_forward_range(&self, b_len: u32) -> (u32, u32) {
        if self.reverse {
            (b_len - self.b_end, b_len - self.b_start)
        } else {
            (self.b_start, self.b_end)
        }
    }

    /// Render as a PAF-like line (the de-facto overlap interchange format):
    /// `a_name a_len a_start a_end strand b_name b_len b_start b_end score`.
    pub fn to_paf(&self, names: &dyn Fn(ReadId) -> String, lens: &dyn Fn(ReadId) -> u32) -> String {
        let b_len = lens(self.pair.b);
        let (bs, be) = self.b_forward_range(b_len);
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            names(self.pair.a),
            lens(self.pair.a),
            self.a_start,
            self.a_end,
            if self.reverse { '-' } else { '+' },
            names(self.pair.b),
            b_len,
            bs,
            be,
            self.score,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(reverse: bool) -> AlignmentRecord {
        AlignmentRecord {
            pair: ReadPair::new(0, 1),
            reverse,
            score: 42,
            a_start: 10,
            a_end: 60,
            b_start: 5,
            b_end: 55,
            cells: 123,
        }
    }

    #[test]
    fn forward_range_identity() {
        assert_eq!(rec(false).b_forward_range(100), (5, 55));
    }

    #[test]
    fn reverse_range_mirrors() {
        assert_eq!(rec(true).b_forward_range(100), (45, 95));
    }

    #[test]
    fn paf_rendering() {
        let line = rec(true).to_paf(&|id| format!("r{id}"), &|_| 100);
        assert_eq!(line, "r0\t100\t10\t60\t-\tr1\t100\t45\t95\t42");
    }
}
