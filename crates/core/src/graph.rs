//! The overlap graph built from the pipeline's alignments.
//!
//! Paper §11: diBELLA's "hash table represents a read graph with read
//! vertices connected to each other by shared k-mers ... This graph
//! representation, often known as the overlap graph in the literature, is
//! more robust to sequencing errors and thus more suitable for long-read
//! data." The pipeline's output *is* that graph with alignment-verified
//! edges; this module materializes it for downstream assembly work:
//! adjacency queries, degree statistics, connected components and GFA 1
//! export.

use crate::record::AlignmentRecord;
use dibella_io::ReadId;
use std::collections::HashMap;

/// One verified overlap edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverlapEdge {
    /// Neighbouring read.
    pub to: ReadId,
    /// Best alignment score between the two reads.
    pub score: i32,
    /// Relative orientation (`true` = the neighbour overlaps this read's
    /// reverse complement).
    pub reverse: bool,
}

/// Undirected overlap graph over read IDs.
#[derive(Clone, Debug, Default)]
pub struct OverlapGraph {
    /// Number of reads (vertices), fixed at construction.
    n_reads: usize,
    adj: HashMap<ReadId, Vec<OverlapEdge>>,
    n_edges: usize,
}

impl OverlapGraph {
    /// Build from alignment records, keeping for each pair its
    /// best-scoring record with score ≥ `min_score`.
    pub fn from_alignments(n_reads: usize, records: &[AlignmentRecord], min_score: i32) -> Self {
        // Best record per pair.
        let mut best: HashMap<(ReadId, ReadId), &AlignmentRecord> = HashMap::new();
        for r in records {
            if r.score < min_score {
                continue;
            }
            assert!(
                (r.pair.b as usize) < n_reads,
                "alignment references read {} outside 0..{n_reads}",
                r.pair.b
            );
            best.entry((r.pair.a, r.pair.b))
                .and_modify(|cur| {
                    if r.score > cur.score {
                        *cur = r;
                    }
                })
                .or_insert(r);
        }
        let mut graph = Self {
            n_reads,
            adj: HashMap::new(),
            n_edges: 0,
        };
        for ((a, b), r) in best {
            graph.adj.entry(a).or_default().push(OverlapEdge {
                to: b,
                score: r.score,
                reverse: r.reverse,
            });
            graph.adj.entry(b).or_default().push(OverlapEdge {
                to: a,
                score: r.score,
                reverse: r.reverse,
            });
            graph.n_edges += 1;
        }
        for edges in graph.adj.values_mut() {
            edges.sort_unstable_by_key(|e| (e.to, e.reverse as u8));
        }
        graph
    }

    /// Number of vertices (reads, including isolated ones).
    pub fn n_vertices(&self) -> usize {
        self.n_reads
    }

    /// Number of undirected edges.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Neighbours of a read (empty slice if isolated).
    pub fn neighbours(&self, read: ReadId) -> &[OverlapEdge] {
        self.adj.get(&read).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Degree of a read.
    pub fn degree(&self, read: ReadId) -> usize {
        self.neighbours(read).len()
    }

    /// (min, mean, max) vertex degree over all reads.
    pub fn degree_stats(&self) -> (usize, f64, usize) {
        if self.n_reads == 0 {
            return (0, 0.0, 0);
        }
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0usize;
        for r in 0..self.n_reads as ReadId {
            let d = self.degree(r);
            min = min.min(d);
            max = max.max(d);
            sum += d;
        }
        (min, sum as f64 / self.n_reads as f64, max)
    }

    /// Connected-component label per read (labels are component-minimum
    /// read IDs), plus the component count.
    pub fn connected_components(&self) -> (Vec<ReadId>, usize) {
        let mut label: Vec<Option<ReadId>> = vec![None; self.n_reads];
        let mut count = 0usize;
        let mut stack = Vec::new();
        for start in 0..self.n_reads as ReadId {
            if label[start as usize].is_some() {
                continue;
            }
            count += 1;
            label[start as usize] = Some(start);
            stack.push(start);
            while let Some(v) = stack.pop() {
                for e in self.neighbours(v) {
                    if label[e.to as usize].is_none() {
                        label[e.to as usize] = Some(start);
                        stack.push(e.to);
                    }
                }
            }
        }
        (label.into_iter().map(|l| l.unwrap()).collect(), count)
    }

    /// Export as GFA 1 (`S` segment per read, `L` link per overlap edge
    /// with orientation; CIGAR is `*` — diBELLA reports scores, not edit
    /// scripts).
    pub fn to_gfa(
        &self,
        names: &dyn Fn(ReadId) -> String,
        seqs: &dyn Fn(ReadId) -> Option<Vec<u8>>,
    ) -> String {
        let mut out = String::from("H\tVN:Z:1.0\n");
        for r in 0..self.n_reads as ReadId {
            let seq = seqs(r)
                .map(|s| String::from_utf8_lossy(&s).into_owned())
                .unwrap_or_else(|| "*".to_owned());
            out.push_str(&format!("S\t{}\t{}\n", names(r), seq));
        }
        for a in 0..self.n_reads as ReadId {
            for e in self.neighbours(a) {
                if e.to < a {
                    continue; // emit each edge once
                }
                let orient = if e.reverse { '-' } else { '+' };
                out.push_str(&format!(
                    "L\t{}\t+\t{}\t{}\t*\tSC:i:{}\n",
                    names(a),
                    names(e.to),
                    orient,
                    e.score
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibella_overlap::ReadPair;

    fn rec(a: u32, b: u32, score: i32, reverse: bool) -> AlignmentRecord {
        AlignmentRecord {
            pair: ReadPair::new(a, b),
            reverse,
            score,
            a_start: 0,
            a_end: 10,
            b_start: 0,
            b_end: 10,
            cells: 1,
        }
    }

    #[test]
    fn builds_best_edge_per_pair() {
        let recs = vec![rec(0, 1, 5, false), rec(0, 1, 9, true), rec(1, 2, 4, false)];
        let g = OverlapGraph::from_alignments(4, &recs, 0);
        assert_eq!(g.n_vertices(), 4);
        assert_eq!(g.n_edges(), 2);
        let e01 = g.neighbours(0)[0];
        assert_eq!(e01.score, 9);
        assert!(e01.reverse);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn min_score_filters_edges() {
        let recs = vec![rec(0, 1, 5, false), rec(1, 2, 50, false)];
        let g = OverlapGraph::from_alignments(3, &recs, 10);
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.degree(0), 0);
    }

    #[test]
    fn components_found() {
        // Two chains: 0-1-2 and 3-4; read 5 isolated.
        let recs = vec![rec(0, 1, 9, false), rec(1, 2, 9, false), rec(3, 4, 9, false)];
        let g = OverlapGraph::from_alignments(6, &recs, 0);
        let (labels, count) = g.connected_components();
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(labels[5], 5);
    }

    #[test]
    fn degree_stats() {
        let recs = vec![rec(0, 1, 9, false), rec(0, 2, 9, false)];
        let g = OverlapGraph::from_alignments(3, &recs, 0);
        let (min, mean, max) = g.degree_stats();
        assert_eq!(min, 1);
        assert_eq!(max, 2);
        assert!((mean - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn gfa_export() {
        let recs = vec![rec(0, 1, 42, true)];
        let g = OverlapGraph::from_alignments(2, &recs, 0);
        let gfa = g.to_gfa(&|id| format!("r{id}"), &|_| Some(b"ACGT".to_vec()));
        assert!(gfa.starts_with("H\tVN:Z:1.0\n"));
        assert!(gfa.contains("S\tr0\tACGT\n"));
        assert!(gfa.contains("L\tr0\t+\tr1\t-\t*\tSC:i:42\n"));
        // Each edge appears once.
        assert_eq!(gfa.matches("\nL\t").count(), 1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_read_rejected() {
        let recs = vec![rec(0, 9, 5, false)];
        let _ = OverlapGraph::from_alignments(3, &recs, 0);
    }
}
