//! Fixed-layout wire encoding for hot-path messages.
//!
//! MPI applications exchange raw derived-type buffers; serde would both
//! blur the byte accounting and slow the data plane. `Wire` types encode
//! to a fixed number of little-endian bytes, so a packed buffer of `n`
//! records is exactly `n * SIZE` bytes — the figure the network model
//! charges for.

/// A fixed-size, self-describing wire codec.
pub trait Wire: Sized {
    /// Encoded size in bytes (constant per type).
    const SIZE: usize;

    /// Append the encoding of `self` to `out`.
    fn write(&self, out: &mut Vec<u8>);

    /// Decode from the first `SIZE` bytes of `buf`.
    ///
    /// # Panics
    /// Panics if `buf.len() < SIZE`.
    fn read(buf: &[u8]) -> Self;
}

macro_rules! impl_wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            #[inline]
            fn write(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read(buf: &[u8]) -> Self {
                <$t>::from_le_bytes(buf[..Self::SIZE].try_into().unwrap())
            }
        }
    )*};
}

impl_wire_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl<A: Wire, B: Wire> Wire for (A, B) {
    const SIZE: usize = A::SIZE + B::SIZE;
    #[inline]
    fn write(&self, out: &mut Vec<u8>) {
        self.0.write(out);
        self.1.write(out);
    }
    #[inline]
    fn read(buf: &[u8]) -> Self {
        (A::read(buf), B::read(&buf[A::SIZE..]))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    const SIZE: usize = A::SIZE + B::SIZE + C::SIZE;
    #[inline]
    fn write(&self, out: &mut Vec<u8>) {
        self.0.write(out);
        self.1.write(out);
        self.2.write(out);
    }
    #[inline]
    fn read(buf: &[u8]) -> Self {
        (
            A::read(buf),
            B::read(&buf[A::SIZE..]),
            C::read(&buf[A::SIZE + B::SIZE..]),
        )
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    const SIZE: usize = A::SIZE + B::SIZE + C::SIZE + D::SIZE;
    #[inline]
    fn write(&self, out: &mut Vec<u8>) {
        self.0.write(out);
        self.1.write(out);
        self.2.write(out);
        self.3.write(out);
    }
    #[inline]
    fn read(buf: &[u8]) -> Self {
        (
            A::read(buf),
            B::read(&buf[A::SIZE..]),
            C::read(&buf[A::SIZE + B::SIZE..]),
            D::read(&buf[A::SIZE + B::SIZE + C::SIZE..]),
        )
    }
}

/// Encode a slice of records into one contiguous buffer.
///
/// The output is pre-sized to exactly `items.len() * T::SIZE`, so hot-path
/// packing never reallocates mid-encode; a `Wire` impl writing a different
/// number of bytes than its declared `SIZE` is caught in debug builds.
pub fn encode_slice<T: Wire>(items: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(items.len() * T::SIZE);
    for item in items {
        item.write(&mut out);
    }
    debug_assert_eq!(
        out.len(),
        items.len() * T::SIZE,
        "Wire impl wrote a different byte count than its declared SIZE"
    );
    out
}

/// Why a buffer could not be decoded as a packed record slice.
///
/// In-process exchanges can treat a misaligned buffer as an internal
/// invariant violation and panic ([`decode_vec`]), but paths that read
/// bytes an unreliable medium may have mangled — the hardened frame
/// layer, the checkpoint loader — need the failure as a value so they
/// can retry or recompute instead of crashing the rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Buffer length is not a whole number of records — truncated or
    /// corrupt.
    Misaligned {
        /// Bytes in the buffer.
        len: usize,
        /// Declared `Wire::SIZE` of the record type.
        record_size: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            WireError::Misaligned { len, record_size } => write!(
                f,
                "buffer length {len} not a multiple of record size {record_size}"
            ),
        }
    }
}

impl std::error::Error for WireError {}

/// Decode a buffer previously produced by [`encode_slice`], reporting a
/// truncated or corrupt buffer as a typed [`WireError`] instead of
/// panicking.
pub fn try_decode_vec<T: Wire>(buf: &[u8]) -> Result<Vec<T>, WireError> {
    if !buf.len().is_multiple_of(T::SIZE) {
        return Err(WireError::Misaligned {
            len: buf.len(),
            record_size: T::SIZE,
        });
    }
    Ok(buf.chunks_exact(T::SIZE).map(T::read).collect())
}

/// Decode a buffer previously produced by [`encode_slice`].
///
/// # Panics
/// Panics if the buffer length is not a multiple of `T::SIZE` (corrupt or
/// mismatched message). Use [`try_decode_vec`] where the caller can
/// recover.
pub fn decode_vec<T: Wire>(buf: &[u8]) -> Vec<T> {
    match try_decode_vec(buf) {
        Ok(v) => v,
        Err(e) => panic!("{e}"),
    }
}

/// Iterate over decoded records without materializing a vector.
///
/// # Panics
/// Panics if the buffer length is not a multiple of `T::SIZE`, exactly as
/// [`decode_vec`] does.
pub fn decode_iter<'a, T: Wire + 'a>(buf: &'a [u8]) -> impl Iterator<Item = T> + 'a {
    assert_eq!(
        buf.len() % T::SIZE,
        0,
        "buffer length {} not a multiple of record size {}",
        buf.len(),
        T::SIZE
    );
    buf.chunks_exact(T::SIZE).map(T::read)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ints_round_trip() {
        let mut buf = Vec::new();
        0xDEAD_BEEFu32.write(&mut buf);
        (-7i64).write(&mut buf);
        assert_eq!(buf.len(), 12);
        assert_eq!(u32::read(&buf), 0xDEAD_BEEF);
        assert_eq!(i64::read(&buf[4..]), -7);
    }

    #[test]
    fn tuples_round_trip() {
        let v = (3u32, 9u64, 1u8);
        let mut buf = Vec::new();
        v.write(&mut buf);
        assert_eq!(buf.len(), <(u32, u64, u8)>::SIZE);
        assert_eq!(<(u32, u64, u8)>::read(&buf), v);
    }

    #[test]
    fn slice_codec_round_trip() {
        let items: Vec<(u32, u32)> = (0..100).map(|i| (i, i * i)).collect();
        let buf = encode_slice(&items);
        assert_eq!(buf.len(), 100 * 8);
        assert_eq!(decode_vec::<(u32, u32)>(&buf), items);
        let collected: Vec<(u32, u32)> = decode_iter(&buf).collect();
        assert_eq!(collected, items);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_buffer_panics() {
        let _ = decode_vec::<u32>(&[0u8; 7]);
    }

    #[test]
    fn try_decode_reports_misalignment_as_value() {
        let err = try_decode_vec::<u32>(&[0u8; 7]).unwrap_err();
        assert_eq!(err, WireError::Misaligned { len: 7, record_size: 4 });
        assert!(err.to_string().contains("not a multiple"));
        let ok = try_decode_vec::<u32>(&[0u8; 8]).unwrap();
        assert_eq!(ok, vec![0, 0]);
    }

    #[test]
    fn empty_buffer_ok() {
        assert!(decode_vec::<u64>(&[]).is_empty());
    }
}
