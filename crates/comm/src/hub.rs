//! The shared exchange hub behind the [`crate::SharedMem`] transport (and,
//! via its inner `SharedMem`, the [`crate::SimNet`] one).
//!
//! A `P × P` matrix of type-erased deposit slots plus a cyclic barrier
//! implements rendezvous collectives: in an exchange, rank `r` writes its
//! buffer for destination `d` into slot `(r, d)`, all ranks hit the
//! barrier (publication), then rank `r` drains column `(·, r)`, and a
//! second barrier ends the operation so slots can be reused. The barrier
//! provides the happens-before edges; each slot is written and read by
//! exactly one rank per operation, so the mutexes are uncontended.

use parking_lot::Mutex;
use std::any::Any;
use std::sync::Barrier;

type Slot = Mutex<Option<Box<dyn Any + Send>>>;

pub(crate) struct Hub {
    p: usize,
    /// Row-major `P × P` deposit matrix: slot `(src, dst)` at `src*p+dst`.
    slots: Vec<Slot>,
    barrier: Barrier,
}

impl Hub {
    pub(crate) fn new(p: usize) -> Self {
        assert!(p > 0, "world size must be positive");
        Self {
            p,
            slots: (0..p * p).map(|_| Mutex::new(None)).collect(),
            barrier: Barrier::new(p),
        }
    }

    pub(crate) fn size(&self) -> usize {
        self.p
    }

    /// Wait for all ranks (one barrier phase).
    pub(crate) fn wait(&self) {
        self.barrier.wait();
    }

    /// Deposit `value` for `(src → dst)`. Must be empty (enforced).
    pub(crate) fn put(&self, src: usize, dst: usize, value: Box<dyn Any + Send>) {
        let prev = self.slots[src * self.p + dst].lock().replace(value);
        debug_assert!(prev.is_none(), "slot ({src},{dst}) already occupied");
    }

    /// Take the (type-erased) deposit for `(src → dst)`; the communicator
    /// downcasts it back to the collective's element type.
    ///
    /// # Panics
    /// Panics if the slot is empty — mismatched collective calls across
    /// ranks (the same class of bug MPI reports as a message-truncation
    /// error).
    pub(crate) fn take(&self, src: usize, dst: usize) -> Box<dyn Any + Send> {
        self.slots[src * self.p + dst]
            .lock()
            .take()
            .unwrap_or_else(|| panic!("slot ({src},{dst}) empty: mismatched collectives"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_take_round_trip() {
        let hub = Hub::new(2);
        hub.put(0, 1, Box::new(vec![1u32, 2, 3]));
        let v: Vec<u32> = *hub.take(0, 1).downcast().unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn take_empty_panics() {
        let hub = Hub::new(2);
        let _ = hub.take(0, 1);
    }

    #[test]
    fn concurrent_exchange_through_barrier() {
        let hub = Arc::new(Hub::new(4));
        std::thread::scope(|s| {
            for rank in 0..4usize {
                let hub = Arc::clone(&hub);
                s.spawn(move || {
                    for dst in 0..4 {
                        hub.put(rank, dst, Box::new(rank * 10 + dst));
                    }
                    hub.wait();
                    for src in 0..4 {
                        let v: usize = *hub.take(src, rank).downcast().unwrap();
                        assert_eq!(v, src * 10 + rank);
                    }
                    hub.wait();
                });
            }
        });
    }
}
