//! # dibella-comm
//!
//! The distributed-memory substrate of this diBELLA reproduction: an SPMD
//! world of thread-per-rank processes in one address space, exposing the
//! MPI collectives the paper's pipeline is built on (`Alltoall`,
//! `Alltoallv`, reductions, exclusive scan, gather, broadcast, barrier)
//! with exact per-destination traffic accounting.
//!
//! The paper ran on MPI over Cray Aries/Gemini and AWS Ethernet; here the
//! *code path* — pack per-destination buffers, irregular exchange, unpack —
//! and the bytes/messages recorded are identical, which is what the
//! `dibella-netmodel` projections consume. The backend executing that path
//! is pluggable (see [`transport`]): [`SharedMem`] runs collectives through
//! real shared memory, while [`SimNet`] additionally charges each
//! collective the latency/bandwidth cost of a modeled platform, so a run
//! can execute "on" a virtual Cori or AWS cluster. See DESIGN.md §2 for
//! the substitution argument.
//!
//! ```
//! use dibella_comm::CommWorld;
//!
//! let sums = CommWorld::run(4, |comm| {
//!     // Each rank contributes rank+1; everyone learns the total.
//!     comm.allreduce_sum_u64(comm.rank() as u64 + 1)
//! });
//! assert_eq!(sums, vec![10, 10, 10, 10]);
//! ```

#![warn(missing_docs)]

mod comm;
pub mod executor;
pub mod frame;
mod hub;
pub mod round_exchange;
pub mod stats;
pub mod transport;
pub mod union;
pub mod wire;
mod world;

pub use comm::{Comm, PendingExchange};
pub use executor::BatchedExecutor;
pub use frame::{crc32, decode_frame, encode_frame, FrameError, FRAME_HEADER_BYTES};
pub use round_exchange::{records_per_round, ByteRounds, RoundExchange, RoundPlan};
pub use stats::CommStats;
pub use transport::{
    Collective, FaultSpec, FaultyConfig, FaultyInner, FaultyNet, InFlight, RetryPolicy, SharedMem,
    SimNet, SimNetConfig, Transport, TransportKind,
};
pub use union::MultisetUnion;
pub use wire::{decode_iter, decode_vec, encode_slice, try_decode_vec, Wire, WireError};
pub use world::CommWorld;
