//! Exact communication accounting.
//!
//! The cross-architecture projections (Figures 3–13) are driven by the
//! *exact* number of bytes and messages each rank exchanges in each
//! pipeline stage, so the communicator records, per destination rank, the
//! bytes and message count of every collective. A "message" here is one
//! non-empty point-to-point buffer inside an irregular collective — the
//! same unit an MPI implementation would transfer for `MPI_Alltoallv`.

use std::time::Duration;

/// Per-rank communication counters, reset at stage boundaries via
/// [`crate::Comm::take_stats`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommStats {
    /// Bytes this rank sent to each destination rank (including itself —
    /// the model decides what self/on-node traffic costs).
    pub dest_bytes: Vec<u64>,
    /// Non-empty buffers sent to each destination rank.
    pub dest_msgs: Vec<u64>,
    /// Number of `alltoallv`-style irregular exchanges.
    pub alltoallv_calls: u64,
    /// Number of dense collectives (alltoall counts, reduces, gathers,
    /// broadcasts, scans).
    pub dense_collectives: u64,
    /// Number of bare barriers.
    pub barriers: u64,
    /// High-water mark over all irregular exchanges of the bytes this rank
    /// sent in one exchange round (sum over destinations of a single
    /// call). This is the per-rank send-buffer footprint a streaming,
    /// round-capped stage actually holds at once — the number
    /// `PipelineConfig::max_exchange_bytes_per_round` bounds (up to one
    /// record of slack, since records never split across rounds).
    pub peak_round_bytes: u64,
    /// Wall-clock time spent inside collective calls (meaningful when the
    /// host is not oversubscribed; the figure harness uses byte counts
    /// instead).
    pub exchange_wall: Duration,
    /// Wall-clock time spent packing per-destination send buffers for the
    /// streaming exchanges (`RoundExchange` reports it via
    /// [`crate::Comm::add_pack_wall`]). Packing of round `i + 1` runs while
    /// round `i` is in flight, so `pack_wall` and `exchange_wall` measure
    /// *concurrent* intervals — their sum can exceed the stage wall, which
    /// is precisely the overlap the engine buys.
    pub pack_wall: Duration,
    /// Frames the hardened exchange layer rejected for structural damage
    /// (truncation, bad magic, length mismatch, CRC failure). Zero unless
    /// the transport advertises a [`crate::RetryPolicy`] and the medium
    /// actually mangles payloads.
    pub frames_corrupt_detected: u64,
    /// Per-destination frames re-sent by the retransmit loop (one
    /// retransmit of a `P`-rank round counts `P`). These bytes ride the
    /// recovery path and are deliberately *not* added to `dest_bytes` —
    /// the traffic accounting stays the logical payload the algorithm
    /// needed, so projections and wire-ratio invariants are unchanged by
    /// chaos.
    pub frames_retransmitted: u64,
    /// Structurally valid frames discarded because they carried a stale
    /// sequence number — duplicates of an earlier round.
    pub duplicates_dropped: u64,
    /// Times an `exchange_wait` poll exceeded the policy's wait timeout
    /// before the in-flight helper produced a result.
    pub wait_timeouts: u64,
    /// Wall-clock time spent in the recovery path: backoff sleeps,
    /// retransmits, and the agreement handshake that decides whether a
    /// round must be replayed.
    pub retry_wall: Duration,
}

impl CommStats {
    /// Zeroed counters for a world of `p` ranks.
    pub fn new(p: usize) -> Self {
        Self {
            dest_bytes: vec![0; p],
            dest_msgs: vec![0; p],
            ..Self::default()
        }
    }

    /// Total bytes sent (all destinations, self included).
    pub fn total_bytes(&self) -> u64 {
        self.dest_bytes.iter().sum()
    }

    /// Bytes sent to ranks other than `self_rank`.
    pub fn remote_bytes(&self, self_rank: usize) -> u64 {
        self.dest_bytes
            .iter()
            .enumerate()
            .filter(|&(d, _)| d != self_rank)
            .map(|(_, &b)| b)
            .sum()
    }

    /// Total non-empty messages sent.
    pub fn total_msgs(&self) -> u64 {
        self.dest_msgs.iter().sum()
    }

    /// Bytes sent to destinations for which `on_node(dest)` is true /
    /// false — the split the network model charges at memory vs. injection
    /// bandwidth.
    pub fn split_bytes<F: Fn(usize) -> bool>(&self, on_node: F) -> (u64, u64) {
        let mut on = 0u64;
        let mut off = 0u64;
        for (d, &b) in self.dest_bytes.iter().enumerate() {
            if on_node(d) {
                on += b;
            } else {
                off += b;
            }
        }
        (on, off)
    }

    /// Merge another stats block into this one (for aggregating rounds).
    pub fn merge(&mut self, other: &CommStats) {
        if self.dest_bytes.len() < other.dest_bytes.len() {
            self.dest_bytes.resize(other.dest_bytes.len(), 0);
            self.dest_msgs.resize(other.dest_msgs.len(), 0);
        }
        for (a, &b) in self.dest_bytes.iter_mut().zip(&other.dest_bytes) {
            *a += b;
        }
        for (a, &b) in self.dest_msgs.iter_mut().zip(&other.dest_msgs) {
            *a += b;
        }
        self.alltoallv_calls += other.alltoallv_calls;
        self.dense_collectives += other.dense_collectives;
        self.barriers += other.barriers;
        self.peak_round_bytes = self.peak_round_bytes.max(other.peak_round_bytes);
        self.exchange_wall += other.exchange_wall;
        self.pack_wall += other.pack_wall;
        self.frames_corrupt_detected += other.frames_corrupt_detected;
        self.frames_retransmitted += other.frames_retransmitted;
        self.duplicates_dropped += other.duplicates_dropped;
        self.wait_timeouts += other.wait_timeouts;
        self.retry_wall += other.retry_wall;
    }

    /// True if any robustness counter is nonzero — i.e. the hardened
    /// exchange layer detected and survived at least one fault.
    pub fn any_faults_survived(&self) -> bool {
        self.frames_corrupt_detected != 0
            || self.frames_retransmitted != 0
            || self.duplicates_dropped != 0
            || self.wait_timeouts != 0
    }

    pub(crate) fn record_exchange(&mut self, sizes: impl Iterator<Item = usize>) {
        let mut round_bytes = 0u64;
        for (d, s) in sizes.enumerate() {
            self.dest_bytes[d] += s as u64;
            round_bytes += s as u64;
            if s > 0 {
                self.dest_msgs[d] += 1;
            }
        }
        self.alltoallv_calls += 1;
        self.peak_round_bytes = self.peak_round_bytes.max(round_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = CommStats::new(4);
        s.record_exchange([10usize, 0, 5, 3].into_iter());
        assert_eq!(s.total_bytes(), 18);
        assert_eq!(s.total_msgs(), 3);
        assert_eq!(s.remote_bytes(0), 8);
        assert_eq!(s.alltoallv_calls, 1);
        assert_eq!(s.peak_round_bytes, 18);
    }

    #[test]
    fn peak_round_bytes_is_a_high_water_mark() {
        let mut s = CommStats::new(2);
        s.record_exchange([4usize, 4].into_iter());
        s.record_exchange([100usize, 0].into_iter());
        s.record_exchange([1usize, 1].into_iter());
        // Totals accumulate, the peak tracks the largest single round.
        assert_eq!(s.total_bytes(), 110);
        assert_eq!(s.peak_round_bytes, 100);
    }

    #[test]
    fn split_on_off_node() {
        let mut s = CommStats::new(4);
        s.record_exchange([1usize, 2, 4, 8].into_iter());
        // Ranks 0-1 on node, 2-3 off node.
        let (on, off) = s.split_bytes(|d| d < 2);
        assert_eq!(on, 3);
        assert_eq!(off, 12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CommStats::new(2);
        a.record_exchange([1usize, 2].into_iter());
        let mut b = CommStats::new(2);
        b.record_exchange([10usize, 0].into_iter());
        b.barriers = 3;
        b.pack_wall = Duration::from_millis(7);
        a.pack_wall = Duration::from_millis(2);
        a.merge(&b);
        assert_eq!(a.dest_bytes, vec![11, 2]);
        assert_eq!(a.dest_msgs, vec![2, 1]);
        assert_eq!(a.alltoallv_calls, 2);
        assert_eq!(a.barriers, 3);
        assert_eq!(a.pack_wall, Duration::from_millis(9));
        // The peak is the max across the merged stats, not a sum.
        assert_eq!(a.peak_round_bytes, 10);
    }

    #[test]
    fn merge_sums_robustness_counters() {
        let mut a = CommStats::new(2);
        a.frames_corrupt_detected = 1;
        a.retry_wall = Duration::from_millis(5);
        assert!(a.any_faults_survived());
        let mut b = CommStats::new(2);
        b.frames_retransmitted = 4;
        b.duplicates_dropped = 2;
        b.wait_timeouts = 1;
        b.retry_wall = Duration::from_millis(3);
        a.merge(&b);
        assert_eq!(a.frames_corrupt_detected, 1);
        assert_eq!(a.frames_retransmitted, 4);
        assert_eq!(a.duplicates_dropped, 2);
        assert_eq!(a.wait_timeouts, 1);
        assert_eq!(a.retry_wall, Duration::from_millis(8));
        assert!(!CommStats::new(2).any_faults_survived());
    }
}
