//! The pluggable transport layer beneath [`crate::Comm`].
//!
//! The collective code path — pack per-destination buffers, irregular
//! exchange, unpack — lives once in `comm.rs`, written against the
//! [`Transport`] trait. Two backends implement it:
//!
//! * [`SharedMem`] — the real executor: the `P × P` slot matrix and cyclic
//!   barrier of the crate-private `hub` module. Collective wall time is
//!   whatever the host actually spent.
//! * [`SimNet`] — a *simulated network*: it delegates every payload to an
//!   inner [`SharedMem`] (so results are byte-identical), but reports the
//!   wall time a `dibella_netmodel::Platform` would have charged for the
//!   collective — `α + α_rank·P` latency per call, off-node bytes at the
//!   node's injection bandwidth, on-node bytes at memory bandwidth, and
//!   the paper's one-time first-`MPI_Alltoallv` setup (§6/§10). Ranks are
//!   placed `ranks_per_node` to a virtual node, so the same run can be
//!   executed "on" Cori Haswell or a commodity-Ethernet AWS cluster and
//!   `CommStats::exchange_wall` reflects the modeled interconnect.
//!
//! Backends are chosen via [`TransportKind`], which parses from the CLI
//! syntax `shared` / `sim:<platform>[:<ranks_per_node>]`.

use crate::hub::Hub;
use dibella_netmodel::{
    collective_latency_s, exchange_transfer_s, first_alltoallv_setup_s, overlapped_round_s,
    Platform, PlatformId,
};
use parking_lot::Mutex;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// One completed collective, as described to a transport backend when the
/// communicator asks what wall time to charge for it.
#[derive(Clone, Copy, Debug)]
pub enum Collective<'a> {
    /// An irregular exchange; `dest_bytes[d]` is the payload this rank
    /// sent to destination `d` in this call.
    Alltoallv {
        /// Per-destination payload bytes of this rank's contribution.
        dest_bytes: &'a [u64],
    },
    /// A dense collective (alltoall of counts, allgather, reduction,
    /// scan) — small fixed-size values, modeled latency-only.
    Dense,
}

/// Result a split exchange's helper delivers: either the received buffers
/// plus the wall time the backend charges, or the helper's panic payload
/// (re-raised on the waiting rank thread so mismatched-collective bugs
/// surface with their original message).
pub(crate) type ExchangeResult = Result<(Vec<Vec<u8>>, Duration), Box<dyn Any + Send>>;

/// Handle to an irregular byte exchange started with
/// [`Transport::exchange_start`] and finished with
/// [`Transport::exchange_wait`].
///
/// Backend-agnostic: the backend's helper task (a thread off the rayon
/// pool) performs the actual slot traffic and sends the result through
/// this handle's channel, so the owning rank thread is free to pack the
/// next round while the exchange is in flight.
pub struct InFlight {
    rx: mpsc::Receiver<ExchangeResult>,
}

impl InFlight {
    /// Block until the helper finishes; re-raise its panic if it died.
    fn finish(self) -> (Vec<Vec<u8>>, Duration) {
        match self
            .rx
            .recv()
            .expect("exchange helper thread vanished without a result")
        {
            Ok(out) => out,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Wait up to `timeout` for the helper's result without consuming the
    /// handle. `None` means the helper is still running (a stalled or
    /// slow exchange — the hardened wait loop counts these against
    /// [`RetryPolicy::max_wait_timeouts`]); the helper's panic payload is
    /// returned as the `Err` arm for the caller to re-raise.
    pub(crate) fn poll(&self, timeout: Duration) -> Option<ExchangeResult> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                panic!("exchange helper thread vanished without a result")
            }
        }
    }
}

/// How the hardened exchange layer recovers from a damaged round: how
/// long to wait on a stalled exchange, how often to retransmit, and how
/// to back off between attempts.
///
/// A transport advertises a policy via [`Transport::retry_policy`]; the
/// communicator then frames every round payload (see [`crate::frame`])
/// and replays damaged rounds. Transports that return `None` (the
/// in-process [`SharedMem`] and [`SimNet`], whose medium cannot corrupt
/// bytes) keep the exact unframed fast path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retransmit attempts per round before the rank fails the stage.
    pub max_retries: u32,
    /// How long one `InFlight::poll` waits before counting a timeout.
    pub wait_timeout: Duration,
    /// Consecutive poll timeouts tolerated before the wait is declared
    /// hung and the rank panics (failing the stage cleanly).
    pub max_wait_timeouts: u32,
    /// Backoff before the first retransmit; doubles per attempt.
    pub backoff_base: Duration,
    /// Ceiling on the doubled backoff.
    pub backoff_max: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 8,
            wait_timeout: Duration::from_secs(30),
            max_wait_timeouts: 40,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(100),
        }
    }
}

/// Take the `(src → dst)` deposit of a byte exchange and restore its type.
fn take_bytes(hub: &Hub, src: usize, dst: usize) -> Vec<u8> {
    *hub.take(src, dst)
        .downcast::<Vec<u8>>()
        .unwrap_or_else(|_| panic!("slot ({src},{dst}) holds unexpected type"))
}

/// Run one full irregular byte exchange for `rank` over `hub`: deposit the
/// per-destination buffers, rendezvous, drain this rank's column, and
/// rendezvous again so slots can be reused. This is the body every split
/// exchange's helper executes.
fn exchange_on_hub(hub: &Hub, rank: usize, send: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    let p = hub.size();
    for (dst, buf) in send.into_iter().enumerate() {
        hub.put(rank, dst, Box::new(buf));
    }
    hub.wait();
    let recv: Vec<Vec<u8>> = (0..p).map(|src| take_bytes(hub, src, rank)).collect();
    hub.wait();
    recv
}

/// A communication backend: the exchange primitives the collectives in
/// [`crate::Comm`] are written against, plus a timing policy.
///
/// Contract (the usual SPMD one): every rank of the world calls the same
/// collectives in the same order, so backends may synchronize internally —
/// [`Transport::collective_wall`] in particular is called by all ranks for
/// the same operation and may itself use barriers. The split
/// [`Transport::exchange_start`]/[`Transport::exchange_wait`] pair extends
/// that contract: at most one exchange may be in flight per rank, and no
/// other collective may be issued by that rank between the start and the
/// matching wait (packing local buffers is exactly what the gap is for).
pub trait Transport: Send + Sync {
    /// World size.
    fn size(&self) -> usize;

    /// Block until all ranks arrive (one barrier phase).
    fn wait(&self);

    /// Deposit a type-erased buffer for `(src → dst)`.
    fn put(&self, src: usize, dst: usize, value: Box<dyn Any + Send>);

    /// Take the deposit for `(src → dst)`.
    ///
    /// # Panics
    /// Panics if the slot is empty — mismatched collective calls across
    /// ranks (the bug MPI reports as a message-truncation error).
    fn take(&self, src: usize, dst: usize) -> Box<dyn Any + Send>;

    /// Wall time to charge `rank`'s `CommStats::exchange_wall` for one
    /// completed collective. `elapsed` is the time the host really spent;
    /// real backends return it, simulated ones replace it with the
    /// modeled cost.
    fn collective_wall(&self, rank: usize, op: Collective<'_>, elapsed: Duration) -> Duration;

    /// Begin a non-blocking irregular byte exchange: `send[d]` goes to
    /// rank `d`. The traffic moves on a helper task so the caller can
    /// keep computing (packing the next round) until the matching
    /// [`Transport::exchange_wait`].
    fn exchange_start(&self, rank: usize, send: Vec<Vec<u8>>) -> InFlight;

    /// Finish an exchange begun by [`Transport::exchange_start`]: return
    /// the buffers received from every source rank (indexed by source)
    /// and the wall time to charge for the exchange. `overlapped` is how
    /// long the caller spent computing while the exchange was in flight —
    /// real backends ignore it (their measured time already ran
    /// concurrently with that work), simulated ones charge
    /// `max(overlapped, modeled)` so a modeled exchange can hide behind
    /// packing but never make a round cheaper than its compute.
    fn exchange_wait(&self, rank: usize, pending: InFlight, overlapped: Duration)
        -> (Vec<Vec<u8>>, Duration);

    /// The recovery policy the communicator should harden irregular
    /// exchanges with, or `None` for a reliable medium (the default):
    /// payloads then move unframed and unchecked, exactly as before the
    /// hardened layer existed.
    fn retry_policy(&self) -> Option<RetryPolicy> {
        None
    }
}

/// The real shared-memory backend: collectives execute through the hub's
/// slot matrix and wall time is the measured host time. This is the exact
/// behavior the communicator had before the transport layer existed.
///
/// Split exchanges overlap for real: the slot traffic runs on a helper
/// thread off the rayon pool while the rank thread keeps packing, so
/// communication/computation overlap is genuine host concurrency, not an
/// accounting fiction.
pub struct SharedMem {
    hub: Arc<Hub>,
}

impl SharedMem {
    /// A shared-memory world of `p` ranks.
    pub fn new(p: usize) -> Self {
        Self { hub: Arc::new(Hub::new(p)) }
    }
}

impl Transport for SharedMem {
    fn size(&self) -> usize {
        self.hub.size()
    }

    fn wait(&self) {
        self.hub.wait();
    }

    fn put(&self, src: usize, dst: usize, value: Box<dyn Any + Send>) {
        self.hub.put(src, dst, value);
    }

    fn take(&self, src: usize, dst: usize) -> Box<dyn Any + Send> {
        self.hub.take(src, dst)
    }

    fn collective_wall(&self, _rank: usize, _op: Collective<'_>, elapsed: Duration) -> Duration {
        elapsed
    }

    fn exchange_start(&self, rank: usize, send: Vec<Vec<u8>>) -> InFlight {
        let hub = Arc::clone(&self.hub);
        let (tx, rx) = mpsc::channel();
        let t0 = Instant::now();
        rayon::spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                let recv = exchange_on_hub(&hub, rank, send);
                (recv, t0.elapsed())
            }));
            // The receiver only disappears if the rank thread is already
            // unwinding; dropping the result is then the right thing.
            let _ = tx.send(result);
        });
        InFlight { rx }
    }

    fn exchange_wait(
        &self,
        _rank: usize,
        pending: InFlight,
        _overlapped: Duration,
    ) -> (Vec<Vec<u8>>, Duration) {
        // The measured helper time already ran concurrently with whatever
        // the rank thread did in the gap; report it as-is.
        pending.finish()
    }
}

/// Configuration of the simulated-network backend: which platform's
/// interconnect to model and how many ranks share a virtual node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimNetConfig {
    /// The modeled machine (Table 1 platform).
    pub platform: PlatformId,
    /// Ranks per virtual node (rank `r` lives on node `r / ranks_per_node`,
    /// mirroring `dibella_netmodel::NodeMapping`).
    pub ranks_per_node: usize,
}

/// The netmodel-driven simulated-network backend. Payloads move through an
/// inner [`SharedMem`] — results are byte-identical to the real backend —
/// but every collective's reported wall time is the modeled cost on the
/// configured platform, so `CommStats::exchange_wall` behaves as if the
/// run executed on that machine's interconnect.
pub struct SimNet {
    inner: SharedMem,
    model: Arc<SimModel>,
}

/// The modeled-cost state of a [`SimNet`] world, shared with in-flight
/// exchange helpers (hence the `Arc`).
struct SimModel {
    platform: &'static Platform,
    ranks_per_node: usize,
    /// Per-rank flag: has this rank charged the job's first-`Alltoallv`
    /// setup yet? (Collectives are globally ordered, so every rank's
    /// first irregular exchange is the same call.)
    first_done: Vec<AtomicBool>,
    /// Per-rank `dest_bytes` rows of the in-flight alltoallv, published so
    /// each rank can aggregate its whole node's traffic — the NIC is a
    /// per-node resource in the model.
    rows: Vec<Mutex<Vec<u64>>>,
}

impl SimModel {
    fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node
    }

    /// Modeled wall of one irregular exchange whose per-destination send
    /// volumes on this rank are `dest_bytes`. Synchronizes twice on `hub`
    /// (publish rows / rows-reusable) to aggregate the whole node's
    /// traffic exactly as `dibella_netmodel::stage_cost` does, so it must
    /// be reached by every rank of the world for the same call — either
    /// on the rank threads (blocking collectives) or on the per-rank
    /// exchange helpers (split collectives).
    fn alltoallv_wall(&self, hub: &Hub, rank: usize, dest_bytes: &[u64]) -> Duration {
        let p = hub.size();
        let latency = collective_latency_s(self.platform, p);
        *self.rows[rank].lock() = dest_bytes.to_vec();
        hub.wait();
        let home = self.node_of(rank);
        let (mut on, mut off) = (0u64, 0u64);
        for src in (0..p).filter(|&r| self.node_of(r) == home) {
            for (dst, &b) in self.rows[src].lock().iter().enumerate() {
                if self.node_of(dst) == home {
                    on += b;
                } else {
                    off += b;
                }
            }
        }
        hub.wait(); // rows may be reused after this point
        let base = latency + exchange_transfer_s(self.platform, on, off);
        let setup = if !self.first_done[rank].swap(true, Ordering::Relaxed) {
            first_alltoallv_setup_s(self.platform, p, base)
        } else {
            0.0
        };
        Duration::from_secs_f64(base + setup)
    }
}

impl SimNet {
    /// A simulated world of `p` ranks on `cfg.platform`.
    ///
    /// # Panics
    /// Panics if `cfg.ranks_per_node` is zero.
    pub fn new(p: usize, cfg: SimNetConfig) -> Self {
        assert!(cfg.ranks_per_node > 0, "ranks_per_node must be positive");
        Self {
            inner: SharedMem::new(p),
            model: Arc::new(SimModel {
                platform: Platform::get(cfg.platform),
                ranks_per_node: cfg.ranks_per_node,
                first_done: (0..p).map(|_| AtomicBool::new(false)).collect(),
                rows: (0..p).map(|_| Mutex::new(Vec::new())).collect(),
            }),
        }
    }
}

impl Transport for SimNet {
    fn size(&self) -> usize {
        self.inner.size()
    }

    fn wait(&self) {
        self.inner.wait();
    }

    fn put(&self, src: usize, dst: usize, value: Box<dyn Any + Send>) {
        self.inner.put(src, dst, value);
    }

    fn take(&self, src: usize, dst: usize) -> Box<dyn Any + Send> {
        self.inner.take(src, dst)
    }

    fn collective_wall(&self, rank: usize, op: Collective<'_>, _elapsed: Duration) -> Duration {
        match op {
            Collective::Dense => Duration::from_secs_f64(collective_latency_s(
                self.model.platform,
                self.inner.size(),
            )),
            Collective::Alltoallv { dest_bytes } => {
                self.model.alltoallv_wall(&self.inner.hub, rank, dest_bytes)
            }
        }
    }

    fn exchange_start(&self, rank: usize, send: Vec<Vec<u8>>) -> InFlight {
        let hub = Arc::clone(&self.inner.hub);
        let model = Arc::clone(&self.model);
        let (tx, rx) = mpsc::channel();
        rayon::spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                let sizes: Vec<u64> = send.iter().map(|b| b.len() as u64).collect();
                let recv = exchange_on_hub(&hub, rank, send);
                let modeled = model.alltoallv_wall(&hub, rank, &sizes);
                (recv, modeled)
            }));
            let _ = tx.send(result);
        });
        InFlight { rx }
    }

    fn exchange_wait(
        &self,
        _rank: usize,
        pending: InFlight,
        overlapped: Duration,
    ) -> (Vec<Vec<u8>>, Duration) {
        // An overlapped round costs the slower of the packing done while
        // the exchange was in flight and the modeled exchange itself —
        // the netmodel's single definition of an overlapped round, so the
        // executable backend and the analytic projections agree.
        let (recv, modeled) = pending.finish();
        let charged = Duration::from_secs_f64(overlapped_round_s(
            overlapped.as_secs_f64(),
            modeled.as_secs_f64(),
        ));
        (recv, charged)
    }
}

/// splitmix64 — the same finalizer `dibella_kmer::mix64` uses, duplicated
/// here so the comm crate stays dependency-free. Drives every fault draw,
/// keyed by `(seed, rank, dst, call index)`, so injection is a pure
/// function of the schedule and chaos runs replay exactly.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-fault injection rates and recovery knobs of a [`FaultyNet`].
///
/// Rates are stored in per-mille (probability × 1000) so the config stays
/// `Copy + Eq`. Parsed from a comma-separated spec where each entry is a
/// preset (`none`, `corrupt`, `drop`, `mixed`) or a `key=value` pair:
/// `corrupt`/`drop`/`dup`/`reorder`/`stall` take probabilities in `[0, 1]`,
/// `stall_ms`/`timeout_ms` take milliseconds, `retries` a count. Later
/// entries override earlier ones, so `mixed,retries=0` is the mixed
/// preset with retransmission disabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Per-mille chance a delivered frame has one random bit flipped.
    pub corrupt_per_mille: u32,
    /// Per-mille chance a frame is replaced by an empty buffer.
    pub drop_per_mille: u32,
    /// Per-mille chance a frame is replaced by a duplicate of the
    /// previous round's frame on the same lane (a stale replay).
    pub dup_per_mille: u32,
    /// Per-mille chance a frame is held back and the lane's previously
    /// held (or previous round's) frame is delivered instead —
    /// out-of-order delivery.
    pub reorder_per_mille: u32,
    /// Per-mille chance the whole exchange is stalled by `stall_ms`
    /// before any byte moves.
    pub stall_per_mille: u32,
    /// How long a stalled exchange sleeps.
    pub stall_ms: u64,
    /// Retransmit attempts granted to the hardened layer
    /// ([`RetryPolicy::max_retries`]).
    pub retries: u32,
    /// Wait-timeout granted to the hardened layer, in milliseconds
    /// ([`RetryPolicy::wait_timeout`]).
    pub timeout_ms: u64,
}

impl Default for FaultSpec {
    /// The `none` preset: a faithful pass-through (all rates zero) that
    /// still advertises the hardened layer's default recovery policy.
    fn default() -> Self {
        Self {
            corrupt_per_mille: 0,
            drop_per_mille: 0,
            dup_per_mille: 0,
            reorder_per_mille: 0,
            stall_per_mille: 0,
            stall_ms: 20,
            retries: RetryPolicy::default().max_retries,
            timeout_ms: RetryPolicy::default().wait_timeout.as_millis() as u64,
        }
    }
}

impl FaultSpec {
    /// The `mixed` preset: every fault class enabled, rates tuned so a
    /// smoke-sized run (a few hundred frame-sends) trips several faults
    /// while retries still converge sharply. A retransmit re-rolls all
    /// `P²` frames of the round, so the per-attempt clean probability is
    /// `(1-f)^(P²)`; at the ~2.3% combined rate here a P=4 round clears
    /// in ~1.4 attempts on average and exhausting the default 8-retry
    /// budget has odds in the 1e-5 range per faulted round.
    pub fn mixed() -> Self {
        Self {
            corrupt_per_mille: 10,
            drop_per_mille: 5,
            dup_per_mille: 5,
            reorder_per_mille: 3,
            stall_per_mille: 0,
            ..Self::default()
        }
    }

    /// The retry policy this spec grants the hardened exchange layer.
    pub fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy {
            max_retries: self.retries,
            wait_timeout: Duration::from_millis(self.timeout_ms),
            ..RetryPolicy::default()
        }
    }

    /// True if any injection rate is nonzero.
    pub fn any_rate(&self) -> bool {
        self.corrupt_per_mille != 0
            || self.drop_per_mille != 0
            || self.dup_per_mille != 0
            || self.reorder_per_mille != 0
            || self.stall_per_mille != 0
    }
}

/// Parse a probability token (`0`..`1`) into per-mille.
fn parse_rate(key: &str, v: &str) -> Result<u32, String> {
    v.parse::<f64>()
        .ok()
        .filter(|p| (0.0..=1.0).contains(p))
        .map(|p| (p * 1000.0).round() as u32)
        .ok_or_else(|| format!("invalid {key} rate {v:?} (probability in [0, 1])"))
}

impl std::str::FromStr for FaultSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let mut spec = FaultSpec::default();
        for entry in s.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            match entry.split_once('=') {
                None => match entry {
                    "none" => spec = FaultSpec::default(),
                    "corrupt" => {
                        spec = FaultSpec { corrupt_per_mille: 20, ..FaultSpec::default() }
                    }
                    "drop" => spec = FaultSpec { drop_per_mille: 20, ..FaultSpec::default() },
                    "mixed" => spec = FaultSpec::mixed(),
                    other => {
                        return Err(format!(
                            "unknown fault preset {other:?} (none|corrupt|drop|mixed)"
                        ))
                    }
                },
                Some((key, v)) => match key {
                    "corrupt" => spec.corrupt_per_mille = parse_rate(key, v)?,
                    "drop" => spec.drop_per_mille = parse_rate(key, v)?,
                    "dup" => spec.dup_per_mille = parse_rate(key, v)?,
                    "reorder" => spec.reorder_per_mille = parse_rate(key, v)?,
                    "stall" => spec.stall_per_mille = parse_rate(key, v)?,
                    "stall_ms" => {
                        spec.stall_ms = v
                            .parse()
                            .map_err(|_| format!("invalid stall_ms {v:?} (milliseconds)"))?
                    }
                    "retries" => {
                        spec.retries = v
                            .parse()
                            .map_err(|_| format!("invalid retries {v:?} (count)"))?
                    }
                    "timeout_ms" => {
                        spec.timeout_ms = v
                            .parse()
                            .ok()
                            .filter(|&ms: &u64| ms > 0)
                            .ok_or_else(|| {
                                format!("invalid timeout_ms {v:?} (positive milliseconds)")
                            })?
                    }
                    other => {
                        return Err(format!(
                            "unknown fault key {other:?} \
                             (corrupt|drop|dup|reorder|stall|stall_ms|retries|timeout_ms)"
                        ))
                    }
                },
            }
        }
        Ok(spec)
    }
}

impl std::fmt::Display for FaultSpec {
    /// Canonical `key=value` form that parses back to an equal spec.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "corrupt={},drop={},dup={},reorder={},stall={},stall_ms={},retries={},timeout_ms={}",
            self.corrupt_per_mille as f64 / 1000.0,
            self.drop_per_mille as f64 / 1000.0,
            self.dup_per_mille as f64 / 1000.0,
            self.reorder_per_mille as f64 / 1000.0,
            self.stall_per_mille as f64 / 1000.0,
            self.stall_ms,
            self.retries,
            self.timeout_ms,
        )
    }
}

/// The transport a [`FaultyNet`] wraps. A flat enum rather than a nested
/// [`TransportKind`] so the kind stays `Copy` (and fault injection cannot
/// be stacked on itself).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultyInner {
    /// Wrap the real shared-memory backend.
    SharedMem,
    /// Wrap the simulated-network backend.
    SimNet(SimNetConfig),
}

impl FaultyInner {
    fn build(&self, p: usize) -> Arc<dyn Transport> {
        match self {
            FaultyInner::SharedMem => Arc::new(SharedMem::new(p)),
            FaultyInner::SimNet(cfg) => Arc::new(SimNet::new(p, *cfg)),
        }
    }

    fn as_kind(&self) -> TransportKind {
        match self {
            FaultyInner::SharedMem => TransportKind::SharedMem,
            FaultyInner::SimNet(cfg) => TransportKind::SimNet(*cfg),
        }
    }
}

/// Configuration of a [`FaultyNet`]: what to wrap, the RNG seed, and the
/// fault rates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultyConfig {
    /// The wrapped transport.
    pub inner: FaultyInner,
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Injection rates and recovery knobs.
    pub spec: FaultSpec,
}

/// Per-source-rank fault-injection state: the exchange call counter that
/// keys the RNG stream, plus the per-destination frames the dup and
/// reorder faults replay.
struct LaneState {
    calls: u64,
    /// Last frame genuinely submitted to each destination (previous
    /// round) — what a `dup` fault replays.
    prev: Vec<Option<Vec<u8>>>,
    /// Frame held back by a `reorder` fault, delivered by the next
    /// reorder event on the same lane.
    held: Vec<Option<Vec<u8>>>,
}

/// The fault-injecting chaos backend: wraps any inner transport and
/// mangles the irregular-exchange byte path with seeded, reproducible
/// faults — bit flips, drops, stale duplicates, out-of-order delivery,
/// stalled exchanges. Everything else (dense collectives, barriers, the
/// typed slot traffic, and the hardened layer's own agreement handshake)
/// passes through untouched: the chaos models a lossy *data plane*, which
/// is exactly the part the frame + retry machinery must survive.
///
/// Every fault draw is a pure function of `(seed, rank, destination,
/// call index)`, so a chaos run is bit-reproducible regardless of thread
/// scheduling — the property the chaos soak tests lean on.
pub struct FaultyNet {
    inner: Arc<dyn Transport>,
    seed: u64,
    spec: FaultSpec,
    lanes: Vec<Mutex<LaneState>>,
}

impl FaultyNet {
    /// A chaos world of `p` ranks over `cfg.inner`.
    pub fn new(p: usize, cfg: FaultyConfig) -> Self {
        Self {
            inner: cfg.inner.build(p),
            seed: cfg.seed,
            spec: cfg.spec,
            lanes: (0..p)
                .map(|_| {
                    Mutex::new(LaneState {
                        calls: 0,
                        prev: vec![None; p],
                        held: vec![None; p],
                    })
                })
                .collect(),
        }
    }

    /// Draw the fault stream for `(rank, dst, call)`; `word` selects
    /// independent words of the stream.
    fn draw(&self, rank: usize, dst: usize, call: u64, word: u64) -> u64 {
        let mut x = self.seed;
        x = splitmix64(x ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        x = splitmix64(x ^ (dst as u64));
        x = splitmix64(x ^ call);
        splitmix64(x ^ word)
    }

    /// Did a fault with rate `per_mille` fire for this draw?
    fn fires(&self, per_mille: u32, rank: usize, dst: usize, call: u64, word: u64) -> bool {
        per_mille > 0 && self.draw(rank, dst, call, word) % 1000 < per_mille as u64
    }

    /// Apply the per-lane fault schedule to one round's send buffers;
    /// returns the mangled buffers and whether this exchange stalls.
    fn mangle(&self, rank: usize, send: Vec<Vec<u8>>) -> (Vec<Vec<u8>>, bool) {
        let mut lane = self.lanes[rank].lock();
        let call = lane.calls;
        lane.calls += 1;
        let stall = self.fires(self.spec.stall_per_mille, rank, rank, call, 0);
        let mut out = Vec::with_capacity(send.len());
        for (dst, frame) in send.into_iter().enumerate() {
            let original = frame.clone();
            let mangled = if self.fires(self.spec.reorder_per_mille, rank, dst, call, 1) {
                // Hold this frame; deliver whatever the lane last held,
                // falling back to the previous round's frame, then to an
                // empty buffer (pure loss until a later reorder event).
                let late = lane.held[dst].take().or_else(|| lane.prev[dst].clone());
                lane.held[dst] = Some(frame);
                late.unwrap_or_default()
            } else if self.fires(self.spec.drop_per_mille, rank, dst, call, 2) {
                Vec::new()
            } else if self.fires(self.spec.dup_per_mille, rank, dst, call, 3) {
                // A stale replay of the previous round (if any).
                lane.prev[dst].clone().unwrap_or(frame)
            } else if self.fires(self.spec.corrupt_per_mille, rank, dst, call, 4) && !frame.is_empty()
            {
                let mut bad = frame;
                let bit = self.draw(rank, dst, call, 5) % (bad.len() as u64 * 8);
                bad[(bit / 8) as usize] ^= 1 << (bit % 8);
                bad
            } else {
                frame
            };
            lane.prev[dst] = Some(original);
            out.push(mangled);
        }
        (out, stall)
    }
}

impl Transport for FaultyNet {
    fn size(&self) -> usize {
        self.inner.size()
    }

    fn wait(&self) {
        self.inner.wait();
    }

    fn put(&self, src: usize, dst: usize, value: Box<dyn Any + Send>) {
        self.inner.put(src, dst, value);
    }

    fn take(&self, src: usize, dst: usize) -> Box<dyn Any + Send> {
        self.inner.take(src, dst)
    }

    fn collective_wall(&self, rank: usize, op: Collective<'_>, elapsed: Duration) -> Duration {
        self.inner.collective_wall(rank, op, elapsed)
    }

    fn exchange_start(&self, rank: usize, send: Vec<Vec<u8>>) -> InFlight {
        let (send, stall) = self.mangle(rank, send);
        let stall_ms = self.spec.stall_ms;
        let inner = Arc::clone(&self.inner);
        let (tx, rx) = mpsc::channel();
        // Run the whole inner exchange on our own helper so a stall can
        // sleep without blocking the rank thread. The inner wait gets
        // `overlapped = 0`: under chaos only payload bytes and work
        // counters are compared bit-identically, not modeled walls.
        rayon::spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                if stall {
                    std::thread::sleep(Duration::from_millis(stall_ms));
                }
                let pending = inner.exchange_start(rank, send);
                inner.exchange_wait(rank, pending, Duration::ZERO)
            }));
            let _ = tx.send(result);
        });
        InFlight { rx }
    }

    fn exchange_wait(
        &self,
        _rank: usize,
        pending: InFlight,
        _overlapped: Duration,
    ) -> (Vec<Vec<u8>>, Duration) {
        pending.finish()
    }

    fn retry_policy(&self) -> Option<RetryPolicy> {
        Some(self.spec.retry_policy())
    }
}

/// Which transport backend a world should run on — the cheap, cloneable
/// configuration that [`crate::CommWorld::run_with`] and
/// `dibella_core::PipelineConfig::transport` carry around.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// Real shared-memory execution (the default).
    #[default]
    SharedMem,
    /// Simulated network on a modeled platform.
    SimNet(SimNetConfig),
    /// Fault-injecting chaos wrapper around a real backend.
    Faulty(FaultyConfig),
}

impl TransportKind {
    /// Instantiate the backend for a world of `p` ranks.
    pub fn build(&self, p: usize) -> Arc<dyn Transport> {
        match self {
            TransportKind::SharedMem => Arc::new(SharedMem::new(p)),
            TransportKind::SimNet(cfg) => Arc::new(SimNet::new(p, *cfg)),
            TransportKind::Faulty(cfg) => Arc::new(FaultyNet::new(p, *cfg)),
        }
    }
}

/// Parse the trailing `[:<seed>[:<spec>]]` of a `faulty:` transport. When
/// both are absent, the `DIBELLA_FAULTS` env var supplies `[seed=N,]spec`
/// (panicking on unparsable values, like every other `DIBELLA_*` knob),
/// defaulting to the aggressive `mixed` preset at seed 0.
fn parse_faulty_tail(tail: &[&str]) -> Result<(u64, FaultSpec), String> {
    match tail {
        [] => match std::env::var("DIBELLA_FAULTS") {
            Err(_) => Ok((0, FaultSpec::mixed())),
            Ok(v) => {
                let mut seed = 0u64;
                let mut spec_entries = Vec::new();
                for entry in v.split(',').map(str::trim).filter(|e| !e.is_empty()) {
                    match entry.strip_prefix("seed=") {
                        Some(n) => {
                            seed = n.parse().unwrap_or_else(|_| {
                                panic!("invalid DIBELLA_FAULTS seed {n:?} (u64)")
                            })
                        }
                        None => spec_entries.push(entry),
                    }
                }
                let spec = if spec_entries.is_empty() {
                    FaultSpec::mixed()
                } else {
                    spec_entries
                        .join(",")
                        .parse()
                        .unwrap_or_else(|e| panic!("invalid DIBELLA_FAULTS {v:?}: {e}"))
                };
                Ok((seed, spec))
            }
        },
        [seed] => {
            let seed = seed
                .parse()
                .map_err(|_| format!("invalid fault seed {seed:?} (u64)"))?;
            Ok((seed, FaultSpec::mixed()))
        }
        [seed, spec] => {
            let seed = seed
                .parse()
                .map_err(|_| format!("invalid fault seed {seed:?} (u64)"))?;
            Ok((seed, spec.parse()?))
        }
        more => Err(format!(
            "trailing faulty-transport fields {more:?} (expected `[:<seed>[:<spec>]]`)"
        )),
    }
}

impl std::str::FromStr for TransportKind {
    type Err = String;

    /// Parse the CLI syntax: `shared`,
    /// `sim:<platform>[:<ranks_per_node>]` where `<platform>` is `cori`,
    /// `edison`, `titan` or `aws` and `<ranks_per_node>` defaults to the
    /// platform's cores per node, or `faulty:<inner>[:<seed>[:<spec>]]`
    /// where `<inner>` is any non-faulty transport. The inner transport
    /// is matched greedily (longest colon-prefix that parses), so
    /// `faulty:sim:cori:2` wraps `sim:cori:2`; to pass a seed to a `sim`
    /// inner, spell out its ranks-per-node (`faulty:sim:cori:2:42`).
    /// With seed and spec absent, `DIBELLA_FAULTS` is consulted
    /// (`[seed=N,]<spec>`), defaulting to the `mixed` preset at seed 0.
    fn from_str(s: &str) -> Result<Self, String> {
        if s == "shared" {
            return Ok(TransportKind::SharedMem);
        }
        if let Some(rest) = s.strip_prefix("faulty:") {
            let parts: Vec<&str> = rest.split(':').collect();
            for i in (1..=parts.len()).rev() {
                let inner = match parts[..i].join(":").parse::<TransportKind>() {
                    Ok(TransportKind::SharedMem) => FaultyInner::SharedMem,
                    Ok(TransportKind::SimNet(cfg)) => FaultyInner::SimNet(cfg),
                    Ok(TransportKind::Faulty(_)) | Err(_) => continue,
                };
                let (seed, spec) = parse_faulty_tail(&parts[i..])?;
                return Ok(TransportKind::Faulty(FaultyConfig { inner, seed, spec }));
            }
            return Err(format!(
                "no inner transport in {s:?} (expected `faulty:<inner>[:<seed>[:<spec>]]`)"
            ));
        }
        let Some(rest) = s.strip_prefix("sim:") else {
            return Err(format!(
                "unknown transport {s:?} (expected `shared`, \
                 `sim:<platform>[:<ranks_per_node>]` or `faulty:<inner>[:<seed>[:<spec>]]`)"
            ));
        };
        let mut parts = rest.splitn(2, ':');
        let name = parts.next().unwrap_or_default();
        let id = PlatformId::parse(name)
            .ok_or_else(|| format!("unknown platform {name:?} (cori|edison|titan|aws)"))?;
        let ranks_per_node = match parts.next() {
            None => Platform::get(id).cores_per_node,
            Some(v) => v
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("invalid ranks-per-node {v:?} (positive integer)"))?,
        };
        Ok(TransportKind::SimNet(SimNetConfig { platform: id, ranks_per_node }))
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportKind::SharedMem => write!(f, "shared"),
            TransportKind::SimNet(cfg) => {
                write!(f, "sim:{}:{}", cfg.platform.cli_name(), cfg.ranks_per_node)
            }
            TransportKind::Faulty(cfg) => {
                write!(f, "faulty:{}:{}:{}", cfg.inner.as_kind(), cfg.seed, cfg.spec)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::CommWorld;
    use dibella_netmodel::CORI;

    fn sim(platform: PlatformId, ranks_per_node: usize) -> TransportKind {
        TransportKind::SimNet(SimNetConfig { platform, ranks_per_node })
    }

    #[test]
    fn parse_round_trip() {
        assert_eq!("shared".parse::<TransportKind>(), Ok(TransportKind::SharedMem));
        assert_eq!(
            "sim:aws:4".parse::<TransportKind>(),
            Ok(sim(PlatformId::Aws, 4))
        );
        // Ranks-per-node defaults to the platform's cores per node.
        assert_eq!(
            "sim:cori".parse::<TransportKind>(),
            Ok(sim(PlatformId::CoriXC40, CORI.cores_per_node))
        );
        for s in ["", "tcp", "sim:", "sim:summit", "sim:aws:0", "sim:aws:x"] {
            assert!(s.parse::<TransportKind>().is_err(), "{s:?} should not parse");
        }
        // Display renders back to parseable syntax.
        for k in [TransportKind::SharedMem, sim(PlatformId::TitanXK7, 8)] {
            assert_eq!(k.to_string().parse::<TransportKind>(), Ok(k));
        }
    }

    #[test]
    fn simnet_payloads_identical_to_sharedmem() {
        let body = |comm: &crate::Comm| {
            let send: Vec<Vec<u32>> = (0..comm.size())
                .map(|d| (0..(comm.rank() + d) as u32).collect())
                .collect();
            comm.alltoallv(send)
        };
        let real = CommWorld::run(4, body);
        let simulated = CommWorld::run_with(4, &sim(PlatformId::Aws, 2), body);
        assert_eq!(real, simulated);
    }

    #[test]
    fn simnet_charges_modeled_alltoallv_time() {
        // 2 ranks on one virtual Cori node: all traffic is on-node, so the
        // second call (first-call setup already paid) must cost exactly
        // latency + bytes / memory-bandwidth.
        let stats = CommWorld::run_with(2, &sim(PlatformId::CoriXC40, 2), |comm| {
            let _ = comm.alltoallv::<u8>(vec![vec![0u8; 500]; 2]);
            comm.take_stats(); // discard the first call (setup-charged)
            let _ = comm.alltoallv::<u8>(vec![vec![0u8; 500]; 2]);
            comm.take_stats()
        });
        let expect = collective_latency_s(&CORI, 2) + exchange_transfer_s(&CORI, 2000, 0);
        for s in &stats {
            assert!(
                (s.exchange_wall.as_secs_f64() - expect).abs() < 1e-9,
                "wall {:?} vs modeled {expect}",
                s.exchange_wall
            );
        }
    }

    #[test]
    fn first_alltoallv_setup_charged_once() {
        let walls = CommWorld::run_with(2, &sim(PlatformId::Aws, 1), |comm| {
            let mut walls = Vec::new();
            for _ in 0..3 {
                let _ = comm.alltoallv::<u8>(vec![vec![7u8; 100]; 2]);
                walls.push(comm.take_stats().exchange_wall);
            }
            walls
        });
        for w in &walls {
            assert!(w[0] > w[1], "first call should carry the setup cost: {w:?}");
            assert_eq!(w[1], w[2], "steady-state calls must cost the same");
        }
    }

    #[test]
    fn off_node_traffic_costs_more_than_on_node() {
        let run = |ranks_per_node: usize| {
            CommWorld::run_with(4, &sim(PlatformId::CoriXC40, ranks_per_node), |comm| {
                let _ = comm.alltoallv::<u8>(vec![vec![1u8; 100_000]; 4]);
                comm.take_stats().exchange_wall
            })
        };
        let one_node = run(4); // everything on one virtual node
        let four_nodes = run(1); // everything off-node
        for (on, off) in one_node.iter().zip(&four_nodes) {
            assert!(off > on, "off-node {off:?} should exceed on-node {on:?}");
        }
    }

    #[test]
    fn dense_collectives_charge_latency_only() {
        let stats = CommWorld::run_with(3, &sim(PlatformId::EdisonXC30, 3), |comm| {
            let _ = comm.allgather(comm.rank() as u64);
            comm.take_stats()
        });
        let expect = collective_latency_s(Platform::get(PlatformId::EdisonXC30), 3);
        for s in &stats {
            assert!((s.exchange_wall.as_secs_f64() - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn ethernet_slower_than_aries_same_traffic() {
        let run = |kind: &TransportKind| {
            CommWorld::run_with(4, kind, |comm| {
                let _ = comm.alltoallv::<u8>(vec![vec![3u8; 10_000]; 4]);
                comm.take_stats().exchange_wall
            })
        };
        let aries = run(&sim(PlatformId::CoriXC40, 2));
        let ethernet = run(&sim(PlatformId::Aws, 2));
        for (a, e) in aries.iter().zip(&ethernet) {
            assert!(e > a, "AWS {e:?} should exceed Cori {a:?}");
        }
    }

    #[test]
    #[should_panic(expected = "ranks_per_node must be positive")]
    fn zero_ranks_per_node_rejected() {
        let _ = SimNet::new(2, SimNetConfig { platform: PlatformId::Aws, ranks_per_node: 0 });
    }

    fn faulty(inner: FaultyInner, seed: u64, spec: FaultSpec) -> TransportKind {
        TransportKind::Faulty(FaultyConfig { inner, seed, spec })
    }

    #[test]
    fn parse_faulty_round_trip() {
        // Explicit seed and spec.
        assert_eq!(
            "faulty:shared:7:corrupt=0.1,retries=3".parse::<TransportKind>(),
            Ok(faulty(
                FaultyInner::SharedMem,
                7,
                FaultSpec { corrupt_per_mille: 100, retries: 3, ..FaultSpec::default() }
            ))
        );
        // Seed only → mixed preset.
        assert_eq!(
            "faulty:shared:9".parse::<TransportKind>(),
            Ok(faulty(FaultyInner::SharedMem, 9, FaultSpec::mixed()))
        );
        // The inner transport is matched greedily: `sim:cori:2` is all
        // inner, so the chaos tail is empty.
        assert_eq!(
            "faulty:sim:cori:2".parse::<TransportKind>(),
            Ok(faulty(
                FaultyInner::SimNet(SimNetConfig {
                    platform: PlatformId::CoriXC40,
                    ranks_per_node: 2
                }),
                0,
                FaultSpec::mixed()
            ))
        );
        // With ranks-per-node spelled out, the next field is the seed.
        assert_eq!(
            "faulty:sim:cori:2:42:drop".parse::<TransportKind>(),
            Ok(faulty(
                FaultyInner::SimNet(SimNetConfig {
                    platform: PlatformId::CoriXC40,
                    ranks_per_node: 2
                }),
                42,
                FaultSpec { drop_per_mille: 20, ..FaultSpec::default() }
            ))
        );
        for s in [
            "faulty:",
            "faulty:tcp",
            "faulty:faulty:shared",
            "faulty:shared:x",
            "faulty:shared:1:bogus",
            "faulty:shared:1:corrupt=2",
            "faulty:shared:1:retries=x",
            "faulty:shared:1:timeout_ms=0",
            "faulty:shared:1:corrupt=0.1:extra",
        ] {
            assert!(s.parse::<TransportKind>().is_err(), "{s:?} should not parse");
        }
        // Display renders back to parseable, equal syntax.
        for k in [
            faulty(FaultyInner::SharedMem, 3, FaultSpec::mixed()),
            faulty(
                FaultyInner::SimNet(SimNetConfig { platform: PlatformId::Aws, ranks_per_node: 4 }),
                11,
                FaultSpec { stall_per_mille: 200, stall_ms: 5, timeout_ms: 2, ..FaultSpec::default() },
            ),
        ] {
            assert_eq!(k.to_string().parse::<TransportKind>(), Ok(k), "{k}");
        }
    }

    #[test]
    fn fault_spec_presets_and_overrides() {
        let none: FaultSpec = "none".parse().unwrap();
        assert_eq!(none, FaultSpec::default());
        assert!(!none.any_rate());
        let mixed: FaultSpec = "mixed".parse().unwrap();
        assert!(mixed.any_rate());
        // Later entries override earlier ones.
        let tweaked: FaultSpec = "mixed,retries=0,dup=0".parse().unwrap();
        assert_eq!(tweaked.retries, 0);
        assert_eq!(tweaked.dup_per_mille, 0);
        assert_eq!(tweaked.corrupt_per_mille, FaultSpec::mixed().corrupt_per_mille);
        // Spec Display round-trips.
        for spec in [none, mixed, tweaked] {
            assert_eq!(spec.to_string().parse::<FaultSpec>(), Ok(spec));
        }
    }

    #[test]
    fn fault_injection_is_deterministic() {
        // Two FaultyNet instances with the same seed mangle an identical
        // schedule identically; a different seed diverges somewhere.
        // Rates far above the presets so 50 calls guarantee divergence —
        // no retry loop runs here, only the mangler.
        let spec = FaultSpec {
            corrupt_per_mille: 200,
            drop_per_mille: 100,
            dup_per_mille: 100,
            reorder_per_mille: 50,
            ..FaultSpec::default()
        };
        let run = |seed: u64| {
            let net = FaultyNet::new(1, FaultyConfig { inner: FaultyInner::SharedMem, seed, spec });
            let mut out = Vec::new();
            for call in 0..50u8 {
                let frames = vec![vec![call; 64]];
                let (mangled, stall) = net.mangle(0, frames);
                out.push((mangled, stall));
            }
            out
        };
        assert_eq!(run(12), run(12));
        assert_ne!(run(12), run(34));
        // And the mixed preset actually injects on this schedule.
        let mangled = run(12);
        assert!(
            (0..50).any(|i| mangled[i].0[0] != vec![i as u8; 64]),
            "mixed preset injected nothing over 50 calls"
        );
    }

    #[test]
    fn faulty_exchange_recovers_bit_identically() {
        // A chaos world over SharedMem: payloads after recovery must be
        // exactly what a fault-free world delivers, and the robustness
        // counters must show the layer actually worked for its living.
        let body = |comm: &crate::Comm| {
            let mut out = Vec::new();
            for round in 0..20u64 {
                let send: Vec<Vec<u8>> = (0..comm.size())
                    .map(|d| {
                        (0..(8 + (comm.rank() as u64 + d as u64 + round) % 29))
                            .map(|i| (i * 31 + round + comm.rank() as u64) as u8)
                            .collect()
                    })
                    .collect();
                let pending = comm.exchange_start(send);
                out.push(comm.exchange_wait(pending));
            }
            (out, comm.take_stats())
        };
        let clean = CommWorld::run(3, body);
        let chaotic = CommWorld::run_with(
            3,
            &faulty(FaultyInner::SharedMem, 5, FaultSpec::mixed()),
            body,
        );
        let mut survived = 0u64;
        for ((clean_out, clean_stats), (chaos_out, chaos_stats)) in clean.iter().zip(&chaotic) {
            assert_eq!(clean_out, chaos_out, "recovered payloads must be bit-identical");
            // Logical traffic accounting is chaos-invariant.
            assert_eq!(clean_stats.dest_bytes, chaos_stats.dest_bytes);
            assert_eq!(clean_stats.alltoallv_calls, chaos_stats.alltoallv_calls);
            assert_eq!(clean_stats.peak_round_bytes, chaos_stats.peak_round_bytes);
            assert!(!clean_stats.any_faults_survived());
            survived += chaos_stats.frames_corrupt_detected
                + chaos_stats.duplicates_dropped
                + chaos_stats.frames_retransmitted;
        }
        assert!(survived > 0, "mixed preset at seed 5 injected nothing over 60 rounds");
    }

    #[test]
    fn faulty_with_zero_rates_is_transparent() {
        let kind = faulty(FaultyInner::SharedMem, 1, FaultSpec::default());
        let stats = CommWorld::run_with(2, &kind, |comm| {
            let send: Vec<Vec<u8>> = vec![vec![1, 2, 3], vec![4, 5]];
            let recv = comm.alltoallv_bytes(send);
            (recv, comm.take_stats())
        });
        for (rank, (recv, s)) in stats.iter().enumerate() {
            assert_eq!(recv.len(), 2);
            assert!(!s.any_faults_survived(), "rank {rank}: {s:?}");
        }
    }

    #[test]
    fn exhausted_retries_fail_the_stage() {
        // Corrupt every frame and allow no retries: the hardened wait
        // must panic with the checkpoint hint rather than loop or hang.
        let kind = faulty(
            FaultyInner::SharedMem,
            2,
            FaultSpec { corrupt_per_mille: 1000, retries: 0, ..FaultSpec::default() },
        );
        let err = std::panic::catch_unwind(|| {
            CommWorld::run_with(2, &kind, |comm| {
                let send = vec![vec![9u8; 100], vec![7u8; 100]];
                comm.alltoallv_bytes(send)
            })
        })
        .expect_err("all-corrupt with zero retries must fail");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(msg.contains("still damaged"), "unexpected panic: {msg}");
    }

    #[test]
    fn stalled_exchange_trips_wait_timeout_then_recovers() {
        // Stall every exchange for longer than the wait timeout: the
        // hardened wait must record timeouts, keep polling, and still
        // deliver the round bit-identically.
        let kind = faulty(
            FaultyInner::SharedMem,
            3,
            FaultSpec {
                stall_per_mille: 1000,
                stall_ms: 40,
                timeout_ms: 10,
                ..FaultSpec::default()
            },
        );
        let results = CommWorld::run_with(2, &kind, |comm| {
            let send: Vec<Vec<u8>> =
                (0..2).map(|d| vec![comm.rank() as u8 * 16 + d as u8; 32]).collect();
            let recv = comm.alltoallv_bytes(send);
            (recv, comm.take_stats())
        });
        for (rank, (recv, s)) in results.iter().enumerate() {
            for (src, buf) in recv.iter().enumerate() {
                assert_eq!(buf, &vec![src as u8 * 16 + rank as u8; 32]);
            }
            assert!(s.wait_timeouts > 0, "rank {rank} saw no wait timeouts: {s:?}");
        }
    }

    #[test]
    fn inflight_poll_times_out_then_finishes() {
        // Rank 0 starts an exchange in a 2-rank world whose partner has
        // not arrived: the helper blocks at the hub barrier, so poll must
        // report a timeout instead of hanging the suite. Once the partner
        // shows up, the same handle completes normally.
        let shared = Arc::new(SharedMem::new(2));
        let pending = shared.exchange_start(0, vec![vec![1u8], vec![2u8]]);
        assert!(
            pending.poll(Duration::from_millis(50)).is_none(),
            "poll should time out while the partner is absent"
        );
        let partner = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let pending = partner.exchange_start(1, vec![vec![3u8], vec![4u8]]);
            partner.exchange_wait(1, pending, Duration::ZERO)
        });
        let (recv0, _) = shared.exchange_wait(0, pending, Duration::ZERO);
        let (recv1, _) = t.join().unwrap();
        assert_eq!(recv0, vec![vec![1u8], vec![3u8]]);
        assert_eq!(recv1, vec![vec![2u8], vec![4u8]]);
    }

    #[test]
    fn helper_panic_reraised_on_rank_thread() {
        // Poison rank 0's incoming slot with a wrong-typed deposit; the
        // exchange helper panics downcasting it mid-overlap, and that
        // panic must re-raise on the rank thread at wait time with its
        // original message.
        let shared = Arc::new(SharedMem::new(2));
        let partner = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            // Rank 1 deposits a non-Vec<u8> for (1,0) and joins only the
            // first barrier phase: rank 0's helper panics while draining
            // its column and never reaches the second phase.
            partner.put(1, 0, Box::new(42u64));
            partner.put(1, 1, Box::new(Vec::<u8>::new()));
            partner.wait();
        });
        let pending = shared.exchange_start(0, vec![Vec::new(), Vec::new()]);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            shared.exchange_wait(0, pending, Duration::ZERO)
        }))
        .expect_err("poisoned slot must panic at wait");
        t.join().unwrap();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(msg.contains("unexpected type"), "unexpected panic: {msg}");
    }
}
