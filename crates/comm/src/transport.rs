//! The pluggable transport layer beneath [`crate::Comm`].
//!
//! The collective code path — pack per-destination buffers, irregular
//! exchange, unpack — lives once in `comm.rs`, written against the
//! [`Transport`] trait. Two backends implement it:
//!
//! * [`SharedMem`] — the real executor: the `P × P` slot matrix and cyclic
//!   barrier of the crate-private `hub` module. Collective wall time is
//!   whatever the host actually spent.
//! * [`SimNet`] — a *simulated network*: it delegates every payload to an
//!   inner [`SharedMem`] (so results are byte-identical), but reports the
//!   wall time a `dibella_netmodel::Platform` would have charged for the
//!   collective — `α + α_rank·P` latency per call, off-node bytes at the
//!   node's injection bandwidth, on-node bytes at memory bandwidth, and
//!   the paper's one-time first-`MPI_Alltoallv` setup (§6/§10). Ranks are
//!   placed `ranks_per_node` to a virtual node, so the same run can be
//!   executed "on" Cori Haswell or a commodity-Ethernet AWS cluster and
//!   `CommStats::exchange_wall` reflects the modeled interconnect.
//!
//! Backends are chosen via [`TransportKind`], which parses from the CLI
//! syntax `shared` / `sim:<platform>[:<ranks_per_node>]`.

use crate::hub::Hub;
use dibella_netmodel::{
    collective_latency_s, exchange_transfer_s, first_alltoallv_setup_s, overlapped_round_s,
    Platform, PlatformId,
};
use parking_lot::Mutex;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// One completed collective, as described to a transport backend when the
/// communicator asks what wall time to charge for it.
#[derive(Clone, Copy, Debug)]
pub enum Collective<'a> {
    /// An irregular exchange; `dest_bytes[d]` is the payload this rank
    /// sent to destination `d` in this call.
    Alltoallv {
        /// Per-destination payload bytes of this rank's contribution.
        dest_bytes: &'a [u64],
    },
    /// A dense collective (alltoall of counts, allgather, reduction,
    /// scan) — small fixed-size values, modeled latency-only.
    Dense,
}

/// Result a split exchange's helper delivers: either the received buffers
/// plus the wall time the backend charges, or the helper's panic payload
/// (re-raised on the waiting rank thread so mismatched-collective bugs
/// surface with their original message).
type ExchangeResult = Result<(Vec<Vec<u8>>, Duration), Box<dyn Any + Send>>;

/// Handle to an irregular byte exchange started with
/// [`Transport::exchange_start`] and finished with
/// [`Transport::exchange_wait`].
///
/// Backend-agnostic: the backend's helper task (a thread off the rayon
/// pool) performs the actual slot traffic and sends the result through
/// this handle's channel, so the owning rank thread is free to pack the
/// next round while the exchange is in flight.
pub struct InFlight {
    rx: mpsc::Receiver<ExchangeResult>,
}

impl InFlight {
    /// Block until the helper finishes; re-raise its panic if it died.
    fn finish(self) -> (Vec<Vec<u8>>, Duration) {
        match self
            .rx
            .recv()
            .expect("exchange helper thread vanished without a result")
        {
            Ok(out) => out,
            Err(payload) => resume_unwind(payload),
        }
    }
}

/// Take the `(src → dst)` deposit of a byte exchange and restore its type.
fn take_bytes(hub: &Hub, src: usize, dst: usize) -> Vec<u8> {
    *hub.take(src, dst)
        .downcast::<Vec<u8>>()
        .unwrap_or_else(|_| panic!("slot ({src},{dst}) holds unexpected type"))
}

/// Run one full irregular byte exchange for `rank` over `hub`: deposit the
/// per-destination buffers, rendezvous, drain this rank's column, and
/// rendezvous again so slots can be reused. This is the body every split
/// exchange's helper executes.
fn exchange_on_hub(hub: &Hub, rank: usize, send: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    let p = hub.size();
    for (dst, buf) in send.into_iter().enumerate() {
        hub.put(rank, dst, Box::new(buf));
    }
    hub.wait();
    let recv: Vec<Vec<u8>> = (0..p).map(|src| take_bytes(hub, src, rank)).collect();
    hub.wait();
    recv
}

/// A communication backend: the exchange primitives the collectives in
/// [`crate::Comm`] are written against, plus a timing policy.
///
/// Contract (the usual SPMD one): every rank of the world calls the same
/// collectives in the same order, so backends may synchronize internally —
/// [`Transport::collective_wall`] in particular is called by all ranks for
/// the same operation and may itself use barriers. The split
/// [`Transport::exchange_start`]/[`Transport::exchange_wait`] pair extends
/// that contract: at most one exchange may be in flight per rank, and no
/// other collective may be issued by that rank between the start and the
/// matching wait (packing local buffers is exactly what the gap is for).
pub trait Transport: Send + Sync {
    /// World size.
    fn size(&self) -> usize;

    /// Block until all ranks arrive (one barrier phase).
    fn wait(&self);

    /// Deposit a type-erased buffer for `(src → dst)`.
    fn put(&self, src: usize, dst: usize, value: Box<dyn Any + Send>);

    /// Take the deposit for `(src → dst)`.
    ///
    /// # Panics
    /// Panics if the slot is empty — mismatched collective calls across
    /// ranks (the bug MPI reports as a message-truncation error).
    fn take(&self, src: usize, dst: usize) -> Box<dyn Any + Send>;

    /// Wall time to charge `rank`'s `CommStats::exchange_wall` for one
    /// completed collective. `elapsed` is the time the host really spent;
    /// real backends return it, simulated ones replace it with the
    /// modeled cost.
    fn collective_wall(&self, rank: usize, op: Collective<'_>, elapsed: Duration) -> Duration;

    /// Begin a non-blocking irregular byte exchange: `send[d]` goes to
    /// rank `d`. The traffic moves on a helper task so the caller can
    /// keep computing (packing the next round) until the matching
    /// [`Transport::exchange_wait`].
    fn exchange_start(&self, rank: usize, send: Vec<Vec<u8>>) -> InFlight;

    /// Finish an exchange begun by [`Transport::exchange_start`]: return
    /// the buffers received from every source rank (indexed by source)
    /// and the wall time to charge for the exchange. `overlapped` is how
    /// long the caller spent computing while the exchange was in flight —
    /// real backends ignore it (their measured time already ran
    /// concurrently with that work), simulated ones charge
    /// `max(overlapped, modeled)` so a modeled exchange can hide behind
    /// packing but never make a round cheaper than its compute.
    fn exchange_wait(&self, rank: usize, pending: InFlight, overlapped: Duration)
        -> (Vec<Vec<u8>>, Duration);
}

/// The real shared-memory backend: collectives execute through the hub's
/// slot matrix and wall time is the measured host time. This is the exact
/// behavior the communicator had before the transport layer existed.
///
/// Split exchanges overlap for real: the slot traffic runs on a helper
/// thread off the rayon pool while the rank thread keeps packing, so
/// communication/computation overlap is genuine host concurrency, not an
/// accounting fiction.
pub struct SharedMem {
    hub: Arc<Hub>,
}

impl SharedMem {
    /// A shared-memory world of `p` ranks.
    pub fn new(p: usize) -> Self {
        Self { hub: Arc::new(Hub::new(p)) }
    }
}

impl Transport for SharedMem {
    fn size(&self) -> usize {
        self.hub.size()
    }

    fn wait(&self) {
        self.hub.wait();
    }

    fn put(&self, src: usize, dst: usize, value: Box<dyn Any + Send>) {
        self.hub.put(src, dst, value);
    }

    fn take(&self, src: usize, dst: usize) -> Box<dyn Any + Send> {
        self.hub.take(src, dst)
    }

    fn collective_wall(&self, _rank: usize, _op: Collective<'_>, elapsed: Duration) -> Duration {
        elapsed
    }

    fn exchange_start(&self, rank: usize, send: Vec<Vec<u8>>) -> InFlight {
        let hub = Arc::clone(&self.hub);
        let (tx, rx) = mpsc::channel();
        let t0 = Instant::now();
        rayon::spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                let recv = exchange_on_hub(&hub, rank, send);
                (recv, t0.elapsed())
            }));
            // The receiver only disappears if the rank thread is already
            // unwinding; dropping the result is then the right thing.
            let _ = tx.send(result);
        });
        InFlight { rx }
    }

    fn exchange_wait(
        &self,
        _rank: usize,
        pending: InFlight,
        _overlapped: Duration,
    ) -> (Vec<Vec<u8>>, Duration) {
        // The measured helper time already ran concurrently with whatever
        // the rank thread did in the gap; report it as-is.
        pending.finish()
    }
}

/// Configuration of the simulated-network backend: which platform's
/// interconnect to model and how many ranks share a virtual node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimNetConfig {
    /// The modeled machine (Table 1 platform).
    pub platform: PlatformId,
    /// Ranks per virtual node (rank `r` lives on node `r / ranks_per_node`,
    /// mirroring `dibella_netmodel::NodeMapping`).
    pub ranks_per_node: usize,
}

/// The netmodel-driven simulated-network backend. Payloads move through an
/// inner [`SharedMem`] — results are byte-identical to the real backend —
/// but every collective's reported wall time is the modeled cost on the
/// configured platform, so `CommStats::exchange_wall` behaves as if the
/// run executed on that machine's interconnect.
pub struct SimNet {
    inner: SharedMem,
    model: Arc<SimModel>,
}

/// The modeled-cost state of a [`SimNet`] world, shared with in-flight
/// exchange helpers (hence the `Arc`).
struct SimModel {
    platform: &'static Platform,
    ranks_per_node: usize,
    /// Per-rank flag: has this rank charged the job's first-`Alltoallv`
    /// setup yet? (Collectives are globally ordered, so every rank's
    /// first irregular exchange is the same call.)
    first_done: Vec<AtomicBool>,
    /// Per-rank `dest_bytes` rows of the in-flight alltoallv, published so
    /// each rank can aggregate its whole node's traffic — the NIC is a
    /// per-node resource in the model.
    rows: Vec<Mutex<Vec<u64>>>,
}

impl SimModel {
    fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node
    }

    /// Modeled wall of one irregular exchange whose per-destination send
    /// volumes on this rank are `dest_bytes`. Synchronizes twice on `hub`
    /// (publish rows / rows-reusable) to aggregate the whole node's
    /// traffic exactly as `dibella_netmodel::stage_cost` does, so it must
    /// be reached by every rank of the world for the same call — either
    /// on the rank threads (blocking collectives) or on the per-rank
    /// exchange helpers (split collectives).
    fn alltoallv_wall(&self, hub: &Hub, rank: usize, dest_bytes: &[u64]) -> Duration {
        let p = hub.size();
        let latency = collective_latency_s(self.platform, p);
        *self.rows[rank].lock() = dest_bytes.to_vec();
        hub.wait();
        let home = self.node_of(rank);
        let (mut on, mut off) = (0u64, 0u64);
        for src in (0..p).filter(|&r| self.node_of(r) == home) {
            for (dst, &b) in self.rows[src].lock().iter().enumerate() {
                if self.node_of(dst) == home {
                    on += b;
                } else {
                    off += b;
                }
            }
        }
        hub.wait(); // rows may be reused after this point
        let base = latency + exchange_transfer_s(self.platform, on, off);
        let setup = if !self.first_done[rank].swap(true, Ordering::Relaxed) {
            first_alltoallv_setup_s(self.platform, p, base)
        } else {
            0.0
        };
        Duration::from_secs_f64(base + setup)
    }
}

impl SimNet {
    /// A simulated world of `p` ranks on `cfg.platform`.
    ///
    /// # Panics
    /// Panics if `cfg.ranks_per_node` is zero.
    pub fn new(p: usize, cfg: SimNetConfig) -> Self {
        assert!(cfg.ranks_per_node > 0, "ranks_per_node must be positive");
        Self {
            inner: SharedMem::new(p),
            model: Arc::new(SimModel {
                platform: Platform::get(cfg.platform),
                ranks_per_node: cfg.ranks_per_node,
                first_done: (0..p).map(|_| AtomicBool::new(false)).collect(),
                rows: (0..p).map(|_| Mutex::new(Vec::new())).collect(),
            }),
        }
    }
}

impl Transport for SimNet {
    fn size(&self) -> usize {
        self.inner.size()
    }

    fn wait(&self) {
        self.inner.wait();
    }

    fn put(&self, src: usize, dst: usize, value: Box<dyn Any + Send>) {
        self.inner.put(src, dst, value);
    }

    fn take(&self, src: usize, dst: usize) -> Box<dyn Any + Send> {
        self.inner.take(src, dst)
    }

    fn collective_wall(&self, rank: usize, op: Collective<'_>, _elapsed: Duration) -> Duration {
        match op {
            Collective::Dense => Duration::from_secs_f64(collective_latency_s(
                self.model.platform,
                self.inner.size(),
            )),
            Collective::Alltoallv { dest_bytes } => {
                self.model.alltoallv_wall(&self.inner.hub, rank, dest_bytes)
            }
        }
    }

    fn exchange_start(&self, rank: usize, send: Vec<Vec<u8>>) -> InFlight {
        let hub = Arc::clone(&self.inner.hub);
        let model = Arc::clone(&self.model);
        let (tx, rx) = mpsc::channel();
        rayon::spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                let sizes: Vec<u64> = send.iter().map(|b| b.len() as u64).collect();
                let recv = exchange_on_hub(&hub, rank, send);
                let modeled = model.alltoallv_wall(&hub, rank, &sizes);
                (recv, modeled)
            }));
            let _ = tx.send(result);
        });
        InFlight { rx }
    }

    fn exchange_wait(
        &self,
        _rank: usize,
        pending: InFlight,
        overlapped: Duration,
    ) -> (Vec<Vec<u8>>, Duration) {
        // An overlapped round costs the slower of the packing done while
        // the exchange was in flight and the modeled exchange itself —
        // the netmodel's single definition of an overlapped round, so the
        // executable backend and the analytic projections agree.
        let (recv, modeled) = pending.finish();
        let charged = Duration::from_secs_f64(overlapped_round_s(
            overlapped.as_secs_f64(),
            modeled.as_secs_f64(),
        ));
        (recv, charged)
    }
}

/// Which transport backend a world should run on — the cheap, cloneable
/// configuration that [`crate::CommWorld::run_with`] and
/// `dibella_core::PipelineConfig::transport` carry around.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// Real shared-memory execution (the default).
    #[default]
    SharedMem,
    /// Simulated network on a modeled platform.
    SimNet(SimNetConfig),
}

impl TransportKind {
    /// Instantiate the backend for a world of `p` ranks.
    pub fn build(&self, p: usize) -> Arc<dyn Transport> {
        match self {
            TransportKind::SharedMem => Arc::new(SharedMem::new(p)),
            TransportKind::SimNet(cfg) => Arc::new(SimNet::new(p, *cfg)),
        }
    }
}

impl std::str::FromStr for TransportKind {
    type Err = String;

    /// Parse the CLI syntax: `shared`, or `sim:<platform>[:<ranks_per_node>]`
    /// where `<platform>` is `cori`, `edison`, `titan` or `aws` and
    /// `<ranks_per_node>` defaults to the platform's cores per node.
    fn from_str(s: &str) -> Result<Self, String> {
        if s == "shared" {
            return Ok(TransportKind::SharedMem);
        }
        let Some(rest) = s.strip_prefix("sim:") else {
            return Err(format!(
                "unknown transport {s:?} (expected `shared` or `sim:<platform>[:<ranks_per_node>]`)"
            ));
        };
        let mut parts = rest.splitn(2, ':');
        let name = parts.next().unwrap_or_default();
        let id = PlatformId::parse(name)
            .ok_or_else(|| format!("unknown platform {name:?} (cori|edison|titan|aws)"))?;
        let ranks_per_node = match parts.next() {
            None => Platform::get(id).cores_per_node,
            Some(v) => v
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("invalid ranks-per-node {v:?} (positive integer)"))?,
        };
        Ok(TransportKind::SimNet(SimNetConfig { platform: id, ranks_per_node }))
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportKind::SharedMem => write!(f, "shared"),
            TransportKind::SimNet(cfg) => {
                write!(f, "sim:{}:{}", cfg.platform.cli_name(), cfg.ranks_per_node)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::CommWorld;
    use dibella_netmodel::CORI;

    fn sim(platform: PlatformId, ranks_per_node: usize) -> TransportKind {
        TransportKind::SimNet(SimNetConfig { platform, ranks_per_node })
    }

    #[test]
    fn parse_round_trip() {
        assert_eq!("shared".parse::<TransportKind>(), Ok(TransportKind::SharedMem));
        assert_eq!(
            "sim:aws:4".parse::<TransportKind>(),
            Ok(sim(PlatformId::Aws, 4))
        );
        // Ranks-per-node defaults to the platform's cores per node.
        assert_eq!(
            "sim:cori".parse::<TransportKind>(),
            Ok(sim(PlatformId::CoriXC40, CORI.cores_per_node))
        );
        for s in ["", "tcp", "sim:", "sim:summit", "sim:aws:0", "sim:aws:x"] {
            assert!(s.parse::<TransportKind>().is_err(), "{s:?} should not parse");
        }
        // Display renders back to parseable syntax.
        for k in [TransportKind::SharedMem, sim(PlatformId::TitanXK7, 8)] {
            assert_eq!(k.to_string().parse::<TransportKind>(), Ok(k));
        }
    }

    #[test]
    fn simnet_payloads_identical_to_sharedmem() {
        let body = |comm: &crate::Comm| {
            let send: Vec<Vec<u32>> = (0..comm.size())
                .map(|d| (0..(comm.rank() + d) as u32).collect())
                .collect();
            comm.alltoallv(send)
        };
        let real = CommWorld::run(4, body);
        let simulated = CommWorld::run_with(4, &sim(PlatformId::Aws, 2), body);
        assert_eq!(real, simulated);
    }

    #[test]
    fn simnet_charges_modeled_alltoallv_time() {
        // 2 ranks on one virtual Cori node: all traffic is on-node, so the
        // second call (first-call setup already paid) must cost exactly
        // latency + bytes / memory-bandwidth.
        let stats = CommWorld::run_with(2, &sim(PlatformId::CoriXC40, 2), |comm| {
            let _ = comm.alltoallv::<u8>(vec![vec![0u8; 500]; 2]);
            comm.take_stats(); // discard the first call (setup-charged)
            let _ = comm.alltoallv::<u8>(vec![vec![0u8; 500]; 2]);
            comm.take_stats()
        });
        let expect = collective_latency_s(&CORI, 2) + exchange_transfer_s(&CORI, 2000, 0);
        for s in &stats {
            assert!(
                (s.exchange_wall.as_secs_f64() - expect).abs() < 1e-9,
                "wall {:?} vs modeled {expect}",
                s.exchange_wall
            );
        }
    }

    #[test]
    fn first_alltoallv_setup_charged_once() {
        let walls = CommWorld::run_with(2, &sim(PlatformId::Aws, 1), |comm| {
            let mut walls = Vec::new();
            for _ in 0..3 {
                let _ = comm.alltoallv::<u8>(vec![vec![7u8; 100]; 2]);
                walls.push(comm.take_stats().exchange_wall);
            }
            walls
        });
        for w in &walls {
            assert!(w[0] > w[1], "first call should carry the setup cost: {w:?}");
            assert_eq!(w[1], w[2], "steady-state calls must cost the same");
        }
    }

    #[test]
    fn off_node_traffic_costs_more_than_on_node() {
        let run = |ranks_per_node: usize| {
            CommWorld::run_with(4, &sim(PlatformId::CoriXC40, ranks_per_node), |comm| {
                let _ = comm.alltoallv::<u8>(vec![vec![1u8; 100_000]; 4]);
                comm.take_stats().exchange_wall
            })
        };
        let one_node = run(4); // everything on one virtual node
        let four_nodes = run(1); // everything off-node
        for (on, off) in one_node.iter().zip(&four_nodes) {
            assert!(off > on, "off-node {off:?} should exceed on-node {on:?}");
        }
    }

    #[test]
    fn dense_collectives_charge_latency_only() {
        let stats = CommWorld::run_with(3, &sim(PlatformId::EdisonXC30, 3), |comm| {
            let _ = comm.allgather(comm.rank() as u64);
            comm.take_stats()
        });
        let expect = collective_latency_s(Platform::get(PlatformId::EdisonXC30), 3);
        for s in &stats {
            assert!((s.exchange_wall.as_secs_f64() - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn ethernet_slower_than_aries_same_traffic() {
        let run = |kind: &TransportKind| {
            CommWorld::run_with(4, kind, |comm| {
                let _ = comm.alltoallv::<u8>(vec![vec![3u8; 10_000]; 4]);
                comm.take_stats().exchange_wall
            })
        };
        let aries = run(&sim(PlatformId::CoriXC40, 2));
        let ethernet = run(&sim(PlatformId::Aws, 2));
        for (a, e) in aries.iter().zip(&ethernet) {
            assert!(e > a, "AWS {e:?} should exceed Cori {a:?}");
        }
    }

    #[test]
    #[should_panic(expected = "ranks_per_node must be positive")]
    fn zero_ranks_per_node_rejected() {
        let _ = SimNet::new(2, SimNetConfig { platform: PlatformId::Aws, ranks_per_node: 0 });
    }
}
