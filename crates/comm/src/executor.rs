//! The shared batched stage executor: deterministic intra-rank
//! parallelism for every pipeline stage.
//!
//! diBELLA's design point is *hybrid* parallelism — distributed ranks each
//! running multi-threaded stage work (the paper ran one MPI rank per NUMA
//! domain with threads inside). This module is the single engine all four
//! stages thread their compute through, built on one discipline, stated
//! once:
//!
//! 1. **Fixed-size batches.** Work is split into batches whose boundaries
//!    are a pure function of the *input* (slice length, window index, pair
//!    index) — never of the thread count.
//! 2. **Isolated batch results.** A batch computes into its own output
//!    (routed buckets, alignment records, counters); batches share nothing
//!    mutable.
//! 3. **Merge in batch order.** Results are concatenated/merged in batch
//!    index order, which the vendored rayon's indexed `collect()`
//!    guarantees at any width.
//!
//! Together these make every stage's output — wire bytes, counters,
//! alignments — **bit-identical at any thread count**, which is what lets
//! the test matrix sweep `threads × transport × round cap` and demand
//! equality rather than statistical agreement.
//!
//! The executor lives in `dibella-comm` (not `-core`) because the stage
//! crates (`kcount`, `overlap`) sit below `core` in the dependency graph:
//! it is the compute half of the stage engine whose communication half is
//! [`crate::RoundExchange`].

use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};

/// Deterministic batched map executor shared by stages 1–4.
///
/// `new(threads)` resolves the pipeline `threads` knob once; stages then
/// call [`map_indexed`](Self::map_indexed) (batch descriptors computed
/// from the index) or [`map_batches`](Self::map_batches) (batches are
/// slices of a task list). Width 1 short-circuits to a plain sequential
/// loop — the single-threaded pipeline pays no pool or scheduling cost.
#[derive(Debug)]
pub struct BatchedExecutor {
    /// `None` when width is 1 (sequential fast path).
    pool: Option<ThreadPool>,
    threads: usize,
}

impl BatchedExecutor {
    /// An executor of `threads` workers; `0` means the hardware
    /// parallelism (as in rayon).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            threads
        };
        let pool = (threads > 1).then(|| {
            ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("build stage executor pool")
        });
        Self { pool, threads }
    }

    /// The sequential executor (width 1) — what library entry points use
    /// when the caller doesn't thread.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Resolved worker count (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Map `f` over batch indices `0..n_batches`, collecting results **in
    /// index order**. The batch a given index denotes must be derived from
    /// the index (and captured input) alone, so the decomposition is
    /// identical at any width.
    pub fn map_indexed<R, F>(&self, n_batches: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        match &self.pool {
            Some(pool) if n_batches > 1 => {
                // Capture by reference: `&F` is `Send` whenever `F: Sync`,
                // which is all `install` needs to move the op in.
                let f = &f;
                pool.install(move || (0..n_batches).into_par_iter().map(f).collect())
            }
            _ => (0..n_batches).map(f).collect(),
        }
    }

    /// Map `f` over contiguous chunks of at most `batch` items, collecting
    /// results **in chunk order** — the stage-4 shape (a materialized task
    /// list sharded into fixed batches).
    pub fn map_batches<T, R, F>(&self, items: &[T], batch: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> R + Sync,
    {
        assert!(batch > 0, "batch size must be non-zero");
        let n = items.len().div_ceil(batch);
        self.map_indexed(n, |i| {
            let lo = i * batch;
            let hi = (lo + batch).min(items.len());
            f(&items[lo..hi])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree_bit_for_bit() {
        let items: Vec<u32> = (0..997).collect();
        let seq = BatchedExecutor::sequential();
        let want: Vec<u64> =
            seq.map_batches(&items, 32, |b| b.iter().map(|&x| x as u64).sum::<u64>());
        for threads in [2usize, 3, 4, 0] {
            let exec = BatchedExecutor::new(threads);
            assert!(exec.threads() >= 1);
            let got: Vec<u64> =
                exec.map_batches(&items, 32, |b| b.iter().map(|&x| x as u64).sum::<u64>());
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn map_indexed_preserves_order() {
        let exec = BatchedExecutor::new(4);
        let got = exec.map_indexed(100, |i| i * i);
        let want: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn zero_resolves_to_hardware_and_one_builds_no_pool() {
        assert!(BatchedExecutor::new(0).threads() >= 1);
        let one = BatchedExecutor::new(1);
        assert_eq!(one.threads(), 1);
        assert!(one.pool.is_none(), "width 1 must not build a pool");
    }

    #[test]
    fn empty_input() {
        let exec = BatchedExecutor::new(4);
        let got: Vec<u64> = exec.map_batches(&[] as &[u32], 8, |_| 0u64);
        assert!(got.is_empty());
        let got = exec.map_indexed(0, |i| i);
        assert!(got.is_empty());
    }
}
