//! World launcher: run an SPMD closure on `P` rank threads.

use crate::comm::Comm;
use crate::hub::Hub;
use std::sync::Arc;

/// An SPMD execution context, analogous to `MPI_COMM_WORLD`.
///
/// [`CommWorld::run`] spawns one OS thread per rank, hands each a
/// [`Comm`] handle and collects the per-rank return values in rank order.
/// Linux threads are cheap enough that worlds of 1024 virtual ranks run
/// fine on a laptop-class host; collectives serialize ranks only at
/// barrier points.
pub struct CommWorld;

impl CommWorld {
    /// Run `f` on `p` ranks and return each rank's result, indexed by rank.
    ///
    /// # Panics
    /// Panics if `p == 0`, or propagates the first rank panic (which, as
    /// with a failed MPI job, aborts the whole world — remaining ranks
    /// blocked on a barrier would otherwise deadlock, so rank panics also
    /// poison the hub via unwinding through `std::thread::scope`).
    pub fn run<F, T>(p: usize, f: F) -> Vec<T>
    where
        F: Fn(&Comm) -> T + Sync,
        T: Send,
    {
        assert!(p > 0, "world size must be positive");
        let hub = Arc::new(Hub::new(p));
        let mut results: Vec<Option<T>> = (0..p).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..p)
                .map(|rank| {
                    let hub = Arc::clone(&hub);
                    let f = &f;
                    s.spawn(move || {
                        let comm = Comm::new(rank, hub);
                        f(&comm)
                    })
                })
                .collect();
            for (slot, h) in results.iter_mut().zip(handles) {
                match h.join() {
                    Ok(v) => *slot = Some(v),
                    // Re-raise the rank's own panic payload so callers see
                    // the original failure (the analogue of MPI_Abort
                    // carrying the faulting rank's error).
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        results.into_iter().map(|r| r.expect("rank produced no result")).collect()
    }

    /// Like [`Self::run`] but with a larger stack per rank thread (the
    /// alignment stage's DP frontiers are heap-allocated, so the default
    /// is normally fine; this exists for stress tests).
    pub fn run_with_stack<F, T>(p: usize, stack_bytes: usize, f: F) -> Vec<T>
    where
        F: Fn(&Comm) -> T + Sync,
        T: Send,
    {
        assert!(p > 0, "world size must be positive");
        let hub = Arc::new(Hub::new(p));
        let mut results: Vec<Option<T>> = (0..p).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..p)
                .map(|rank| {
                    let hub = Arc::clone(&hub);
                    let f = &f;
                    std::thread::Builder::new()
                        .name(format!("rank-{rank}"))
                        .stack_size(stack_bytes)
                        .spawn_scoped(s, move || {
                            let comm = Comm::new(rank, hub);
                            f(&comm)
                        })
                        .expect("failed to spawn rank thread")
                })
                .collect();
            for (slot, h) in results.iter_mut().zip(handles) {
                match h.join() {
                    Ok(v) => *slot = Some(v),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        results.into_iter().map(|r| r.expect("rank produced no result")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_rank_ordered() {
        let out = CommWorld::run(8, |c| c.rank() * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn large_world_smoke() {
        // 128 ranks on a 2-core host: collectives must still complete.
        let out = CommWorld::run(128, |c| {
            let sum = c.allreduce_sum_u64(1);
            let recv = c.alltoallv::<u8>((0..c.size()).map(|d| vec![d as u8]).collect());
            (sum, recv.len())
        });
        assert!(out.iter().all(|&(s, l)| s == 128 && l == 128));
    }

    #[test]
    fn custom_stack_size() {
        let out = CommWorld::run_with_stack(4, 4 * 1024 * 1024, |c| c.size());
        assert_eq!(out, vec![4; 4]);
    }

    #[test]
    #[should_panic(expected = "world size must be positive")]
    fn zero_ranks_rejected() {
        let _ = CommWorld::run(0, |_| ());
    }
}
