//! World launcher: run an SPMD closure on `P` rank threads.

use crate::comm::Comm;
use crate::transport::{Transport, TransportKind};
use std::sync::Arc;

/// An SPMD execution context, analogous to `MPI_COMM_WORLD`.
///
/// [`CommWorld::run`] spawns one OS thread per rank, hands each a
/// [`Comm`] handle and collects the per-rank return values in rank order.
/// Linux threads are cheap enough that worlds of 1024 virtual ranks run
/// fine on a laptop-class host; collectives serialize ranks only at
/// barrier points. [`CommWorld::run_with`] does the same on an explicit
/// transport backend — real shared memory, or the netmodel-driven
/// simulated network (see [`crate::transport`]).
pub struct CommWorld;

impl CommWorld {
    /// Run `f` on `p` ranks over the real shared-memory transport and
    /// return each rank's result, indexed by rank.
    ///
    /// # Panics
    /// Panics if `p == 0`, or propagates the first rank panic (which, as
    /// with a failed MPI job, aborts the whole world — remaining ranks
    /// blocked on a barrier would otherwise deadlock, so rank panics also
    /// poison the hub via unwinding through `std::thread::scope`).
    pub fn run<F, T>(p: usize, f: F) -> Vec<T>
    where
        F: Fn(&Comm) -> T + Sync,
        T: Send,
    {
        Self::run_with(p, &TransportKind::SharedMem, f)
    }

    /// Like [`Self::run`] but on an explicit [`TransportKind`]: the same
    /// SPMD body can execute over real shared memory or "on" a modeled
    /// platform's network (`TransportKind::SimNet`), where collective
    /// payloads are byte-identical and only the reported
    /// `CommStats::exchange_wall` changes.
    ///
    /// # Panics
    /// As [`Self::run`].
    pub fn run_with<F, T>(p: usize, transport: &TransportKind, f: F) -> Vec<T>
    where
        F: Fn(&Comm) -> T + Sync,
        T: Send,
    {
        assert!(p > 0, "world size must be positive");
        launch(p, None, transport.build(p), &f)
    }

    /// Like [`Self::run`] but with a larger stack per rank thread (the
    /// alignment stage's DP frontiers are heap-allocated, so the default
    /// is normally fine; this exists for stress tests).
    pub fn run_with_stack<F, T>(p: usize, stack_bytes: usize, f: F) -> Vec<T>
    where
        F: Fn(&Comm) -> T + Sync,
        T: Send,
    {
        assert!(p > 0, "world size must be positive");
        launch(p, Some(stack_bytes), TransportKind::SharedMem.build(p), &f)
    }
}

/// Spawn one named thread per rank over `transport`, run `f`, and collect
/// results in rank order, re-raising the first rank panic.
fn launch<F, T>(p: usize, stack_bytes: Option<usize>, transport: Arc<dyn Transport>, f: &F) -> Vec<T>
where
    F: Fn(&Comm) -> T + Sync,
    T: Send,
{
    let mut results: Vec<Option<T>> = (0..p).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..p)
            .map(|rank| {
                let transport = Arc::clone(&transport);
                let mut builder = std::thread::Builder::new().name(format!("rank-{rank}"));
                if let Some(bytes) = stack_bytes {
                    builder = builder.stack_size(bytes);
                }
                builder
                    .spawn_scoped(s, move || {
                        let comm = Comm::new(rank, transport);
                        f(&comm)
                    })
                    .expect("failed to spawn rank thread")
            })
            .collect();
        for (slot, h) in results.iter_mut().zip(handles) {
            match h.join() {
                Ok(v) => *slot = Some(v),
                // Re-raise the rank's own panic payload so callers see
                // the original failure (the analogue of MPI_Abort
                // carrying the faulting rank's error).
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("rank produced no result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::SimNetConfig;
    use dibella_netmodel::PlatformId;

    #[test]
    fn results_are_rank_ordered() {
        let out = CommWorld::run(8, |c| c.rank() * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn large_world_smoke() {
        // 128 ranks on a 2-core host: collectives must still complete.
        let out = CommWorld::run(128, |c| {
            let sum = c.allreduce_sum_u64(1);
            let recv = c.alltoallv::<u8>((0..c.size()).map(|d| vec![d as u8]).collect());
            (sum, recv.len())
        });
        assert!(out.iter().all(|&(s, l)| s == 128 && l == 128));
    }

    #[test]
    fn custom_stack_size() {
        let out = CommWorld::run_with_stack(4, 4 * 1024 * 1024, |c| c.size());
        assert_eq!(out, vec![4; 4]);
    }

    #[test]
    fn run_with_simulated_transport() {
        let kind = TransportKind::SimNet(SimNetConfig {
            platform: PlatformId::TitanXK7,
            ranks_per_node: 2,
        });
        let out = CommWorld::run_with(4, &kind, |c| c.allreduce_sum_u64(c.rank() as u64));
        assert_eq!(out, vec![6; 4]);
    }

    #[test]
    #[should_panic(expected = "world size must be positive")]
    fn zero_ranks_rejected() {
        let _ = CommWorld::run(0, |_| ());
    }

    #[test]
    #[should_panic(expected = "world size must be positive")]
    fn zero_ranks_rejected_with_transport() {
        let _ = CommWorld::run_with(0, &TransportKind::SharedMem, |_| ());
    }
}
