//! The streaming, double-buffered exchange engine every pipeline stage
//! drives its irregular communication through.
//!
//! diBELLA's discipline is that each distributed phase "executes in a
//! streaming fashion with a subset of input data at a time to limit the
//! memory consumption" (paper §4). This module is that discipline, written
//! once: a stage describes *how many rounds it needs* (a [`RoundPlan`]),
//! *how to pack one round* (a packer closure producing per-destination
//! byte buffers), and *how to consume one round* (a consumer closure), and
//! [`RoundExchange::run`] does the rest —
//!
//! 1. agrees the world-wide round count with a max-reduction so
//!    collectives stay matched across ranks,
//! 2. pipelines the rounds: while round *i* is in flight on the
//!    transport's exchange helper, the rank thread packs round *i + 1*
//!    (double buffering — communication/computation overlap on the real
//!    backend, `max(pack, modeled exchange)` accounting on `SimNet`),
//! 3. consumes each round's received buffers in round order, so results
//!    are bit-identical to a monolithic exchange no matter the round cap.
//!
//! ```text
//!  pack(0) ──► start(0) ──► pack(1) ──► wait(0) ──► consume(0)
//!                 │            ▲           │
//!                 └── in flight on helper ─┘   ... then start(1), pack(2), ...
//! ```
//!
//! Fixed-size record streams (the k-mer passes, overlap tasks) plan with
//! [`RoundPlan::for_records`] + [`records_per_round`]; variable-length
//! record buffers (the stage-4 read replies) pre-split with
//! [`ByteRounds`], which never splits a record across rounds — hence the
//! `CommStats::peak_round_bytes ≤ cap + max_record_size` guarantee.

use crate::comm::Comm;
use std::ops::Range;
use std::time::Instant;

/// How many exchange rounds this rank needs — the "planner" input of
/// [`RoundExchange::run`]. The executed count is the world maximum, so a
/// rank that plans fewer rounds simply ships empty buffers for the tail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundPlan {
    local_rounds: u64,
}

impl RoundPlan {
    /// A plan of exactly `rounds` local rounds (used when the caller has
    /// already split its data, e.g. with [`ByteRounds`]).
    pub fn from_rounds(rounds: u64) -> Self {
        Self { local_rounds: rounds }
    }

    /// Plan for a stream of `records` fixed-size records shipped at most
    /// `per_round` per round (see [`records_per_round`]).
    pub fn for_records(records: u64, per_round: usize) -> Self {
        Self {
            local_rounds: records.div_ceil(per_round.max(1) as u64),
        }
    }

    /// The local need (before the world-wide agreement).
    pub fn local_rounds(&self) -> u64 {
        self.local_rounds
    }
}

/// Records of `record_size` bytes a round may carry under both a record
/// cap and a byte cap (whichever is tighter), never less than one so
/// every plan makes progress.
pub fn records_per_round(record_size: usize, max_records: usize, max_bytes: usize) -> usize {
    debug_assert!(record_size > 0, "records must have positive size");
    max_records
        .max(1)
        .min((max_bytes / record_size.max(1)).max(1))
}

/// A byte-budgeted round split of per-destination buffers of
/// variable-length records, planned once and replayed round by round.
///
/// The split is greedy in destination order: a round takes whole records
/// while its running total stays under the cap, always takes at least one
/// record (so a single record larger than the cap still ships, alone),
/// and preserves each destination's record order — the concatenation of a
/// destination's segments across all rounds is byte-identical to the
/// unsplit buffer.
#[derive(Clone, Debug, Default)]
pub struct ByteRounds {
    /// Per round, the `(destination, byte range)` segments to ship.
    rounds: Vec<Vec<(usize, Range<usize>)>>,
}

impl ByteRounds {
    /// Plan the split. `record_lens[d]` lists the record sizes destined
    /// for rank `d`, in send order; `max_bytes` is the per-round cap.
    pub fn plan(record_lens: &[Vec<usize>], max_bytes: usize) -> Self {
        let cap = max_bytes.max(1);
        let mut cursor = vec![0usize; record_lens.len()]; // next record index
        let mut offset = vec![0usize; record_lens.len()]; // next byte offset
        let mut rounds = Vec::new();
        loop {
            let mut segments: Vec<(usize, Range<usize>)> = Vec::new();
            let mut used = 0usize;
            'dests: for (d, lens) in record_lens.iter().enumerate() {
                let start = offset[d];
                while cursor[d] < lens.len() {
                    let size = lens[cursor[d]];
                    if used > 0 && used.saturating_add(size) > cap {
                        break;
                    }
                    cursor[d] += 1;
                    offset[d] += size;
                    used = used.saturating_add(size);
                    if used >= cap {
                        break;
                    }
                }
                if offset[d] > start {
                    segments.push((d, start..offset[d]));
                }
                if used >= cap {
                    break 'dests;
                }
            }
            if segments.is_empty() {
                break;
            }
            rounds.push(segments);
        }
        Self { rounds }
    }

    /// [`ByteRounds::plan`] for *uniform* records: `record_counts[d]`
    /// records of `record_size` bytes each are destined for rank `d`.
    /// Produces the same split as materializing the per-record length
    /// lists, without allocating them — each round ships up to
    /// `records_per_round(record_size, ∞, max_bytes)` records, filling
    /// destinations in order.
    pub fn plan_uniform(record_counts: &[usize], record_size: usize, max_bytes: usize) -> Self {
        let size = record_size.max(1);
        let per_round = records_per_round(size, usize::MAX, max_bytes);
        let mut remaining = record_counts.to_vec();
        let mut offset = vec![0usize; record_counts.len()];
        let mut rounds = Vec::new();
        loop {
            let mut segments: Vec<(usize, Range<usize>)> = Vec::new();
            let mut budget = per_round;
            for (d, rem) in remaining.iter_mut().enumerate() {
                let take = (*rem).min(budget);
                if take > 0 {
                    let start = offset[d];
                    offset[d] += take * size;
                    *rem -= take;
                    budget -= take;
                    segments.push((d, start..offset[d]));
                }
                if budget == 0 {
                    break;
                }
            }
            if segments.is_empty() {
                break;
            }
            rounds.push(segments);
        }
        Self { rounds }
    }

    /// Number of planned rounds (zero when there is nothing to send).
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// `true` when nothing was planned.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The [`RoundPlan`] for this split.
    pub fn round_plan(&self) -> RoundPlan {
        RoundPlan::from_rounds(self.rounds.len() as u64)
    }

    /// Materialize round `round`'s per-destination buffers by slicing the
    /// unsplit source buffers (the same `record_lens` geometry given to
    /// [`ByteRounds::plan`]). Rounds past the plan — the tail a rank ships
    /// when the world agreed on more rounds than it needs — come out
    /// empty.
    pub fn pack(&self, round: u64, source: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); source.len()];
        if let Some(segments) = self.rounds.get(round as usize) {
            for (d, range) in segments {
                out[*d] = source[*d][range.clone()].to_vec();
            }
        }
        out
    }
}

/// The streaming-exchange driver. See the module docs for the protocol.
pub struct RoundExchange;

impl RoundExchange {
    /// Run a complete streaming exchange: agree the round count, then for
    /// each round ship `pack(round)` (packing round `i + 1` while round
    /// `i` is in flight) and hand the received per-source buffers to
    /// `consume(round, recv)` in round order.
    ///
    /// Returns the executed (world-agreed) round count; that value always
    /// equals the number of `alltoallv` calls the exchange added to this
    /// rank's `CommStats`. `pack` may be called for rounds beyond the
    /// rank's local need and must then return empty (or exhausted-stream)
    /// buffers. Time spent in `pack` is credited to
    /// `CommStats::pack_wall`.
    pub fn run<P, C>(comm: &Comm, planner: RoundPlan, pack: P, consume: C) -> u64
    where
        P: FnMut(u64) -> Vec<Vec<u8>>,
        C: FnMut(u64, Vec<Vec<u8>>),
    {
        Self::run_with_tail(comm, planner, pack, consume, || {})
    }

    /// [`Self::run`] with cross-stage overlap: `tail` runs on the rank
    /// thread while the **last** round is in flight on the transport's
    /// exchange helper — the window in which `run` has nothing left to
    /// pack. A stage uses it to start the *next* stage's local work (e.g.
    /// pre-packing that stage's first round from data it already owns)
    /// under the final exchange instead of after it.
    ///
    /// `tail`'s duration is declared to the transport as overlapped
    /// compute, so `SimNet` charges `max(tail + pack, modeled exchange)`
    /// for the final round — projections stay honest about what the
    /// overlap can hide. It is *not* credited to `pack_wall` here: the
    /// work belongs to the next stage, only its hiding place belongs to
    /// this one. A stage that pre-packs its round 0 inside a
    /// predecessor's tail must self-time that work and credit it via
    /// `Comm::add_pack_wall` when it *ships* the buffers, so the pack
    /// wall lands in the stats window of the stage that owns the bytes
    /// (the hash stage's prepacked round 0 does exactly this).
    pub fn run_with_tail<P, C, T>(
        comm: &Comm,
        planner: RoundPlan,
        mut pack: P,
        mut consume: C,
        tail: T,
    ) -> u64
    where
        P: FnMut(u64) -> Vec<Vec<u8>>,
        C: FnMut(u64, Vec<Vec<u8>>),
        T: FnOnce(),
    {
        let rounds = comm.allreduce_max_u64(planner.local_rounds().max(1));
        let mut tail = Some(tail);
        let t0 = Instant::now();
        let mut next = pack(0);
        comm.add_pack_wall(t0.elapsed());
        for round in 0..rounds {
            let pending = comm.exchange_start(next);
            let packing = Instant::now();
            next = if round + 1 < rounds {
                pack(round + 1)
            } else {
                Vec::new()
            };
            let mut overlapped = packing.elapsed();
            comm.add_pack_wall(overlapped);
            if round + 1 == rounds {
                if let Some(tail) = tail.take() {
                    let t = Instant::now();
                    tail();
                    overlapped += t.elapsed();
                }
            }
            let recv = comm.exchange_wait_overlapped(pending, overlapped);
            consume(round, recv);
        }
        rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::CommWorld;

    #[test]
    fn records_per_round_takes_the_tighter_cap() {
        assert_eq!(records_per_round(8, 1000, usize::MAX), 1000);
        assert_eq!(records_per_round(8, 1000, 80), 10);
        // Byte cap below one record still makes progress.
        assert_eq!(records_per_round(20, 1000, 5), 1);
        assert_eq!(records_per_round(8, 0, usize::MAX), 1);
    }

    #[test]
    fn round_plan_counts() {
        assert_eq!(RoundPlan::for_records(0, 10).local_rounds(), 0);
        assert_eq!(RoundPlan::for_records(1, 10).local_rounds(), 1);
        assert_eq!(RoundPlan::for_records(10, 10).local_rounds(), 1);
        assert_eq!(RoundPlan::for_records(11, 10).local_rounds(), 2);
    }

    #[test]
    fn byte_rounds_preserve_order_and_bound_rounds() {
        // Two destinations with records of varying size; cap 10.
        let lens = vec![vec![4, 4, 4], vec![7, 2]];
        let split = ByteRounds::plan(&lens, 10);
        // Source buffers: distinct bytes so splicing errors are visible.
        let src: Vec<Vec<u8>> = vec![(0..12).collect(), (50..59).collect()];
        let mut rebuilt: Vec<Vec<u8>> = vec![Vec::new(); 2];
        for r in 0..split.len() as u64 {
            let bufs = split.pack(r, &src);
            let total: usize = bufs.iter().map(Vec::len).sum();
            assert!(total <= 10 + 7, "round {r} ships {total} bytes");
            for (d, b) in bufs.into_iter().enumerate() {
                rebuilt[d].extend(b);
            }
        }
        assert_eq!(rebuilt, src, "concatenation must reproduce the source");
        // Rounds past the plan are empty.
        let tail = split.pack(split.len() as u64 + 3, &src);
        assert!(tail.iter().all(Vec::is_empty));
    }

    #[test]
    fn oversized_record_ships_alone() {
        let lens = vec![vec![100, 3], vec![3]];
        let split = ByteRounds::plan(&lens, 10);
        let src: Vec<Vec<u8>> = vec![vec![1u8; 103], vec![2u8; 3]];
        let first = split.pack(0, &src);
        assert_eq!(first[0].len(), 100, "the oversized record goes alone");
        assert!(first[1].is_empty());
    }

    #[test]
    fn empty_plan_is_empty() {
        let split = ByteRounds::plan(&[Vec::new(), Vec::new()], 64);
        assert!(split.is_empty());
        assert_eq!(split.round_plan().local_rounds(), 0);
        assert!(ByteRounds::plan_uniform(&[0, 0, 0], 4, 64).is_empty());
    }

    #[test]
    fn plan_uniform_matches_general_plan() {
        // The uniform fast path must produce the identical segmentation
        // the general planner derives from materialized length lists.
        for (counts, size, cap) in [
            (vec![3usize, 0, 5], 4usize, 10usize),
            (vec![1, 1, 1], 4, 4),
            (vec![7, 2], 8, 3), // record larger than cap: one per round
            (vec![0, 9], 4, 1000),
        ] {
            let lens: Vec<Vec<usize>> = counts.iter().map(|&n| vec![size; n]).collect();
            let general = ByteRounds::plan(&lens, cap);
            let uniform = ByteRounds::plan_uniform(&counts, size, cap);
            assert_eq!(
                uniform.rounds, general.rounds,
                "counts {counts:?} size {size} cap {cap}"
            );
        }
    }

    #[test]
    fn round_exchange_matches_monolithic_alltoallv() {
        // Each rank sends a deterministic byte pattern to every dest,
        // split into 4-byte records with a tiny cap; the reassembled
        // result must equal one blocking alltoallv of the same data.
        let p = 4;
        let payload = |src: usize, dst: usize| -> Vec<u8> {
            (0..((src + 2 * dst) % 5) * 4).map(|i| (src * 40 + dst * 8 + i) as u8).collect()
        };
        let expect = CommWorld::run(p, |comm| {
            comm.alltoallv_bytes((0..p).map(|d| payload(comm.rank(), d)).collect())
        });
        let got = CommWorld::run(p, |comm| {
            let src: Vec<Vec<u8>> = (0..p).map(|d| payload(comm.rank(), d)).collect();
            let lens: Vec<Vec<usize>> = src.iter().map(|b| vec![4; b.len() / 4]).collect();
            let split = ByteRounds::plan(&lens, 8);
            let mut rebuilt: Vec<Vec<u8>> = vec![Vec::new(); p];
            let rounds = RoundExchange::run(
                comm,
                split.round_plan(),
                |r| split.pack(r, &src),
                |_r, recv| {
                    for (s, b) in recv.into_iter().enumerate() {
                        rebuilt[s].extend(b);
                    }
                },
            );
            let stats = comm.take_stats();
            assert_eq!(stats.alltoallv_calls, rounds, "one call per round");
            assert!(stats.peak_round_bytes <= 8 + 4, "cap + one record");
            rebuilt
        });
        assert_eq!(got, expect);
    }

    #[test]
    fn world_agrees_on_the_max_rounds() {
        // Rank 0 plans 3 rounds, the others 1 — everyone must execute 3.
        let rounds = CommWorld::run(3, |comm| {
            let plan = RoundPlan::from_rounds(if comm.rank() == 0 { 3 } else { 1 });
            RoundExchange::run(
                comm,
                plan,
                |_r| vec![Vec::new(); comm.size()],
                |_r, _recv| {},
            )
        });
        assert_eq!(rounds, vec![3, 3, 3]);
    }

    #[test]
    fn tail_runs_exactly_once_during_the_last_round() {
        // The tail must fire once per rank, after the last round's
        // exchange_start but before its consume — consume(last) must be
        // able to see the tail's side effects.
        let outs = CommWorld::run(3, |comm| {
            let tail_ran = std::cell::Cell::new(0u32);
            let mut seen = Vec::new();
            let plan = RoundPlan::from_rounds(if comm.rank() == 0 { 3 } else { 1 });
            let rounds = RoundExchange::run_with_tail(
                comm,
                plan,
                |_r| vec![Vec::new(); comm.size()],
                |_r, _recv| seen.push(tail_ran.get()),
                || tail_ran.set(tail_ran.get() + 1),
            );
            (rounds, tail_ran.get(), seen)
        });
        for (rounds, ran, seen) in outs {
            assert_eq!(rounds, 3);
            assert_eq!(ran, 1, "tail must run exactly once");
            assert_eq!(seen, vec![0, 0, 1], "tail fires during the last round");
        }
    }

    #[test]
    fn pack_time_is_credited_to_pack_wall() {
        let stats = CommWorld::run(2, |comm| {
            RoundExchange::run(
                comm,
                RoundPlan::from_rounds(2),
                |_r| {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    vec![Vec::new(); comm.size()]
                },
                |_r, _recv| {},
            );
            comm.take_stats()
        });
        for s in stats {
            // pack(0) plus the overlapped pack(1): at least 2 calls × 2 ms.
            assert!(
                s.pack_wall >= std::time::Duration::from_millis(4),
                "pack_wall = {:?}",
                s.pack_wall
            );
        }
    }

    #[test]
    fn zero_local_rounds_still_participates_once() {
        let rounds = CommWorld::run(2, |comm| {
            RoundExchange::run(
                comm,
                RoundPlan::for_records(0, 16),
                |_r| vec![Vec::new(); comm.size()],
                |_r, _recv| {},
            )
        });
        assert_eq!(rounds, vec![1, 1]);
    }
}
