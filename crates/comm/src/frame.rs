//! The hardened exchange frame: magic, sequence number, length, CRC32.
//!
//! Transports that model an unreliable medium (today [`crate::FaultyNet`];
//! the planned multi-process TCP backend next) cannot assume a round
//! payload arrives intact, exactly once, or at all. When such a transport
//! advertises a [`crate::RetryPolicy`], the communicator wraps every
//! per-destination round payload in a fixed 20-byte header:
//!
//! ```text
//! offset  size  field
//!      0     4  magic   0xD1BE11A5 (little-endian)
//!      4     8  seq     per-rank exchange sequence number
//!     12     4  len     payload bytes
//!     16     4  crc     CRC-32 (IEEE) over seq ‖ len ‖ payload
//!     20     …  payload
//! ```
//!
//! The CRC covers the sequence and length fields as well as the payload,
//! so a single bit flip *anywhere* in the frame is detected: a flip in the
//! magic fails the magic check, a flip in seq/len/payload fails the CRC,
//! and a flip in the CRC field itself no longer matches the recomputed
//! value (see `crates/comm/tests/frame_prop.rs` for the exhaustive
//! property test). Truncation is caught by the length field; stale
//! replays (duplicates of an earlier round) are caught by the sequence
//! number, which both sides derive from their local collective-call count
//! — the SPMD contract guarantees the counts agree.
//!
//! The CRC-32 implementation is in-repo (standard reflected IEEE
//! polynomial, table-driven) — the workspace builds offline and takes no
//! new dependencies.

/// First four bytes of every hardened frame.
pub const FRAME_MAGIC: u32 = 0xD1BE_11A5;

/// Bytes of the frame header preceding the payload.
pub const FRAME_HEADER_BYTES: usize = 20;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table,
/// built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Fold `data` into a running CRC-32 state. Start from
/// [`CRC_INIT`](crc32_init) and finish with [`crc32_finish`]; or use
/// [`crc32`] for the one-shot form.
#[inline]
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state = (state >> 8) ^ CRC_TABLE[((state ^ b as u32) & 0xFF) as usize];
    }
    state
}

/// Initial CRC-32 state (all ones).
#[inline]
pub fn crc32_init() -> u32 {
    0xFFFF_FFFF
}

/// Finalize a CRC-32 state (bitwise complement).
#[inline]
pub fn crc32_finish(state: u32) -> u32 {
    !state
}

/// One-shot CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_finish(crc32_update(crc32_init(), data))
}

/// Why a received frame was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Buffer shorter than the fixed header — truncated in flight.
    Truncated {
        /// Bytes actually received.
        got: usize,
    },
    /// The magic bytes did not match — garbage or a foreign protocol.
    BadMagic {
        /// The first word as received.
        got: u32,
    },
    /// The header's length field disagrees with the received byte count.
    LengthMismatch {
        /// Payload length the header claims.
        claimed: u32,
        /// Payload bytes actually present.
        got: usize,
    },
    /// The CRC-32 over seq ‖ len ‖ payload did not match.
    BadCrc {
        /// Checksum carried by the frame.
        claimed: u32,
        /// Checksum recomputed from the received bytes.
        computed: u32,
    },
    /// A structurally valid frame carrying the wrong sequence number —
    /// a stale replay (duplicate of an earlier round) when
    /// `got < expected`.
    WrongSeq {
        /// Sequence number the frame carries.
        got: u64,
        /// Sequence number of the round being received.
        expected: u64,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FrameError::Truncated { got } => {
                write!(f, "frame truncated: {got} bytes < {FRAME_HEADER_BYTES}-byte header")
            }
            FrameError::BadMagic { got } => {
                write!(f, "bad frame magic {got:#010x} (expected {FRAME_MAGIC:#010x})")
            }
            FrameError::LengthMismatch { claimed, got } => {
                write!(f, "frame length mismatch: header claims {claimed} payload bytes, got {got}")
            }
            FrameError::BadCrc { claimed, computed } => {
                write!(f, "frame CRC mismatch: carried {claimed:#010x}, computed {computed:#010x}")
            }
            FrameError::WrongSeq { got, expected } => {
                write!(f, "frame sequence {got} does not match expected round {expected}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// CRC over the covered header fields (seq, len) followed by the payload.
fn frame_crc(seq: u64, len: u32, payload: &[u8]) -> u32 {
    let mut state = crc32_init();
    state = crc32_update(state, &seq.to_le_bytes());
    state = crc32_update(state, &len.to_le_bytes());
    state = crc32_update(state, payload);
    crc32_finish(state)
}

/// Wrap `payload` in a hardened frame for round `seq`.
///
/// # Panics
/// Panics if the payload exceeds `u32::MAX` bytes (a single round buffer
/// that large would have been split by the round cap long before).
pub fn encode_frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("round payload exceeds u32::MAX bytes");
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&frame_crc(seq, len, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate a received frame against `expected_seq` and return its payload.
///
/// Checks run in order: header presence, magic, length, CRC, sequence —
/// so a corrupt frame reports the earliest structural failure and only a
/// bit-exact replay of an *earlier* round reaches [`FrameError::WrongSeq`].
pub fn decode_frame(buf: &[u8], expected_seq: u64) -> Result<&[u8], FrameError> {
    if buf.len() < FRAME_HEADER_BYTES {
        return Err(FrameError::Truncated { got: buf.len() });
    }
    let word = |at: usize| u32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
    let magic = word(0);
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic { got: magic });
    }
    let seq = u64::from_le_bytes(buf[4..12].try_into().unwrap());
    let len = word(12);
    let crc = word(16);
    let payload = &buf[FRAME_HEADER_BYTES..];
    if len as usize != payload.len() {
        return Err(FrameError::LengthMismatch { claimed: len, got: payload.len() });
    }
    let computed = frame_crc(seq, len, payload);
    if crc != computed {
        return Err(FrameError::BadCrc { claimed: crc, computed });
    }
    if seq != expected_seq {
        return Err(FrameError::WrongSeq { got: seq, expected: expected_seq });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The classic IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn crc32_incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut state = crc32_init();
        for chunk in data.chunks(7) {
            state = crc32_update(state, chunk);
        }
        assert_eq!(crc32_finish(state), crc32(data));
    }

    #[test]
    fn frame_round_trip() {
        for payload in [&b""[..], b"x", &vec![0xAB; 1000][..]] {
            let frame = encode_frame(42, payload);
            assert_eq!(frame.len(), FRAME_HEADER_BYTES + payload.len());
            assert_eq!(decode_frame(&frame, 42), Ok(payload));
        }
    }

    #[test]
    fn detects_truncation_and_garbage() {
        let frame = encode_frame(7, b"hello world");
        // Every proper prefix fails (short prefixes as Truncated, longer
        // ones as LengthMismatch).
        for cut in 0..frame.len() {
            assert!(decode_frame(&frame[..cut], 7).is_err(), "prefix {cut} accepted");
        }
        assert!(matches!(decode_frame(&[], 7), Err(FrameError::Truncated { got: 0 })));
        assert!(matches!(
            decode_frame(&[0u8; FRAME_HEADER_BYTES], 7),
            Err(FrameError::BadMagic { .. })
        ));
    }

    #[test]
    fn detects_stale_sequence() {
        let frame = encode_frame(3, b"payload");
        assert_eq!(
            decode_frame(&frame, 9),
            Err(FrameError::WrongSeq { got: 3, expected: 9 })
        );
    }

    #[test]
    fn single_bit_flip_always_detected() {
        // Exhaustive over a small frame; the proptest suite covers
        // arbitrary payloads.
        let frame = encode_frame(11, b"some round payload");
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_frame(&bad, 11).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn error_messages_render() {
        let e = FrameError::BadCrc { claimed: 1, computed: 2 };
        assert!(e.to_string().contains("CRC"));
        let e = FrameError::WrongSeq { got: 1, expected: 2 };
        assert!(e.to_string().contains("sequence"));
    }
}
