//! Multiset-union consumer state for keyed exchange streams.
//!
//! Several stages consume an irregular exchange whose records are
//! `(key, values...)` contributions from many source ranks and whose
//! result is the per-key *multiset union* of everything that arrived —
//! the overlap stage's per-pair seed lists are the canonical case: the
//! same read pair can be discovered on several ranks (through different
//! shared k-mers), and consolidation is exactly "append every arriving
//! seed to the pair's list, then canonicalize later". [`MultisetUnion`]
//! is that accumulator, written once: insertion order is arrival order,
//! duplicates are kept (they carry multiplicity information until the
//! consumer dedups), and the finished map is surrendered wholesale with
//! [`MultisetUnion::into_map`].

use std::collections::HashMap;
use std::hash::Hash;

/// An order-preserving `key → multiset of values` accumulator for
/// exchange consumers. Values arriving under one key are appended in
/// arrival order; nothing is deduplicated here — canonicalization (sort,
/// dedup, filter) is the consumer's job *after* the union is complete.
#[derive(Clone, Debug)]
pub struct MultisetUnion<K, V> {
    map: HashMap<K, Vec<V>>,
}

impl<K: Eq + Hash, V> Default for MultisetUnion<K, V> {
    fn default() -> Self {
        Self { map: HashMap::new() }
    }
}

impl<K: Eq + Hash, V> MultisetUnion<K, V> {
    /// Empty union.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one value to `key`'s multiset.
    pub fn push(&mut self, key: K, value: V) {
        self.map.entry(key).or_default().push(value);
    }

    /// Append every value of `values` to `key`'s multiset, in order.
    pub fn extend(&mut self, key: K, values: impl IntoIterator<Item = V>) {
        self.map.entry(key).or_default().extend(values);
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no key has arrived.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total values across all keys (with multiplicity).
    pub fn total_values(&self) -> u64 {
        self.map.values().map(|v| v.len() as u64).sum()
    }

    /// Surrender the accumulated map.
    pub fn into_map(self) -> HashMap<K, Vec<V>> {
        self.map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_keeps_duplicates_in_arrival_order() {
        let mut u: MultisetUnion<u32, u8> = MultisetUnion::new();
        assert!(u.is_empty());
        u.push(7, 3);
        u.push(7, 1);
        u.push(7, 3);
        u.extend(9, [2, 2]);
        assert_eq!(u.len(), 2);
        assert_eq!(u.total_values(), 5);
        let map = u.into_map();
        assert_eq!(map[&7], vec![3, 1, 3], "order and multiplicity preserved");
        assert_eq!(map[&9], vec![2, 2]);
    }

    #[test]
    fn extend_appends_after_push() {
        let mut u: MultisetUnion<&'static str, u32> = MultisetUnion::new();
        u.push("k", 1);
        u.extend("k", [2, 3]);
        assert_eq!(u.into_map()["k"], vec![1, 2, 3]);
    }
}
