//! The per-rank communicator handle.
//!
//! Mirrors the MPI surface diBELLA uses (paper §4: "the communication
//! implemented via MPI Alltoall and Alltoallv functions", plus reductions
//! and an exclusive scan for global read-ID assignment). Every collective
//! must be called by **all** ranks of the world in the same order — the
//! usual MPI contract; violations panic via the hub's slot checks.

use crate::frame::{decode_frame, encode_frame, FrameError};
use crate::stats::CommStats;
use crate::transport::{Collective, InFlight, RetryPolicy, Transport};
use std::cell::{Cell, RefCell};
use std::panic::resume_unwind;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Handle to an irregular byte exchange started with
/// [`Comm::exchange_start`] and finished with [`Comm::exchange_wait`] /
/// [`Comm::exchange_wait_overlapped`].
///
/// On a reliable transport this is a thin wrapper over the backend's
/// [`InFlight`]. When the transport advertises a
/// [`RetryPolicy`], the handle additionally
/// carries the framed send buffers and the round's sequence number so a
/// damaged round can be retransmitted verbatim — round packing is
/// idempotent, so replaying the exact frames is always safe.
pub struct PendingExchange {
    inflight: InFlight,
    resend: Option<ResendState>,
}

/// Retransmission state of a hardened in-flight round.
struct ResendState {
    /// The framed per-destination buffers, kept until the round is
    /// acknowledged clean by every rank.
    frames: Vec<Vec<u8>>,
    /// Sequence number stamped into each frame.
    seq: u64,
}

/// Communicator handle owned by one rank's thread.
///
/// All collectives are written once against the [`Transport`] trait; which
/// backend executes them (real shared memory, or the netmodel-driven
/// simulated network) is decided by the launcher — see
/// [`crate::CommWorld::run_with`].
pub struct Comm {
    rank: usize,
    size: usize,
    transport: Arc<dyn Transport>,
    stats: RefCell<CommStats>,
    /// Recovery policy cached from [`Transport::retry_policy`]; `Some`
    /// switches the byte-exchange path to framed + retried.
    retry: Option<RetryPolicy>,
    /// Sequence number of the next hardened exchange. Every rank issues
    /// the same collectives in the same order (the SPMD contract), so
    /// sender and receiver counters agree without negotiation.
    seq: Cell<u64>,
}

impl Comm {
    pub(crate) fn new(rank: usize, transport: Arc<dyn Transport>) -> Self {
        let size = transport.size();
        let retry = transport.retry_policy();
        Self {
            rank,
            size,
            transport,
            stats: RefCell::new(CommStats::new(size)),
            retry,
            seq: Cell::new(0),
        }
    }

    /// Take the buffer `src` deposited for this rank and restore its type.
    ///
    /// # Panics
    /// Panics if the deposit is missing or of a different type — both
    /// indicate mismatched collective calls across ranks.
    fn recv<T: 'static>(&self, src: usize) -> T {
        *self
            .transport
            .take(src, self.rank)
            .downcast::<T>()
            .unwrap_or_else(|_| {
                panic!("slot ({src},{}) holds unexpected type", self.rank)
            })
    }

    /// This rank's index in `0..size()`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size (number of ranks).
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Snapshot and reset the communication counters (stage boundary).
    pub fn take_stats(&self) -> CommStats {
        std::mem::replace(&mut self.stats.borrow_mut(), CommStats::new(self.size))
    }

    /// Peek at the counters without resetting.
    pub fn stats(&self) -> CommStats {
        self.stats.borrow().clone()
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.stats.borrow_mut().barriers += 1;
        self.transport.wait();
    }

    /// Irregular all-to-all: element `d` of `send` goes to rank `d`;
    /// returns the buffers received from every source rank, indexed by
    /// source. Per-source ordering is preserved (deterministic).
    ///
    /// # Panics
    /// Panics if `send.len() != size()`.
    pub fn alltoallv<T: Send + 'static>(&self, send: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(send.len(), self.size, "alltoallv needs one buffer per rank");
        let t0 = Instant::now();
        let sizes: Vec<u64> = send
            .iter()
            .map(|b| (b.len() * std::mem::size_of::<T>()) as u64)
            .collect();
        self.stats
            .borrow_mut()
            .record_exchange(sizes.iter().map(|&s| s as usize));
        for (dst, buf) in send.into_iter().enumerate() {
            self.transport.put(self.rank, dst, Box::new(buf));
        }
        self.transport.wait();
        let recv: Vec<Vec<T>> = (0..self.size).map(|src| self.recv::<Vec<T>>(src)).collect();
        self.transport.wait();
        let wall = self.transport.collective_wall(
            self.rank,
            Collective::Alltoallv { dest_bytes: &sizes },
            t0.elapsed(),
        );
        self.stats.borrow_mut().exchange_wall += wall;
        recv
    }

    /// Byte-buffer variant of [`Self::alltoallv`] — the wire-level form the
    /// pipeline's packed messages use. Implemented as an immediately-waited
    /// split exchange, so blocking and streaming call sites share one code
    /// path (and identical traffic accounting).
    pub fn alltoallv_bytes(&self, send: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        let pending = self.exchange_start(send);
        self.exchange_wait(pending)
    }

    /// Begin a non-blocking irregular byte exchange: `send[d]` goes to
    /// rank `d`. Traffic counters are recorded immediately; the payloads
    /// move on a transport helper while this rank keeps computing.
    ///
    /// SPMD contract, extended to split collectives: every rank starts the
    /// same exchanges in the same order, at most one exchange is in flight
    /// per rank, and no other collective may be issued between
    /// `exchange_start` and the matching [`Self::exchange_wait`] /
    /// [`Self::exchange_wait_overlapped`] — the gap is for packing the
    /// next round, which is exactly what [`crate::RoundExchange`] does.
    ///
    /// # Panics
    /// Panics if `send.len() != size()`.
    pub fn exchange_start(&self, send: Vec<Vec<u8>>) -> PendingExchange {
        assert_eq!(send.len(), self.size, "exchange needs one buffer per rank");
        // Traffic accounting is the *logical* payload, recorded once per
        // round: frame headers and retransmits ride the recovery path and
        // never distort `dest_bytes`, `peak_round_bytes` or
        // `alltoallv_calls` — the figures the projections and the
        // wire-ratio invariants are built on.
        self.stats
            .borrow_mut()
            .record_exchange(send.iter().map(Vec::len));
        if self.retry.is_none() {
            return PendingExchange {
                inflight: self.transport.exchange_start(self.rank, send),
                resend: None,
            };
        }
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        let frames: Vec<Vec<u8>> = send.iter().map(|b| encode_frame(seq, b)).collect();
        PendingExchange {
            inflight: self.transport.exchange_start(self.rank, frames.clone()),
            resend: Some(ResendState { frames, seq }),
        }
    }

    /// Credit `d` of send-buffer packing time to this stage's counters
    /// (`CommStats::pack_wall`). Called by `RoundExchange` around its pack
    /// closures; packing happens outside collective calls but is part of
    /// the streaming-exchange engine's work, so it is accounted here
    /// rather than left to disappear into the stage's residual compute.
    pub fn add_pack_wall(&self, d: Duration) {
        self.stats.borrow_mut().pack_wall += d;
    }

    /// Finish an exchange begun by [`Self::exchange_start`], charging the
    /// backend's wall time with no declared overlap.
    pub fn exchange_wait(&self, pending: PendingExchange) -> Vec<Vec<u8>> {
        self.exchange_wait_overlapped(pending, Duration::ZERO)
    }

    /// Finish an exchange begun by [`Self::exchange_start`]. `overlapped`
    /// is the compute time this rank spent while the exchange was in
    /// flight (the next round's packing); real transports ignore it —
    /// their measured wall already ran concurrently — while simulated ones
    /// charge `max(overlapped, modeled)` per round so projections stay
    /// honest about what overlap can and cannot hide.
    ///
    /// On a hardened transport (one advertising a
    /// [`RetryPolicy`]) this is where recovery
    /// happens: received frames are validated against the round's
    /// sequence number, all ranks agree whether the round arrived clean,
    /// and a damaged round is retransmitted verbatim under exponential
    /// backoff. A rank that exhausts its retries (or times out waiting on
    /// a hung exchange) panics, failing the stage cleanly so a
    /// checkpointed run can resume from the last completed stage.
    pub fn exchange_wait_overlapped(
        &self,
        pending: PendingExchange,
        overlapped: Duration,
    ) -> Vec<Vec<u8>> {
        let PendingExchange { inflight, resend } = pending;
        let Some(resend) = resend else {
            let (recv, wall) = self.transport.exchange_wait(self.rank, inflight, overlapped);
            self.stats.borrow_mut().exchange_wall += wall;
            return recv;
        };
        self.exchange_wait_hardened(inflight, resend)
    }

    /// The hardened wait loop: poll → validate → agree → (return |
    /// backoff + retransmit).
    fn exchange_wait_hardened(&self, mut inflight: InFlight, resend: ResendState) -> Vec<Vec<u8>> {
        let policy = self.retry.expect("hardened wait without a retry policy");
        let ResendState { frames, seq } = resend;
        let mut recovery_start: Option<Instant> = None;
        let mut attempt = 0u32;
        loop {
            // Wait for the in-flight helper, counting (bounded) timeouts
            // instead of blocking forever on a hung exchange.
            let mut consecutive_timeouts = 0u32;
            let result = loop {
                match inflight.poll(policy.wait_timeout) {
                    Some(result) => break result,
                    None => {
                        self.stats.borrow_mut().wait_timeouts += 1;
                        consecutive_timeouts += 1;
                        assert!(
                            consecutive_timeouts < policy.max_wait_timeouts,
                            "rank {}: exchange seq {seq} hung: {} consecutive waits of {:?} \
                             elapsed with no result; failing the stage (resume from the last \
                             checkpoint with --checkpoint-dir)",
                            self.rank,
                            consecutive_timeouts,
                            policy.wait_timeout,
                        );
                    }
                }
            };
            let (recv, wall) = match result {
                Ok(out) => out,
                Err(payload) => resume_unwind(payload),
            };

            // Validate every source's frame against this round's sequence.
            let mut payloads = Vec::with_capacity(recv.len());
            let mut clean = true;
            {
                let mut stats = self.stats.borrow_mut();
                for buf in &recv {
                    match decode_frame(buf, seq) {
                        Ok(payload) => payloads.push(payload.to_vec()),
                        Err(FrameError::WrongSeq { got, .. }) if got < seq => {
                            // A structurally valid duplicate of an earlier
                            // round — dropped by sequence number.
                            stats.duplicates_dropped += 1;
                            clean = false;
                        }
                        Err(_) => {
                            stats.frames_corrupt_detected += 1;
                            clean = false;
                        }
                    }
                }
            }

            // Every rank must agree the round is clean before anyone
            // consumes it: a rank that received garbage needs its peers to
            // replay, and the SPMD contract requires the retransmit (a
            // full collective) to be entered by all ranks or none. The
            // handshake rides the transport's reliable control plane
            // (slot matrix + barrier), not the faultable byte path.
            let all_clean = self.agree(clean);
            if all_clean {
                self.stats.borrow_mut().exchange_wall += wall;
                if let Some(t0) = recovery_start {
                    self.stats.borrow_mut().retry_wall += t0.elapsed();
                }
                return payloads;
            }
            recovery_start.get_or_insert_with(Instant::now);
            assert!(
                attempt < policy.max_retries,
                "rank {}: exchange seq {seq} still damaged after {} retransmits; failing the \
                 stage (resume from the last checkpoint with --checkpoint-dir)",
                self.rank,
                policy.max_retries,
            );
            // Bounded exponential backoff, then replay the exact frames:
            // packing is idempotent per round, so the retransmit is
            // byte-identical to the original attempt.
            let backoff = policy
                .backoff_base
                .saturating_mul(1u32 << attempt.min(16))
                .min(policy.backoff_max);
            std::thread::sleep(backoff);
            self.stats.borrow_mut().frames_retransmitted += frames.len() as u64;
            inflight = self.transport.exchange_start(self.rank, frames.clone());
            attempt += 1;
        }
    }

    /// All-reduce a `bool` with AND over the transport's reliable slot
    /// matrix — the hardened layer's agreement handshake. Deliberately
    /// bypasses [`Self::allgather`] so protocol overhead never inflates
    /// `dense_collectives` or modeled exchange walls.
    fn agree(&self, ok: bool) -> bool {
        for dst in 0..self.size {
            self.transport.put(self.rank, dst, Box::new(ok));
        }
        self.transport.wait();
        let mut all = true;
        for src in 0..self.size {
            all &= self.recv::<bool>(src);
        }
        self.transport.wait();
        all
    }

    /// Dense all-to-all of one fixed-size value per destination (the
    /// `MPI_Alltoall` used to exchange counts ahead of an `Alltoallv`).
    pub fn alltoall<T: Send + Clone + 'static>(&self, send: Vec<T>) -> Vec<T> {
        assert_eq!(send.len(), self.size);
        self.stats.borrow_mut().dense_collectives += 1;
        let t0 = Instant::now();
        for (dst, v) in send.into_iter().enumerate() {
            self.transport.put(self.rank, dst, Box::new(v));
        }
        self.transport.wait();
        let recv: Vec<T> = (0..self.size).map(|src| self.recv::<T>(src)).collect();
        self.transport.wait();
        let wall = self
            .transport
            .collective_wall(self.rank, Collective::Dense, t0.elapsed());
        self.stats.borrow_mut().exchange_wall += wall;
        recv
    }

    /// Gather one value from every rank onto every rank (allgather).
    pub fn allgather<T: Send + Clone + 'static>(&self, value: T) -> Vec<T> {
        self.stats.borrow_mut().dense_collectives += 1;
        let t0 = Instant::now();
        // Deposit into our own row once per destination; cloning P−1 times
        // is the cost MPI pays for the broadcast tree, flattened — the last
        // destination takes the original by move.
        for dst in 0..self.size - 1 {
            self.transport.put(self.rank, dst, Box::new(value.clone()));
        }
        self.transport.put(self.rank, self.size - 1, Box::new(value));
        self.transport.wait();
        let out: Vec<T> = (0..self.size).map(|src| self.recv::<T>(src)).collect();
        self.transport.wait();
        let wall = self
            .transport
            .collective_wall(self.rank, Collective::Dense, t0.elapsed());
        self.stats.borrow_mut().exchange_wall += wall;
        out
    }

    /// Reduce with `op` across all ranks; every rank receives the result.
    pub fn allreduce<T, F>(&self, value: T, op: F) -> T
    where
        T: Send + Clone + 'static,
        F: Fn(T, T) -> T,
    {
        let all = self.allgather(value);
        let mut it = all.into_iter();
        let first = it.next().expect("world is non-empty");
        it.fold(first, op)
    }

    /// Sum-allreduce over `u64`.
    pub fn allreduce_sum_u64(&self, v: u64) -> u64 {
        self.allreduce(v, |a, b| a + b)
    }

    /// Max-allreduce over `u64`.
    pub fn allreduce_max_u64(&self, v: u64) -> u64 {
        self.allreduce(v, u64::max)
    }

    /// Sum-allreduce over `f64`.
    pub fn allreduce_sum_f64(&self, v: f64) -> f64 {
        self.allreduce(v, |a, b| a + b)
    }

    /// Exclusive prefix sum (`MPI_Exscan`): rank r receives the sum of the
    /// values of ranks `0..r`; rank 0 receives 0. Used to assign global
    /// read IDs after block-parallel input.
    pub fn exscan_sum_u64(&self, v: u64) -> u64 {
        let all = self.allgather(v);
        all[..self.rank].iter().sum()
    }

    /// Broadcast `value` from `root` to all ranks.
    pub fn broadcast<T: Send + Clone + 'static>(&self, value: Option<T>, root: usize) -> T {
        assert!(root < self.size);
        self.stats.borrow_mut().dense_collectives += 1;
        let t0 = Instant::now();
        if self.rank == root {
            let v = value.expect("root must supply the broadcast value");
            // Clone for all but the last destination; move the original
            // into the last — one fewer deep copy per broadcast.
            for dst in 0..self.size - 1 {
                self.transport.put(self.rank, dst, Box::new(v.clone()));
            }
            self.transport.put(self.rank, self.size - 1, Box::new(v));
        }
        self.transport.wait();
        let out: T = self.recv(root);
        self.transport.wait();
        let wall = self
            .transport
            .collective_wall(self.rank, Collective::Dense, t0.elapsed());
        self.stats.borrow_mut().exchange_wall += wall;
        out
    }

    /// Gather every rank's value at `root`; others receive `None`.
    pub fn gather<T: Send + 'static>(&self, value: T, root: usize) -> Option<Vec<T>> {
        assert!(root < self.size);
        self.stats.borrow_mut().dense_collectives += 1;
        let t0 = Instant::now();
        self.transport.put(self.rank, root, Box::new(value));
        self.transport.wait();
        let out =
            (self.rank == root).then(|| (0..self.size).map(|src| self.recv::<T>(src)).collect());
        self.transport.wait();
        let wall = self
            .transport
            .collective_wall(self.rank, Collective::Dense, t0.elapsed());
        self.stats.borrow_mut().exchange_wall += wall;
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::world::CommWorld;

    #[test]
    fn alltoallv_routes_correctly() {
        let results = CommWorld::run(4, |comm| {
            let send: Vec<Vec<u32>> = (0..4)
                .map(|dst| vec![(comm.rank() * 100 + dst) as u32])
                .collect();
            comm.alltoallv(send)
        });
        for (rank, recv) in results.iter().enumerate() {
            for (src, buf) in recv.iter().enumerate() {
                assert_eq!(buf, &vec![(src * 100 + rank) as u32]);
            }
        }
    }

    #[test]
    fn alltoallv_preserves_order_and_counts() {
        let results = CommWorld::run(3, |comm| {
            let send: Vec<Vec<u64>> = (0..3)
                .map(|dst| (0..(comm.rank() + 1) as u64 * 2).map(|i| i + dst as u64).collect())
                .collect();
            comm.alltoallv(send)
        });
        for recv in &results {
            for (src, buf) in recv.iter().enumerate() {
                assert_eq!(buf.len(), (src + 1) * 2);
                // Order within a source preserved (strictly increasing).
                assert!(buf.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn reductions_and_scan() {
        let results = CommWorld::run(5, |comm| {
            let r = comm.rank() as u64;
            (
                comm.allreduce_sum_u64(r + 1),
                comm.allreduce_max_u64(r),
                comm.exscan_sum_u64(10),
                comm.allreduce_sum_f64(0.5),
            )
        });
        for (rank, &(sum, max, scan, fsum)) in results.iter().enumerate() {
            assert_eq!(sum, 15);
            assert_eq!(max, 4);
            assert_eq!(scan, 10 * rank as u64);
            assert!((fsum - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn broadcast_and_gather() {
        let results = CommWorld::run(4, |comm| {
            let bc = comm.broadcast(
                (comm.rank() == 2).then(|| vec![7u8, 8, 9]),
                2,
            );
            let g = comm.gather(comm.rank() as u32, 0);
            (bc, g)
        });
        for (rank, (bc, g)) in results.iter().enumerate() {
            assert_eq!(bc, &vec![7u8, 8, 9]);
            if rank == 0 {
                assert_eq!(g.as_ref().unwrap(), &vec![0u32, 1, 2, 3]);
            } else {
                assert!(g.is_none());
            }
        }
    }

    #[test]
    fn stats_count_bytes_and_msgs() {
        let results = CommWorld::run(2, |comm| {
            let send: Vec<Vec<u32>> = vec![vec![1, 2], vec![]];
            let _ = comm.alltoallv(send);
            comm.take_stats()
        });
        let s0 = &results[0];
        assert_eq!(s0.dest_bytes[0], 8);
        assert_eq!(s0.dest_bytes[1], 0);
        assert_eq!(s0.total_msgs(), 1);
        assert_eq!(s0.alltoallv_calls, 1);
    }

    #[test]
    fn take_stats_resets() {
        let results = CommWorld::run(2, |comm| {
            comm.barrier();
            let first = comm.take_stats();
            let second = comm.take_stats();
            (first.barriers, second.barriers)
        });
        assert_eq!(results[0], (1, 0));
    }

    #[test]
    #[should_panic(expected = "unexpected type")]
    fn mismatched_collective_types_panic() {
        let _ = CommWorld::run(1, |comm| {
            comm.transport.put(0, 0, Box::new(42u64));
            comm.recv::<Vec<u8>>(0)
        });
    }

    #[test]
    fn single_rank_world() {
        let results = CommWorld::run(1, |comm| {
            let recv = comm.alltoallv(vec![vec![42u8]]);
            (recv[0].clone(), comm.allreduce_sum_u64(9))
        });
        assert_eq!(results[0].0, vec![42]);
        assert_eq!(results[0].1, 9);
    }

    #[test]
    fn allgather_order() {
        let results = CommWorld::run(3, |comm| comm.allgather(comm.rank() as u8 * 3));
        for r in &results {
            assert_eq!(r, &vec![0u8, 3, 6]);
        }
    }
}
