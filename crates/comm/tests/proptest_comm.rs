//! Property tests: the irregular exchange is a lossless permutation.

use dibella_comm::{decode_vec, encode_slice, CommWorld};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every element sent in an alltoallv arrives exactly once at the
    /// right rank, tagged with the right source, for arbitrary irregular
    /// send-count matrices.
    #[test]
    fn alltoallv_is_a_permutation(
        p in 1usize..9,
        seed in 0u64..1000,
    ) {
        // Deterministic irregular matrix: rank r sends f(r,d) elements to d.
        let count = |r: usize, d: usize| ((seed as usize + r * 7 + d * 13) % 5) as u32;
        let results = CommWorld::run(p, |comm| {
            let r = comm.rank();
            let send: Vec<Vec<(u32, u32)>> = (0..p)
                .map(|d| (0..count(r, d)).map(|i| (r as u32, i)).collect())
                .collect();
            comm.alltoallv(send)
        });
        for (dst, recv) in results.iter().enumerate() {
            prop_assert_eq!(recv.len(), p);
            for (src, buf) in recv.iter().enumerate() {
                prop_assert_eq!(buf.len() as u32, count(src, dst));
                for (i, &(s, ix)) in buf.iter().enumerate() {
                    prop_assert_eq!(s, src as u32);
                    prop_assert_eq!(ix, i as u32);
                }
            }
        }
    }

    /// Byte-level round trip through encode → alltoallv_bytes → decode
    /// preserves every record.
    #[test]
    fn wire_exchange_round_trip(
        p in 1usize..6,
        payload in prop::collection::vec((any::<u32>(), any::<u64>()), 0..50),
    ) {
        let results = CommWorld::run(p, |comm| {
            // Everyone sends the same payload to every destination.
            let send: Vec<Vec<u8>> = (0..p).map(|_| encode_slice(&payload)).collect();
            let recv = comm.alltoallv_bytes(send);
            recv.into_iter()
                .map(|buf| decode_vec::<(u32, u64)>(&buf))
                .collect::<Vec<_>>()
        });
        for recv in results {
            for buf in recv {
                prop_assert_eq!(&buf, &payload);
            }
        }
    }

    /// Stats bytes equal the true encoded volume.
    #[test]
    fn stats_match_sent_volume(p in 1usize..6, n in 0usize..40) {
        let results = CommWorld::run(p, |comm| {
            let send: Vec<Vec<u64>> = (0..p).map(|_| vec![0u64; n]).collect();
            let _ = comm.alltoallv(send);
            comm.take_stats()
        });
        for s in results {
            prop_assert_eq!(s.total_bytes(), (p * n * 8) as u64);
        }
    }
}
