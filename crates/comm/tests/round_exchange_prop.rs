//! Property tests of the streaming exchange engine: for arbitrary
//! per-destination record geometries and round caps, the byte-planned
//! rounds (a) lose and reorder nothing relative to a monolithic exchange
//! and (b) keep every rank's per-round send volume within
//! `cap + max_record_size` — the memory bound `--round-mb` promises.

use dibella_comm::{ByteRounds, CommWorld, RoundExchange};
use proptest::prelude::*;

/// Deterministic pseudo-random record sizes for `(src, dst)` streams.
fn record_lens(seed: u64, src: usize, dst: usize, p: usize) -> Vec<usize> {
    let mut state = seed ^ ((src * p + dst) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let n = (rnd() % 6) as usize;
    (0..n).map(|_| 1 + (rnd() % 40) as usize).collect()
}

/// Concatenated payload bytes for one `(src, dst)` stream.
fn payload(lens: &[usize], src: usize, dst: usize) -> Vec<u8> {
    let total: usize = lens.iter().sum();
    (0..total).map(|i| (src * 31 + dst * 7 + i) as u8).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Streamed rounds deliver exactly the monolithic result, with
    /// `peak_round_bytes ≤ cap + max_record_size` on every rank.
    #[test]
    fn peak_round_bytes_bounded_and_lossless(
        p in 1usize..6,
        cap in 1usize..120,
        seed in 0u64..500,
    ) {
        let outs = CommWorld::run(p, |comm| {
            let rank = comm.rank();
            let lens: Vec<Vec<usize>> =
                (0..p).map(|d| record_lens(seed, rank, d, p)).collect();
            let bufs: Vec<Vec<u8>> =
                (0..p).map(|d| payload(&lens[d], rank, d)).collect();
            let max_record = lens.iter().flatten().copied().max().unwrap_or(0);
            let split = ByteRounds::plan(&lens, cap);
            let mut rebuilt: Vec<Vec<u8>> = vec![Vec::new(); p];
            let rounds = RoundExchange::run(
                comm,
                split.round_plan(),
                |r| split.pack(r, &bufs),
                |_r, recv| {
                    for (src, b) in recv.into_iter().enumerate() {
                        rebuilt[src].extend(b);
                    }
                },
            );
            let stats = comm.take_stats();
            (rebuilt, stats, rounds, max_record)
        });
        // Every destination reassembles every source stream byte-for-byte.
        for (dst, (rebuilt, stats, rounds, _)) in outs.iter().enumerate() {
            for (src, got) in rebuilt.iter().enumerate() {
                let lens = record_lens(seed, src, dst, p);
                prop_assert_eq!(got, &payload(&lens, src, dst), "{} -> {}", src, dst);
            }
            prop_assert_eq!(stats.alltoallv_calls, *rounds);
            // Total bytes are independent of the round split.
            let sent: usize = (0..p)
                .map(|d| record_lens(seed, dst, d, p).iter().sum::<usize>())
                .sum();
            prop_assert_eq!(stats.total_bytes(), sent as u64);
        }
        // The invariant the round cap exists for, on every rank: no round
        // ever ships more than the cap plus one unsplittable record.
        let world_max_record = outs.iter().map(|(_, _, _, m)| *m).max().unwrap_or(0);
        for (rank, (_, stats, _, _)) in outs.iter().enumerate() {
            prop_assert!(
                stats.peak_round_bytes <= (cap + world_max_record) as u64,
                "rank {}: peak {} vs cap {} + record {}",
                rank, stats.peak_round_bytes, cap, world_max_record
            );
        }
    }
}
