//! Round-trip and edge-case tests for the fixed-layout wire codec:
//! empty slices, single elements, maximum-width records, extreme values,
//! and the truncated/misaligned-buffer error behavior.

use dibella_comm::{decode_iter, decode_vec, encode_slice, Wire};
use proptest::prelude::*;

/// The widest record the codec currently supports: a 4-tuple of u64s.
type MaxRecord = (u64, u64, u64, u64);

#[test]
fn empty_slice_encodes_to_empty_buffer() {
    let buf = encode_slice::<(u32, u64)>(&[]);
    assert!(buf.is_empty());
    assert!(decode_vec::<(u32, u64)>(&buf).is_empty());
    assert_eq!(decode_iter::<(u32, u64)>(&buf).count(), 0);
}

#[test]
fn single_element_round_trips() {
    let items = [(7u16, 9u8)];
    let buf = encode_slice(&items);
    assert_eq!(buf.len(), <(u16, u8)>::SIZE);
    assert_eq!(decode_vec::<(u16, u8)>(&buf), items);
}

#[test]
fn max_width_record_round_trips_extremes() {
    let items: Vec<MaxRecord> = vec![
        (0, 0, 0, 0),
        (u64::MAX, u64::MAX, u64::MAX, u64::MAX),
        (u64::MAX, 0, 1, u64::MAX - 1),
    ];
    assert_eq!(MaxRecord::SIZE, 32);
    let buf = encode_slice(&items);
    assert_eq!(buf.len(), items.len() * 32);
    assert_eq!(decode_vec::<MaxRecord>(&buf), items);
}

#[test]
fn signed_extremes_round_trip() {
    let items = [
        (i64::MIN, i32::MIN, i16::MIN, i8::MIN),
        (i64::MAX, i32::MAX, i16::MAX, i8::MAX),
        (-1i64, -1i32, -1i16, -1i8),
    ];
    let buf = encode_slice(&items);
    assert_eq!(decode_vec::<(i64, i32, i16, i8)>(&buf), items);
}

#[test]
#[should_panic(expected = "not a multiple")]
fn truncated_buffer_rejected() {
    let buf = encode_slice(&[(1u32, 2u64), (3u32, 4u64)]);
    let _ = decode_vec::<(u32, u64)>(&buf[..buf.len() - 1]);
}

#[test]
#[should_panic(expected = "not a multiple")]
fn decode_iter_rejects_truncation_eagerly() {
    let buf = encode_slice(&[5u64]);
    let _ = decode_iter::<u64>(&buf[..7]);
}

#[test]
#[should_panic]
fn read_beyond_short_buffer_panics() {
    // Wire::read documents a panic when fewer than SIZE bytes remain.
    let _ = u32::read(&[0xAB, 0xCD]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity for arbitrary record vectors, and
    /// the buffer length is exactly `n · SIZE`.
    #[test]
    fn round_trip_u32_u64(items in prop::collection::vec((any::<u32>(), any::<u64>()), 0..200)) {
        let buf = encode_slice(&items);
        prop_assert_eq!(buf.len(), items.len() * <(u32, u64)>::SIZE);
        prop_assert_eq!(decode_vec::<(u32, u64)>(&buf), items);
    }

    /// The iterator decoder agrees with the materializing one.
    #[test]
    fn iter_matches_vec(items in prop::collection::vec(any::<u64>(), 0..100)) {
        let buf = encode_slice(&items);
        let via_iter: Vec<u64> = decode_iter(&buf).collect();
        prop_assert_eq!(via_iter, decode_vec::<u64>(&buf));
    }

    /// Truncating any non-multiple number of trailing bytes is rejected.
    #[test]
    fn any_truncation_rejected(n in 1usize..50, cut in 1usize..8) {
        let items: Vec<u64> = (0..n as u64).collect();
        let buf = encode_slice(&items);
        let res = std::panic::catch_unwind(|| decode_vec::<u64>(&buf[..buf.len() - cut]));
        if cut % 8 == 0 {
            // A whole-record truncation is indistinguishable from a
            // shorter message — it must decode to the prefix.
            prop_assert_eq!(res.unwrap(), items[..n - cut / 8].to_vec());
        } else {
            prop_assert!(res.is_err(), "cut {cut} should misalign the buffer");
        }
    }
}
