//! Property tests for the hardened exchange frame: the CRC32 check
//! catches every single-bit flip and every truncation of arbitrary
//! encoded round payloads, and stale sequence numbers are rejected as
//! duplicates.

use dibella_comm::frame::FrameError;
use dibella_comm::{decode_frame, encode_frame, encode_slice, FRAME_HEADER_BYTES};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Round trip: a frame decodes back to its exact payload under its
    /// own sequence number.
    #[test]
    fn frame_round_trips(
        seq in any::<u64>(),
        records in prop::collection::vec((any::<u32>(), any::<u64>()), 0..80),
    ) {
        let payload = encode_slice(&records);
        let frame = encode_frame(seq, &payload);
        prop_assert_eq!(frame.len(), FRAME_HEADER_BYTES + payload.len());
        prop_assert_eq!(decode_frame(&frame, seq), Ok(&payload[..]));
    }

    /// Every single-bit flip anywhere in the frame — header, CRC field,
    /// or payload — is detected.
    #[test]
    fn every_single_bit_flip_detected(
        seq in 0u64..1_000_000,
        records in prop::collection::vec((any::<u32>(), any::<u64>()), 0..40),
        flip_seed in any::<u64>(),
    ) {
        let frame = encode_frame(seq, &encode_slice(&records));
        let total_bits = frame.len() * 8;
        // Exhaustive over small frames; a deterministic sample of 256
        // positions keyed by flip_seed over large ones.
        let positions: Vec<usize> = if total_bits <= 512 {
            (0..total_bits).collect()
        } else {
            (0..256u64)
                .map(|i| {
                    (flip_seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(i.wrapping_mul(1442695040888963407))
                        % total_bits as u64) as usize
                })
                .collect()
        };
        for bit in positions {
            let mut bad = frame.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            prop_assert!(
                decode_frame(&bad, seq).is_err(),
                "flip at bit {} of {} went undetected", bit, total_bits
            );
        }
    }

    /// Every truncation — from losing the last byte down to an empty
    /// buffer — is detected.
    #[test]
    fn every_truncation_detected(
        seq in any::<u64>(),
        records in prop::collection::vec((any::<u32>(), any::<u64>()), 1..40),
    ) {
        let frame = encode_frame(seq, &encode_slice(&records));
        for cut in 0..frame.len() {
            prop_assert!(
                decode_frame(&frame[..cut], seq).is_err(),
                "truncation to {} of {} bytes went undetected", cut, frame.len()
            );
        }
    }

    /// A bit-exact replay of an earlier round is rejected as a stale
    /// duplicate (and a future sequence is rejected too).
    #[test]
    fn stale_sequence_numbers_deduped(
        seq in 1u64..1_000_000,
        lag in 1u64..1000,
        records in prop::collection::vec((any::<u32>(), any::<u64>()), 0..40),
    ) {
        let payload = encode_slice(&records);
        let lag = lag.min(seq);
        let stale = encode_frame(seq - lag, &payload);
        prop_assert_eq!(
            decode_frame(&stale, seq),
            Err(FrameError::WrongSeq { got: seq - lag, expected: seq })
        );
        // A frame from the "future" is equally rejected.
        let future = encode_frame(seq + lag, &payload);
        prop_assert_eq!(
            decode_frame(&future, seq),
            Err(FrameError::WrongSeq { got: seq + lag, expected: seq })
        );
    }
}
