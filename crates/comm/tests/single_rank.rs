//! World-size edge case: a 1-rank world must exercise every collective
//! correctly (each is its own degenerate permutation) and leave the
//! traffic counters self-consistent — zero off-rank bytes, exact
//! self-traffic accounting — on both transport backends.

use dibella_comm::{CommStats, CommWorld, SimNetConfig, TransportKind};
use dibella_netmodel::PlatformId;

/// Run every collective on one rank and return the accumulated stats.
fn exercise_all_collectives(kind: &TransportKind) -> CommStats {
    let mut results = CommWorld::run_with(1, kind, |c| {
        assert_eq!(c.rank(), 0);
        assert_eq!(c.size(), 1);
        c.barrier();
        // Irregular exchange: 3 × u32 = 12 bytes to self.
        let recv = c.alltoallv(vec![vec![1u32, 2, 3]]);
        assert_eq!(recv, vec![vec![1, 2, 3]]);
        // Dense collectives, one of each flavor.
        assert_eq!(c.alltoall(vec![9u8]), vec![9]);
        assert_eq!(c.allgather(5u64), vec![5]);
        assert_eq!(c.allreduce_sum_u64(7), 7);
        assert_eq!(c.allreduce_max_u64(3), 3);
        assert!((c.allreduce_sum_f64(0.25) - 0.25).abs() < 1e-15);
        assert_eq!(c.exscan_sum_u64(4), 0, "rank 0 exscan is the empty sum");
        assert_eq!(c.broadcast(Some(vec![1u8, 2]), 0), vec![1, 2]);
        assert_eq!(c.gather(2u32, 0), Some(vec![2]));
        c.take_stats()
    });
    results.remove(0)
}

fn assert_self_consistent(s: &CommStats) {
    // All traffic is self-traffic: nothing leaves the rank.
    assert_eq!(s.remote_bytes(0), 0);
    assert_eq!(s.dest_bytes.len(), 1);
    assert_eq!(s.dest_bytes[0], 12, "one alltoallv of 3 u32s");
    assert_eq!(s.total_bytes(), 12);
    assert_eq!(s.total_msgs(), 1);
    assert_eq!(s.alltoallv_calls, 1);
    assert_eq!(s.barriers, 1);
    // alltoall + allgather + 3 reductions (via allgather) + exscan +
    // broadcast + gather = 8 dense collectives.
    assert_eq!(s.dense_collectives, 8);
    let (on, off) = s.split_bytes(|d| d == 0);
    assert_eq!((on, off), (12, 0));
}

#[test]
fn one_rank_world_is_self_consistent_shared() {
    let s = exercise_all_collectives(&TransportKind::SharedMem);
    assert_self_consistent(&s);
}

#[test]
fn one_rank_world_is_self_consistent_simnet() {
    let kind = TransportKind::SimNet(SimNetConfig {
        platform: PlatformId::Aws,
        ranks_per_node: 1,
    });
    let s = exercise_all_collectives(&kind);
    assert_self_consistent(&s);
    // The simulated network still charges latency for the collectives.
    assert!(s.exchange_wall.as_secs_f64() > 0.0);
}
