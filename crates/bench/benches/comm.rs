//! Communicator microbenchmarks: irregular all-to-all throughput and
//! collective latency of the SPMD substrate at several world sizes — the
//! in-process analogue of the MPI microbenchmarks behind Table 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dibella_comm::CommWorld;
use std::hint::black_box;

fn bench_alltoallv(c: &mut Criterion) {
    let mut g = c.benchmark_group("alltoallv");
    g.sample_size(10);
    for &p in &[2usize, 4, 8] {
        for &kb in &[1usize, 64] {
            let bytes_per_dest = kb * 1024;
            g.throughput(Throughput::Bytes((p * p * bytes_per_dest) as u64));
            g.bench_with_input(
                BenchmarkId::new(format!("p{p}"), format!("{kb}KiB/dest")),
                &(p, bytes_per_dest),
                |b, &(p, n)| {
                    b.iter(|| {
                        let out = CommWorld::run(p, |comm| {
                            let send: Vec<Vec<u8>> = (0..p).map(|_| vec![7u8; n]).collect();
                            let recv = comm.alltoallv_bytes(send);
                            recv.iter().map(|v| v.len()).sum::<usize>()
                        });
                        black_box(out)
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    g.sample_size(10);
    for &p in &[2usize, 8] {
        g.bench_with_input(BenchmarkId::new("allreduce_sum", p), &p, |b, &p| {
            b.iter(|| {
                black_box(CommWorld::run(p, |comm| {
                    comm.allreduce_sum_u64(comm.rank() as u64)
                }))
            })
        });
        g.bench_with_input(BenchmarkId::new("barrier_x10", p), &p, |b, &p| {
            b.iter(|| {
                CommWorld::run(p, |comm| {
                    for _ in 0..10 {
                        comm.barrier();
                    }
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_alltoallv, bench_collectives);
criterion_main!(benches);
