//! k-mer machinery microbenchmarks: extraction throughput, owner hashing,
//! Bloom filter insert/query, HyperLogLog insert, and hash-table
//! occurrence recording — the per-op costs behind the
//! `dibella_netmodel::op_costs` calibration constants.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dibella_kcount::{KcountConfig, KmerHashTable, Occurrence};
use dibella_kmer::{extract_kmers, KmerIter, Strand};
use dibella_sketch::{BloomFilter, HyperLogLog};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_seq(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect()
}

fn bench_extraction(c: &mut Criterion) {
    let seq = random_seq(100_000, 1);
    let mut g = c.benchmark_group("kmer_extraction");
    g.sample_size(20);
    g.throughput(Throughput::Elements(seq.len() as u64));
    g.bench_function("k17_iterate", |b| {
        b.iter(|| {
            let mut n = 0u64;
            for h in KmerIter::<1>::new(&seq, 17) {
                n = n.wrapping_add(h.kmer.words()[0]);
            }
            black_box(n)
        })
    });
    g.bench_function("k17_collect", |b| {
        b.iter(|| black_box(extract_kmers::<1>(&seq, 17).len()))
    });
    g.bench_function("k17_owner_hash", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for h in KmerIter::<1>::new(&seq, 17) {
                acc = acc.wrapping_add(h.kmer.owner(1024));
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_sketches(c: &mut Criterion) {
    let n = 100_000u64;
    let hashes: Vec<u64> = {
        let seq = random_seq(n as usize + 16, 2);
        KmerIter::<1>::new(&seq, 17).map(|h| h.kmer.hash64()).collect()
    };
    let mut g = c.benchmark_group("sketch");
    g.sample_size(20);
    g.throughput(Throughput::Elements(hashes.len() as u64));
    g.bench_function("bloom_insert", |b| {
        b.iter(|| {
            let mut bf = BloomFilter::for_items(n, 0.05);
            for &h in &hashes {
                bf.insert(h);
            }
            black_box(bf.n_inserted())
        })
    });
    g.bench_function("bloom_query", |b| {
        let mut bf = BloomFilter::for_items(n, 0.05);
        for &h in &hashes {
            bf.insert(h);
        }
        b.iter(|| {
            let mut hits = 0u64;
            for &h in &hashes {
                hits += bf.contains(h) as u64;
            }
            black_box(hits)
        })
    });
    g.bench_function("hll_insert", |b| {
        b.iter(|| {
            let mut hll = HyperLogLog::new(12);
            for &h in &hashes {
                hll.insert(h);
            }
            black_box(hll.estimate())
        })
    });
    g.finish();
}

fn bench_hash_table(c: &mut Criterion) {
    let seq = random_seq(50_000, 3);
    let hits: Vec<_> = KmerIter::<1>::new(&seq, 17).collect();
    let cfg = KcountConfig {
        k: 17,
        max_multiplicity: 8,
        bloom_fp_rate: 0.05,
        expected_distinct: 50_000,
        max_kmers_per_round: 1 << 20,
        max_exchange_bytes_per_round: usize::MAX,
        extract_batch: 1024,
    };
    let mut g = c.benchmark_group("hash_table");
    g.sample_size(20);
    g.throughput(Throughput::Elements(hits.len() as u64));
    g.bench_function("insert_keys_then_occurrences", |b| {
        b.iter(|| {
            let mut t = KmerHashTable::with_capacity(hits.len());
            for h in &hits {
                t.insert_key(h.kmer);
            }
            for (i, h) in hits.iter().enumerate() {
                t.record_occurrence(
                    &h.kmer,
                    Occurrence { read: i as u32 % 64, pos: h.pos, strand: Strand::Forward },
                    &cfg,
                );
            }
            black_box(t.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_extraction, bench_sketches, bench_hash_table);
criterion_main!(benches);
