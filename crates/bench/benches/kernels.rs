//! Alignment-kernel microbenchmarks: x-drop vs banded vs full
//! Smith-Waterman on a PacBio-like overlapping pair, plus the x-drop `X`
//! ablation (the paper's §2 claim that x-drop makes pairwise alignment
//! linear in L, and the DESIGN.md kernel-choice ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dibella_align::{
    banded_sw, banded_sw_with, banded_sw_with_workspace, extend_seed, extend_seed_with,
    extend_seed_with_workspace, extend_ungapped, extend_xdrop, extend_xdrop_with_workspace,
    smith_waterman, AlignWorkspace, KernelImpl, Scoring, SeedHit,
};
use dibella_bench::spgemm_fixture;
use dibella_datagen::ErrorModel;
use dibella_kcount::ReadKmerCsr;
use dibella_overlap::{pack_row_block, SpgemmAccumulator, TaskPlacement};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// A true overlapping pair: two noisy reads of one template.
fn noisy_pair(len: usize, error: f64) -> (Vec<u8>, Vec<u8>) {
    noisy_pair_seeded(len, error, 99)
}

fn noisy_pair_seeded(len: usize, error: f64, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let template: Vec<u8> = (0..len).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect();
    let m = ErrorModel::pacbio(error);
    (m.apply(&template, &mut rng), m.apply(&template, &mut rng))
}

fn bench_kernels(c: &mut Criterion) {
    let (a, b) = noisy_pair(2_000, 0.15);
    let sc = Scoring::bella();
    let seed = SeedHit { a_pos: 0, b_pos: 0, k: 17 };

    let mut g = c.benchmark_group("kernel");
    g.sample_size(10);
    g.throughput(Throughput::Elements(a.len() as u64));
    g.bench_function("xdrop_x25", |bench| {
        bench.iter(|| black_box(extend_seed(&a, &b, seed, sc, 25)))
    });
    g.bench_function("ungapped_x25", |bench| {
        bench.iter(|| black_box(extend_ungapped(&a, &b, sc, 25)))
    });
    g.bench_function("banded_hb64", |bench| {
        bench.iter(|| black_box(banded_sw(&a, &b, 0, 64, sc)))
    });
    g.bench_function("full_sw", |bench| {
        bench.iter(|| black_box(smith_waterman(&a, &b, sc)))
    });
    g.finish();
}

/// Allocation-free workspace kernels vs their legacy allocating twins,
/// reported in DP **cells/sec** (one element = one DP cell — the cost
/// currency of the cross-architecture model). The same numbers are
/// emitted as a tracked baseline by the `bench_kernels_json` binary
/// (`BENCH_kernels.json`).
fn bench_workspace_kernels(c: &mut Criterion) {
    let (a, b) = noisy_pair(2_000, 0.15);
    let sc = Scoring::bella();
    let seed = SeedHit { a_pos: 800, b_pos: 800, k: 17 };
    let mut ws = AlignWorkspace::new();

    let mut g = c.benchmark_group("kernel_cells_per_sec");
    g.sample_size(10);

    let seed_cells = extend_seed_with_workspace(&a, &b, seed, sc, 25, &mut ws).cells;
    g.throughput(Throughput::Elements(seed_cells));
    g.bench_function("seed_xdrop_workspace_x25", |bench| {
        bench.iter(|| black_box(extend_seed_with_workspace(&a, &b, seed, sc, 25, &mut ws)))
    });
    g.bench_function("seed_xdrop_legacy_x25", |bench| {
        bench.iter(|| black_box(extend_seed(&a, &b, seed, sc, 25)))
    });
    // Scalar vs lane-SIMD, explicitly pinned (bit-identical outputs —
    // only the cells/s may differ).
    g.bench_function("seed_xdrop_scalar_x25", |bench| {
        bench.iter(|| {
            black_box(extend_seed_with(&a, &b, seed, sc, 25, &mut ws, KernelImpl::Scalar))
        })
    });
    g.bench_function("seed_xdrop_simd_x25", |bench| {
        bench.iter(|| black_box(extend_seed_with(&a, &b, seed, sc, 25, &mut ws, KernelImpl::Simd)))
    });

    let xdrop_cells = extend_xdrop_with_workspace(&a, &b, sc, 25, &mut ws).cells;
    g.throughput(Throughput::Elements(xdrop_cells));
    g.bench_function("xdrop_workspace_x25", |bench| {
        bench.iter(|| black_box(extend_xdrop_with_workspace(&a, &b, sc, 25, &mut ws)))
    });

    let banded_cells = banded_sw_with_workspace(&a, &b, 0, 64, sc, &mut ws).cells;
    g.throughput(Throughput::Elements(banded_cells));
    g.bench_function("banded_workspace_hb64", |bench| {
        bench.iter(|| black_box(banded_sw_with_workspace(&a, &b, 0, 64, sc, &mut ws)))
    });
    g.bench_function("banded_scalar_hb64", |bench| {
        bench.iter(|| black_box(banded_sw_with(&a, &b, 0, 64, sc, &mut ws, KernelImpl::Scalar)))
    });
    g.bench_function("banded_simd_hb64", |bench| {
        bench.iter(|| black_box(banded_sw_with(&a, &b, 0, 64, sc, &mut ws, KernelImpl::Simd)))
    });
    g.finish();
}

/// SpGEMM overlap engine: row-block accumulator variants packing the
/// shared fixture table, in rows/s (one element = one CSR row — a read's
/// whole `A·Aᵀ` expansion). Dense, hash and the auto selector are
/// byte-identical (asserted by `bench_kernels_json`, which tracks the
/// same numbers in `BENCH_kernels.json`); only the throughput may move.
fn bench_spgemm_rows(c: &mut Criterion) {
    const RANKS: usize = 4;
    const BLOCK: usize = 64;
    let (table, part) = spgemm_fixture(256, 2_000, RANKS, 0x0D1B_E11A);
    let csr = ReadKmerCsr::from_table(&table);

    let mut g = c.benchmark_group("spgemm_rows_per_sec");
    g.sample_size(10);
    g.throughput(Throughput::Elements(csr.n_rows() as u64));
    for (name, acc) in [
        ("dense", SpgemmAccumulator::Dense),
        ("hash", SpgemmAccumulator::Hash),
        ("auto", SpgemmAccumulator::Auto),
    ] {
        g.bench_function(name, |bench| {
            bench.iter(|| {
                for lo in (0..csr.n_rows()).step_by(BLOCK) {
                    let hi = (lo + BLOCK).min(csr.n_rows());
                    black_box(pack_row_block(
                        &csr,
                        lo..hi,
                        &part,
                        TaskPlacement::Parity,
                        None,
                        RANKS,
                        acc,
                    ));
                }
            })
        });
    }
    g.finish();
}

/// Ablation: the x-drop threshold X trades completed extension length
/// (score) against DP cells.
fn bench_xdrop_ablation(c: &mut Criterion) {
    let (a, b) = noisy_pair(4_000, 0.15);
    let sc = Scoring::bella();
    let mut g = c.benchmark_group("ablation_xdrop_x");
    g.sample_size(10);
    for x in [5, 15, 25, 50, 100] {
        g.bench_with_input(BenchmarkId::from_parameter(x), &x, |bench, &x| {
            bench.iter(|| black_box(extend_xdrop(&a, &b, sc, x)))
        });
    }
    g.finish();
}

/// x-drop is linear in L for true overlaps (§2): double the length,
/// roughly double the time — visible across these sizes.
fn bench_xdrop_scaling(c: &mut Criterion) {
    let sc = Scoring::bella();
    let mut g = c.benchmark_group("xdrop_length_scaling");
    g.sample_size(10);
    for len in [1_000usize, 2_000, 4_000, 8_000] {
        let (a, b) = noisy_pair(len, 0.15);
        g.throughput(Throughput::Elements(len as u64));
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |bench, _| {
            bench.iter(|| black_box(extend_xdrop(&a, &b, sc, 25)))
        });
    }
    g.finish();
}

/// Divergence cost comparison. Structurally divergent tails exit after
/// ~X antidiagonals (unit-tested in `dibella-align`), but note the
/// subtlety this bench exposes: on *uniform random* DNA with BELLA's
/// unit scores the best score plateaus rather than falling, the pruning
/// threshold rarely binds, and the band widens — so a seeded-but-
/// unrelated pair can cost more DP cells than a true overlap of the same
/// length. Per-pair DP cost variance (either direction) is precisely the
/// Fig-8 load-imbalance mechanism.
fn bench_xdrop_divergent(c: &mut Criterion) {
    let sc = Scoring::bella();
    // Same template → true overlap; different seeds → unrelated
    // sequences (a genuinely spurious pair).
    let (a, b) = noisy_pair_seeded(4_000, 0.15, 99);
    let (unrelated, _) = noisy_pair_seeded(4_000, 0.15, 1234);
    let mut g = c.benchmark_group("xdrop_divergence");
    g.sample_size(10);
    g.bench_function("true_overlap_4k", |bench| {
        bench.iter(|| black_box(extend_xdrop(&a, &b, sc, 25)))
    });
    g.bench_function("spurious_pair_4k", |bench| {
        bench.iter(|| black_box(extend_xdrop(&a, &unrelated, sc, 25)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_kernels,
    bench_workspace_kernels,
    bench_spgemm_rows,
    bench_xdrop_ablation,
    bench_xdrop_scaling,
    bench_xdrop_divergent
);
criterion_main!(benches);
