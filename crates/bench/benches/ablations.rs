//! Design-choice ablations on the end-to-end pipeline (DESIGN.md §7):
//!
//! * **seed policy** — one-seed vs d=1000 vs d=k compute intensity (§5);
//! * **m threshold** — repeat filtering vs the `m²` pair blow-up (Eq. 3);
//! * **Bloom false-positive budget** — filter size vs singleton leakage;
//! * **streaming round cap** — memory bound vs collective count.
//!
//! Each variant runs the full 4-rank pipeline on a fixed small synthetic
//! dataset; Criterion reports wall time per configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dibella_core::{run_pipeline, PipelineConfig};
use dibella_datagen::{simulate_reads, ErrorModel, GenomeSpec, ReadSimSpec};
use dibella_io::ReadSet;
use dibella_overlap::SeedPolicy;
use std::hint::black_box;

fn tiny_reads() -> ReadSet {
    let genome = GenomeSpec { size: 12_000, seed: 5, ..Default::default() }.generate();
    simulate_reads(
        &genome,
        &ReadSimSpec {
            depth: 8.0,
            mean_len: 1_500,
            min_len: 300,
            errors: ErrorModel::pacbio(0.12),
            seed: 6,
            ..Default::default()
        },
    )
    .reads
}

fn base_cfg() -> PipelineConfig {
    PipelineConfig {
        k: 15,
        depth: 8.0,
        error_rate: 0.12,
        seed_policy: SeedPolicy::Single,
        max_seeds_per_pair: 8,
        ..Default::default()
    }
}

fn bench_seed_policy(c: &mut Criterion) {
    let reads = tiny_reads();
    let mut g = c.benchmark_group("ablation_seed_policy");
    g.sample_size(10);
    for (name, policy) in SeedPolicy::paper_settings(15) {
        let cfg = PipelineConfig { seed_policy: policy, ..base_cfg() };
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(run_pipeline(&reads, 4, cfg).n_pairs()))
        });
    }
    g.finish();
}

fn bench_m_threshold(c: &mut Criterion) {
    let reads = tiny_reads();
    let mut g = c.benchmark_group("ablation_m_threshold");
    g.sample_size(10);
    for m in [3u32, 8, 32, 128] {
        let cfg = PipelineConfig { max_multiplicity: Some(m), ..base_cfg() };
        g.bench_with_input(BenchmarkId::from_parameter(m), &cfg, |b, cfg| {
            b.iter(|| black_box(run_pipeline(&reads, 4, cfg).n_pairs()))
        });
    }
    g.finish();
}

fn bench_bloom_budget(c: &mut Criterion) {
    let reads = tiny_reads();
    let mut g = c.benchmark_group("ablation_bloom_fp");
    g.sample_size(10);
    for fp in [0.005f64, 0.05, 0.3] {
        let cfg = PipelineConfig { bloom_fp_rate: fp, ..base_cfg() };
        g.bench_with_input(BenchmarkId::from_parameter(fp), &cfg, |b, cfg| {
            b.iter(|| black_box(run_pipeline(&reads, 4, cfg).n_pairs()))
        });
    }
    g.finish();
}

fn bench_round_cap(c: &mut Criterion) {
    let reads = tiny_reads();
    let mut g = c.benchmark_group("ablation_round_cap");
    g.sample_size(10);
    for cap in [512usize, 4096, 1 << 20] {
        let cfg = PipelineConfig { max_kmers_per_round: cap, ..base_cfg() };
        g.bench_with_input(BenchmarkId::from_parameter(cap), &cfg, |b, cfg| {
            b.iter(|| black_box(run_pipeline(&reads, 4, cfg).n_pairs()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_seed_policy,
    bench_m_threshold,
    bench_bloom_budget,
    bench_round_cap
);
criterion_main!(benches);
