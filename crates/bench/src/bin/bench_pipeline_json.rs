//! End-to-end pipeline baseline writer: emits `BENCH_pipeline.json`.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p dibella-bench --bin bench_pipeline_json
//! ```
//!
//! (optionally pass an output path as the first argument). The file
//! records one full 4-rank pipeline run on the fixed sampled E. coli 30×
//! workload: per stage, the slowest rank's wall, exchange, pack and
//! derived compute seconds (pack and exchange are concurrent intervals —
//! their sum may exceed the wall; the excess is the engine's overlap),
//! the executed streaming-exchange rounds, the total bytes shipped and
//! the largest single-round send volume (`CommStats::peak_round_bytes` —
//! the figure `--round-mb` / `DIBELLA_ROUND_MB` bounds), plus
//! whole-pipeline wall and alignment counts.
//!
//! Perf PRs diff this file to leave a measurable end-to-end trajectory;
//! wall seconds are machine-dependent (compare ratios across hosts), while
//! rounds, bytes and peaks are exact and must only move when the exchange
//! engine or the workload does. The usual knobs apply: `DIBELLA_SCALE`,
//! `DIBELLA_TRANSPORT`, `DIBELLA_THREADS` and `DIBELLA_ROUND_MB`.

use dibella_bench::{config_for, dataset, Workload};
use dibella_core::{run_pipeline, RankReport};
use dibella_overlap::SeedPolicy;
use std::time::Instant;

const RANKS: usize = 4;

/// One stage's aggregate row.
struct StageRow {
    name: &'static str,
    wall_s_max: f64,
    exchange_s_max: f64,
    pack_s_max: f64,
    compute_s_max: f64,
    rounds_max: u64,
    bytes_total: u64,
    peak_round_bytes_max: u64,
}

fn stage_rows(reports: &[RankReport]) -> Vec<StageRow> {
    ["bloom", "hash", "overlap", "align"]
        .into_iter()
        .enumerate()
        .map(|(si, name)| {
            let mut row = StageRow {
                name,
                wall_s_max: 0.0,
                exchange_s_max: 0.0,
                pack_s_max: 0.0,
                compute_s_max: 0.0,
                rounds_max: 0,
                bytes_total: 0,
                peak_round_bytes_max: 0,
            };
            for r in reports {
                let (timing, comm, rounds) = match si {
                    0 => (r.bloom_wall, &r.bloom_comm, r.bloom.rounds),
                    1 => (r.hash_wall, &r.hash_comm, r.hash.rounds),
                    2 => (r.overlap_wall, &r.overlap_comm, r.overlap.rounds),
                    _ => (r.align_wall, &r.align_comm, r.align.rounds),
                };
                row.wall_s_max = row.wall_s_max.max(timing.total.as_secs_f64());
                row.exchange_s_max = row.exchange_s_max.max(timing.exchange.as_secs_f64());
                row.pack_s_max = row.pack_s_max.max(timing.pack.as_secs_f64());
                row.compute_s_max = row.compute_s_max.max(timing.compute().as_secs_f64());
                row.rounds_max = row.rounds_max.max(rounds);
                row.bytes_total += comm.total_bytes();
                row.peak_round_bytes_max = row.peak_round_bytes_max.max(comm.peak_round_bytes);
            }
            row
        })
        .collect()
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_pipeline.json".into());

    let workload = Workload::E30Sample;
    let ds = dataset(workload);
    let cfg = config_for(workload, SeedPolicy::Single);
    let t0 = Instant::now();
    let res = run_pipeline(&ds.reads, RANKS, &cfg);
    let elapsed = t0.elapsed().as_secs_f64();

    let rows = stage_rows(&res.reports);
    let round_cap = if cfg.max_exchange_bytes_per_round == usize::MAX {
        "null".to_owned()
    } else {
        cfg.max_exchange_bytes_per_round.to_string()
    };
    let stages: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    \"{}\": {{ \"wall_s_max\": {:.6}, \"exchange_s_max\": {:.6}, \"pack_s_max\": {:.6}, \"compute_s_max\": {:.6}, \"rounds\": {}, \"bytes_total\": {}, \"peak_round_bytes_max\": {} }}",
                r.name,
                r.wall_s_max,
                r.exchange_s_max,
                r.pack_s_max,
                r.compute_s_max,
                r.rounds_max,
                r.bytes_total,
                r.peak_round_bytes_max,
            )
        })
        .collect();
    let alignments: u64 = res.n_alignments_computed();
    let json = format!(
        "{{\n  \"schema\": \"dibella-pipeline-baseline/2\",\n  \"workload\": \"{}\",\n  \"reads\": {},\n  \"bases\": {},\n  \"ranks\": {RANKS},\n  \"threads\": {},\n  \"transport\": \"{}\",\n  \"round_cap_bytes\": {round_cap},\n  \"stages\": {{\n{}\n  }},\n  \"pipeline\": {{ \"wall_s\": {elapsed:.6}, \"slowest_rank_wall_s\": {:.6}, \"alignments_computed\": {alignments}, \"pairs\": {} }}\n}}\n",
        workload.name(),
        ds.reads.len(),
        ds.reads.total_bases(),
        cfg.effective_threads(),
        cfg.transport,
        stages.join(",\n"),
        res.wall().as_secs_f64(),
        res.n_pairs(),
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}:");
    print!("{json}");
}
