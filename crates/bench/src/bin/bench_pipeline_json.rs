//! End-to-end pipeline baseline writer: emits `BENCH_pipeline.json`.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p dibella-bench --bin bench_pipeline_json
//! ```
//!
//! (optionally pass an output path as the first argument). The file
//! records one full 4-rank pipeline run per seed mode (`reliable` and
//! `minimizer`) on the fixed sampled E. coli 30× workload: per stage, the
//! slowest rank's wall, exchange, pack and derived compute seconds (pack
//! and exchange are concurrent intervals — their sum may exceed the wall;
//! the excess is the engine's overlap), the executed streaming-exchange
//! rounds, the total bytes shipped, the bytes shipped per input base, and
//! the largest single-round send volume (`CommStats::peak_round_bytes` —
//! the figure `--round-mb` / `DIBELLA_ROUND_MB` bounds), plus
//! whole-pipeline wall, byte and alignment counts. The top-level
//! `seed_bytes_ratio` is the reliable front end's seed-stage wire bytes
//! (bloom + hash) over the minimizer sketch's — the sketch's headline
//! saving.
//!
//! Schema `/5` additionally records, per seed mode, an `overlap_engines`
//! block: the overlap stage run with *both* exchange engines
//! (`--overlap-engine pairs|spgemm`), side by side — wall/pack seconds,
//! rounds, wire bytes and peak round, plus the emission counters
//! (`pairs_emitted`, `candidate_pairs_emitted`, `pairs_deduped_at_source`)
//! and the derived `seed_dup_factor` (seed instances per shipped record —
//! the SpGEMM engine's source-side consolidation win; 1.0 by construction
//! for `pairs`). The writer asserts both engines produce identical
//! alignments before recording anything. The mode's main `stages` block
//! keeps describing the `pairs` run, so `/4` consumers see unchanged
//! semantics.
//!
//! Perf PRs diff this file to leave a measurable end-to-end trajectory;
//! wall seconds are machine-dependent (compare ratios across hosts), while
//! rounds, bytes and peaks are exact and must only move when the exchange
//! engine or the workload does. The usual knobs apply: `DIBELLA_SCALE`,
//! `DIBELLA_TRANSPORT`, `DIBELLA_THREADS` and `DIBELLA_ROUND_MB`
//! (`DIBELLA_SEED_MODE` and `DIBELLA_OVERLAP_ENGINE` are ignored — both
//! modes and both engines are always recorded).

use dibella_bench::{config_for, dataset, Workload};
use dibella_core::{run_pipeline, PipelineResult, RankReport, SeedMode};
use dibella_overlap::{OverlapEngine, SeedPolicy};
use std::time::Instant;

const RANKS: usize = 4;

/// One stage's aggregate row.
struct StageRow {
    name: &'static str,
    wall_s_max: f64,
    exchange_s_max: f64,
    pack_s_max: f64,
    compute_s_max: f64,
    rounds_max: u64,
    bytes_total: u64,
    peak_round_bytes_max: u64,
}

fn stage_rows(reports: &[RankReport]) -> Vec<StageRow> {
    ["bloom", "hash", "overlap", "align"]
        .into_iter()
        .enumerate()
        .map(|(si, name)| {
            let mut row = StageRow {
                name,
                wall_s_max: 0.0,
                exchange_s_max: 0.0,
                pack_s_max: 0.0,
                compute_s_max: 0.0,
                rounds_max: 0,
                bytes_total: 0,
                peak_round_bytes_max: 0,
            };
            for r in reports {
                let (timing, comm, rounds) = match si {
                    0 => (r.bloom_wall, &r.bloom_comm, r.bloom.rounds),
                    1 => (r.hash_wall, &r.hash_comm, r.hash.rounds),
                    2 => (r.overlap_wall, &r.overlap_comm, r.overlap.rounds),
                    _ => (r.align_wall, &r.align_comm, r.align.rounds),
                };
                row.wall_s_max = row.wall_s_max.max(timing.total.as_secs_f64());
                row.exchange_s_max = row.exchange_s_max.max(timing.exchange.as_secs_f64());
                row.pack_s_max = row.pack_s_max.max(timing.pack.as_secs_f64());
                row.compute_s_max = row.compute_s_max.max(timing.compute().as_secs_f64());
                row.rounds_max = row.rounds_max.max(rounds);
                row.bytes_total += comm.total_bytes();
                row.peak_round_bytes_max = row.peak_round_bytes_max.max(comm.peak_round_bytes);
            }
            row
        })
        .collect()
}

/// Seed-stage (bloom + hash) wire bytes of a run — the volume the
/// minimizer sketch exists to shrink.
fn seed_bytes(reports: &[RankReport]) -> u64 {
    reports
        .iter()
        .map(|r| r.bloom_comm.total_bytes() + r.hash_comm.total_bytes())
        .sum()
}

/// One engine's overlap-stage row for the `overlap_engines` block
/// (schema `/5`): the slowest rank's wall and pack seconds, executed
/// rounds, wire bytes, peak round, the emission counters, and the
/// derived `seed_dup_factor` — seed instances emitted per wire record
/// shipped (1.0 for `pairs` by construction; > 1 is the SpGEMM engine's
/// source-side consolidation).
fn engine_json(res: &PipelineResult, input_bases: u64) -> String {
    let rows = stage_rows(&res.reports);
    let o = &rows[2];
    debug_assert_eq!(o.name, "overlap");
    let emitted: u64 = res.reports.iter().map(|r| r.overlap.pairs_emitted).sum();
    let records: u64 = res.reports.iter().map(|r| r.overlap.candidate_pairs_emitted).sum();
    let deduped: u64 = res.reports.iter().map(|r| r.overlap.pairs_deduped_at_source).sum();
    assert_eq!(deduped, emitted - records, "dedup bookkeeping");
    let dup_factor = emitted as f64 / records.max(1) as f64;
    format!(
        "{{ \"wall_s_max\": {:.6}, \"pack_s_max\": {:.6}, \"rounds\": {}, \"bytes_total\": {}, \"bytes_per_input_base\": {:.6}, \"peak_round_bytes_max\": {}, \"pairs_emitted\": {emitted}, \"candidate_pairs_emitted\": {records}, \"pairs_deduped_at_source\": {deduped}, \"seed_dup_factor\": {dup_factor:.3}, \"pairs\": {} }}",
        o.wall_s_max,
        o.pack_s_max,
        o.rounds_max,
        o.bytes_total,
        o.bytes_total as f64 / input_bases as f64,
        o.peak_round_bytes_max,
        res.n_pairs(),
    )
}

/// Render one mode's `{ "stages": ..., "pipeline": ..., "overlap_engines":
/// ..., "faults": ... }` object from the `pairs`-engine run plus the
/// pre-rendered per-engine rows. The `faults` block sums the
/// hardened-exchange robustness counters across ranks and stages; on the
/// clean benchmark transport every field is zero — a nonzero value here
/// means the baseline was recorded over a fault-injecting transport and
/// must not be committed.
fn mode_json(res: &PipelineResult, elapsed_s: f64, input_bases: u64, engines: &str) -> String {
    let rows = stage_rows(&res.reports);
    let per_base = |bytes: u64| bytes as f64 / input_bases as f64;
    let stages: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "        \"{}\": {{ \"wall_s_max\": {:.6}, \"exchange_s_max\": {:.6}, \"pack_s_max\": {:.6}, \"compute_s_max\": {:.6}, \"rounds\": {}, \"bytes_total\": {}, \"bytes_per_input_base\": {:.6}, \"peak_round_bytes_max\": {} }}",
                r.name,
                r.wall_s_max,
                r.exchange_s_max,
                r.pack_s_max,
                r.compute_s_max,
                r.rounds_max,
                r.bytes_total,
                per_base(r.bytes_total),
                r.peak_round_bytes_max,
            )
        })
        .collect();
    let bytes_total: u64 = rows.iter().map(|r| r.bytes_total).sum();
    let mut faults = dibella_comm::CommStats::new(res.reports.len().max(1));
    for r in &res.reports {
        faults.merge(&r.total_comm());
    }
    format!(
        "{{\n      \"stages\": {{\n{}\n      }},\n      \"pipeline\": {{ \"wall_s\": {elapsed_s:.6}, \"slowest_rank_wall_s\": {:.6}, \"alignments_computed\": {}, \"pairs\": {}, \"bytes_total\": {bytes_total}, \"bytes_per_input_base\": {:.6} }},\n      \"overlap_engines\": {{\n{engines}\n      }},\n      \"faults\": {{ \"frames_corrupt_detected\": {}, \"frames_retransmitted\": {}, \"duplicates_dropped\": {}, \"wait_timeouts\": {}, \"retry_wall_s\": {:.6} }}\n    }}",
        stages.join(",\n"),
        res.wall().as_secs_f64(),
        res.n_alignments_computed(),
        res.n_pairs(),
        per_base(bytes_total),
        faults.frames_corrupt_detected,
        faults.frames_retransmitted,
        faults.duplicates_dropped,
        faults.wait_timeouts,
        faults.retry_wall.as_secs_f64(),
    )
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_pipeline.json".into());

    let workload = Workload::E30Sample;
    let ds = dataset(workload);
    let input_bases = ds.reads.total_bases();
    let base_cfg = config_for(workload, SeedPolicy::Single);

    let mut modes = Vec::new();
    let mut per_mode_seed_bytes = [0u64; 2];
    for (i, seed_mode) in [SeedMode::Reliable, SeedMode::Minimizer].into_iter().enumerate() {
        let mut engine_runs = Vec::new();
        for engine in [OverlapEngine::Pairs, OverlapEngine::Spgemm] {
            let cfg = dibella_core::PipelineConfig {
                seed_mode,
                overlap_engine: engine,
                ..base_cfg.clone()
            };
            eprintln!(
                "[bench] running {} seeds={seed_mode} engine={engine} P={RANKS} ...",
                workload.name()
            );
            let t0 = Instant::now();
            let res = run_pipeline(&ds.reads, RANKS, &cfg);
            engine_runs.push((engine, res, t0.elapsed().as_secs_f64()));
        }
        // The engines must be interchangeable before anything is recorded.
        assert_eq!(
            engine_runs[0].1.alignments, engine_runs[1].1.alignments,
            "overlap engines disagree on final alignments (seeds={seed_mode})"
        );
        let engines: Vec<String> = engine_runs
            .iter()
            .map(|(engine, res, _)| format!("        \"{engine}\": {}", engine_json(res, input_bases)))
            .collect();
        let (_, pairs_res, pairs_elapsed) = &engine_runs[0];
        per_mode_seed_bytes[i] = seed_bytes(&pairs_res.reports);
        modes.push(format!(
            "    \"{seed_mode}\": {}",
            mode_json(pairs_res, *pairs_elapsed, input_bases, &engines.join(",\n"))
        ));
    }
    let seed_bytes_ratio = per_mode_seed_bytes[0] as f64 / per_mode_seed_bytes[1] as f64;

    let round_cap = if base_cfg.max_exchange_bytes_per_round == usize::MAX {
        "null".to_owned()
    } else {
        base_cfg.max_exchange_bytes_per_round.to_string()
    };
    let json = format!(
        "{{\n  \"schema\": \"dibella-pipeline-baseline/5\",\n  \"workload\": \"{}\",\n  \"reads\": {},\n  \"bases\": {input_bases},\n  \"ranks\": {RANKS},\n  \"threads\": {},\n  \"transport\": \"{}\",\n  \"round_cap_bytes\": {round_cap},\n  \"seed_bytes_ratio\": {seed_bytes_ratio:.3},\n  \"modes\": {{\n{}\n  }}\n}}\n",
        workload.name(),
        ds.reads.len(),
        base_cfg.effective_threads(),
        base_cfg.transport,
        modes.join(",\n"),
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}:");
    print!("{json}");
}
