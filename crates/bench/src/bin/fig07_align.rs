//! Figure 7 — alignment stage cross-architecture strong scaling,
//! millions of alignments per second, E. coli 30× one-seed.
//!
//! Set `DIBELLA_THREADS` to run each rank's stage compute on a thread
//! pool (hybrid distributed+shared-memory, paper §9). The printed table
//! is identical at every thread count — the executor's deterministic
//! batching guarantees bit-identical records and counters — so diffing
//! two runs is a direct determinism check.
use dibella_bench::*;
use dibella_core::Stage;
use dibella_netmodel::mrate;
use dibella_overlap::SeedPolicy;

fn main() {
    println!("# threads = {} (DIBELLA_THREADS)", env_threads());
    let mut cache = ReportCache::new();
    let series = platform_series(&mut cache, Workload::E30, SeedPolicy::Single, |reports, proj, _| {
        mrate(total_alignments(reports), proj.stage(Stage::Align).stage_seconds())
    });
    print_figure(
        "Figure 7: Alignment Performance (M alignments/sec), E.coli 30x one-seed",
        &NODE_COUNTS,
        &series,
    );
}
