//! Figure 13 — full-pipeline cross-architecture strong scaling, millions
//! of alignments per second, E. coli 30× one-seed.
use dibella_bench::*;
use dibella_netmodel::mrate;
use dibella_overlap::SeedPolicy;

fn main() {
    let mut cache = ReportCache::new();
    let series = platform_series(&mut cache, Workload::E30, SeedPolicy::Single, |reports, proj, _| {
        mrate(total_alignments(reports), proj.total_seconds())
    });
    print_figure(
        "Figure 13: diBELLA Performance (M alignments/sec, full pipeline), E.coli 30x one-seed",
        &NODE_COUNTS,
        &series,
    );
}
