//! Figure 3 — Bloom filter stage cross-architecture performance,
//! millions of k-mers processed per second, E. coli 30× one-seed.
use dibella_bench::*;
use dibella_core::Stage;
use dibella_netmodel::mrate;
use dibella_overlap::SeedPolicy;

fn main() {
    let mut cache = ReportCache::new();
    let series = platform_series(&mut cache, Workload::E30, SeedPolicy::Single, |reports, proj, _| {
        mrate(total_kmers(reports), proj.stage(Stage::Bloom).stage_seconds())
    });
    print_figure(
        "Figure 3: Bloom Filter Performance (M k-mers/sec), E.coli 30x one-seed",
        &NODE_COUNTS,
        &series,
    );
}
