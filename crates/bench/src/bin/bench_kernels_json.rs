//! Kernel-throughput baseline writer: emits `BENCH_kernels.json`.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p dibella-bench --bin bench_kernels_json
//! ```
//!
//! (optionally pass an output path as the first argument). The file
//! records, for the scalar and lane-SIMD allocation-free workspace
//! kernels (side by side, same workload — their `cells_per_call` must
//! agree because the implementations are bit-identical) and the legacy
//! allocating twin:
//!
//! * **cells/s** — DP cells per second, the cost currency of the
//!   cross-architecture model, on a fixed 2 kb PacBio-like overlapping
//!   pair, plus the `simd_speedup` ratios the SIMD PR is accountable
//!   for;
//! * **allocs/call** — heap allocations per kernel call measured by a
//!   counting global allocator (0 for warmed workspace kernels; the
//!   legacy − workspace difference is the `allocs_eliminated_per_call`
//!   figure);
//! * **task/s** of a 4-rank end-to-end pipeline on the sampled E. coli
//!   30× workload — the number a perf regression in any stage moves;
//! * **spgemm rows/s** (schema `/3`) — the SpGEMM overlap engine's
//!   row-block accumulator variants (dense, hash, and the auto selector)
//!   packing the shared [`dibella_bench::spgemm_fixture`] table, with
//!   their byte-identity asserted before timing.
//!
//! Perf PRs diff this file to leave a measurable trajectory; the numbers
//! are machine-dependent, so compare ratios, not absolutes, across hosts.

use dibella_align::{
    banded_sw_with, extend_seed, extend_seed_with, AlignWorkspace, KernelImpl, Scoring, SeedHit,
};
use dibella_bench::spgemm_fixture;
use dibella_core::{run_pipeline, PipelineConfig};
use dibella_datagen::{ecoli_30x_sample_like, ErrorModel};
use dibella_io::ReadPartition;
use dibella_kcount::ReadKmerCsr;
use dibella_overlap::{pack_row_block, SpgemmAccumulator, TaskPlacement};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const PAIR_LEN: usize = 2_000;
const ERROR_RATE: f64 = 0.15;
const XDROP_X: i32 = 25;
const KERNEL_ITERS: u32 = 60;

const SPGEMM_READS: u32 = 256;
const SPGEMM_KMERS: usize = 2_000;
const SPGEMM_RANKS: usize = 4;
const SPGEMM_BLOCK: usize = 64;
const SPGEMM_ITERS: u32 = 40;

/// Pack the whole fixture CSR through one accumulator variant:
/// per-destination byte streams plus record/seed totals.
fn spgemm_pack_all(
    csr: &ReadKmerCsr,
    part: &ReadPartition,
    acc: SpgemmAccumulator,
) -> (Vec<Vec<u8>>, u64, u64) {
    let mut bufs = vec![Vec::new(); SPGEMM_RANKS];
    let (mut records, mut seeds) = (0u64, 0u64);
    for lo in (0..csr.n_rows()).step_by(SPGEMM_BLOCK) {
        let hi = (lo + SPGEMM_BLOCK).min(csr.n_rows());
        let out = pack_row_block(csr, lo..hi, part, TaskPlacement::Parity, None, SPGEMM_RANKS, acc);
        records += out.records;
        seeds += out.seeds;
        for (d, b) in bufs.iter_mut().zip(out.bufs) {
            d.extend_from_slice(&b);
        }
    }
    (bufs, records, seeds)
}

/// One measured kernel: run `iters` calls, return
/// `(cells/s, allocs per call, cells per call)`.
fn measure(iters: u32, cells_per_call: u64, mut call: impl FnMut()) -> (f64, f64, u64) {
    // Warm-up (untimed, uncounted).
    call();
    let allocs0 = ALLOCS.load(Ordering::Relaxed);
    let t0 = Instant::now();
    for _ in 0..iters {
        call();
    }
    let wall = t0.elapsed().as_secs_f64();
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs0;
    let cells_per_sec = (cells_per_call * iters as u64) as f64 / wall;
    (cells_per_sec, allocs as f64 / iters as f64, cells_per_call)
}

fn kernel_json(name: &str, (cells_per_sec, allocs_per_call, cells_per_call): (f64, f64, u64)) -> String {
    format!(
        "    \"{name}\": {{ \"cells_per_call\": {cells_per_call}, \"cells_per_sec\": {cells_per_sec:.0}, \"allocs_per_call\": {allocs_per_call:.2} }}"
    )
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_kernels.json".into());

    // ---- fixed PacBio-like overlapping pair --------------------------------
    let mut rng = StdRng::seed_from_u64(99);
    let template: Vec<u8> = (0..PAIR_LEN).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect();
    let model = ErrorModel::pacbio(ERROR_RATE);
    let a = model.apply(&template, &mut rng);
    let b = model.apply(&template, &mut rng);
    let sc = Scoring::bella();
    let seed = SeedHit { a_pos: 800, b_pos: 800, k: 17 };
    let mut ws = AlignWorkspace::new();

    let seed_scalar_out = extend_seed_with(&a, &b, seed, sc, XDROP_X, &mut ws, KernelImpl::Scalar);
    let seed_simd_out = extend_seed_with(&a, &b, seed, sc, XDROP_X, &mut ws, KernelImpl::Simd);
    assert_eq!(seed_scalar_out, seed_simd_out, "kernel implementations disagree on the bench pair");
    let seed_cells = seed_scalar_out.cells;
    let banded_cells = banded_sw_with(&a, &b, 0, 64, sc, &mut ws, KernelImpl::Scalar).cells;

    let seed_scalar = measure(KERNEL_ITERS, seed_cells, || {
        black_box(extend_seed_with(&a, &b, seed, sc, XDROP_X, &mut ws, KernelImpl::Scalar));
    });
    let seed_simd = measure(KERNEL_ITERS, seed_cells, || {
        black_box(extend_seed_with(&a, &b, seed, sc, XDROP_X, &mut ws, KernelImpl::Simd));
    });
    let seed_legacy = measure(KERNEL_ITERS, seed_cells, || {
        black_box(extend_seed(&a, &b, seed, sc, XDROP_X));
    });
    let banded_scalar = measure(KERNEL_ITERS, banded_cells, || {
        black_box(banded_sw_with(&a, &b, 0, 64, sc, &mut ws, KernelImpl::Scalar));
    });
    let banded_simd = measure(KERNEL_ITERS, banded_cells, || {
        black_box(banded_sw_with(&a, &b, 0, 64, sc, &mut ws, KernelImpl::Simd));
    });

    assert!(seed_scalar.0 > 0.0, "scalar kernel measured zero throughput");
    assert!(seed_simd.0 > 0.0, "SIMD kernel measured zero throughput");
    assert_eq!(seed_scalar.1, 0.0, "warmed workspace kernel must not allocate");
    assert_eq!(seed_simd.1, 0.0, "warmed SIMD kernel must not allocate");
    assert_eq!(banded_simd.1, 0.0, "warmed SIMD banded kernel must not allocate");

    // ---- SpGEMM row-block accumulators -------------------------------------
    let (table, part) = spgemm_fixture(SPGEMM_READS, SPGEMM_KMERS, SPGEMM_RANKS, 0x0D1B_E11A);
    let csr = ReadKmerCsr::from_table(&table);
    let (dense_bytes, sp_records, sp_seeds) = spgemm_pack_all(&csr, &part, SpgemmAccumulator::Dense);
    let (hash_bytes, ..) = spgemm_pack_all(&csr, &part, SpgemmAccumulator::Hash);
    assert_eq!(dense_bytes, hash_bytes, "accumulator variants disagree on the bench fixture");
    assert!(sp_records > 0, "fixture produced no pair records");
    let mut spgemm_rows_per_sec = [0f64; 3];
    let variants = [SpgemmAccumulator::Dense, SpgemmAccumulator::Hash, SpgemmAccumulator::Auto];
    for (i, acc) in variants.into_iter().enumerate() {
        black_box(spgemm_pack_all(&csr, &part, acc)); // warm-up, untimed
        let t0 = Instant::now();
        for _ in 0..SPGEMM_ITERS {
            black_box(spgemm_pack_all(&csr, &part, acc));
        }
        spgemm_rows_per_sec[i] =
            (csr.n_rows() as u64 * SPGEMM_ITERS as u64) as f64 / t0.elapsed().as_secs_f64();
    }

    // ---- 4-rank end-to-end pipeline ----------------------------------------
    let ds = ecoli_30x_sample_like(0.004, 42);
    let cfg = PipelineConfig { k: 17, max_seeds_per_pair: 4, ..Default::default() };
    let t0 = Instant::now();
    let res = run_pipeline(&ds.reads, 4, &cfg);
    let pipe_wall = t0.elapsed().as_secs_f64();
    let tasks: u64 = res.reports.iter().map(|r| r.align.tasks).sum();
    let dp_cells: u64 = res.reports.iter().map(|r| r.align.dp_cells).sum();
    let tasks_per_sec = tasks as f64 / pipe_wall;

    let json = format!(
        "{{\n  \"schema\": \"dibella-bench-kernels/3\",\n  \"pair_len\": {PAIR_LEN},\n  \"error_rate\": {ERROR_RATE},\n  \"xdrop_x\": {XDROP_X},\n  \"kernels\": {{\n{},\n{},\n{},\n{},\n{}\n  }},\n  \"simd_speedup\": {{ \"seed_xdrop\": {:.2}, \"banded\": {:.2} }},\n  \"allocs_eliminated_per_call\": {:.2},\n  \"workspace_scratch_bytes\": {},\n  \"spgemm\": {{ \"n_rows\": {}, \"nnz\": {}, \"records\": {sp_records}, \"seeds\": {sp_seeds}, \"seed_dup_factor\": {:.3}, \"rows_per_sec\": {{ \"dense\": {:.0}, \"hash\": {:.0}, \"auto\": {:.0} }} }},\n  \"pipeline_4rank\": {{ \"ranks\": 4, \"tasks\": {tasks}, \"dp_cells\": {dp_cells}, \"wall_s\": {pipe_wall:.3}, \"tasks_per_sec\": {tasks_per_sec:.1} }}\n}}\n",
        kernel_json("seed_xdrop_scalar", seed_scalar),
        kernel_json("seed_xdrop_simd", seed_simd),
        kernel_json("seed_xdrop_legacy", seed_legacy),
        kernel_json("banded_scalar", banded_scalar),
        kernel_json("banded_simd", banded_simd),
        seed_simd.0 / seed_scalar.0,
        banded_simd.0 / banded_scalar.0,
        seed_legacy.1 - seed_scalar.1,
        ws.scratch_bytes(),
        csr.n_rows(),
        csr.nnz(),
        sp_seeds as f64 / sp_records as f64,
        spgemm_rows_per_sec[0],
        spgemm_rows_per_sec[1],
        spgemm_rows_per_sec[2],
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    print!("{json}");
    eprintln!("wrote {out_path}");
}
