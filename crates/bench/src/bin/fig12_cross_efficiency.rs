//! Figure 12 — overall (solid) and exchange (dashed) efficiency per
//! platform, relative to one node of the same machine, E. coli 30×
//! one-seed.
use dibella_bench::*;
use dibella_core::project;
use dibella_netmodel::{strong_efficiency, NodeMapping, Platform, Series};
use dibella_overlap::SeedPolicy;

fn main() {
    let mut cache = ReportCache::new();
    let mut series = Vec::new();
    for platform in Platform::all() {
        let mut times = |nodes: usize| {
            let mapping = NodeMapping::for_platform(platform, nodes);
            let reports = cache.reports(Workload::E30, SeedPolicy::Single, mapping.ranks());
            let proj = project(platform, mapping, &reports);
            (proj.total_seconds(), proj.exchange_seconds())
        };
        let (t1, e1) = times(1);
        let mut overall = Vec::new();
        let mut exchange = Vec::new();
        for &n in &NODE_COUNTS {
            let (tn, en) = times(n);
            overall.push((n, strong_efficiency(t1, tn, n)));
            exchange.push((n, strong_efficiency(e1, en, n)));
        }
        series.push(Series::new(format!("{} overall", platform.name), overall));
        series.push(Series::new(format!("{} exchange", platform.name), exchange));
    }
    print_figure(
        "Figure 12: diBELLA overall and exchange efficiency, E.coli 30x one-seed",
        &NODE_COUNTS,
        &series,
    );
}
