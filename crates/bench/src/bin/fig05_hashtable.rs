//! Figure 5 — hash table construction stage cross-architecture
//! performance, millions of k-mers per second, E. coli 30× one-seed.
use dibella_bench::*;
use dibella_core::Stage;
use dibella_netmodel::mrate;
use dibella_overlap::SeedPolicy;

fn main() {
    let mut cache = ReportCache::new();
    let series = platform_series(&mut cache, Workload::E30, SeedPolicy::Single, |reports, proj, _| {
        mrate(total_kmers(reports), proj.stage(Stage::Hash).stage_seconds())
    });
    print_figure(
        "Figure 5: Hash Table Construction Performance (M k-mers/sec), E.coli 30x one-seed",
        &NODE_COUNTS,
        &series,
    );
}
