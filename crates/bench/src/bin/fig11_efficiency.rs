//! Figure 11 — overall pipeline efficiency on Cori across six workloads
//! (E. coli 30×/100× × {one-seed, d=1K, d=k}), relative to one node.
use dibella_bench::*;
use dibella_core::project;
use dibella_netmodel::{strong_efficiency, NodeMapping, Series, CORI};
use dibella_overlap::SeedPolicy;

fn main() {
    let mut cache = ReportCache::new();
    let mut series = Vec::new();
    for (w, wname) in [(Workload::E30, "E.coli 30x"), (Workload::E100, "E.coli 100x")] {
        for (pname, policy) in SeedPolicy::paper_settings(17) {
            let mut total = |nodes: usize| {
                let mapping = NodeMapping::for_platform(&CORI, nodes);
                let reports = cache.reports(w, policy, mapping.ranks());
                project(&CORI, mapping, &reports).total_seconds()
            };
            let t1 = total(1);
            let points: Vec<(usize, f64)> = NODE_COUNTS
                .iter()
                .map(|&n| (n, strong_efficiency(t1, total(n), n)))
                .collect();
            series.push(Series::new(format!("{wname}, {pname}"), points));
        }
    }
    print_figure(
        "Figure 11: Overall Efficiency on Cori (XC40), varying workloads",
        &NODE_COUNTS,
        &series,
    );
}
