//! Table 1 — evaluated platforms (architectural facts + model constants).
fn main() {
    println!("# Table 1: Evaluated platforms");
    print!("{}", dibella_netmodel::table1());
    println!();
    println!("# Calibration constants (model-side; see DESIGN.md §5)");
    println!("platform          core_perf  inj_bw(MB/s)  coll_alpha(us)  per_rank(us)  first_a2av(x)");
    for p in dibella_netmodel::Platform::all() {
        println!(
            "{:<17} {:>9} {:>13} {:>15} {:>13} {:>15}",
            p.name, p.core_perf, p.inj_bw_mb_s, p.coll_alpha_us, p.coll_per_rank_us, p.first_alltoallv_factor
        );
    }
}
