//! Figure 9 — runtime breakdown (% of pipeline time) by stage and
//! local/exchange split, Cori XC40, E. coli 30× one-seed.
use dibella_bench::*;
use dibella_core::{project, Stage};
use dibella_netmodel::{NodeMapping, CORI};
use dibella_overlap::SeedPolicy;

fn main() {
    breakdown(Workload::E30, SeedPolicy::Single,
        "Figure 9: Cori (XC40) Runtime Breakdown, E.coli 30x one-seed (% of total)");
}

pub(crate) fn breakdown(w: Workload, policy: SeedPolicy, title: &str) {
    let mut cache = ReportCache::new();
    println!("# {title}");
    println!("nodes\tBF\tBF-exch\tHT\tHT-exch\tOV\tOV-exch\tAL\tAL-exch");
    for &nodes in &NODE_COUNTS {
        let mapping = NodeMapping::for_platform(&CORI, nodes);
        let reports = cache.reports(w, policy, mapping.ranks());
        let proj = project(&CORI, mapping, &reports);
        let total = proj.total_seconds();
        let mut row = format!("{nodes}");
        for s in Stage::ALL {
            let c = proj.stage(s);
            row.push_str(&format!(
                "\t{:.1}\t{:.1}",
                100.0 * c.max_local() / total,
                100.0 * c.max_exchange() / total
            ));
        }
        println!("{row}");
    }
}
