//! Figure 10 — runtime breakdown (% of pipeline time), Cori XC40,
//! E. coli 100× with all seeds ≥ 1 kb apart (higher intensity).
use dibella_bench::*;
use dibella_core::{project, Stage};
use dibella_netmodel::{NodeMapping, CORI};
use dibella_overlap::SeedPolicy;

fn main() {
    let mut cache = ReportCache::new();
    println!("# Figure 10: Cori (XC40) Runtime Breakdown, E.coli 100x d=1K (% of total)");
    println!("nodes\tBF\tBF-exch\tHT\tHT-exch\tOV\tOV-exch\tAL\tAL-exch");
    for &nodes in &NODE_COUNTS {
        let mapping = NodeMapping::for_platform(&CORI, nodes);
        let reports = cache.reports(Workload::E100, SeedPolicy::MinDistance(1000), mapping.ranks());
        let proj = project(&CORI, mapping, &reports);
        let total = proj.total_seconds();
        let mut row = format!("{nodes}");
        for s in Stage::ALL {
            let c = proj.stage(s);
            row.push_str(&format!(
                "\t{:.1}\t{:.1}",
                100.0 * c.max_local() / total,
                100.0 * c.max_exchange() / total
            ));
        }
        println!("{row}");
    }
}
