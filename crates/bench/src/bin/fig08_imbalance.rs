//! Figure 8 — alignment stage load imbalance (max over average per-rank
//! stage time; 1.0 is perfect), E. coli 30× one-seed.
use dibella_bench::*;
use dibella_core::Stage;
use dibella_overlap::SeedPolicy;

fn main() {
    let mut cache = ReportCache::new();
    let series = platform_series(&mut cache, Workload::E30, SeedPolicy::Single, |_, proj, _| {
        proj.stage(Stage::Align).imbalance()
    });
    print_figure(
        "Figure 8: Alignment Stage Load Imbalance (perfect = 1.0), E.coli 30x one-seed",
        &NODE_COUNTS,
        &series,
    );
}
