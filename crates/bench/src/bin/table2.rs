//! Table 2 — single-node wall-clock comparison (I/O excluded): the
//! diBELLA pipeline versus the DALIGNER-style sort-merge baseline on
//! E. coli 30× (sample), 30× and 100×. Real measured seconds on this
//! host (absolute values are host-dependent; the paper's relation —
//! competitive, with DALIGNER somewhat ahead single-node — is the
//! reproduction target).
use dibella_baseline::{run_baseline, BaselineConfig};
use dibella_bench::*;
use dibella_core::run_pipeline;
use dibella_overlap::SeedPolicy;
use std::time::Instant;

fn main() {
    // The paper uses 64 threads on a Cori Haswell node; this host is
    // smaller, so choose a world size near its parallelism.
    let ranks: usize = std::env::var("DIBELLA_TABLE2_RANKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get() * 2).unwrap_or(4));
    println!("# Table 2: single node runtime (s), I/O excluded, {ranks} ranks / rayon threads");
    println!("workload\tdiBELLA(s)\tDALIGNER-style(s)\tdiBELLA pairs\tbaseline pairs");
    for w in [Workload::E30Sample, Workload::E30, Workload::E100] {
        let ds = dataset(w);
        let cfg = config_for(w, SeedPolicy::Single);
        let t = Instant::now();
        let res = run_pipeline(&ds.reads, ranks, &cfg);
        let t_pipeline = t.elapsed().as_secs_f64();

        let bcfg = BaselineConfig {
            k: cfg.k,
            max_multiplicity: cfg.multiplicity_threshold(),
            seed_min_distance: None,
            max_seeds_per_pair: cfg.max_seeds_per_pair,
            xdrop: cfg.xdrop,
            scoring: cfg.scoring,
            min_score: cfg.min_align_score,
        };
        let t = Instant::now();
        let base = run_baseline(&ds.reads, &bcfg);
        let t_base = t.elapsed().as_secs_f64();
        println!(
            "{}\t{:.2}\t{:.2}\t{}\t{}",
            w.name(),
            t_pipeline,
            t_base,
            res.n_pairs(),
            base.n_pairs
        );
    }
}
