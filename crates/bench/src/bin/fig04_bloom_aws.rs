//! Figure 4 — Bloom filter stage efficiency breakdown on AWS (packing,
//! exchanging, local processing, overall), strong scaling relative to one
//! node, E. coli 30× one-seed, 16 ranks per node.
use dibella_bench::*;
use dibella_core::{project, Stage};
use dibella_netmodel::{cache_penalty, op_costs, strong_efficiency, NodeMapping, Series, AWS};
use dibella_overlap::SeedPolicy;

/// (packing, local-processing, exchanging, overall) seconds at `nodes`.
fn components(cache: &mut ReportCache, nodes: usize) -> (f64, f64, f64, f64) {
    let mapping = NodeMapping::for_platform(&AWS, nodes);
    let reports = cache.reports(Workload::E30, SeedPolicy::Single, mapping.ranks());
    // Split the Bloom stage's local model into its packing (sender-side)
    // and processing (owner-side) parts, both cache-adjusted.
    let mut packing: f64 = 0.0;
    let mut processing: f64 = 0.0;
    for r in reports.iter() {
        let pen = cache_penalty(
            r.bloom_bytes as f64 + r.table_keys as f64 * 32.0,
            AWS.cache_per_core,
        );
        let pack = r.bloom.kmers_parsed as f64 * op_costs::NS_PER_KMER_PACK * 1e-9 / AWS.core_perf * pen;
        let proc = r.bloom.kmers_received as f64 * op_costs::NS_PER_KMER_BLOOM * 1e-9 / AWS.core_perf * pen;
        packing = packing.max(pack);
        processing = processing.max(proc);
    }
    let proj = project(&AWS, mapping, &reports);
    let exchanging = proj.stage(Stage::Bloom).max_exchange();
    let overall = proj.stage(Stage::Bloom).stage_seconds();
    (packing, processing, exchanging, overall)
}

fn main() {
    let mut cache = ReportCache::new();
    let base = components(&mut cache, 1);
    let mut pack_s = Vec::new();
    let mut proc_s = Vec::new();
    let mut exch_s = Vec::new();
    let mut over_s = Vec::new();
    for &nodes in &NODE_COUNTS {
        let (p, l, e, o) = components(&mut cache, nodes);
        pack_s.push((nodes, strong_efficiency(base.0, p, nodes)));
        proc_s.push((nodes, strong_efficiency(base.1, l, nodes)));
        exch_s.push((nodes, strong_efficiency(base.2, e, nodes)));
        over_s.push((nodes, strong_efficiency(base.3, o, nodes)));
    }
    let series = vec![
        Series::new("Packing Efficiency", pack_s),
        Series::new("Exchanging Efficiency", exch_s),
        Series::new("Local Processing Efficiency", proc_s),
        Series::new("Overall Efficiency", over_s),
    ];
    print_figure(
        "Figure 4: Bloom Filter Efficiency on AWS (relative to 1 node), E.coli 30x one-seed",
        &NODE_COUNTS,
        &series,
    );
}
