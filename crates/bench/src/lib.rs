//! # dibella-bench
//!
//! The harness that regenerates every table and figure of the diBELLA
//! paper (see DESIGN.md §6 for the experiment index). Each `src/bin/`
//! binary prints one figure's series as a tab-separated table; this
//! library holds the shared machinery: workload construction, pipeline
//! execution at one-rank-per-modeled-core world sizes, memoization, and
//! metric extraction.
//!
//! Scale knobs (environment): `DIBELLA_SCALE` (E. coli 30×-like genome
//! scale, default 0.01 ≈ 46 kb) and `DIBELLA_SCALE_100X` (100×-like,
//! default 0.006). `scale = 1.0` reproduces paper-sized inputs.
//! `DIBELLA_THREADS` sets the intra-rank thread count of all four stages
//! (default 1; `0` = all hardware threads; the deprecated
//! `DIBELLA_ALIGN_THREADS` spelling still works) — results are
//! bit-identical at every setting, only wall time changes.
//! `DIBELLA_TRANSPORT`
//! (`shared` | `sim:<platform>[:<ranks_per_node>]`) selects the
//! communication backend: under `sim:*` the pipeline executes on a
//! modeled interconnect — counters and alignments are unchanged, but the
//! recorded `exchange_wall` is the virtual platform's.
//! `DIBELLA_ROUND_MB` caps every stage's streaming-exchange rounds at
//! that many MiB per rank (unset = unbounded); alignments and byte
//! totals are bit-identical at every cap.
//! `DIBELLA_SIMD` (`scalar` | `auto`, default `auto`) selects the
//! stage-4 alignment-kernel implementation; it is read by the align
//! crate itself, so it reaches every harness run without plumbing.
//! Scalar and lane-SIMD kernels are bit-identical — only cells/s moves
//! (tracked side by side in `BENCH_kernels.json`).
//! `DIBELLA_SEED_MODE` (`reliable` | `minimizer`, default `reliable`)
//! selects the seed front end: the paper's two-pass reliable-k-mer
//! counter, or the single-pass minimizer sketch (fewer wire bytes, seeds
//! filtered by colinear chaining).
//! `DIBELLA_OVERLAP_ENGINE` (`pairs` | `spgemm`, default `pairs`)
//! selects the overlap-stage exchange engine (bit-identical alignments;
//! the SpGEMM engine dedups shared-seed records at the source), and
//! `DIBELLA_PAIR_BATCH` / `DIBELLA_SPGEMM_BLOCK` tune each engine's
//! executor batch unit.

#![warn(missing_docs)]

use dibella_comm::TransportKind;
use dibella_core::{run_pipeline, PipelineConfig, RankReport, SeedMode};
use dibella_datagen::{ecoli_100x_like, ecoli_30x_like, ecoli_30x_sample_like, SyntheticDataset};
use dibella_io::ReadPartition;
use dibella_kcount::{KcountConfig, KmerHashTable, Occurrence};
use dibella_kmer::{Kmer1, Strand};
use dibella_netmodel::{NodeMapping, Platform, Series};
use dibella_overlap::{OverlapConfig, OverlapEngine, SeedPolicy};
use std::collections::HashMap;
use std::sync::Arc;

/// Node counts of every strong-scaling figure (x-axis of Figs. 3–13).
pub const NODE_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// The paper's workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Workload {
    /// E. coli 30× (PacBio P5-C3-like).
    E30,
    /// E. coli 100× (PacBio P4-C2-like).
    E100,
    /// The Table-2 "sample" slice of E. coli 30×.
    E30Sample,
}

impl Workload {
    /// Figure label.
    pub fn name(self) -> &'static str {
        match self {
            Workload::E30 => "E.coli 30x",
            Workload::E100 => "E.coli 100x",
            Workload::E30Sample => "E.coli 30x (sample)",
        }
    }

    /// (depth, error-rate) the pipeline config assumes for this workload.
    pub fn shape(self) -> (f64, f64) {
        match self {
            Workload::E30 | Workload::E30Sample => (30.0, 0.15),
            Workload::E100 => (100.0, 0.14),
        }
    }
}

fn env_scale(var: &str, default: f64) -> f64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The `DIBELLA_THREADS` environment knob (with the deprecated
/// `DIBELLA_ALIGN_THREADS` as fallback): intra-rank threads for every
/// pipeline stage (see [`dibella_core::PipelineConfig::threads`]).
pub fn env_threads() -> usize {
    PipelineConfig::env_threads()
}

/// **Deprecated alias** for [`env_threads`] — the knob now governs all
/// four stages, not just alignment.
pub fn env_align_threads() -> usize {
    env_threads()
}

/// The `DIBELLA_SEED_MODE` environment knob: which seed front end the
/// pipeline runs (`reliable` | `minimizer`; see
/// [`dibella_core::PipelineConfig::seed_mode`]). Invalid values abort
/// loudly rather than silently benchmarking the wrong mode.
pub fn env_seed_mode() -> SeedMode {
    PipelineConfig::env_seed_mode()
}

/// The `DIBELLA_TRANSPORT` environment knob: which communication backend
/// pipeline runs execute on (see
/// [`dibella_core::PipelineConfig::transport`]). Invalid values abort
/// loudly rather than silently benchmarking the wrong backend.
pub fn env_transport() -> TransportKind {
    match std::env::var("DIBELLA_TRANSPORT") {
        Err(_) => TransportKind::default(),
        Ok(v) => v
            .parse()
            .unwrap_or_else(|e| panic!("DIBELLA_TRANSPORT: {e}")),
    }
}

/// The `DIBELLA_ROUND_MB` environment knob: the per-rank, per-round byte
/// cap of the streaming exchange engine, in MiB (fractions allowed; see
/// [`dibella_core::PipelineConfig::max_exchange_bytes_per_round`]).
/// Unset = unbounded (one monolithic exchange per stage). Invalid values
/// abort loudly rather than silently benchmarking the wrong rounds.
pub fn env_round_bytes() -> usize {
    match std::env::var("DIBELLA_ROUND_MB") {
        Err(_) => usize::MAX,
        Ok(v) => {
            let mb: f64 = v
                .parse()
                .ok()
                .filter(|&m| m > 0.0)
                .unwrap_or_else(|| panic!("DIBELLA_ROUND_MB: invalid value {v:?} (positive MiB)"));
            (mb * (1 << 20) as f64) as usize
        }
    }
}

/// The `DIBELLA_OVERLAP_ENGINE` environment knob: which overlap-stage
/// exchange engine pipeline runs use (`pairs` | `spgemm`; see
/// [`dibella_core::PipelineConfig::overlap_engine`]). Invalid values
/// abort loudly rather than silently benchmarking the wrong engine.
pub fn env_overlap_engine() -> OverlapEngine {
    PipelineConfig::env_overlap_engine()
}

/// The `DIBELLA_PAIR_BATCH` environment knob: pair indices per executor
/// batch in the `pairs` engine (default
/// [`OverlapConfig::DEFAULT_PAIR_BATCH`]).
pub fn env_pair_batch() -> usize {
    match std::env::var("DIBELLA_PAIR_BATCH") {
        Err(_) => OverlapConfig::DEFAULT_PAIR_BATCH,
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("DIBELLA_PAIR_BATCH must be a batch size, got {v:?}")),
    }
}

/// The `DIBELLA_SPGEMM_BLOCK` environment knob: rows per SpGEMM block in
/// the `spgemm` engine (default
/// [`OverlapConfig::DEFAULT_SPGEMM_BLOCK`]).
pub fn env_spgemm_block() -> usize {
    match std::env::var("DIBELLA_SPGEMM_BLOCK") {
        Err(_) => OverlapConfig::DEFAULT_SPGEMM_BLOCK,
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("DIBELLA_SPGEMM_BLOCK must be a row count, got {v:?}")),
    }
}

/// Deterministic synthetic k-mer table (plus an even read partition over
/// `ranks` owners) for the SpGEMM accumulator benches: `n_kmers` random
/// k-mers, each occurring 2–8 times across `n_reads` reads. The
/// `spgemm_rows_per_sec` Criterion group and the `bench_kernels_json`
/// baseline writer share this fixture so both measure the same workload.
pub fn spgemm_fixture(n_reads: u32, n_kmers: usize, ranks: usize, seed: u64) -> (KmerHashTable, ReadPartition) {
    const K: usize = 17;
    let kc = KcountConfig {
        k: K,
        max_multiplicity: 64,
        bloom_fp_rate: 0.05,
        expected_distinct: n_kmers.max(16) as u64,
        max_kmers_per_round: 1 << 20,
        max_exchange_bytes_per_round: usize::MAX,
        extract_batch: 16,
    };
    let mut state = seed | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut table = KmerHashTable::with_capacity(n_kmers);
    for _ in 0..n_kmers {
        let ascii: Vec<u8> = (0..K).map(|_| b"ACGT"[(rnd() % 4) as usize]).collect();
        let km = Kmer1::from_ascii(&ascii).expect("fixture k-mer");
        table.insert_key(km);
        for _ in 0..(2 + rnd() % 7) {
            let strand = if rnd() % 2 == 0 { Strand::Forward } else { Strand::Reverse };
            let occ = Occurrence { read: (rnd() % n_reads as u64) as u32, pos: (rnd() % 10_000) as u32, strand };
            // Random k-mers may collide (incl. reverse-complement hits);
            // the multiplicity cap then legitimately drops occurrences.
            let _ = table.record_occurrence(&km, occ, &kc);
        }
    }
    let per = (n_reads as usize).div_ceil(ranks);
    let counts: Vec<usize> = (0..ranks)
        .map(|r| per.min((n_reads as usize).saturating_sub(r * per)))
        .collect();
    (table, ReadPartition::from_counts(&counts))
}

/// Construct a workload's synthetic dataset at the bench scale.
pub fn dataset(w: Workload) -> SyntheticDataset {
    match w {
        Workload::E30 => ecoli_30x_like(env_scale("DIBELLA_SCALE", 0.01), 42),
        Workload::E100 => ecoli_100x_like(env_scale("DIBELLA_SCALE_100X", 0.006), 42),
        Workload::E30Sample => ecoli_30x_sample_like(env_scale("DIBELLA_SCALE", 0.01), 42),
    }
}

/// Pipeline configuration for a workload and seed policy. The per-pair
/// seed cap is 4 at bench scale: the scaled genome makes average true
/// overlaps long relative to reads, so uncapped `d = k` exploration would
/// inflate intensity beyond the paper's regime.
pub fn config_for(w: Workload, policy: SeedPolicy) -> PipelineConfig {
    let (depth, error_rate) = w.shape();
    PipelineConfig {
        k: 17,
        depth,
        error_rate,
        seed_policy: policy,
        max_seeds_per_pair: 4,
        threads: Some(env_threads()),
        transport: env_transport(),
        max_exchange_bytes_per_round: env_round_bytes(),
        seed_mode: env_seed_mode(),
        overlap_engine: env_overlap_engine(),
        pair_batch: env_pair_batch(),
        spgemm_block: env_spgemm_block(),
        ..Default::default()
    }
}

/// Memoizing pipeline runner: one full SPMD execution per distinct
/// `(workload, policy, ranks)`, shared by all platform projections.
#[derive(Default)]
pub struct ReportCache {
    datasets: HashMap<Workload, Arc<SyntheticDataset>>,
    runs: HashMap<(Workload, SeedPolicy, usize), Arc<Vec<RankReport>>>,
}

impl ReportCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The (cached) dataset for a workload.
    pub fn dataset(&mut self, w: Workload) -> Arc<SyntheticDataset> {
        Arc::clone(
            self.datasets
                .entry(w)
                .or_insert_with(|| Arc::new(dataset(w))),
        )
    }

    /// Per-rank reports of a pipeline run with `ranks` ranks.
    pub fn reports(&mut self, w: Workload, policy: SeedPolicy, ranks: usize) -> Arc<Vec<RankReport>> {
        if let Some(r) = self.runs.get(&(w, policy, ranks)) {
            return Arc::clone(r);
        }
        let ds = self.dataset(w);
        let cfg = config_for(w, policy);
        eprintln!("[bench] running {} {policy:?} P={ranks} ...", w.name());
        let res = run_pipeline(&ds.reads, ranks, &cfg);
        let arc = Arc::new(res.reports);
        self.runs.insert((w, policy, ranks), Arc::clone(&arc));
        arc
    }
}

/// Total k-mer instances processed (the rate unit of Figs. 3 and 5).
pub fn total_kmers(reports: &[RankReport]) -> u64 {
    reports.iter().map(|r| r.bloom.kmers_received).sum()
}

/// Total retained k-mers (rate unit of Fig. 6).
pub fn total_retained(reports: &[RankReport]) -> u64 {
    reports.iter().map(|r| r.filter.retained).sum()
}

/// Total alignments computed (rate unit of Figs. 7 and 13).
pub fn total_alignments(reports: &[RankReport]) -> u64 {
    reports.iter().map(|r| r.align.alignments).sum()
}

/// Build one figure series per platform: for each node count, run the
/// pipeline with `nodes × cores_per_node(platform)` ranks, project the
/// run onto the platform, and apply `metric` to (reports, projection,
/// nodes).
pub fn platform_series<F>(
    cache: &mut ReportCache,
    w: Workload,
    policy: SeedPolicy,
    mut metric: F,
) -> Vec<Series>
where
    F: FnMut(&[RankReport], &dibella_core::PipelineProjection, usize) -> f64,
{
    let mut out = Vec::new();
    for platform in Platform::all() {
        let mut points = Vec::new();
        for &nodes in &NODE_COUNTS {
            let mapping = NodeMapping::for_platform(platform, nodes);
            let reports = cache.reports(w, policy, mapping.ranks());
            let proj = dibella_core::project(platform, mapping, &reports);
            points.push((nodes, metric(&reports, &proj, nodes)));
        }
        out.push(Series::new(platform.name, points));
    }
    out
}

/// Print a figure header followed by the rendered series table.
pub fn print_figure(title: &str, node_counts: &[usize], series: &[Series]) {
    println!("# {title}");
    print!("{}", dibella_netmodel::render_table(node_counts, series));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that mutate process-global environment variables
    /// (`DIBELLA_SCALE`, `DIBELLA_TRANSPORT`): the test harness runs on
    /// parallel threads, and a sibling test reading the env mid-mutation
    /// would nondeterministically pick up the wrong knob.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn workload_shapes() {
        assert_eq!(Workload::E30.shape(), (30.0, 0.15));
        assert_eq!(Workload::E100.shape(), (100.0, 0.14));
        assert!(Workload::E30.name().contains("30x"));
    }

    #[test]
    fn config_policy_propagates() {
        let cfg = config_for(Workload::E100, SeedPolicy::MinDistance(1000));
        assert_eq!(cfg.depth, 100.0);
        assert_eq!(cfg.seed_policy, SeedPolicy::MinDistance(1000));
        assert_eq!(cfg.k, 17);
    }

    #[test]
    fn transport_env_knob() {
        use dibella_comm::SimNetConfig;
        use dibella_netmodel::PlatformId;
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("DIBELLA_TRANSPORT", "sim:edison:4");
        let kind = env_transport();
        assert_eq!(
            kind,
            TransportKind::SimNet(SimNetConfig {
                platform: PlatformId::EdisonXC30,
                ranks_per_node: 4
            })
        );
        assert_eq!(config_for(Workload::E30, SeedPolicy::Single).transport, kind);
        std::env::remove_var("DIBELLA_TRANSPORT");
        assert_eq!(env_transport(), TransportKind::SharedMem);
    }

    #[test]
    fn round_mb_env_knob() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("DIBELLA_ROUND_MB", "2");
        assert_eq!(env_round_bytes(), 2 << 20);
        assert_eq!(
            config_for(Workload::E30, SeedPolicy::Single).max_exchange_bytes_per_round,
            2 << 20
        );
        // Fractional MiB are allowed (tiny caps for the multi-round path).
        std::env::set_var("DIBELLA_ROUND_MB", "0.5");
        assert_eq!(env_round_bytes(), 1 << 19);
        std::env::remove_var("DIBELLA_ROUND_MB");
        assert_eq!(env_round_bytes(), usize::MAX);
    }

    #[test]
    fn threads_env_knob() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("DIBELLA_THREADS", "3");
        std::env::set_var("DIBELLA_ALIGN_THREADS", "9");
        assert_eq!(env_threads(), 3, "DIBELLA_THREADS wins");
        assert_eq!(
            config_for(Workload::E30, SeedPolicy::Single).effective_threads(),
            3
        );
        std::env::remove_var("DIBELLA_THREADS");
        assert_eq!(env_threads(), 9, "deprecated spelling still honored");
        std::env::remove_var("DIBELLA_ALIGN_THREADS");
        assert_eq!(env_threads(), 1);
    }

    #[test]
    fn seed_mode_env_knob() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("DIBELLA_SEED_MODE", "minimizer");
        assert_eq!(env_seed_mode(), SeedMode::Minimizer);
        assert_eq!(
            config_for(Workload::E30, SeedPolicy::Single).seed_mode,
            SeedMode::Minimizer
        );
        std::env::remove_var("DIBELLA_SEED_MODE");
        assert_eq!(env_seed_mode(), SeedMode::Reliable);
    }

    #[test]
    fn overlap_engine_env_knobs() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("DIBELLA_OVERLAP_ENGINE", "spgemm");
        std::env::set_var("DIBELLA_PAIR_BATCH", "33");
        std::env::set_var("DIBELLA_SPGEMM_BLOCK", "9");
        assert_eq!(env_overlap_engine(), OverlapEngine::Spgemm);
        let cfg = config_for(Workload::E30, SeedPolicy::Single);
        assert_eq!(cfg.overlap_engine, OverlapEngine::Spgemm);
        assert_eq!(cfg.pair_batch, 33);
        assert_eq!(cfg.spgemm_block, 9);
        std::env::remove_var("DIBELLA_OVERLAP_ENGINE");
        std::env::remove_var("DIBELLA_PAIR_BATCH");
        std::env::remove_var("DIBELLA_SPGEMM_BLOCK");
        assert_eq!(env_overlap_engine(), OverlapEngine::Pairs);
        assert_eq!(env_pair_batch(), OverlapConfig::DEFAULT_PAIR_BATCH);
        assert_eq!(env_spgemm_block(), OverlapConfig::DEFAULT_SPGEMM_BLOCK);
    }

    #[test]
    fn cache_memoizes() {
        // Tiny world over the sample workload: the second call must not
        // re-run (identity of the Arc proves it).
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("DIBELLA_SCALE", "0.002");
        let mut cache = ReportCache::new();
        let a = cache.reports(Workload::E30Sample, SeedPolicy::Single, 2);
        let b = cache.reports(Workload::E30Sample, SeedPolicy::Single, 2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 2);
    }
}
