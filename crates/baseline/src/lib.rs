//! # dibella-baseline
//!
//! The single-node comparator of Table 2: a DALIGNER-style overlapper
//! (k-mer tuple sort + merge-scan pair discovery + repeat masking) sharing
//! diBELLA's x-drop alignment kernel, parallelized with rayon. See
//! DESIGN.md §2 for why this is the faithful stand-in for the
//! closed-world DALIGNER binary.

#![warn(missing_docs)]

pub mod daligner;

pub use daligner::{
    run_baseline, BaselineAlignment, BaselineConfig, BaselineResult, BaselineTimings,
};
