//! A DALIGNER-style single-node overlapper (paper §11, Table 2).
//!
//! "DALIGNER computes a k-mer sorting based on the position within a
//! sequence and then uses a merge-sort to detect common k-mers between
//! sequences" (Myers 2014). This baseline reproduces that strategy on one
//! node: build the full `(k-mer, read, position, strand)` tuple list, sort
//! it by k-mer (rayon parallel sort — DALIGNER's radix sort plays the same
//! role), scan runs of equal k-mers to emit candidate pairs (masking
//! high-frequency k-mers, as DALIGNER does), then run the same x-drop
//! kernel diBELLA uses.
//!
//! Sharing the alignment kernel and filtering thresholds with the
//! pipeline makes the Table 2 comparison about what it was about in the
//! paper: *hash-and-exchange versus sort-and-merge overlap discovery*.

use dibella_align::{extend_seed, Scoring, SeedHit};
use dibella_io::{ReadId, ReadSet};
use dibella_kmer::base::reverse_complement_ascii;
use dibella_kmer::{Kmer1, KmerIter, Strand};
use rayon::prelude::*;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Baseline configuration (mirrors the pipeline's knobs).
#[derive(Clone, Copy, Debug)]
pub struct BaselineConfig {
    /// k-mer length.
    pub k: usize,
    /// High-frequency mask: k-mers occurring more often are skipped.
    pub max_multiplicity: u32,
    /// Minimum distance between explored seeds of one pair (`None` = one
    /// seed per pair).
    pub seed_min_distance: Option<u32>,
    /// Cap on seeds per pair.
    pub max_seeds_per_pair: usize,
    /// x-drop parameter.
    pub xdrop: i32,
    /// Scoring scheme.
    pub scoring: Scoring,
    /// Output score threshold.
    pub min_score: i32,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            k: 17,
            max_multiplicity: 8,
            seed_min_distance: None,
            max_seeds_per_pair: 16,
            xdrop: 25,
            scoring: Scoring::bella(),
            min_score: 0,
        }
    }
}

/// One baseline alignment (same fields as the pipeline's record).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineAlignment {
    /// Smaller read ID.
    pub a: ReadId,
    /// Larger read ID.
    pub b: ReadId,
    /// `b` reverse-complemented?
    pub reverse: bool,
    /// Alignment score.
    pub score: i32,
    /// Range on `a`.
    pub a_start: u32,
    /// End on `a`.
    pub a_end: u32,
    /// Range on `b` (oriented frame).
    pub b_start: u32,
    /// End on `b` (oriented frame).
    pub b_end: u32,
    /// DP cells spent.
    pub cells: u64,
}

/// Phase timings (I/O excluded, as in Table 2).
#[derive(Clone, Copy, Debug, Default)]
pub struct BaselineTimings {
    /// Tuple construction.
    pub tuples: Duration,
    /// Parallel sort.
    pub sort: Duration,
    /// Run scan + pair merging.
    pub merge: Duration,
    /// Pairwise alignment.
    pub align: Duration,
}

impl BaselineTimings {
    /// Total runtime.
    pub fn total(&self) -> Duration {
        self.tuples + self.sort + self.merge + self.align
    }
}

/// Result of a baseline run.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// Alignments, deterministically sorted.
    pub alignments: Vec<BaselineAlignment>,
    /// Phase timings.
    pub timings: BaselineTimings,
    /// Tuples generated (the sort's input size).
    pub n_tuples: u64,
    /// Candidate pairs after masking.
    pub n_pairs: u64,
}

/// Sort-tuple: k-mer first so the parallel sort groups equal k-mers.
type Tuple = (Kmer1, ReadId, u32, Strand);

/// Per-pair seed list: `(a_pos, b_pos, reverse)` records.
type SeedList = Vec<(u32, u32, bool)>;

/// Run the DALIGNER-style baseline on a full read set.
pub fn run_baseline(reads: &ReadSet, cfg: &BaselineConfig) -> BaselineResult {
    // ---- phase 1: tuples ---------------------------------------------------
    let t0 = Instant::now();
    let mut tuples: Vec<Tuple> = reads
        .reads()
        .par_iter()
        .flat_map_iter(|r| {
            KmerIter::<1>::new(&r.seq, cfg.k).map(move |h| (h.kmer, r.id, h.pos, h.strand))
        })
        .collect();
    let n_tuples = tuples.len() as u64;
    let t_tuples = t0.elapsed();

    // ---- phase 2: parallel sort by k-mer ------------------------------------
    let t0 = Instant::now();
    tuples.par_sort_unstable();
    let t_sort = t0.elapsed();

    // ---- phase 3: merge runs into per-pair seed lists ------------------------
    let t0 = Instant::now();
    let mut pairs: HashMap<(ReadId, ReadId), SeedList> = HashMap::new();
    let mut at = 0usize;
    while at < tuples.len() {
        let kmer = tuples[at].0;
        let mut end = at + 1;
        while end < tuples.len() && tuples[end].0 == kmer {
            end += 1;
        }
        let run = &tuples[at..end];
        at = end;
        // Mask singletons and high-frequency k-mers — DALIGNER's
        // repeat masking, with diBELLA's threshold for comparability.
        if run.len() < 2 || run.len() > cfg.max_multiplicity as usize {
            continue;
        }
        for i in 0..run.len() {
            for j in (i + 1)..run.len() {
                let (_, ra, pa, sa) = run[i];
                let (_, rb, pb, sb) = run[j];
                if ra == rb {
                    continue;
                }
                let (key, a_pos, b_pos) = if ra < rb {
                    ((ra, rb), pa, pb)
                } else {
                    ((rb, ra), pb, pa)
                };
                pairs.entry(key).or_default().push((a_pos, b_pos, sa != sb));
            }
        }
    }
    // Deterministic task list with the same seed policy semantics as the
    // pipeline's `SeedPolicy`.
    let mut tasks: Vec<((ReadId, ReadId), SeedList)> = pairs.into_iter().collect();
    tasks.par_sort_unstable_by_key(|(key, _)| *key);
    for (_, seeds) in tasks.iter_mut() {
        seeds.sort_unstable();
        seeds.dedup();
        match cfg.seed_min_distance {
            None => seeds.truncate(1),
            Some(d) => {
                let mut kept = 0usize;
                let mut last: Option<(u32, bool)> = None;
                let cap = cfg.max_seeds_per_pair;
                seeds.retain(|&(a_pos, _, rev)| {
                    if kept >= cap {
                        return false;
                    }
                    let ok = match last {
                        Some((la, lrev)) if lrev == rev => a_pos >= la.saturating_add(d),
                        _ => true,
                    };
                    if ok {
                        kept += 1;
                        last = Some((a_pos, rev));
                    }
                    ok
                });
            }
        }
    }
    let n_pairs = tasks.len() as u64;
    let t_merge = t0.elapsed();

    // ---- phase 4: parallel alignment ----------------------------------------
    let t0 = Instant::now();
    let all_reads = reads.reads();
    let mut alignments: Vec<BaselineAlignment> = tasks
        .par_iter()
        .flat_map_iter(|((a, b), seeds)| {
            let a_seq = &all_reads[*a as usize].seq;
            let b_seq = &all_reads[*b as usize].seq;
            let mut b_rc: Option<Vec<u8>> = None;
            let mut out = Vec::with_capacity(seeds.len());
            for &(a_pos, b_pos, reverse) in seeds {
                let (b_oriented, bp): (&[u8], usize) = if reverse {
                    let rc = b_rc.get_or_insert_with(|| reverse_complement_ascii(b_seq));
                    (rc.as_slice(), b_seq.len() - cfg.k - b_pos as usize)
                } else {
                    (b_seq.as_slice(), b_pos as usize)
                };
                let al = extend_seed(
                    a_seq,
                    b_oriented,
                    SeedHit { a_pos: a_pos as usize, b_pos: bp, k: cfg.k },
                    cfg.scoring,
                    cfg.xdrop,
                );
                if al.score >= cfg.min_score {
                    out.push(BaselineAlignment {
                        a: *a,
                        b: *b,
                        reverse,
                        score: al.score,
                        a_start: al.a_start as u32,
                        a_end: al.a_end as u32,
                        b_start: al.b_start as u32,
                        b_end: al.b_end as u32,
                        cells: al.cells,
                    });
                }
            }
            out
        })
        .collect();
    alignments.par_sort_unstable();
    let t_align = t0.elapsed();

    BaselineResult {
        alignments,
        timings: BaselineTimings {
            tuples: t_tuples,
            sort: t_sort,
            merge: t_merge,
            align: t_align,
        },
        n_tuples,
        n_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibella_io::Read;

    fn dataset(n: usize, read_len: usize, stride: usize, seed: u64) -> ReadSet {
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let genome: Vec<u8> = (0..(n * stride + read_len))
            .map(|_| b"ACGT"[(rnd() % 4) as usize])
            .collect();
        (0..n as u32)
            .map(|i| Read::new(i, format!("r{i}"), genome[i as usize * stride..][..read_len].to_vec()))
            .collect()
    }

    #[test]
    fn finds_neighbour_overlaps() {
        let reads = dataset(8, 150, 50, 21);
        let cfg = BaselineConfig {
            k: 11,
            max_multiplicity: 24,
            seed_min_distance: Some(11),
            ..Default::default()
        };
        let res = run_baseline(&reads, &cfg);
        for i in 0..7u32 {
            let rec = res
                .alignments
                .iter()
                .find(|r| (r.a, r.b) == (i, i + 1))
                .unwrap_or_else(|| panic!("missing ({i},{})", i + 1));
            assert!(rec.score >= 80, "score {}", rec.score);
        }
        assert!(res.n_tuples > 0);
        assert!(res.n_pairs >= 7);
    }

    #[test]
    fn deterministic() {
        let reads = dataset(10, 120, 40, 9);
        let cfg = BaselineConfig { k: 11, max_multiplicity: 24, ..Default::default() };
        let a = run_baseline(&reads, &cfg);
        let b = run_baseline(&reads, &cfg);
        assert_eq!(a.alignments, b.alignments);
    }

    #[test]
    fn repeat_masking() {
        // All reads share one core → its k-mers exceed the mask and the
        // core must not produce pairs on its own.
        let core = b"ACGTTGCAGGTATTTACG";
        // One continuous RNG stream: per-read re-seeding with nearby seeds
        // makes xorshift flanks correlated, which would fake overlaps.
        let mut state = 0xC0FF_EE00_1234_5678u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let reads: ReadSet = (0..20u32)
            .map(|i| {
                let mut seq: Vec<u8> = (0..40).map(|_| b"ACGT"[(rnd() % 4) as usize]).collect();
                seq.extend_from_slice(core);
                seq.extend((0..40).map(|_| b"ACGT"[(rnd() % 4) as usize]));
                Read::new(i, format!("r{i}"), seq)
            })
            .collect();
        let masked = run_baseline(
            &reads,
            &BaselineConfig { k: 11, max_multiplicity: 5, ..Default::default() },
        );
        let unmasked = run_baseline(
            &reads,
            &BaselineConfig { k: 11, max_multiplicity: 64, ..Default::default() },
        );
        // Unmasked, the shared core links every pair (~190). Masked, the
        // core's own k-mers (count 20 > 5) are gone; what survives are the
        // low-count k-mers straddling the core boundary (flank base + core
        // prefix, shared by ~¼ of reads each) — genuine behaviour of
        // count-threshold masking that diBELLA shares.
        assert!(unmasked.n_pairs >= 150, "unmasked {}", unmasked.n_pairs);
        assert!(
            masked.n_pairs < unmasked.n_pairs / 2,
            "masking ineffective: {} vs {}",
            masked.n_pairs,
            unmasked.n_pairs
        );
        // And every surviving alignment is anchored at the boundary, so it
        // cannot span more than core + one flank's worth of matches.
        for al in &masked.alignments {
            assert!(al.score <= core.len() as i32 + 22, "score {}", al.score);
        }
    }

    #[test]
    fn timings_populated() {
        let reads = dataset(6, 100, 30, 4);
        let res = run_baseline(&reads, &BaselineConfig { k: 9, max_multiplicity: 24, ..Default::default() });
        assert!(res.timings.total() > Duration::ZERO);
    }
}
