//! DNA base (nucleotide) encoding.
//!
//! diBELLA's four-letter alphabet `{A, C, G, T}` is stored with 2 bits per
//! base (paper §3). The encoding is chosen so that complementation is
//! `3 - code` (equivalently `code ^ 3`), which lets reverse complements be
//! computed with pure bit arithmetic in [`crate::Kmer::reverse_complement`].

/// 2-bit code for `A`.
pub const A: u8 = 0;
/// 2-bit code for `C`.
pub const C: u8 = 1;
/// 2-bit code for `G`.
pub const G: u8 = 2;
/// 2-bit code for `T`.
pub const T: u8 = 3;

/// Encode an ASCII nucleotide to its 2-bit code.
///
/// Accepts upper- and lower-case `ACGT`. Every other byte (including `N`)
/// returns `None`; callers such as the k-mer extractor treat those positions
/// as window breaks, exactly as ambiguous bases are skipped by k-mer based
/// overlappers.
#[inline]
pub fn encode(b: u8) -> Option<u8> {
    match b {
        b'A' | b'a' => Some(A),
        b'C' | b'c' => Some(C),
        b'G' | b'g' => Some(G),
        b'T' | b't' => Some(T),
        _ => None,
    }
}

/// Decode a 2-bit code back to its upper-case ASCII nucleotide.
///
/// # Panics
/// Panics in debug builds if `code > 3`; in release the low two bits are
/// used.
#[inline]
pub fn decode(code: u8) -> u8 {
    debug_assert!(code <= 3, "invalid 2-bit base code {code}");
    b"ACGT"[(code & 3) as usize]
}

/// Complement of a 2-bit code (`A`↔`T`, `C`↔`G`).
#[inline]
pub fn complement(code: u8) -> u8 {
    code ^ 3
}

/// Complement of an ASCII nucleotide, preserving case for `ACGT` input.
///
/// Non-nucleotide bytes are returned unchanged so that sequences containing
/// `N` survive a round trip.
#[inline]
pub fn complement_ascii(b: u8) -> u8 {
    match b {
        b'A' => b'T',
        b'C' => b'G',
        b'G' => b'C',
        b'T' => b'A',
        b'a' => b't',
        b'c' => b'g',
        b'g' => b'c',
        b't' => b'a',
        other => other,
    }
}

/// Reverse-complement an ASCII sequence into a new vector.
pub fn reverse_complement_ascii(seq: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    reverse_complement_ascii_into(seq, &mut out);
    out
}

/// Reverse-complement an ASCII sequence into a caller-owned buffer
/// (cleared first). Allocation-free once `out` has capacity for the
/// longest sequence seen — the hot-path form the alignment stage uses to
/// orient reads without a per-task allocation.
pub fn reverse_complement_ascii_into(seq: &[u8], out: &mut Vec<u8>) {
    out.clear();
    out.extend(seq.iter().rev().map(|&b| complement_ascii(b)));
}

/// Returns `true` if every byte of `seq` is an unambiguous nucleotide.
pub fn is_clean(seq: &[u8]) -> bool {
    seq.iter().all(|&b| encode(b).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for (i, &b) in b"ACGT".iter().enumerate() {
            assert_eq!(encode(b), Some(i as u8));
            assert_eq!(decode(i as u8), b);
        }
        for (i, &b) in b"acgt".iter().enumerate() {
            assert_eq!(encode(b), Some(i as u8));
        }
    }

    #[test]
    fn ambiguous_bases_are_rejected() {
        for b in [b'N', b'n', b'X', b'-', b'U', b'\n', 0u8] {
            assert_eq!(encode(b), None);
        }
        assert!(!is_clean(b"ACGTN"));
        assert!(is_clean(b"ACGTacgt"));
    }

    #[test]
    fn complement_is_involution() {
        for code in 0..4u8 {
            assert_eq!(complement(complement(code)), code);
        }
        assert_eq!(complement(A), T);
        assert_eq!(complement(C), G);
    }

    #[test]
    fn reverse_complement_ascii_matches_manual() {
        assert_eq!(reverse_complement_ascii(b"ACGT"), b"ACGT".to_vec());
        assert_eq!(reverse_complement_ascii(b"AACGTT"), b"AACGTT".to_vec());
        assert_eq!(reverse_complement_ascii(b"AAAC"), b"GTTT".to_vec());
        assert_eq!(reverse_complement_ascii(b"ANT"), b"ANT".to_vec());
    }
}
