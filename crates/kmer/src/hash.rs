//! Hash functions for k-mers and generic 64-bit mixing.
//!
//! Two requirements drive these choices (paper §4, §6):
//!
//! 1. The k-mer → owner-rank map must spread k-mers uniformly so each rank
//!    owns roughly the same number of distinct k-mers.
//! 2. The Bloom filter needs several *independent* hash functions per key.
//!
//! We use the splitmix64 finalizer — an invertible avalanche mixer with
//! measured near-ideal bias — folded over the packed words, and derive the
//! Bloom filter's family via the standard Kirsch–Mitzenmacher double
//! hashing `h_i(x) = h1(x) + i·h2(x)`.

/// splitmix64 finalizer: full-avalanche 64-bit mixer (invertible).
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash a packed k-mer (its words plus its length) to 64 bits.
///
/// Folding each word through [`mix64`] with a distinct running state keeps
/// multi-word k-mers well mixed; including `k` separates k-mers of
/// different lengths that happen to share packed bits.
#[inline]
pub fn kmer_hash_words(words: &[u64], k: u64) -> u64 {
    let mut h = mix64(k ^ 0xD6E8_FEB8_6659_FD93);
    for &w in words {
        h = mix64(h ^ w);
    }
    h
}

/// The `i`-th member of a double-hashing family seeded by `hash`.
///
/// `h1` is the hash itself; `h2` is a re-mix forced odd so it is coprime
/// with power-of-two table sizes.
#[inline]
pub fn double_hash(hash: u64, i: u64) -> u64 {
    let h2 = mix64(hash ^ 0xA076_1D64_78BD_642F) | 1;
    hash.wrapping_add(i.wrapping_mul(h2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix64_is_injective_on_sample() {
        let mut seen = HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(mix64(x)), "collision at {x}");
        }
    }

    #[test]
    fn mix64_avalanche_rough_check() {
        // Flipping one input bit should flip ~32 of 64 output bits.
        let mut total = 0u32;
        let trials = 640;
        for x in 0..10u64 {
            for bit in 0..64 {
                let d = mix64(x) ^ mix64(x ^ (1 << bit));
                total += d.count_ones();
            }
        }
        let avg = total as f64 / trials as f64;
        assert!((24.0..40.0).contains(&avg), "poor avalanche: {avg}");
    }

    #[test]
    fn kmer_hash_depends_on_k() {
        assert_ne!(kmer_hash_words(&[0], 17), kmer_hash_words(&[0], 19));
    }

    #[test]
    fn double_hash_family_differs() {
        let h = kmer_hash_words(&[0xDEAD_BEEF], 17);
        let vals: HashSet<u64> = (0..8).map(|i| double_hash(h, i)).collect();
        assert_eq!(vals.len(), 8);
    }

    #[test]
    fn owner_distribution_is_roughly_uniform() {
        // Hash 40k consecutive "k-mers" onto 16 ranks; each bucket should
        // hold 2500 ± 20%.
        let p = 16usize;
        let n = 40_000u64;
        let mut counts = vec![0usize; p];
        for x in 0..n {
            counts[(kmer_hash_words(&[x], 17) % p as u64) as usize] += 1;
        }
        let expect = n as f64 / p as f64;
        for (r, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 0.2 * expect,
                "rank {r} got {c}, expected ~{expect}"
            );
        }
    }
}
