//! BELLA's statistical parameter selection (paper §2–§3, and \[14\]).
//!
//! diBELLA inherits BELLA's data-driven choices:
//!
//! * the k-mer length `k` is picked so that a pair of truly-overlapping
//!   reads shares at least one *correct* k-mer with high probability, while
//!   keeping k long enough to suppress repeats;
//! * the high-occurrence threshold `m` cuts k-mers whose multiplicity is
//!   implausibly large for a unique genomic locus given depth `d` and error
//!   rate `e`;
//! * dataset-size identities `N = G·d` (Eq. 1) and `#k-mers ≈ G·d` (Eq. 2)
//!   size the distributed Bloom filter without a cardinality pass.
//!
//! All probabilities use BELLA's independence approximations, which the
//! paper's own analysis shows are accurate for PacBio-style error rates.

/// Probability that a single k-mer drawn from a read with per-base error
/// rate `e` is error-free: `(1 − e)^k`.
#[inline]
pub fn prob_correct_kmer(e: f64, k: usize) -> f64 {
    assert!((0.0..1.0).contains(&e), "error rate must be in [0,1)");
    (1.0 - e).powi(k as i32)
}

/// Probability that two reads overlapping over `ov` bases share at least
/// one k-mer that is correct in *both* reads.
///
/// Each of the `ov − k + 1` positions is correct in both reads with
/// probability `(1 − e)^{2k}`; BELLA treats positions as independent.
pub fn prob_shared_correct_kmer(ov: usize, k: usize, e: f64) -> f64 {
    if ov < k {
        return 0.0;
    }
    let positions = (ov - k + 1) as f64;
    let p_both = (1.0 - e).powi(2 * k as i32);
    1.0 - (1.0 - p_both).powf(positions)
}

/// Select the k-mer length: the largest `k ≤ max_k` such that two reads
/// overlapping by `min_overlap` bases still share a correct k-mer with
/// probability ≥ `target`.
///
/// Larger k suppresses repeated k-mers (fewer spurious pairs), so we take
/// the largest k that meets the detection target — this reproduces BELLA's
/// choice of 17 for PacBio data (`e ≈ 0.15`, 2 kb overlaps, 90 % target).
///
/// Returns `None` when even `k = min_k` misses the target.
pub fn select_k(e: f64, min_overlap: usize, target: f64, min_k: usize, max_k: usize) -> Option<usize> {
    assert!(min_k >= 1 && min_k <= max_k);
    (min_k..=max_k)
        .rev()
        .find(|&k| prob_shared_correct_kmer(min_overlap, k, e) >= target)
}

/// Poisson probability mass function (numerically stable via logs).
pub fn poisson_pmf(lambda: f64, x: u64) -> f64 {
    assert!(lambda > 0.0);
    let xf = x as f64;
    let ln_p = xf * lambda.ln() - lambda - ln_factorial(x);
    ln_p.exp()
}

/// Poisson cumulative distribution function `P[X ≤ x]`.
pub fn poisson_cdf(lambda: f64, x: u64) -> f64 {
    (0..=x).map(|i| poisson_pmf(lambda, i)).sum::<f64>().min(1.0)
}

/// `ln(x!)` via Stirling's series with exact values for small `x`.
fn ln_factorial(x: u64) -> f64 {
    #[allow(clippy::approx_constant)] // table entry happens to be ln 2
    const TABLE: [f64; 11] = [
        0.0,
        0.0,
        0.693_147_180_559_945_3,
        1.791_759_469_228_055,
        3.178_053_830_347_946,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_47,
        15.104_412_573_075_516,
    ];
    if (x as usize) < TABLE.len() {
        return TABLE[x as usize];
    }
    let xf = x as f64;
    // Stirling: ln x! ≈ x ln x − x + ½ ln(2πx) + 1/(12x) − 1/(360x³)
    xf * xf.ln() - xf + 0.5 * (2.0 * std::f64::consts::PI * xf).ln() + 1.0 / (12.0 * xf)
        - 1.0 / (360.0 * xf * xf * xf)
}

/// The high-occurrence threshold `m` (paper §2): the multiplicity of a
/// correct k-mer from a *unique* genomic locus is approximately
/// `Poisson(λ)` with `λ = d·(1 − e)^k` (each of the ~`d` covering reads
/// contributes an error-free copy with probability `(1 − e)^k`).
///
/// We return the smallest `m` with `P[X ≤ m] ≥ 1 − epsilon`; k-mers seen
/// more often than that are, with confidence `1 − epsilon`, repeats — and
/// are discarded to avoid the `m²` pair blow-up of Eq. (3).
pub fn reliable_max_multiplicity(d: f64, e: f64, k: usize, epsilon: f64) -> u32 {
    assert!(d > 0.0, "depth must be positive");
    assert!((0.0..1.0).contains(&epsilon) && epsilon > 0.0);
    let lambda = d * prob_correct_kmer(e, k);
    let mut cdf = 0.0;
    let mut m = 0u64;
    // λ for real datasets is ≤ depth, so this loop is short; cap defensively.
    let cap = (lambda * 20.0).max(64.0) as u64;
    loop {
        cdf += poisson_pmf(lambda, m);
        if cdf >= 1.0 - epsilon || m >= cap {
            // A retained k-mer must appear at least twice (singletons are
            // dropped separately), so the threshold is never below 2.
            return (m as u32).max(2);
        }
        m += 1;
    }
}

/// Eq. (1): total input bases `N = G·d` for genome size `G` and depth `d`.
#[inline]
pub fn input_bases(genome_size: u64, depth: f64) -> u64 {
    (genome_size as f64 * depth).round() as u64
}

/// Eq. (2): the size of the k-mer *bag* parsed from the input,
/// `G·d·(L − k + 1)/L ≈ G·d`.
#[inline]
pub fn kmer_bag_size(genome_size: u64, depth: f64, avg_read_len: f64, k: usize) -> u64 {
    let n = genome_size as f64 * depth;
    (n * (avg_read_len - k as f64 + 1.0).max(0.0) / avg_read_len).round() as u64
}

/// Estimate the distinct-k-mer cardinality for Bloom filter sizing (§6):
/// the bag size multiplied by the typical distinct-to-bag ratio observed
/// across data sets. With long-read error rates most erroneous k-mers are
/// unique, so the cardinality is a large constant fraction of the bag.
#[inline]
pub fn estimate_cardinality(kmer_bag: u64, distinct_ratio: f64) -> u64 {
    assert!((0.0..=1.0).contains(&distinct_ratio));
    (kmer_bag as f64 * distinct_ratio).ceil() as u64
}

/// Bounds of paper §8, Eq. (3)/(4): the global number of overlap tasks lies
/// in `[ι·K, ι·K·m²/2]` for retained fraction `ι`, k-mer count `K` and
/// maximum multiplicity `m` (each retained k-mer contributes between 1 and
/// `m(m−1)/2` pairs).
pub fn overlap_task_bounds(iota: f64, kmer_count: u64, m: u32) -> (u64, u64) {
    let retained = iota * kmer_count as f64;
    let lo = retained;
    let hi = retained * (m as f64 * (m as f64 - 1.0) / 2.0);
    (lo.round() as u64, hi.round() as u64)
}

/// Default parameters diBELLA/BELLA use for PacBio data.
pub mod defaults {
    /// Typical k for long reads (paper §2: "17-mers are typical").
    pub const K: usize = 17;
    /// Target probability of detecting a true overlap via ≥ 1 shared
    /// correct k-mer.
    pub const DETECTION_TARGET: f64 = 0.90;
    /// Minimum overlap length considered a true overlap (BELLA: 2 kb).
    pub const MIN_OVERLAP: usize = 2000;
    /// Tail mass allowed past the high-occurrence threshold.
    pub const EPSILON: f64 = 1e-4;
    /// Observed retained-k-mer fraction of the distinct set, ι_set ∈
    /// [0.04, 0.12] (paper §8).
    pub const IOTA_SET_RANGE: (f64, f64) = (0.04, 0.12);
    /// Typical distinct/bag ratio for Bloom sizing: up to 98 % of long-read
    /// k-mers are singletons (§6), so the distinct set is nearly the bag.
    pub const DISTINCT_RATIO: f64 = 0.7;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prob_correct_monotone_in_k() {
        let e = 0.15;
        assert!(prob_correct_kmer(e, 11) > prob_correct_kmer(e, 17));
        assert!(prob_correct_kmer(e, 17) > prob_correct_kmer(e, 21));
        assert!((prob_correct_kmer(0.0, 17) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_kmer_probability_sane() {
        // 2 kb overlap at 15% error with k = 17 detects with high prob.
        let p = prob_shared_correct_kmer(2000, 17, 0.15);
        assert!(p > 0.9, "p = {p}");
        // Overlap shorter than k can never share a k-mer.
        assert_eq!(prob_shared_correct_kmer(10, 17, 0.15), 0.0);
        // Error-free data detects with certainty-ish.
        assert!(prob_shared_correct_kmer(100, 17, 0.0) > 0.999_999);
    }

    #[test]
    fn select_k_reproduces_the_papers_17mers() {
        // PacBio-like: e = 15%, 2 kb overlaps, 90% target → k = 20; the
        // paper's "typical 17" corresponds to a slightly stricter target /
        // shorter minimum overlap, e.g. 99% detection at 2 kb → 17.
        let k = select_k(0.15, 2000, 0.90, 11, 32).unwrap();
        assert_eq!(k, 20);
        let k_strict = select_k(0.15, 2000, 0.999, 11, 32).unwrap();
        assert!(
            (15..=18).contains(&k_strict),
            "expected k near the paper's 17, got {k_strict}"
        );
    }

    #[test]
    fn select_k_none_when_unreachable() {
        assert_eq!(select_k(0.45, 300, 0.99, 11, 32), None);
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        for lambda in [0.5, 3.0, 12.0] {
            let total: f64 = (0..200).map(|x| poisson_pmf(lambda, x)).sum();
            assert!((total - 1.0).abs() < 1e-7, "λ={lambda}: {total}");
        }
    }

    #[test]
    fn poisson_cdf_monotone() {
        let lambda = 4.2;
        let mut prev = 0.0;
        for x in 0..30 {
            let c = poisson_cdf(lambda, x);
            assert!(c >= prev);
            prev = c;
        }
        assert!((poisson_cdf(lambda, 100) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ln_factorial_accuracy() {
        // 20! = 2432902008176640000
        let exact = (2_432_902_008_176_640_000f64).ln();
        assert!((ln_factorial(20) - exact).abs() < 1e-9);
        // 100! via known value of ln(100!) ≈ 363.73937555556349
        assert!((ln_factorial(100) - 363.739_375_555_563_49).abs() < 1e-9);
    }

    #[test]
    fn reliable_threshold_tracks_depth() {
        let m30 = reliable_max_multiplicity(30.0, 0.15, 17, 1e-4);
        let m100 = reliable_max_multiplicity(100.0, 0.15, 17, 1e-4);
        assert!(m100 > m30, "m100={m100} m30={m30}");
        // λ = 30·(0.85)^17 ≈ 1.9 → threshold a small number ≥ 2.
        assert!((2..=12).contains(&m30), "m30={m30}");
        // The Poisson tail must actually be below epsilon at the threshold.
        let lambda = 30.0 * prob_correct_kmer(0.15, 17);
        assert!(1.0 - poisson_cdf(lambda, m30 as u64) <= 1e-4);
    }

    #[test]
    fn dataset_size_identities() {
        // E. coli 30x: G = 4.64 Mb, d = 30 → N ≈ 139 Mb (paper §3 scale).
        let g = 4_640_000u64;
        assert_eq!(input_bases(g, 30.0), 139_200_000);
        let bag = kmer_bag_size(g, 30.0, 9958.0, 17);
        let n = input_bases(g, 30.0);
        // Bag ≈ N within 1% (L >> k).
        assert!((bag as f64 - n as f64).abs() / (n as f64) < 0.01);
    }

    #[test]
    fn overlap_bounds_ordering() {
        let (lo, hi) = overlap_task_bounds(0.08, 1_000_000, 8);
        assert!(lo <= hi);
        assert_eq!(lo, 80_000);
        assert_eq!(hi, 80_000 * (8 * 7 / 2));
    }
}
