//! # dibella-kmer
//!
//! Packed k-mer machinery for the diBELLA pipeline (ICPP 2019):
//! 2-bit base encoding, const-generic packed k-mers with canonicalization,
//! O(1)-per-position extraction from reads, the hash family used for owner
//! mapping and Bloom filters, and BELLA's statistical selection of the
//! k-mer length `k` and high-occurrence threshold `m`.
//!
//! ```
//! use dibella_kmer::{extract_kmers, params};
//!
//! let hits = extract_kmers::<1>(b"ACGTTGCAGGTATTTACGCAG", 17);
//! assert_eq!(hits.len(), 5);
//! let m = params::reliable_max_multiplicity(30.0, 0.15, 17, 1e-4);
//! assert!(m >= 2);
//! # let _: Vec<dibella_kmer::KmerHit<1>> = hits;
//! ```

#![warn(missing_docs)]

pub mod base;
pub mod extract;
pub mod hash;
pub mod minimizer;
pub mod packed;
pub mod params;

pub use extract::{extract_kmers, kmer_count, window_hits, KmerHit, KmerIter, WindowIndex};
pub use minimizer::{minimizer_density, minimizer_window_hits, minimizers};
pub use hash::{double_hash, kmer_hash_words, mix64};
pub use packed::{Kmer, Kmer1, Kmer2, Strand};
