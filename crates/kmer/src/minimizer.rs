//! (w, k) minimizer selection over canonical k-mers.
//!
//! A *minimizer* (Roberts et al.; minimap/minimap2 in PAPERS.md) is the
//! k-mer with the smallest hash among the `w` consecutive k-mer windows
//! of a sequence; collecting the minimum of every window keeps roughly
//! `2/(w+1)` of all k-mers while guaranteeing that any two sequences
//! sharing a `w + k − 1` base stretch share a selected k-mer. Hashing
//! uses the same invertible splitmix-style mix as the reliable-k-mer
//! stages ([`crate::packed::Kmer::hash64`]) over the *canonical* form, so
//! selection is strand-symmetric and a selected k-mer routes to the same
//! owner rank as it would in the hash-table stage.
//!
//! The selection here is **position-local**: whether the k-mer at
//! position `p` is a minimizer is decided by comparing its key against
//! its `w − 1` neighbours on each side, which makes extraction
//! decomposable over arbitrary cuts of the window index space — the same
//! property [`crate::window_hits`] has for plain extraction, and the
//! property the distributed stages rely on for bit-identical wire bytes
//! at any thread count or exchange-round cap (each batch re-derives its
//! piece with `w − 1` windows of context on each side; see
//! [`minimizer_window_hits`]).
//!
//! Runs of clean k-mer positions shorter than `w` (reads barely longer
//! than `k`, or stretches between ambiguous bases) degrade gracefully:
//! the window width clamps to the run length, so every non-empty run
//! contributes at least its minimum.

use crate::extract::{window_hits, KmerHit};

/// Expected fraction of k-mer windows selected as minimizers on random
/// sequence: `2 / (w + 1)`.
pub fn minimizer_density(w: usize) -> f64 {
    2.0 / (w as f64 + 1.0)
}

/// Selection key of a k-mer hit: canonical hash, with the window
/// position as a deterministic tie-break so keys are totally ordered
/// even under hash collisions.
#[inline]
fn key(h: &KmerHit<1>) -> (u64, u32) {
    (h.kmer.hash64(), h.pos)
}

/// All minimizer hits of `seq`, in window-position order.
///
/// Equivalent to `minimizer_window_hits(seq, k, w, 0, windows)` over the
/// full window range; a k-mer is emitted once no matter how many of its
/// covering w-windows it wins.
///
/// # Panics
/// Panics if `w == 0` or `k` is out of range for a one-word k-mer.
pub fn minimizers(seq: &[u8], k: usize, w: usize) -> Vec<KmerHit<1>> {
    let windows = crate::extract::kmer_count(seq.len(), k);
    minimizer_window_hits(seq, k, w, 0, windows)
}

/// Minimizer hits of `seq` whose window position falls in `[lo, hi)`.
///
/// This is the restriction of [`minimizers`] to a position range:
/// extracting `[0, c)` and `[c, windows)` and concatenating yields
/// exactly the full selection, for every cut `c`. Internally the range
/// is widened by `w − 1` windows on each side, which is provably enough
/// context: a position's minimizer status depends only on the nearest
/// smaller key within `w − 1` positions on each side of it *within its
/// run of consecutive clean positions*, and a run end further than
/// `w − 1` positions away can never bind.
///
/// # Panics
/// Panics if `w == 0` or `k` is out of range for a one-word k-mer.
pub fn minimizer_window_hits(
    seq: &[u8],
    k: usize,
    w: usize,
    lo: usize,
    hi: usize,
) -> Vec<KmerHit<1>> {
    assert!(w >= 1, "minimizer window w must be >= 1");
    let ctx = w - 1;
    let ext_lo = lo.saturating_sub(ctx);
    let ext_hi = hi.saturating_add(ctx);
    let hits: Vec<KmerHit<1>> = window_hits::<1>(seq, k, ext_lo, ext_hi).collect();

    let mut out = Vec::new();
    // Split the extracted hits into runs of consecutive window positions
    // (ambiguous bases leave gaps) and select within each run.
    let mut run_start = 0usize;
    for i in 1..=hits.len() {
        if i == hits.len() || hits[i].pos != hits[i - 1].pos + 1 {
            select_in_run(&hits[run_start..i], w, lo, hi, &mut out);
            run_start = i;
        }
    }
    out
}

/// Emit the minimizers of one run of consecutive clean window positions,
/// restricted to positions in `[lo, hi)`.
///
/// A position `p` (run-local index `j`, key `K_j`) is a minimizer iff
/// some width-`w_eff` window inside the run has `K_j` as its smallest
/// key, where `w_eff = min(w, run_len)` clamps the window to short runs.
/// Because keys are distinct, that holds iff the window can be placed to
/// exclude every neighbour with a smaller key: with `L` / `R` the
/// nearest smaller-key indices within `w_eff − 1` to the left / right,
/// the feasible window starts are
/// `max(0, j − w_eff + 1, L + 1) ..= min(j, run_len − w_eff, R − w_eff)`.
///
/// The run slice may be truncated by the `w − 1` extension; the caller
/// guarantees that for every `j` with position in `[lo, hi)`, either the
/// slice shows `w − 1` positions on a side or the true run end on that
/// side is in view — so the clamped terms above are exact either way.
fn select_in_run(run: &[KmerHit<1>], w: usize, lo: usize, hi: usize, out: &mut Vec<KmerHit<1>>) {
    let n = run.len();
    if n == 0 {
        return;
    }
    let w_eff = w.min(n) as i64;
    let keys: Vec<(u64, u32)> = run.iter().map(key).collect();
    let n_i = n as i64;
    for j in 0..n {
        let p = run[j].pos as usize;
        if p < lo || p >= hi {
            continue;
        }
        let j_i = j as i64;
        let mut lo_q = (j_i - w_eff + 1).max(0);
        let mut hi_q = j_i.min(n_i - w_eff);
        // Nearest smaller key within w_eff − 1 on each side.
        let scan_lo = (j_i - w_eff + 1).max(0) as usize;
        for jj in (scan_lo..j).rev() {
            if keys[jj] < keys[j] {
                lo_q = lo_q.max(jj as i64 + 1);
                break;
            }
        }
        let scan_hi = ((j_i + w_eff - 1).min(n_i - 1)) as usize;
        for jj in j + 1..=scan_hi {
            if keys[jj] < keys[j] {
                hi_q = hi_q.min(jj as i64 - w_eff);
                break;
            }
        }
        if lo_q <= hi_q {
            out.push(run[j]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract_kmers, kmer_count};

    /// Reference implementation: slide every width-`w_eff` window over
    /// each run and collect the argmin of each, deduplicated.
    fn reference_minimizers(seq: &[u8], k: usize, w: usize) -> Vec<KmerHit<1>> {
        let hits = extract_kmers::<1>(seq, k);
        let mut out = Vec::new();
        let mut run_start = 0usize;
        for i in 1..=hits.len() {
            if i == hits.len() || hits[i].pos != hits[i - 1].pos + 1 {
                let run = &hits[run_start..i];
                let w_eff = w.min(run.len());
                let mut selected = vec![false; run.len()];
                for q in 0..=(run.len() - w_eff) {
                    let win = &run[q..q + w_eff];
                    let best = win
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, h)| key(h))
                        .map(|(off, _)| q + off)
                        .unwrap();
                    selected[best] = true;
                }
                for (j, &s) in selected.iter().enumerate() {
                    if s {
                        out.push(run[j]);
                    }
                }
                run_start = i;
            }
        }
        out
    }

    fn test_seq(len: usize, seed: u64) -> Vec<u8> {
        // Deterministic pseudo-random ACGT sequence.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(state >> 33) as usize % 4]
            })
            .collect()
    }

    #[test]
    fn matches_sliding_window_reference() {
        for seed in 0..4u64 {
            let seq = test_seq(200, seed);
            for k in [5usize, 11, 17] {
                for w in [1usize, 2, 5, 8, 16] {
                    assert_eq!(
                        minimizers(&seq, k, w),
                        reference_minimizers(&seq, k, w),
                        "k={k} w={w} seed={seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn handles_ambiguous_bases_and_short_runs() {
        // Runs of every length from 0 (nothing) through > w, separated
        // by N; short runs select exactly their run minimum.
        let mut seq = Vec::new();
        for (i, run_len) in [3usize, 7, 9, 20, 60].iter().enumerate() {
            seq.extend(test_seq(*run_len, i as u64 + 10));
            seq.push(b'N');
        }
        for k in [3usize, 7] {
            for w in [2usize, 6, 12] {
                assert_eq!(
                    minimizers(&seq, k, w),
                    reference_minimizers(&seq, k, w),
                    "k={k} w={w}"
                );
            }
        }
    }

    #[test]
    fn window_restriction_is_cut_invariant() {
        // Concatenating the selection of [0, cut) and [cut, windows)
        // reproduces the full selection at every cut — the property the
        // distributed stage relies on for batch and round decomposition.
        for (seed, with_n) in [(1u64, false), (2, true)] {
            let mut seq = test_seq(120, seed);
            if with_n {
                seq[40] = b'N';
                seq[41] = b'N';
                seq[90] = b'N';
            }
            for k in [5usize, 9] {
                for w in [3usize, 8] {
                    let windows = kmer_count(seq.len(), k);
                    let full = minimizers(&seq, k, w);
                    for cut in 0..=windows {
                        let mut glued = minimizer_window_hits(&seq, k, w, 0, cut);
                        glued.extend(minimizer_window_hits(&seq, k, w, cut, windows));
                        assert_eq!(glued, full, "k={k} w={w} cut={cut}");
                    }
                    // Three-way cuts, to cover pieces with context on
                    // both sides.
                    for cut in (0..=windows).step_by(7) {
                        let c2 = (cut + 11).min(windows);
                        let mut glued = minimizer_window_hits(&seq, k, w, 0, cut);
                        glued.extend(minimizer_window_hits(&seq, k, w, cut, c2));
                        glued.extend(minimizer_window_hits(&seq, k, w, c2, windows));
                        assert_eq!(glued, full, "k={k} w={w} cuts={cut},{c2}");
                    }
                }
            }
        }
    }

    #[test]
    fn selection_is_strand_symmetric() {
        // The canonical-hash key makes minimizer selection agree between
        // a sequence and its reverse complement (positions mirror).
        let seq = test_seq(150, 7);
        let rc = crate::base::reverse_complement_ascii(&seq);
        let (k, w) = (11usize, 8usize);
        let mut fwd: Vec<_> = minimizers(&seq, k, w).into_iter().map(|h| h.kmer).collect();
        let mut rev: Vec<_> = minimizers(&rc, k, w).into_iter().map(|h| h.kmer).collect();
        fwd.sort();
        rev.sort();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn density_is_near_expected() {
        let seq = test_seq(20_000, 3);
        let k = 17usize;
        for w in [5usize, 8, 16] {
            let windows = kmer_count(seq.len(), k) as f64;
            let got = minimizers(&seq, k, w).len() as f64 / windows;
            let want = minimizer_density(w);
            assert!(
                (got - want).abs() < 0.25 * want,
                "w={w}: density {got:.4}, expected ~{want:.4}"
            );
        }
    }

    #[test]
    fn w1_selects_every_kmer() {
        let seq = test_seq(64, 9);
        assert_eq!(minimizers(&seq, 7, 1), extract_kmers::<1>(&seq, 7));
    }
}
