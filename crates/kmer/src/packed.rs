//! 2-bit packed k-mer storage.
//!
//! The paper (§3) stores each k-mer character with 2 bits and sizes the
//! k-mer representation at compile time ("typically set to 32 bits or the
//! nearest larger power of two"). We mirror that with a const-generic word
//! count: [`Kmer<W>`] packs up to `32 * W` bases into `W` little-endian
//! `u64` words. [`Kmer1`] (k ≤ 32) covers the paper's k ∈ [11, 21]; longer
//! seeds use [`Kmer2`].
//!
//! Bases are stored most-significant-first within the logical k-mer so that
//! the integer ordering of equal-length k-mers equals lexicographic ordering
//! of their ASCII spellings — a property both the tests and the DALIGNER-
//! style sort-merge baseline rely on.

use crate::base;
use std::fmt;

/// A 2-bit packed k-mer occupying `W` 64-bit words (k ≤ 32·W).
///
/// `Kmer` stores only the packed bases plus the length `k`; ownership,
/// counts and read provenance live in the distributed hash table
/// (`dibella-kcount`). Equality and hashing include `k`, so k-mers of
/// different lengths never collide logically.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Kmer<const W: usize> {
    /// Packed bases; word 0 holds the *most significant* (leftmost) bases.
    words: [u64; W],
    /// Number of bases (1 ..= 32*W).
    k: u16,
}

/// Single-word k-mer, k ≤ 32 — the representation used throughout diBELLA
/// for its typical 17-mers.
pub type Kmer1 = Kmer<1>;
/// Two-word k-mer, k ≤ 64 — for short-read-style 51-mers (related-work
/// comparisons) and stress tests.
pub type Kmer2 = Kmer<2>;

impl<const W: usize> Kmer<W> {
    /// Maximum supported k for this width.
    pub const MAX_K: usize = 32 * W;

    /// Build a k-mer from a clean ASCII slice (all bases in `ACGTacgt`).
    ///
    /// Returns `None` if the slice is empty, longer than [`Self::MAX_K`],
    /// or contains an ambiguous base.
    pub fn from_ascii(seq: &[u8]) -> Option<Self> {
        if seq.is_empty() || seq.len() > Self::MAX_K {
            return None;
        }
        let mut kmer = Self::zero(seq.len() as u16);
        for (i, &b) in seq.iter().enumerate() {
            kmer.set_base(i, base::encode(b)?);
        }
        Some(kmer)
    }

    /// An all-`A` k-mer of length `k` (the zero point of the packing).
    ///
    /// # Panics
    /// Panics if `k == 0` or `k > Self::MAX_K`.
    pub fn zero(k: u16) -> Self {
        assert!(
            k >= 1 && (k as usize) <= Self::MAX_K,
            "k = {k} out of range 1..={}",
            Self::MAX_K
        );
        Self { words: [0u64; W], k }
    }

    /// The k-mer length.
    #[inline]
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// Raw packed words (word 0 = most significant bases).
    #[inline]
    pub fn words(&self) -> &[u64; W] {
        &self.words
    }

    /// Reconstruct from raw words (inverse of [`Self::words`]); used by the
    /// wire codecs in `dibella-comm` consumers.
    ///
    /// # Panics
    /// Panics if `k` is out of range, or if bits above position `2k` are
    /// set (which would break `Eq`/`Hash` canonical form).
    pub fn from_words(words: [u64; W], k: u16) -> Self {
        let _ = Self::zero(k); // validates k
        let out = Self { words, k };
        // Verify no stray bits beyond the top of the k-mer.
        for i in k as usize..Self::MAX_K {
            assert_eq!(
                out.get_base_raw(i),
                0,
                "stray bits beyond k = {k} in from_words"
            );
        }
        out
    }

    /// Bit position (word, shift) of base index `i` (0 = leftmost base).
    ///
    /// Base 0 occupies the two *highest* bits of word 0, so integer order
    /// equals lexicographic order.
    #[inline]
    fn slot(i: usize) -> (usize, u32) {
        let word = i / 32;
        let within = i % 32;
        (word, (62 - 2 * within) as u32)
    }

    #[inline]
    fn get_base_raw(&self, i: usize) -> u8 {
        let (w, s) = Self::slot(i);
        ((self.words[w] >> s) & 3) as u8
    }

    /// 2-bit code of the base at position `i` (0-based from the left).
    #[inline]
    pub fn get_base(&self, i: usize) -> u8 {
        debug_assert!(i < self.k());
        self.get_base_raw(i)
    }

    /// Set the base at position `i` to the 2-bit `code`.
    #[inline]
    pub fn set_base(&mut self, i: usize, code: u8) {
        debug_assert!(i < self.k());
        debug_assert!(code <= 3);
        let (w, s) = Self::slot(i);
        self.words[w] = (self.words[w] & !(3u64 << s)) | ((code as u64 & 3) << s);
    }

    /// Clears any bits at base positions ≥ k (keeps `Eq`/`Hash` canonical).
    #[inline]
    fn normalize(&mut self) {
        for i in self.k()..Self::MAX_K {
            let (w, s) = Self::slot(i);
            self.words[w] &= !(3u64 << s);
        }
    }

    /// Rolling extension: drop the leftmost base, append `code` on the
    /// right. This is the O(1) step used by the extraction iterator to
    /// parse a read of length L into its L − k + 1 k-mers (paper §3).
    #[inline]
    pub fn roll_left(&self, code: u8) -> Self {
        debug_assert!(code <= 3);
        let mut out = *self;
        // Shift the whole multi-word register left by 2 bits.
        let mut carry = 0u64;
        for w in (0..W).rev() {
            let new_carry = out.words[w] >> 62;
            out.words[w] = (out.words[w] << 2) | carry;
            carry = new_carry;
        }
        // The shift moved base 1 into base 0's slot across words; append the
        // new base at position k-1.
        out.normalize();
        out.set_base(self.k() - 1, code);
        out.normalize();
        out
    }

    /// The reverse complement of this k-mer.
    pub fn reverse_complement(&self) -> Self {
        let mut out = Self::zero(self.k);
        for i in 0..self.k() {
            out.set_base(self.k() - 1 - i, base::complement(self.get_base(i)));
        }
        out
    }

    /// The canonical form: the lexicographic minimum of the k-mer and its
    /// reverse complement. Both strands of a genomic location map to the
    /// same canonical k-mer, which is what the distributed Bloom filter and
    /// hash table key on.
    pub fn canonical(&self) -> (Self, Strand) {
        let rc = self.reverse_complement();
        if *self <= rc {
            (*self, Strand::Forward)
        } else {
            (rc, Strand::Reverse)
        }
    }

    /// ASCII spelling of the k-mer.
    pub fn to_ascii(&self) -> Vec<u8> {
        (0..self.k()).map(|i| base::decode(self.get_base(i))).collect()
    }

    /// Owner rank of this k-mer among `p` ranks: `hash % p`, the uniform
    /// load-balancing map of paper §4 ("k-mers are mapped to processors
    /// uniformly at random via hashing").
    #[inline]
    pub fn owner(&self, p: usize) -> usize {
        debug_assert!(p > 0);
        (crate::hash::kmer_hash_words(&self.words, self.k as u64) % p as u64) as usize
    }

    /// 64-bit hash of the k-mer (strong finalizer; see `crate::hash`).
    #[inline]
    pub fn hash64(&self) -> u64 {
        crate::hash::kmer_hash_words(&self.words, self.k as u64)
    }
}

/// Which strand of the read a canonical k-mer was observed on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Strand {
    /// The k-mer equals its spelling in the read.
    Forward,
    /// The canonical form is the reverse complement of the read spelling.
    Reverse,
}

impl Strand {
    /// `Forward` ↔ `Reverse`.
    #[inline]
    pub fn flip(self) -> Self {
        match self {
            Strand::Forward => Strand::Reverse,
            Strand::Reverse => Strand::Forward,
        }
    }

    /// Encode as one byte for wire formats.
    #[inline]
    pub fn as_u8(self) -> u8 {
        match self {
            Strand::Forward => 0,
            Strand::Reverse => 1,
        }
    }

    /// Decode from [`Self::as_u8`]; any nonzero value is `Reverse`.
    #[inline]
    pub fn from_u8(v: u8) -> Self {
        if v == 0 {
            Strand::Forward
        } else {
            Strand::Reverse
        }
    }
}

impl<const W: usize> fmt::Debug for Kmer<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Kmer({})", String::from_utf8_lossy(&self.to_ascii()))
    }
}

impl<const W: usize> fmt::Display for Kmer<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", String::from_utf8_lossy(&self.to_ascii()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_round_trip() {
        let k = Kmer1::from_ascii(b"ACGTACGTACGTACGTA").unwrap();
        assert_eq!(k.k(), 17);
        assert_eq!(k.to_ascii(), b"ACGTACGTACGTACGTA".to_vec());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Kmer1::from_ascii(b"").is_none());
        assert!(Kmer1::from_ascii(b"ACGN").is_none());
        assert!(Kmer1::from_ascii(&[b'A'; 33]).is_none());
        assert!(Kmer2::from_ascii(&[b'A'; 33]).is_some());
        assert!(Kmer2::from_ascii(&[b'A'; 65]).is_none());
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Kmer1::from_ascii(b"AAAT").unwrap();
        let b = Kmer1::from_ascii(b"AACA").unwrap();
        let c = Kmer1::from_ascii(b"TAAA").unwrap();
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn reverse_complement_matches_ascii_path() {
        let k = Kmer1::from_ascii(b"AACGTTGCA").unwrap();
        let rc = k.reverse_complement();
        assert_eq!(
            rc.to_ascii(),
            crate::base::reverse_complement_ascii(b"AACGTTGCA")
        );
        assert_eq!(rc.reverse_complement(), k);
    }

    #[test]
    fn canonical_is_strand_invariant() {
        let fwd = Kmer1::from_ascii(b"GATTACAGATTACAACA").unwrap();
        let rc = fwd.reverse_complement();
        let (c1, s1) = fwd.canonical();
        let (c2, s2) = rc.canonical();
        assert_eq!(c1, c2);
        assert_ne!(s1, s2);
    }

    #[test]
    fn roll_left_matches_from_ascii() {
        let seq = b"ACGTTGCAGGTATTTACGC";
        let k = 7usize;
        let mut cur = Kmer1::from_ascii(&seq[0..k]).unwrap();
        for start in 1..=(seq.len() - k) {
            let code = crate::base::encode(seq[start + k - 1]).unwrap();
            cur = cur.roll_left(code);
            assert_eq!(cur, Kmer1::from_ascii(&seq[start..start + k]).unwrap());
        }
    }

    #[test]
    fn roll_left_multiword_crosses_word_boundary() {
        // k = 40 spans both words of a Kmer2.
        let seq: Vec<u8> = (0..50).map(|i| b"ACGT"[(i * 7 + 3) % 4]).collect();
        let k = 40usize;
        let mut cur = Kmer2::from_ascii(&seq[0..k]).unwrap();
        for start in 1..=(seq.len() - k) {
            let code = crate::base::encode(seq[start + k - 1]).unwrap();
            cur = cur.roll_left(code);
            assert_eq!(cur, Kmer2::from_ascii(&seq[start..start + k]).unwrap());
        }
    }

    #[test]
    fn owner_is_stable_and_in_range() {
        let k = Kmer1::from_ascii(b"ACGTACGTACGTACGTA").unwrap();
        for p in 1..100 {
            assert!(k.owner(p) < p);
        }
        assert_eq!(k.owner(16), k.owner(16));
    }

    #[test]
    fn from_words_round_trip_and_validation() {
        let k = Kmer1::from_ascii(b"TTGCA").unwrap();
        let rebuilt = Kmer1::from_words(*k.words(), 5);
        assert_eq!(rebuilt, k);
    }

    #[test]
    #[should_panic(expected = "stray bits")]
    fn from_words_rejects_stray_bits() {
        // Bits set at base position 5 with k = 5 must be rejected.
        let _ = Kmer1::from_words([!0u64], 5);
    }

    #[test]
    fn strand_round_trip() {
        assert_eq!(Strand::from_u8(Strand::Forward.as_u8()), Strand::Forward);
        assert_eq!(Strand::from_u8(Strand::Reverse.as_u8()), Strand::Reverse);
        assert_eq!(Strand::Forward.flip(), Strand::Reverse);
    }
}
