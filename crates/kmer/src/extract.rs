//! k-mer extraction from reads.
//!
//! A read of length `L` is parsed into its `L − k + 1` overlapping k-mers
//! (paper §2, Figure 2b) with an O(1) rolling update per position. Each
//! yielded k-mer is *canonical* (min of forward and reverse-complement
//! spelling) together with its position in the read and the strand on which
//! the canonical form was observed — exactly the location metadata that the
//! hash-table stage (§7) communicates and stores.
//!
//! Ambiguous bases (`N` etc.) break the window: no k-mer spanning them is
//! produced, and extraction resumes after the offending base.

use crate::base;
use crate::packed::{Kmer, Strand};

/// A single k-mer occurrence within a read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KmerHit<const W: usize> {
    /// Canonical packed k-mer.
    pub kmer: Kmer<W>,
    /// 0-based offset of the k-mer's first base within the read.
    pub pos: u32,
    /// Strand on which the canonical spelling appears.
    pub strand: Strand,
}

/// Iterator over the canonical k-mers of one sequence.
///
/// Maintains the forward and reverse-complement windows incrementally, so
/// each step costs O(W) word operations rather than O(k).
pub struct KmerIter<'a, const W: usize> {
    seq: &'a [u8],
    k: usize,
    /// Index of the *next* base to consume.
    next: usize,
    /// Number of consecutive clean bases currently in the window.
    filled: usize,
    fwd: Kmer<W>,
    rc: Kmer<W>,
}

impl<'a, const W: usize> KmerIter<'a, W> {
    /// Create an extractor for `seq` with k-mer length `k`.
    ///
    /// # Panics
    /// Panics if `k == 0` or `k > 32·W`.
    pub fn new(seq: &'a [u8], k: usize) -> Self {
        assert!(k >= 1 && k <= Kmer::<W>::MAX_K, "k = {k} out of range");
        Self {
            seq,
            k,
            next: 0,
            filled: 0,
            fwd: Kmer::zero(k as u16),
            rc: Kmer::zero(k as u16),
        }
    }
}

impl<'a, const W: usize> Iterator for KmerIter<'a, W> {
    type Item = KmerHit<W>;

    fn next(&mut self) -> Option<Self::Item> {
        while self.next < self.seq.len() {
            let b = self.seq[self.next];
            self.next += 1;
            match base::encode(b) {
                None => {
                    // Ambiguity breaks the window entirely.
                    self.filled = 0;
                }
                Some(code) => {
                    if self.filled < self.k {
                        // Still filling the initial window.
                        self.fwd.set_base(self.filled, code);
                        self.filled += 1;
                        if self.filled == self.k {
                            self.rc = self.fwd.reverse_complement();
                        }
                    } else {
                        self.fwd = self.fwd.roll_left(code);
                        // Incremental RC: prepend complement on the left,
                        // dropping the rightmost base. Recompute via the
                        // O(k) path only when W > 1 would make the shift
                        // fiddly; measurements show the simple recompute is
                        // fine for W ≤ 2 at the k values used here.
                        self.rc = self.fwd.reverse_complement();
                    }
                    if self.filled == self.k {
                        let pos = (self.next - self.k) as u32;
                        let (kmer, strand) = if self.fwd <= self.rc {
                            (self.fwd, Strand::Forward)
                        } else {
                            (self.rc, Strand::Reverse)
                        };
                        return Some(KmerHit { kmer, pos, strand });
                    }
                }
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.seq.len().saturating_sub(self.next);
        // At most one k-mer per remaining base plus possibly one in-flight.
        (0, Some(remaining + 1))
    }
}

/// Convenience: collect all canonical k-mer hits of `seq`.
pub fn extract_kmers<const W: usize>(seq: &[u8], k: usize) -> Vec<KmerHit<W>> {
    KmerIter::<W>::new(seq, k).collect()
}

/// Number of k-mers a clean read of length `len` yields (`L − k + 1`, or 0).
#[inline]
pub fn kmer_count(len: usize, k: usize) -> usize {
    (len + 1).saturating_sub(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::Kmer1;

    fn naive_extract(seq: &[u8], k: usize) -> Vec<KmerHit<1>> {
        let mut out = Vec::new();
        for start in 0..=(seq.len().saturating_sub(k)) {
            if seq.len() < k {
                break;
            }
            let window = &seq[start..start + k];
            if let Some(kmer) = Kmer1::from_ascii(window) {
                let (canon, strand) = kmer.canonical();
                out.push(KmerHit {
                    kmer: canon,
                    pos: start as u32,
                    strand,
                });
            }
        }
        out
    }

    #[test]
    fn matches_naive_on_clean_sequence() {
        let seq = b"ACGTTGCAGGTATTTACGCAGGAT";
        for k in [3usize, 5, 11, 17] {
            assert_eq!(extract_kmers::<1>(seq, k), naive_extract(seq, k), "k={k}");
        }
    }

    #[test]
    fn count_matches_formula() {
        let seq = b"ACGTTGCAGGTATTTACGCAGGAT";
        let hits = extract_kmers::<1>(seq, 17);
        assert_eq!(hits.len(), kmer_count(seq.len(), 17));
    }

    #[test]
    fn ambiguous_bases_break_window() {
        let seq = b"ACGTNACGTT";
        let hits = extract_kmers::<1>(seq, 4);
        // Only the two flanks yield k-mers: positions 0 and 5..=6.
        let positions: Vec<u32> = hits.iter().map(|h| h.pos).collect();
        assert_eq!(positions, vec![0, 5, 6]);
        assert_eq!(hits, naive_extract(seq, 4));
    }

    #[test]
    fn short_sequences_yield_nothing() {
        assert!(extract_kmers::<1>(b"ACG", 4).is_empty());
        assert!(extract_kmers::<1>(b"", 4).is_empty());
        assert_eq!(kmer_count(3, 4), 0);
    }

    #[test]
    fn canonical_hits_are_strand_symmetric() {
        // Extracting from a read and from its reverse complement yields the
        // same multiset of canonical k-mers.
        let seq = b"ACGTTGCAGGTATTTACGCAGGATAGCAGATT";
        let rc = crate::base::reverse_complement_ascii(seq);
        let mut a: Vec<Kmer1> = extract_kmers::<1>(seq, 9).into_iter().map(|h| h.kmer).collect();
        let mut b: Vec<Kmer1> = extract_kmers::<1>(&rc, 9).into_iter().map(|h| h.kmer).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn multiword_extraction_matches_naive() {
        let seq: Vec<u8> = (0..120).map(|i| b"ACGT"[(i * 13 + 1) % 4]).collect();
        let k = 40usize;
        let fast = extract_kmers::<2>(&seq, k);
        // Naive with Kmer2.
        let mut naive = Vec::new();
        for start in 0..=(seq.len() - k) {
            let kmer = Kmer::<2>::from_ascii(&seq[start..start + k]).unwrap();
            let (canon, strand) = kmer.canonical();
            naive.push(KmerHit { kmer: canon, pos: start as u32, strand });
        }
        assert_eq!(fast, naive);
    }
}
