//! k-mer extraction from reads.
//!
//! A read of length `L` is parsed into its `L − k + 1` overlapping k-mers
//! (paper §2, Figure 2b) with an O(1) rolling update per position. Each
//! yielded k-mer is *canonical* (min of forward and reverse-complement
//! spelling) together with its position in the read and the strand on which
//! the canonical form was observed — exactly the location metadata that the
//! hash-table stage (§7) communicates and stores.
//!
//! Ambiguous bases (`N` etc.) break the window: no k-mer spanning them is
//! produced, and extraction resumes after the offending base.

use crate::base;
use crate::packed::{Kmer, Strand};

/// A single k-mer occurrence within a read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KmerHit<const W: usize> {
    /// Canonical packed k-mer.
    pub kmer: Kmer<W>,
    /// 0-based offset of the k-mer's first base within the read.
    pub pos: u32,
    /// Strand on which the canonical spelling appears.
    pub strand: Strand,
}

/// Iterator over the canonical k-mers of one sequence.
///
/// Maintains the forward and reverse-complement windows incrementally, so
/// each step costs O(W) word operations rather than O(k).
pub struct KmerIter<'a, const W: usize> {
    seq: &'a [u8],
    k: usize,
    /// Index of the *next* base to consume.
    next: usize,
    /// Number of consecutive clean bases currently in the window.
    filled: usize,
    fwd: Kmer<W>,
    rc: Kmer<W>,
}

impl<'a, const W: usize> KmerIter<'a, W> {
    /// Create an extractor for `seq` with k-mer length `k`.
    ///
    /// # Panics
    /// Panics if `k == 0` or `k > 32·W`.
    pub fn new(seq: &'a [u8], k: usize) -> Self {
        assert!(k >= 1 && k <= Kmer::<W>::MAX_K, "k = {k} out of range");
        Self {
            seq,
            k,
            next: 0,
            filled: 0,
            fwd: Kmer::zero(k as u16),
            rc: Kmer::zero(k as u16),
        }
    }
}

impl<'a, const W: usize> Iterator for KmerIter<'a, W> {
    type Item = KmerHit<W>;

    fn next(&mut self) -> Option<Self::Item> {
        while self.next < self.seq.len() {
            let b = self.seq[self.next];
            self.next += 1;
            match base::encode(b) {
                None => {
                    // Ambiguity breaks the window entirely.
                    self.filled = 0;
                }
                Some(code) => {
                    if self.filled < self.k {
                        // Still filling the initial window.
                        self.fwd.set_base(self.filled, code);
                        self.filled += 1;
                        if self.filled == self.k {
                            self.rc = self.fwd.reverse_complement();
                        }
                    } else {
                        self.fwd = self.fwd.roll_left(code);
                        // Incremental RC: prepend complement on the left,
                        // dropping the rightmost base. Recompute via the
                        // O(k) path only when W > 1 would make the shift
                        // fiddly; measurements show the simple recompute is
                        // fine for W ≤ 2 at the k values used here.
                        self.rc = self.fwd.reverse_complement();
                    }
                    if self.filled == self.k {
                        let pos = (self.next - self.k) as u32;
                        let (kmer, strand) = if self.fwd <= self.rc {
                            (self.fwd, Strand::Forward)
                        } else {
                            (self.rc, Strand::Reverse)
                        };
                        return Some(KmerHit { kmer, pos, strand });
                    }
                }
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.seq.len().saturating_sub(self.next);
        // At most one k-mer per remaining base plus possibly one in-flight.
        (0, Some(remaining + 1))
    }
}

/// Convenience: collect all canonical k-mer hits of `seq`.
pub fn extract_kmers<const W: usize>(seq: &[u8], k: usize) -> Vec<KmerHit<W>> {
    KmerIter::<W>::new(seq, k).collect()
}

/// Number of k-mers a clean read of length `len` yields (`L − k + 1`, or 0).
#[inline]
pub fn kmer_count(len: usize, k: usize) -> usize {
    (len + 1).saturating_sub(k)
}

/// Canonical k-mer hits of `seq` whose **window position** (0-based first
/// base) falls in `[lo, hi)`, with positions relative to the full `seq`.
///
/// This is the restriction of `KmerIter::new(seq, k)` to a position range:
/// extracting `[0, w0)`, `[w0, w1)`, … and concatenating yields exactly the
/// full extraction, because a window at position `p ∈ [lo, hi)` spans bases
/// `[p, p + k)` ⊆ `[lo, hi + k − 1)`, and an ambiguous base voids the
/// window the same way whether or not the flanking bases are in view. That
/// decomposability is what lets the k-mer stages shard a read's windows
/// across batches (and across exchange rounds) deterministically.
pub fn window_hits<const W: usize>(
    seq: &[u8],
    k: usize,
    lo: usize,
    hi: usize,
) -> impl Iterator<Item = KmerHit<W>> + '_ {
    let end = hi.saturating_add(k - 1).min(seq.len());
    let start = lo.min(end);
    KmerIter::<W>::new(&seq[start..end], k).map(move |mut h| {
        h.pos += start as u32;
        h
    })
}

/// Prefix-sum index over the k-mer **windows** of a read set: read `i`
/// owns the contiguous global window range `[prefix[i], prefix[i+1])`,
/// where the count is the clean-read formula [`kmer_count`]`(len_i, k)`.
///
/// Stages use it to treat "all k-mer windows of all local reads" as one
/// flat index space that can be cut anywhere — at exchange-round
/// boundaries (so the per-round byte cap holds even mid-read) and again
/// into fixed-size executor batches (so threading never changes the
/// decomposition). Reads with ambiguous bases yield *fewer hits* than
/// windows; the index bounds the work, [`window_hits`] yields the truth.
#[derive(Clone, Debug)]
pub struct WindowIndex {
    /// `prefix[i]` = total windows of reads `0..i`; length `n_reads + 1`.
    prefix: Vec<u64>,
    k: usize,
}

impl WindowIndex {
    /// Build the index from the read lengths, in read order.
    pub fn new<I: IntoIterator<Item = usize>>(lens: I, k: usize) -> Self {
        let mut prefix = vec![0u64];
        let mut total = 0u64;
        for len in lens {
            total += kmer_count(len, k) as u64;
            prefix.push(total);
        }
        Self { prefix, k }
    }

    /// Total windows over all reads (the end of the global index space).
    pub fn total_windows(&self) -> u64 {
        *self.prefix.last().expect("prefix is never empty")
    }

    /// The k this index was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Decompose the global window range `[lo, hi)` into per-read pieces
    /// `(read_index, pos_lo, pos_hi)` with read-local window positions,
    /// in read order. Empty for an empty or out-of-range request.
    pub fn pieces(&self, lo: u64, hi: u64) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let hi = hi.min(self.total_windows());
        let lo = lo.min(hi);
        // First read whose range ends after `lo`.
        let first = self.prefix.partition_point(|&p| p <= lo).saturating_sub(1);
        let mut read = first;
        let mut cursor = lo;
        std::iter::from_fn(move || {
            while cursor < hi {
                let begin = self.prefix[read];
                let end = self.prefix[read + 1];
                if end <= cursor {
                    // Skip zero-window reads (shorter than k).
                    read += 1;
                    continue;
                }
                let piece_lo = (cursor - begin) as usize;
                let piece_hi = (end.min(hi) - begin) as usize;
                cursor = end.min(hi);
                let r = read;
                read += 1;
                return Some((r, piece_lo, piece_hi));
            }
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::Kmer1;

    fn naive_extract(seq: &[u8], k: usize) -> Vec<KmerHit<1>> {
        let mut out = Vec::new();
        for start in 0..=(seq.len().saturating_sub(k)) {
            if seq.len() < k {
                break;
            }
            let window = &seq[start..start + k];
            if let Some(kmer) = Kmer1::from_ascii(window) {
                let (canon, strand) = kmer.canonical();
                out.push(KmerHit {
                    kmer: canon,
                    pos: start as u32,
                    strand,
                });
            }
        }
        out
    }

    #[test]
    fn matches_naive_on_clean_sequence() {
        let seq = b"ACGTTGCAGGTATTTACGCAGGAT";
        for k in [3usize, 5, 11, 17] {
            assert_eq!(extract_kmers::<1>(seq, k), naive_extract(seq, k), "k={k}");
        }
    }

    #[test]
    fn count_matches_formula() {
        let seq = b"ACGTTGCAGGTATTTACGCAGGAT";
        let hits = extract_kmers::<1>(seq, 17);
        assert_eq!(hits.len(), kmer_count(seq.len(), 17));
    }

    #[test]
    fn ambiguous_bases_break_window() {
        let seq = b"ACGTNACGTT";
        let hits = extract_kmers::<1>(seq, 4);
        // Only the two flanks yield k-mers: positions 0 and 5..=6.
        let positions: Vec<u32> = hits.iter().map(|h| h.pos).collect();
        assert_eq!(positions, vec![0, 5, 6]);
        assert_eq!(hits, naive_extract(seq, 4));
    }

    #[test]
    fn short_sequences_yield_nothing() {
        assert!(extract_kmers::<1>(b"ACG", 4).is_empty());
        assert!(extract_kmers::<1>(b"", 4).is_empty());
        assert_eq!(kmer_count(3, 4), 0);
    }

    #[test]
    fn canonical_hits_are_strand_symmetric() {
        // Extracting from a read and from its reverse complement yields the
        // same multiset of canonical k-mers.
        let seq = b"ACGTTGCAGGTATTTACGCAGGATAGCAGATT";
        let rc = crate::base::reverse_complement_ascii(seq);
        let mut a: Vec<Kmer1> = extract_kmers::<1>(seq, 9).into_iter().map(|h| h.kmer).collect();
        let mut b: Vec<Kmer1> = extract_kmers::<1>(&rc, 9).into_iter().map(|h| h.kmer).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn window_hits_restrict_full_extraction() {
        // Any cut of the window range reproduces the full extraction when
        // concatenated — including across an ambiguous base.
        for seq in [&b"ACGTTGCAGGTATTTACGCAGGAT"[..], &b"ACGTNACGTTGCAGNGTAT"[..]] {
            for k in [3usize, 5, 7] {
                let full = extract_kmers::<1>(seq, k);
                let windows = kmer_count(seq.len(), k);
                for cut in 0..=windows {
                    let mut glued: Vec<KmerHit<1>> =
                        window_hits::<1>(seq, k, 0, cut).collect();
                    glued.extend(window_hits::<1>(seq, k, cut, windows));
                    assert_eq!(glued, full, "k={k} cut={cut}");
                }
            }
        }
    }

    #[test]
    fn window_index_pieces_cover_exactly() {
        let k = 5usize;
        let lens = [10usize, 3, 8, 5, 20]; // read 1 has zero windows
        let idx = WindowIndex::new(lens.iter().copied(), k);
        assert_eq!(idx.k(), k);
        let per_read: Vec<usize> = lens.iter().map(|&l| kmer_count(l, k)).collect();
        let total: usize = per_read.iter().sum();
        assert_eq!(idx.total_windows(), total as u64);

        // Every [lo, hi) decomposes into in-order, contiguous, in-bounds
        // pieces whose sizes sum to hi − lo.
        for lo in 0..=total as u64 {
            for hi in lo..=total as u64 {
                let mut covered = 0u64;
                let mut last_read = None;
                for (r, plo, phi) in idx.pieces(lo, hi) {
                    assert!(plo < phi, "empty piece");
                    assert!(phi <= per_read[r], "piece out of read bounds");
                    if let Some(prev) = last_read {
                        assert!(r > prev, "pieces out of read order");
                    }
                    last_read = Some(r);
                    covered += (phi - plo) as u64;
                }
                assert_eq!(covered, hi - lo, "range [{lo}, {hi})");
            }
        }
        // Out-of-range requests clamp instead of panicking.
        assert_eq!(idx.pieces(total as u64 + 5, total as u64 + 9).count(), 0);
    }

    #[test]
    fn multiword_extraction_matches_naive() {
        let seq: Vec<u8> = (0..120).map(|i| b"ACGT"[(i * 13 + 1) % 4]).collect();
        let k = 40usize;
        let fast = extract_kmers::<2>(&seq, k);
        // Naive with Kmer2.
        let mut naive = Vec::new();
        for start in 0..=(seq.len() - k) {
            let kmer = Kmer::<2>::from_ascii(&seq[start..start + k]).unwrap();
            let (canon, strand) = kmer.canonical();
            naive.push(KmerHit { kmer: canon, pos: start as u32, strand });
        }
        assert_eq!(fast, naive);
    }
}
