//! Property-based tests for packed k-mer invariants.

use dibella_kmer::{base, extract_kmers, Kmer, Kmer1, Kmer2, Strand};
use proptest::prelude::*;

/// Strategy: a random clean DNA sequence of the given length range.
fn dna(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(b"ACGT".to_vec()), len)
}

/// Strategy: DNA with occasional ambiguous bases.
fn dirty_dna(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(b"ACGTNacgtn".to_vec()), len)
}

proptest! {
    /// from_ascii → to_ascii is the identity on clean uppercase input.
    #[test]
    fn ascii_round_trip(seq in dna(1..33)) {
        let k = Kmer1::from_ascii(&seq).unwrap();
        prop_assert_eq!(k.to_ascii(), seq);
    }

    /// Reverse complement is an involution and matches the ASCII path.
    #[test]
    fn rc_involution(seq in dna(1..33)) {
        let k = Kmer1::from_ascii(&seq).unwrap();
        prop_assert_eq!(k.reverse_complement().reverse_complement(), k);
        prop_assert_eq!(
            k.reverse_complement().to_ascii(),
            base::reverse_complement_ascii(&seq)
        );
    }

    /// Canonical form is invariant under strand flip.
    #[test]
    fn canonical_strand_invariant(seq in dna(4..33)) {
        let k = Kmer1::from_ascii(&seq).unwrap();
        let rc = k.reverse_complement();
        let (c1, _) = k.canonical();
        let (c2, _) = rc.canonical();
        prop_assert_eq!(c1, c2);
        prop_assert!(c1 <= k && c1 <= rc);
    }

    /// words() → from_words round-trips.
    #[test]
    fn words_round_trip(seq in dna(1..33)) {
        let k = Kmer1::from_ascii(&seq).unwrap();
        prop_assert_eq!(Kmer1::from_words(*k.words(), k.k() as u16), k);
    }

    /// Integer ordering of equal-k k-mers equals lexicographic order of
    /// their spellings.
    #[test]
    fn order_is_lexicographic(a in dna(12..13), b in dna(12..13)) {
        let ka = Kmer1::from_ascii(&a).unwrap();
        let kb = Kmer1::from_ascii(&b).unwrap();
        prop_assert_eq!(ka.cmp(&kb), a.cmp(&b));
    }

    /// Extraction yields exactly L-k+1 hits on clean input, each of which
    /// matches its window's canonical form.
    #[test]
    fn extraction_complete_and_correct(seq in dna(20..200), k in 4usize..18) {
        let hits = extract_kmers::<1>(&seq, k);
        prop_assert_eq!(hits.len(), seq.len() - k + 1);
        for h in &hits {
            let window = &seq[h.pos as usize..h.pos as usize + k];
            let (canon, strand) = Kmer1::from_ascii(window).unwrap().canonical();
            prop_assert_eq!(h.kmer, canon);
            prop_assert_eq!(h.strand, strand);
        }
    }

    /// Extraction from a read and its reverse complement yields the same
    /// canonical k-mer multiset (positions mirrored).
    #[test]
    fn extraction_strand_symmetric(seq in dna(30..120), k in 5usize..16) {
        let rc = base::reverse_complement_ascii(&seq);
        let mut a: Vec<Kmer1> = extract_kmers::<1>(&seq, k).into_iter().map(|h| h.kmer).collect();
        let mut b: Vec<Kmer1> = extract_kmers::<1>(&rc, k).into_iter().map(|h| h.kmer).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// On dirty input every produced hit is clean and correctly positioned,
    /// and no hit spans an ambiguous base.
    #[test]
    fn dirty_input_hits_are_clean(seq in dirty_dna(20..150), k in 3usize..12) {
        let hits = extract_kmers::<1>(&seq, k);
        for h in &hits {
            let window = &seq[h.pos as usize..h.pos as usize + k];
            prop_assert!(base::is_clean(window));
            let (canon, _) = Kmer1::from_ascii(window).unwrap().canonical();
            prop_assert_eq!(h.kmer, canon);
        }
        // Completeness: every clean window appears exactly once.
        let clean_windows = (0..=seq.len().saturating_sub(k))
            .filter(|&s| base::is_clean(&seq[s..s + k]))
            .count();
        prop_assert_eq!(hits.len(), clean_windows);
    }

    /// Owner mapping is total and stable for any rank count.
    #[test]
    fn owner_in_range(seq in dna(17..18), p in 1usize..2000) {
        let k = Kmer1::from_ascii(&seq).unwrap();
        let o = k.owner(p);
        prop_assert!(o < p);
        prop_assert_eq!(o, k.owner(p));
    }

    /// Two-word k-mers preserve all single-word invariants.
    #[test]
    fn two_word_round_trip(seq in dna(33..65)) {
        let k = Kmer2::from_ascii(&seq).unwrap();
        prop_assert_eq!(k.to_ascii(), seq.clone());
        prop_assert_eq!(k.reverse_complement().reverse_complement(), k);
        prop_assert_eq!(
            k.reverse_complement().to_ascii(),
            base::reverse_complement_ascii(&seq)
        );
    }

    /// Strand byte codec round-trips.
    #[test]
    fn strand_codec(v in 0u8..2) {
        let s = Strand::from_u8(v);
        prop_assert_eq!(Strand::from_u8(s.as_u8()), s);
    }

    /// Hashing differs between a k-mer and any single-base mutation
    /// (regression guard against weak mixing).
    #[test]
    fn hash_sensitive_to_mutation(seq in dna(17..18), pos in 0usize..17) {
        let k = Kmer1::from_ascii(&seq).unwrap();
        let mut mutated = k;
        let old = mutated.get_base(pos);
        mutated.set_base(pos, (old + 1) & 3);
        prop_assert_ne!(k.hash64(), mutated.hash64());
    }
}

/// The palindrome edge case: a k-mer equal to its own reverse complement
/// must canonicalize to itself on the Forward strand.
#[test]
fn palindrome_canonicalizes_forward() {
    let k = Kmer::<1>::from_ascii(b"ACGT").unwrap();
    assert_eq!(k.reverse_complement(), k);
    let (canon, strand) = k.canonical();
    assert_eq!(canon, k);
    assert_eq!(strand, Strand::Forward);
}
