//! The paper's two workloads as scalable presets.
//!
//! §5: *E. coli 30×* — 16 890 reads, mean 9 958 bp, PacBio RS II P5-C3
//! (≈ 15 % error), 266 MB; *E. coli 100×* — 91 394 reads, mean 6 934 bp,
//! P4-C2 (≈ 14 % error), 929 MB. Both from the 4.64 Mb MG1655 genome.
//!
//! A `scale` knob shrinks the genome (and with it every derived quantity)
//! so the full pipeline × node-count × platform sweep fits in CI, while
//! `scale = 1.0` reproduces paper-sized inputs. Workload *shape* (depth,
//! read length, error rate — the variables §3 says determine cost) is
//! preserved exactly at any scale.

use crate::errors::ErrorModel;
use crate::genome::GenomeSpec;
use crate::reads::{simulate_reads, ReadSimSpec, SyntheticDataset};

/// E. coli MG1655 genome length (bases).
pub const ECOLI_GENOME: usize = 4_641_652;

/// Scaled E. coli 30× (PacBio P5-C3-like, mean read 9 958 bp, 15 % error).
pub fn ecoli_30x_like(scale: f64, seed: u64) -> SyntheticDataset {
    preset(scale, seed, 30.0, 9_958, 0.15)
}

/// Scaled E. coli 100× (PacBio P4-C2-like, mean read 6 934 bp, 14 % error).
pub fn ecoli_100x_like(scale: f64, seed: u64) -> SyntheticDataset {
    preset(scale, seed, 100.0, 6_934, 0.14)
}

/// The "sample" dataset of Table 2 (a slice of E. coli 30×): same shape,
/// one fifth of the coverage.
pub fn ecoli_30x_sample_like(scale: f64, seed: u64) -> SyntheticDataset {
    preset(scale, seed, 6.0, 9_958, 0.15)
}

fn preset(scale: f64, seed: u64, depth: f64, mean_len: usize, err: f64) -> SyntheticDataset {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let size = ((ECOLI_GENOME as f64 * scale) as usize).max(4 * mean_len.min(20_000));
    let genome = GenomeSpec {
        size,
        repeat_fraction: 0.03,
        repeat_unit_len: 700,
        repeat_families: 5,
        seed: seed ^ 0x9E37_79B9,
    }
    .generate();
    // Keep reads shorter than the scaled genome.
    let mean = mean_len.min(size / 4);
    simulate_reads(
        &genome,
        &ReadSimSpec {
            depth,
            mean_len: mean,
            len_sigma: 0.35,
            min_len: (mean / 10).max(200),
            errors: ErrorModel::pacbio(err),
            seed,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_shapes() {
        let ds = ecoli_30x_like(0.01, 1);
        assert!((ds.realized_depth() - 30.0).abs() < 2.0);
        let ds100 = ecoli_100x_like(0.005, 1);
        assert!((ds100.realized_depth() - 100.0).abs() < 5.0);
        // 100x preset has shorter reads than 30x at the same scale basis.
        assert!(ds100.mean_read_len() < ds.mean_read_len());
    }

    #[test]
    fn scale_controls_size() {
        // Note the generator clamps tiny genomes to ~4 mean read lengths,
        // so compare scales above that floor.
        let small = ecoli_30x_like(0.01, 2);
        let large = ecoli_30x_like(0.04, 2);
        assert!(large.genome.len() > 3 * small.genome.len());
        assert!(large.reads.len() > 3 * small.reads.len());
    }

    #[test]
    fn sample_preset_is_lighter() {
        let full = ecoli_30x_like(0.01, 3);
        let sample = ecoli_30x_sample_like(0.01, 3);
        assert!(sample.reads.total_bases() < full.reads.total_bases() / 3);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn scale_validated() {
        let _ = ecoli_30x_like(0.0, 1);
    }
}
