//! Synthetic genome generation.
//!
//! The paper's inputs are PacBio read sets from E. coli MG1655 (§5). Real
//! genomes are not random: repeated regions are what make high-frequency
//! k-mers exist and are the reason diBELLA filters k-mers above the
//! threshold `m` (§2). The generator therefore plants tandem and
//! interspersed repeats in an otherwise uniform background so that the
//! retained-k-mer fraction and the `m`-filter behave as on real data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for synthetic genome construction.
#[derive(Clone, Debug)]
pub struct GenomeSpec {
    /// Genome length in bases.
    pub size: usize,
    /// Fraction of the genome covered by copies of repeat elements
    /// (E. coli is ~1–5 % repetitive; default 0.03).
    pub repeat_fraction: f64,
    /// Length of each planted repeat element.
    pub repeat_unit_len: usize,
    /// Number of distinct repeat families.
    pub repeat_families: usize,
    /// RNG seed (every dataset is fully reproducible).
    pub seed: u64,
}

impl Default for GenomeSpec {
    fn default() -> Self {
        Self {
            size: 100_000,
            repeat_fraction: 0.03,
            repeat_unit_len: 500,
            repeat_families: 4,
            seed: 0xD1BE_11A0,
        }
    }
}

impl GenomeSpec {
    /// Generate the genome.
    ///
    /// # Panics
    /// Panics if `size == 0` or `repeat_fraction ∉ [0, 1)`.
    pub fn generate(&self) -> Vec<u8> {
        assert!(self.size > 0, "genome size must be positive");
        assert!(
            (0.0..1.0).contains(&self.repeat_fraction),
            "repeat fraction out of range"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut genome: Vec<u8> = (0..self.size)
            .map(|_| b"ACGT"[rng.gen_range(0..4)])
            .collect();

        if self.repeat_fraction > 0.0 && self.repeat_unit_len < self.size {
            // Build repeat families and paste copies at random positions.
            let families: Vec<Vec<u8>> = (0..self.repeat_families.max(1))
                .map(|_| {
                    (0..self.repeat_unit_len)
                        .map(|_| b"ACGT"[rng.gen_range(0..4)])
                        .collect()
                })
                .collect();
            let target_bases = (self.size as f64 * self.repeat_fraction) as usize;
            let copies = (target_bases / self.repeat_unit_len).max(1);
            for _ in 0..copies {
                let fam = &families[rng.gen_range(0..families.len())];
                let at = rng.gen_range(0..self.size - self.repeat_unit_len);
                genome[at..at + fam.len()].copy_from_slice(fam);
            }
        }
        genome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_for_a_seed() {
        let spec = GenomeSpec { size: 5_000, ..Default::default() };
        assert_eq!(spec.generate(), spec.generate());
        let other = GenomeSpec { seed: 7, ..spec.clone() };
        assert_ne!(spec.generate(), other.generate());
    }

    #[test]
    fn length_and_alphabet() {
        let g = GenomeSpec { size: 12_345, ..Default::default() }.generate();
        assert_eq!(g.len(), 12_345);
        assert!(g.iter().all(|b| b"ACGT".contains(b)));
    }

    #[test]
    fn repeats_create_high_frequency_kmers() {
        let k = 15usize;
        let count_max = |repeat_fraction: f64| {
            let g = GenomeSpec {
                size: 60_000,
                repeat_fraction,
                repeat_unit_len: 400,
                repeat_families: 2,
                seed: 99,
            }
            .generate();
            let mut counts: HashMap<&[u8], u32> = HashMap::new();
            for w in g.windows(k) {
                *counts.entry(w).or_default() += 1;
            }
            counts.values().copied().max().unwrap()
        };
        // Without repeats a 15-mer in 60 kb virtually never recurs; with
        // repeats the family k-mers appear once per copy.
        assert!(count_max(0.0) <= 2);
        assert!(count_max(0.10) >= 5);
    }

    #[test]
    #[should_panic(expected = "genome size must be positive")]
    fn zero_size_rejected() {
        let _ = GenomeSpec { size: 0, ..Default::default() }.generate();
    }
}
