//! # dibella-datagen
//!
//! Synthetic data substituting for the paper's PacBio E. coli read sets
//! (DESIGN.md §2): reproducible genomes with planted repeat structure, a
//! PacBio-CLR-like insertion-dominated error model, log-normal read
//! sampling on both strands, scalable E. coli 30×/100× presets, and —
//! something the real data lacks — exact ground-truth read layouts for
//! overlap-recall evaluation.

#![warn(missing_docs)]

pub mod errors;
pub mod genome;
pub mod presets;
pub mod reads;

pub use errors::ErrorModel;
pub use genome::GenomeSpec;
pub use presets::{ecoli_100x_like, ecoli_30x_like, ecoli_30x_sample_like, ECOLI_GENOME};
pub use reads::{simulate_reads, ReadSimSpec, SyntheticDataset, TrueLayout};
