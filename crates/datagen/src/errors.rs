//! Sequencing error models.
//!
//! Long-read technologies have error rates of 5–35 % (paper §1); PacBio
//! CLR chemistry (RS II P5-C3 / P4-C2, the paper's §5 data) is
//! insertion-dominated. The model applies independent per-base errors with
//! configurable substitution/insertion/deletion rates.

use rand::rngs::StdRng;
use rand::Rng;

/// Independent per-base error model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorModel {
    /// Probability a base is substituted.
    pub sub_rate: f64,
    /// Probability an extra base is inserted after a base.
    pub ins_rate: f64,
    /// Probability a base is deleted.
    pub del_rate: f64,
}

impl ErrorModel {
    /// PacBio CLR-like profile at a given total error rate, split in the
    /// chemistry's characteristic ~ 55 % insertions / 25 % deletions /
    /// 20 % substitutions.
    pub fn pacbio(total: f64) -> Self {
        assert!((0.0..0.6).contains(&total), "total error rate out of range");
        Self {
            sub_rate: total * 0.20,
            ins_rate: total * 0.55,
            del_rate: total * 0.25,
        }
    }

    /// A perfect sequencer (for pipeline determinism tests).
    pub const fn perfect() -> Self {
        Self { sub_rate: 0.0, ins_rate: 0.0, del_rate: 0.0 }
    }

    /// Total per-base error probability.
    pub fn total(&self) -> f64 {
        self.sub_rate + self.ins_rate + self.del_rate
    }

    /// Corrupt `template` according to the model.
    pub fn apply(&self, template: &[u8], rng: &mut StdRng) -> Vec<u8> {
        let mut out = Vec::with_capacity(template.len() + template.len() / 8);
        for &b in template {
            let r: f64 = rng.gen();
            if r < self.del_rate {
                continue; // base dropped
            }
            if r < self.del_rate + self.sub_rate {
                // Substitute with one of the three other bases.
                let alternatives: [u8; 3] = match b {
                    b'A' => [b'C', b'G', b'T'],
                    b'C' => [b'A', b'G', b'T'],
                    b'G' => [b'A', b'C', b'T'],
                    _ => [b'A', b'C', b'G'],
                };
                out.push(alternatives[rng.gen_range(0..3)]);
            } else {
                out.push(b);
            }
            if rng.gen::<f64>() < self.ins_rate {
                out.push(b"ACGT"[rng.gen_range(0..4)]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn perfect_model_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = b"ACGTACGTACGT".to_vec();
        assert_eq!(ErrorModel::perfect().apply(&t, &mut rng), t);
    }

    #[test]
    fn pacbio_split_sums_to_total() {
        let m = ErrorModel::pacbio(0.15);
        assert!((m.total() - 0.15).abs() < 1e-12);
        assert!(m.ins_rate > m.del_rate && m.del_rate > m.sub_rate);
    }

    #[test]
    fn error_rate_close_to_design() {
        // Measure edit distance rate on a long template.
        let template: Vec<u8> = (0..20_000).map(|i| b"ACGT"[(i * 13 + 2) % 4]).collect();
        let mut rng = StdRng::seed_from_u64(42);
        let noisy = ErrorModel::pacbio(0.15).apply(&template, &mut rng);
        // Length change reflects ins − del ≈ 0.15·(0.55−0.25) = 4.5 %.
        let growth = noisy.len() as f64 / template.len() as f64 - 1.0;
        assert!((0.02..0.07).contains(&growth), "growth {growth}");
        // Mismatch fraction over the common prefix scale should exceed the
        // substitution rate alone (indels shift frames).
        let mismatches = template
            .iter()
            .zip(&noisy)
            .filter(|(a, b)| a != b)
            .count() as f64
            / template.len().min(noisy.len()) as f64;
        assert!(mismatches > 0.02, "mismatch rate {mismatches}");
    }

    #[test]
    fn deterministic_given_seed() {
        let t: Vec<u8> = (0..500).map(|i| b"ACGT"[i % 4]).collect();
        let a = ErrorModel::pacbio(0.1).apply(&t, &mut StdRng::seed_from_u64(7));
        let b = ErrorModel::pacbio(0.1).apply(&t, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn absurd_error_rate_rejected() {
        let _ = ErrorModel::pacbio(0.9);
    }
}
