//! Long-read sampling with ground-truth layout tracking.
//!
//! Reads are sampled from the genome at uniform positions with log-normal
//! lengths (the long-tailed distribution of PacBio CLR read sets), on a
//! random strand, then corrupted by the [`crate::errors::ErrorModel`].
//! Every read's true genome interval and strand are kept — that layout is
//! the ground truth the overlap-recall integration tests evaluate against
//! (the luxury a synthetic dataset has over the paper's real ones).

use crate::errors::ErrorModel;
use dibella_io::{Read, ReadId, ReadSet};
use dibella_kmer::base::reverse_complement_ascii;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// True placement of a sampled read on the genome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrueLayout {
    /// Read ID (index into the generated [`ReadSet`]).
    pub id: ReadId,
    /// Genome interval `[start, end)` the read was sampled from.
    pub start: usize,
    /// Exclusive end of the sampled interval.
    pub end: usize,
    /// `true` if the read is the reverse complement of the interval.
    pub reverse: bool,
}

impl TrueLayout {
    /// Length of genome overlap with another layout.
    pub fn overlap_with(&self, other: &TrueLayout) -> usize {
        let lo = self.start.max(other.start);
        let hi = self.end.min(other.end);
        hi.saturating_sub(lo)
    }
}

/// Read sampling parameters.
#[derive(Clone, Debug)]
pub struct ReadSimSpec {
    /// Target depth of coverage `d` (paper Eq. 1: `N = G·d`).
    pub depth: f64,
    /// Mean read length (paper §5: 9 958 bp for E. coli 30×, 6 934 bp for
    /// 100×).
    pub mean_len: usize,
    /// Log-normal sigma of the length distribution (≈ 0.35 for CLR).
    pub len_sigma: f64,
    /// Minimum read length (shorter samples are redrawn/clamped).
    pub min_len: usize,
    /// Error model applied to each read.
    pub errors: ErrorModel,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ReadSimSpec {
    fn default() -> Self {
        Self {
            depth: 30.0,
            mean_len: 10_000,
            len_sigma: 0.35,
            min_len: 500,
            errors: ErrorModel::pacbio(0.15),
            seed: 0xBE11A,
        }
    }
}

/// A generated dataset: reads plus ground truth.
#[derive(Clone, Debug)]
pub struct SyntheticDataset {
    /// The sampled, error-corrupted reads.
    pub reads: ReadSet,
    /// Per-read true genome placement (index = read ID).
    pub layouts: Vec<TrueLayout>,
    /// The underlying genome.
    pub genome: Vec<u8>,
}

impl SyntheticDataset {
    /// All ground-truth overlapping pairs `(a, b)` with `a < b` whose
    /// genome intervals intersect in at least `min_overlap` bases.
    pub fn true_overlaps(&self, min_overlap: usize) -> Vec<(ReadId, ReadId)> {
        // Sweep by interval start: O(n log n + pairs).
        let mut by_start: Vec<&TrueLayout> = self.layouts.iter().collect();
        by_start.sort_by_key(|l| l.start);
        let mut out = Vec::new();
        for (i, a) in by_start.iter().enumerate() {
            for b in by_start[i + 1..].iter() {
                if b.start + min_overlap > a.end {
                    break;
                }
                if a.overlap_with(b) >= min_overlap {
                    let (x, y) = if a.id < b.id { (a.id, b.id) } else { (b.id, a.id) };
                    out.push((x, y));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Mean length of the generated reads.
    pub fn mean_read_len(&self) -> f64 {
        self.reads.mean_length()
    }

    /// Realized depth of coverage (`total read bases / genome size`).
    pub fn realized_depth(&self) -> f64 {
        self.reads.total_bases() as f64 / self.genome.len() as f64
    }
}

/// Sample a read set from `genome` according to `spec`.
pub fn simulate_reads(genome: &[u8], spec: &ReadSimSpec) -> SyntheticDataset {
    assert!(spec.depth > 0.0 && spec.mean_len > 0);
    assert!(
        genome.len() > spec.min_len,
        "genome shorter than the minimum read length"
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let target_bases = (genome.len() as f64 * spec.depth) as u64;

    // Log-normal with the requested mean: mu = ln(mean) − sigma²/2.
    let mu = (spec.mean_len as f64).ln() - spec.len_sigma * spec.len_sigma / 2.0;
    let sample_len = |rng: &mut StdRng| -> usize {
        // Box-Muller standard normal.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let len = (mu + spec.len_sigma * z).exp() as usize;
        len.clamp(spec.min_len, genome.len())
    };

    let mut reads = ReadSet::new();
    let mut layouts = Vec::new();
    let mut total = 0u64;
    let mut id: ReadId = 0;
    while total < target_bases {
        let len = sample_len(&mut rng);
        let start = rng.gen_range(0..=genome.len() - len);
        let reverse = rng.gen::<bool>();
        let template = &genome[start..start + len];
        let oriented = if reverse {
            reverse_complement_ascii(template)
        } else {
            template.to_vec()
        };
        let seq = spec.errors.apply(&oriented, &mut rng);
        total += seq.len() as u64;
        layouts.push(TrueLayout { id, start, end: start + len, reverse });
        reads.push(Read::new(id, format!("sim_{id}"), seq));
        id += 1;
    }
    SyntheticDataset {
        reads,
        layouts,
        genome: genome.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::GenomeSpec;

    fn small_dataset(depth: f64, seed: u64) -> SyntheticDataset {
        let genome = GenomeSpec { size: 50_000, seed: 3, ..Default::default() }.generate();
        simulate_reads(
            &genome,
            &ReadSimSpec {
                depth,
                mean_len: 3_000,
                min_len: 300,
                seed,
                ..Default::default()
            },
        )
    }

    #[test]
    fn depth_and_length_targets_met() {
        let ds = small_dataset(20.0, 11);
        assert!((ds.realized_depth() - 20.0).abs() < 1.0, "{}", ds.realized_depth());
        let mean = ds.mean_read_len();
        assert!((2_000.0..4_500.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn deterministic() {
        let a = small_dataset(5.0, 7);
        let b = small_dataset(5.0, 7);
        assert_eq!(a.reads.len(), b.reads.len());
        for (x, y) in a.reads.iter().zip(b.reads.iter()) {
            assert_eq!(x.seq, y.seq);
        }
    }

    #[test]
    fn layouts_match_reads() {
        let ds = small_dataset(8.0, 5);
        assert_eq!(ds.layouts.len(), ds.reads.len());
        for (i, l) in ds.layouts.iter().enumerate() {
            assert_eq!(l.id as usize, i);
            assert!(l.end <= ds.genome.len());
            assert!(l.end > l.start);
        }
        // Both strands occur.
        assert!(ds.layouts.iter().any(|l| l.reverse));
        assert!(ds.layouts.iter().any(|l| !l.reverse));
    }

    #[test]
    fn true_overlaps_sane() {
        let ds = small_dataset(15.0, 9);
        let pairs = ds.true_overlaps(1_000);
        // With 15x of 3kb reads on 50kb there must be plenty of overlaps.
        assert!(pairs.len() > 100, "only {} pairs", pairs.len());
        // Verify a sample against the definition.
        for &(a, b) in pairs.iter().take(50) {
            assert!(a < b);
            let ov = ds.layouts[a as usize].overlap_with(&ds.layouts[b as usize]);
            assert!(ov >= 1_000);
        }
        // Deduplicated and sorted.
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, pairs);
        // Stronger threshold → subset.
        let strict = ds.true_overlaps(2_000);
        assert!(strict.len() < pairs.len());
        assert!(strict.iter().all(|p| pairs.binary_search(p).is_ok()));
    }

    #[test]
    fn perfect_reads_reproduce_genome_slices() {
        let genome = GenomeSpec { size: 20_000, seed: 2, ..Default::default() }.generate();
        let ds = simulate_reads(
            &genome,
            &ReadSimSpec {
                depth: 3.0,
                mean_len: 2_000,
                min_len: 200,
                errors: ErrorModel::perfect(),
                seed: 1,
                ..Default::default()
            },
        );
        for (read, layout) in ds.reads.iter().zip(&ds.layouts) {
            let slice = &genome[layout.start..layout.end];
            if layout.reverse {
                assert_eq!(read.seq, reverse_complement_ascii(slice));
            } else {
                assert_eq!(read.seq, slice);
            }
        }
    }
}
