//! Differential bit-identity of the lane-SIMD kernels vs the scalar
//! reference — the property suite behind the "SIMD changes throughput,
//! never output" guarantee.
//!
//! Every case drives **both** implementations through ONE thread-local
//! [`AlignWorkspace`] that is never reset, so the ~1k random inputs
//! double as a dirty-reuse test: the SIMD kernels lay the shared row
//! buffers out differently (sentinel slot + lane padding), and any
//! stale-scratch leak between layouts would diverge here. Sweeps cover
//! sequence lengths from 0 to 4k (including lengths below one SIMD
//! lane), PacBio-like error rates, random scoring parameters, the x-drop
//! `X`, band center/width clamped at matrix edges, and both walk
//! directions; scores, extents, `cells` tallies and CIGARs must all be
//! identical.

use dibella_align::{
    banded_sw_with, extend_seed_with, extend_xdrop_dir_with, global_alignment,
    global_alignment_with_workspace, AlignWorkspace, Cigar, Dir, KernelImpl, Scoring, SeedHit,
};
use proptest::prelude::*;
use std::cell::RefCell;

thread_local! {
    /// Deliberately shared, never-cleared workspace: every case of every
    /// property dirties it for the next one — alternating between the
    /// scalar and SIMD row layouts.
    static WS: RefCell<AlignWorkspace> = RefCell::new(AlignWorkspace::new());
}

fn with_ws<R>(f: impl FnOnce(&mut AlignWorkspace) -> R) -> R {
    WS.with(|cell| f(&mut cell.borrow_mut()))
}

fn dna(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(b"ACGT".to_vec()), len)
}

/// Random but always-valid scoring parameters (match > 0 > mismatch, gap).
fn scoring() -> impl Strategy<Value = Scoring> {
    (1i32..5, -5i32..0, -5i32..0).prop_map(|(ma, mi, gap)| Scoring::new(ma, mi, gap))
}

/// Apply a PacBio-like mutation stream to `template`: per-base byte `op`
/// drives substitutions, deletions and insertions, with the effective
/// error rate set by the op distribution the caller generates.
fn mutate(template: &[u8], ops: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(template.len() + 8);
    for (&base, &op) in template.iter().zip(ops) {
        match op {
            0..=7 => out.push(b"ACGT"[(op % 4) as usize]), // substitution
            8..=11 => {}                                   // deletion
            12..=15 => {
                // insertion before the kept base
                out.push(b"ACGT"[(op % 4) as usize]);
                out.push(base);
            }
            _ => out.push(base),
        }
    }
    out
}

/// Both x-drop kernels over the shared dirty workspace, scalar first.
fn xdrop_both(
    s: &[u8],
    t: &[u8],
    dir: Dir,
    sc: Scoring,
    x: i32,
) -> (dibella_align::Extension, dibella_align::Extension) {
    with_ws(|ws| {
        let scalar = extend_xdrop_dir_with(s, t, dir, sc, x, ws, KernelImpl::Scalar);
        let simd = extend_xdrop_dir_with(s, t, dir, sc, x, ws, KernelImpl::Simd);
        (scalar, simd)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]

    /// Sub-lane and tiny inputs (0..16 bases — shorter than one 8-wide
    /// SIMD lane) with random scoring and x: the all-edge regime where a
    /// masking or padding bug would live.
    #[test]
    fn sublane_xdrop_identical(
        s in dna(0..16),
        t in dna(0..16),
        sc in scoring(),
        x in 1i32..40,
    ) {
        let (scalar, simd) = xdrop_both(&s, &t, Dir::Fwd, sc, x);
        prop_assert_eq!(simd, scalar);
        let (scalar, simd) = xdrop_both(&s, &t, Dir::Rev, sc, x);
        prop_assert_eq!(simd, scalar);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]

    /// Mid-size unrelated pairs, both directions, random scoring and x.
    #[test]
    fn random_pair_xdrop_identical(
        s in dna(0..300),
        t in dna(0..300),
        sc in scoring(),
        x in 1i32..100,
    ) {
        let (scalar, simd) = xdrop_both(&s, &t, Dir::Fwd, sc, x);
        prop_assert_eq!(simd, scalar);
        let (scalar, simd) = xdrop_both(&s, &t, Dir::Rev, sc, x);
        prop_assert_eq!(simd, scalar);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// True overlaps at a controlled error rate: template + independent
    /// mutation streams for each copy, then full seed-and-extend (both
    /// directions + prologue) on both kernels — and the CIGAR of the
    /// aligned region afterwards, computed through the same dirty
    /// workspace the SIMD kernel just used.
    #[test]
    fn noisy_overlap_seed_extension_identical(
        template in dna(40..240),
        ops_a in prop::collection::vec(0u8..255, 240),
        ops_b in prop::collection::vec(0u8..255, 240),
        x in 1i32..60,
    ) {
        let a = mutate(&template, &ops_a);
        let b = mutate(&template, &ops_b);
        prop_assume!(a.len() >= 24 && b.len() >= 24);
        let seed = SeedHit { a_pos: a.len() / 3, b_pos: b.len() / 3, k: 12 };
        prop_assume!(seed.a_pos + seed.k <= a.len() && seed.b_pos + seed.k <= b.len());
        let sc = Scoring::bella();
        let (scalar, simd) = with_ws(|ws| {
            (
                extend_seed_with(&a, &b, seed, sc, x, ws, KernelImpl::Scalar),
                extend_seed_with(&a, &b, seed, sc, x, ws, KernelImpl::Simd),
            )
        });
        prop_assert_eq!(simd, scalar);

        // CIGAR of the aligned `a` region vs fresh-scratch reference: the
        // SIMD kernels must leave the shared workspace reusable by every
        // other kernel.
        let (a_s, a_e) = (simd.a_start, simd.a_end);
        let (b_s, b_e) = (simd.b_start, simd.b_end);
        let fresh: (i32, Cigar) = global_alignment(&a[a_s..a_e], &b[b_s..b_e], sc);
        let dirty = with_ws(|ws| global_alignment_with_workspace(&a[a_s..a_e], &b[b_s..b_e], sc, ws));
        prop_assert_eq!(dirty, fresh);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]

    /// Banded Smith-Waterman: random band center and width, including
    /// bands hanging off the matrix edges and widths exceeding both
    /// sequence lengths.
    #[test]
    fn banded_identical(
        s in dna(0..200),
        t in dna(0..200),
        center in -220i64..220,
        half_band in 1usize..96,
        sc in scoring(),
    ) {
        let (scalar, simd) = with_ws(|ws| {
            (
                banded_sw_with(&s, &t, center, half_band, sc, ws, KernelImpl::Scalar),
                banded_sw_with(&s, &t, center, half_band, sc, ws, KernelImpl::Simd),
            )
        });
        prop_assert_eq!(simd, scalar);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Long-read regime: 1–4 kb noisy overlaps, the shape stage 4
    /// actually runs. Few cases (they are big), but each covers thousands
    /// of antidiagonals of both kernels plus a wide banded pass.
    #[test]
    fn long_noisy_pairs_identical(
        template in dna(1000..4000),
        seed_byte in 0u8..255,
        x in 10i32..60,
    ) {
        // Cheap deterministic per-base op stream derived from the
        // template itself, offset by `seed_byte` — avoids generating a
        // second 4k vector per case.
        let ops_a: Vec<u8> = template
            .iter()
            .enumerate()
            .map(|(i, &b)| b.wrapping_mul(31).wrapping_add(i as u8) ^ seed_byte)
            .collect();
        let ops_b: Vec<u8> = ops_a.iter().map(|&o| o.rotate_left(3) ^ 0x5A).collect();
        let a = mutate(&template, &ops_a);
        let b = mutate(&template, &ops_b);
        let seed = SeedHit { a_pos: a.len() / 2, b_pos: b.len() / 2, k: 17 };
        prop_assume!(seed.a_pos + seed.k <= a.len() && seed.b_pos + seed.k <= b.len());
        let sc = Scoring::bella();
        let (scalar, simd) = with_ws(|ws| {
            (
                extend_seed_with(&a, &b, seed, sc, x, ws, KernelImpl::Scalar),
                extend_seed_with(&a, &b, seed, sc, x, ws, KernelImpl::Simd),
            )
        });
        prop_assert_eq!(simd, scalar);

        let (scalar, simd) = with_ws(|ws| {
            (
                banded_sw_with(&a, &b, 0, 64, sc, ws, KernelImpl::Scalar),
                banded_sw_with(&a, &b, 0, 64, sc, ws, KernelImpl::Simd),
            )
        });
        prop_assert_eq!(simd, scalar);
    }
}
