//! Proof (not just inspection) that the workspace kernels are
//! allocation-free in steady state: a counting global allocator wraps the
//! system allocator, and after one warm-up call the hot kernels must
//! perform **zero** heap allocations — per call, and therefore per
//! antidiagonal.
//!
//! Kept to a single `#[test]` so no sibling test thread can allocate
//! while a window is being counted.

use dibella_align::{
    banded_sw_with, banded_sw_with_workspace, extend_seed_with_workspace, extend_xdrop_with,
    extend_xdrop_with_workspace, AlignWorkspace, KernelImpl, Scoring, SeedHit,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations (incl. reallocations) performed while running `f`.
fn allocs_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCS.load(Ordering::Relaxed) - before, out)
}

fn noisy_pair(len: usize) -> (Vec<u8>, Vec<u8>) {
    // Deterministic template + light mutation so the extension runs the
    // full length (many antidiagonals — each a row alloc before this PR).
    let mut state = 0xFEED_5EEDu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let a: Vec<u8> = (0..len).map(|_| b"ACGT"[(next() % 4) as usize]).collect();
    let b: Vec<u8> = a
        .iter()
        .map(|&c| if next() % 20 == 0 { b"ACGT"[(next() % 4) as usize] } else { c })
        .collect();
    (a, b)
}

#[test]
fn warmed_workspace_kernels_do_not_allocate() {
    let (a, b) = noisy_pair(1_500);
    let sc = Scoring::bella();
    let seed = SeedHit { a_pos: 600, b_pos: 600, k: 17 };
    let mut ws = AlignWorkspace::new();

    // Warm up: first calls may grow the workspace buffers.
    let warm_x = extend_xdrop_with_workspace(&a, &b, sc, 25, &mut ws);
    let warm_s = extend_seed_with_workspace(&a, &b, seed, sc, 25, &mut ws);
    let warm_b = banded_sw_with_workspace(&a, &b, 0, 32, sc, &mut ws);
    assert!(warm_x.cells > 1_000, "extension too small to be probative");

    // Steady state: identical-shape calls must not touch the heap at all.
    let (n, again) = allocs_during(|| extend_xdrop_with_workspace(&a, &b, sc, 25, &mut ws));
    assert_eq!(n, 0, "extend_xdrop_with_workspace allocated {n}x in steady state");
    assert_eq!(again, warm_x);

    let (n, again) = allocs_during(|| extend_seed_with_workspace(&a, &b, seed, sc, 25, &mut ws));
    assert_eq!(n, 0, "extend_seed_with_workspace allocated {n}x in steady state");
    assert_eq!(again, warm_s);

    let (n, again) = allocs_during(|| banded_sw_with_workspace(&a, &b, 0, 32, sc, &mut ws));
    assert_eq!(n, 0, "banded_sw_with_workspace allocated {n}x in steady state");
    assert_eq!(again, warm_b);

    // A smaller problem after a bigger one must also stay allocation-free
    // (buffers shrink logically, never physically).
    let small_seed = SeedHit { a_pos: 100, b_pos: 100, k: 17 };
    let (n, _) = allocs_during(|| {
        extend_seed_with_workspace(&a[..400], &b[..400], small_seed, sc, 25, &mut ws)
    });
    assert_eq!(n, 0, "shrunken follow-up call allocated {n}x");

    // Both explicit kernel implementations — the lane-SIMD path lays the
    // same buffers out with sentinel + lane padding and stages
    // substitution scores in extra scratch; all of it must come from the
    // reused workspace. Warm each path once (the first SIMD call may grow
    // `sub_scores`/`rev_bytes`), then demand zero.
    for imp in [KernelImpl::Scalar, KernelImpl::Simd] {
        let warm = extend_xdrop_with(&a, &b, sc, 25, &mut ws, imp);
        assert_eq!(warm, warm_x, "kernel implementations must agree");
        let _ = banded_sw_with(&a, &b, 0, 32, sc, &mut ws, imp);
        let (n, again) = allocs_during(|| extend_xdrop_with(&a, &b, sc, 25, &mut ws, imp));
        assert_eq!(n, 0, "extend_xdrop_with({imp:?}) allocated {n}x in steady state");
        assert_eq!(again, warm_x);
        let (n, again) = allocs_during(|| banded_sw_with(&a, &b, 0, 32, sc, &mut ws, imp));
        assert_eq!(n, 0, "banded_sw_with({imp:?}) allocated {n}x in steady state");
        assert_eq!(again, warm_b);
        // Alternating implementations over the same workspace must also
        // be allocation-free once both are warm: layout switches reuse
        // capacity, never reallocate.
        let other = match imp {
            KernelImpl::Scalar => KernelImpl::Simd,
            KernelImpl::Simd => KernelImpl::Scalar,
        };
        let _ = extend_xdrop_with(&a, &b, sc, 25, &mut ws, other);
        let (n, _) = allocs_during(|| extend_xdrop_with(&a, &b, sc, 25, &mut ws, imp));
        assert_eq!(n, 0, "layout switch back to {imp:?} allocated {n}x");
    }
}
