//! Property tests: kernel cross-validation against the Smith-Waterman
//! oracle.

use dibella_align::{
    banded_sw, extend_seed, extend_xdrop, smith_waterman, Scoring, SeedHit,
};
use proptest::prelude::*;

fn dna(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(b"ACGT".to_vec()), len)
}

/// Mutate `seq` with substitutions/indels at roughly `rate`, seeded.
fn mutate(seq: &[u8], rate: f64, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut out = Vec::with_capacity(seq.len());
    for &b in seq {
        let r = (next() % 10_000) as f64 / 10_000.0;
        if r < rate {
            match next() % 3 {
                0 => out.push(b"ACGT"[(next() % 4) as usize]), // substitution
                1 => {
                    out.push(b);
                    out.push(b"ACGT"[(next() % 4) as usize]); // insertion
                }
                _ => {} // deletion
            }
        } else {
            out.push(b);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// x-drop prefix extension never exceeds the SW local optimum.
    #[test]
    fn xdrop_bounded_by_sw(s in dna(1..120), t in dna(1..120), x in 1i32..60) {
        let sc = Scoring::bella();
        let e = extend_xdrop(&s, &t, sc, x);
        let oracle = smith_waterman(&s, &t, sc);
        prop_assert!(e.score <= oracle.score,
            "xdrop {} > sw {}", e.score, oracle.score);
        prop_assert!(e.score >= 0);
        prop_assert!(e.s_ext <= s.len() && e.t_ext <= t.len());
    }

    /// x-drop score is monotone non-decreasing in X.
    #[test]
    fn xdrop_monotone_in_x(s in dna(10..150), seed in any::<u64>()) {
        let t = mutate(&s, 0.15, seed);
        prop_assume!(!t.is_empty());
        let sc = Scoring::bella();
        let mut prev = 0;
        for x in [1, 3, 8, 20, 60, 200] {
            let e = extend_xdrop(&s, &t, sc, x);
            prop_assert!(e.score >= prev, "x={x}: {} < {prev}", e.score);
            prev = e.score;
        }
    }

    /// With X larger than any possible drop, the extension equals the
    /// best prefix-pair score computed by unpruned DP.
    #[test]
    fn xdrop_infinite_x_equals_full_prefix_dp(s in dna(1..60), t in dna(1..60)) {
        let sc = Scoring::bella();
        let e = extend_xdrop(&s, &t, sc, 1_000_000);
        // Reference: full DP over prefixes (global start, free end).
        let n = s.len();
        let m = t.len();
        let mut dp = vec![vec![0i32; m + 1]; n + 1];
        for i in 0..=n {
            for j in 0..=m {
                if i == 0 && j == 0 { continue; }
                let mut v = i32::MIN / 4;
                if i > 0 { v = v.max(dp[i-1][j] + sc.gap); }
                if j > 0 { v = v.max(dp[i][j-1] + sc.gap); }
                if i > 0 && j > 0 {
                    v = v.max(dp[i-1][j-1] + sc.substitution(s[i-1], t[j-1]));
                }
                dp[i][j] = v;
            }
        }
        let best = dp.iter().flatten().copied().max().unwrap().max(0);
        prop_assert_eq!(e.score, best);
    }

    /// Seed-and-extend through a *true* shared window never beats SW and
    /// recovers at least the seed score when the window matches exactly.
    #[test]
    fn seeded_alignment_sound(
        genome in dna(60..200),
        a_off in 0usize..20,
        seed_rel in 0usize..20,
        noise in any::<u64>(),
    ) {
        let k = 12usize;
        // Two overlapping "reads" from the same genome region.
        prop_assume!(genome.len() >= a_off + 20 + seed_rel + k + 10);
        let a: Vec<u8> = genome[a_off..].to_vec();
        let b: Vec<u8> = genome[a_off + seed_rel..].to_vec();
        let _ = noise;
        let seed = SeedHit { a_pos: seed_rel, b_pos: 0, k };
        let sc = Scoring::bella();
        let al = extend_seed(&a, &b, seed, sc, 30);
        let oracle = smith_waterman(&a, &b, sc);
        prop_assert!(al.score <= oracle.score);
        prop_assert!(al.score >= k as i32, "seed not recovered: {}", al.score);
        // Coordinates are consistent.
        prop_assert!(al.a_start <= seed.a_pos && al.a_end >= seed.a_pos + k);
        prop_assert!(al.b_start <= seed.b_pos && al.b_end >= seed.b_pos + k);
        prop_assert!(al.a_end <= a.len() && al.b_end <= b.len());
    }

    /// Banded SW with a full-width band equals full SW; narrower bands
    /// never score higher.
    #[test]
    fn banded_bounded_and_converges(s in dna(5..80), t in dna(5..80)) {
        let sc = Scoring::bella();
        let full = smith_waterman(&s, &t, sc);
        let wide = banded_sw(&s, &t, 0, s.len() + t.len(), sc);
        prop_assert_eq!(wide.score, full.score);
        let mut prev = 0;
        for hb in [1usize, 2, 4, 8, 16, 64] {
            let b = banded_sw(&s, &t, 0, hb, sc);
            prop_assert!(b.score >= prev);
            prop_assert!(b.score <= full.score);
            prev = b.score;
        }
    }

    /// A noisy copy of a read aligns with score proportional to length
    /// (regression guard for the PacBio regime: 15 % error, unit scores).
    #[test]
    fn noisy_overlap_scores_scale(len in 200usize..500, seed in any::<u64>()) {
        let base: Vec<u8> = (0..len).map(|i| b"ACGT"[(i * 7 + 1) % 4]).collect();
        let noisy = mutate(&base, 0.15, seed);
        let sc = Scoring::bella();
        let e = extend_seed(
            &base,
            &noisy,
            SeedHit { a_pos: 0, b_pos: 0, k: 1 },
            sc,
            50,
        );
        // With e=15% and unit scores, expected per-base score ≈ 0.5; allow
        // a broad band.
        prop_assert!(e.score as f64 > 0.2 * len as f64,
            "score {} too low for len {len}", e.score);
    }
}

mod cigar_props {
    use dibella_align::{global_alignment, Scoring};
    use proptest::prelude::*;

    fn dna(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
        prop::collection::vec(prop::sample::select(b"ACGT".to_vec()), len)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The CIGAR path consumes exactly both inputs and replays to `b`.
        #[test]
        fn path_is_valid(a in dna(0..60), b in dna(0..60)) {
            let (_, cigar) = global_alignment(&a, &b, Scoring::bella());
            prop_assert_eq!(cigar.a_len(), a.len());
            prop_assert_eq!(cigar.b_len(), b.len());
            prop_assert_eq!(cigar.apply(&a, &b), b);
        }

        /// The traceback's score equals the DP score recomputed from the
        /// path, and the path's edit count bounds the score from below.
        #[test]
        fn score_consistency(a in dna(1..50), b in dna(1..50)) {
            let sc = Scoring::bella();
            let (score, cigar) = global_alignment(&a, &b, sc);
            let recomputed: i32 = cigar.runs().iter().map(|&(n, op)| {
                use dibella_align::CigarOp::*;
                n as i32 * match op { Match => sc.match_score, Mismatch => sc.mismatch, _ => sc.gap }
            }).sum();
            prop_assert_eq!(score, recomputed);
            prop_assert!(cigar.identity() >= 0.0 && cigar.identity() <= 1.0);
        }
    }
}
