//! Bit-identity of the `*_with_workspace` kernels vs the legacy
//! allocating implementations.
//!
//! Every property routes its workspace calls through ONE thread-local
//! [`AlignWorkspace`] that is never reset between cases — so the ~1k
//! random inputs double as a back-to-back dirty-reuse test: any kernel
//! reading stale scratch from a previous (differently-sized, differently-
//! shaped) call would diverge from the fresh legacy run and fail here.

use dibella_align::{
    banded_sw, banded_sw_with_workspace, extend_seed, extend_seed_with_workspace, extend_xdrop,
    extend_xdrop_dir_with_workspace, extend_xdrop_with_workspace, global_alignment,
    global_alignment_with_workspace, AlignWorkspace, Cigar, Dir, Scoring, SeedHit,
};
use proptest::prelude::*;
use std::cell::RefCell;

thread_local! {
    /// Deliberately shared, never-cleared workspace: every case of every
    /// property dirties it for the next one.
    static WS: RefCell<AlignWorkspace> = RefCell::new(AlignWorkspace::new());
}

fn with_ws<R>(f: impl FnOnce(&mut AlignWorkspace) -> R) -> R {
    WS.with(|cell| f(&mut cell.borrow_mut()))
}

fn dna(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(b"ACGT".to_vec()), len)
}

const S: Scoring = Scoring::bella();

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Forward x-drop: workspace kernel equals the legacy one, including
    /// the `cells` tally.
    #[test]
    fn xdrop_matches_legacy(s in dna(0..160), t in dna(0..160), x in 1i32..80) {
        let legacy = extend_xdrop(&s, &t, S, x);
        let ws = with_ws(|ws| extend_xdrop_with_workspace(&s, &t, S, x, ws));
        prop_assert_eq!(ws, legacy);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]

    /// Reverse-direction extension (in-place backward walk) equals the
    /// legacy recipe of extending over materialized reversed copies.
    #[test]
    fn rev_dir_matches_reversed_copies(s in dna(0..140), t in dna(0..140), x in 1i32..60) {
        let s_rev: Vec<u8> = s.iter().rev().copied().collect();
        let t_rev: Vec<u8> = t.iter().rev().copied().collect();
        let legacy = extend_xdrop(&s_rev, &t_rev, S, x);
        let ws = with_ws(|ws| extend_xdrop_dir_with_workspace(&s, &t, Dir::Rev, S, x, ws));
        prop_assert_eq!(ws, legacy);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Full seed-and-extend (both directions + seed prologue) is
    /// bit-identical, over true overlapping windows of a random genome.
    #[test]
    fn seed_extension_matches_legacy(
        genome in dna(60..220),
        a_off in 0usize..20,
        seed_rel in 0usize..20,
        x in 1i32..60,
    ) {
        let k = 12usize;
        prop_assume!(genome.len() >= a_off + seed_rel + k + 30);
        let a: Vec<u8> = genome[a_off..].to_vec();
        let b: Vec<u8> = genome[a_off + seed_rel..].to_vec();
        let seed = SeedHit { a_pos: seed_rel, b_pos: 0, k };
        let legacy = extend_seed(&a, &b, seed, S, x);
        let ws = with_ws(|ws| extend_seed_with_workspace(&a, &b, seed, S, x, ws));
        prop_assert_eq!(ws, legacy);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Banded Smith-Waterman with caller-owned rows is bit-identical.
    #[test]
    fn banded_matches_legacy(
        s in dna(0..150),
        t in dna(0..150),
        center in -20i64..20,
        half_band in 1usize..40,
    ) {
        let legacy = banded_sw(&s, &t, center, half_band, S);
        let ws = with_ws(|ws| banded_sw_with_workspace(&s, &t, center, half_band, S, ws));
        prop_assert_eq!(ws, legacy);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// Mixed call orders over one dirty workspace: each case interleaves
    /// xdrop, banded and cigar kernels in an input-dependent order, and
    /// every single result must match its legacy twin.
    #[test]
    fn mixed_call_orders_stay_identical(
        s in dna(1..120),
        t in dna(1..120),
        x in 1i32..50,
        order in 0u8..6,
    ) {
        // All legacy results first (fresh scratch each).
        let legacy_x = extend_xdrop(&s, &t, S, x);
        let legacy_b = banded_sw(&s, &t, 0, 16, S);
        let legacy_c: (i32, Cigar) = global_alignment(&s, &t, S);

        // Then the workspace twins, in one of six interleavings.
        let (ws_x, ws_b, ws_c) = with_ws(|ws| {
            let mut rx = None;
            let mut rb = None;
            let mut rc = None;
            let seq: [usize; 3] = match order {
                0 => [0, 1, 2],
                1 => [0, 2, 1],
                2 => [1, 0, 2],
                3 => [1, 2, 0],
                4 => [2, 0, 1],
                _ => [2, 1, 0],
            };
            for op in seq {
                match op {
                    0 => rx = Some(extend_xdrop_with_workspace(&s, &t, S, x, ws)),
                    1 => rb = Some(banded_sw_with_workspace(&s, &t, 0, 16, S, ws)),
                    _ => rc = Some(global_alignment_with_workspace(&s, &t, S, ws)),
                }
            }
            (rx.unwrap(), rb.unwrap(), rc.unwrap())
        });
        prop_assert_eq!(ws_x, legacy_x);
        prop_assert_eq!(ws_b, legacy_b);
        prop_assert_eq!(ws_c, legacy_c);
    }
}
