//! Golden-vector edge cases for both alignment-kernel implementations.
//!
//! Unlike the random differential suite (`simd_identity.rs`), these are
//! hand-picked worst cases with **committed** expected outputs, so a bug
//! that broke scalar and SIMD identically would still be caught. Each
//! case runs on both kernel paths through one shared dirty workspace and
//! must reproduce the committed (score, s_ext, t_ext, cells) tuple
//! exactly.
//!
//! To regenerate the tables after an intentional kernel change:
//!
//! ```text
//! cargo test -p dibella-align --test kernel_golden -- --ignored --nocapture
//! ```
//!
//! and paste the printed rows (they are produced by the scalar oracle).

use dibella_align::{
    banded_sw_with, extend_xdrop_dir_with, AlignWorkspace, Dir, KernelImpl, Scoring,
};

const BELLA: Scoring = Scoring::bella();

/// An x-drop golden case: inputs plus the expected
/// `(score, s_ext, t_ext, cells)`.
struct XCase {
    name: &'static str,
    s: &'static [u8],
    t: &'static [u8],
    scoring: Scoring,
    x: i32,
    expect: (i32, usize, usize, u64),
}

/// A banded golden case: inputs plus the expected
/// `(score, s_end, t_end, cells)`.
struct BCase {
    name: &'static str,
    s: &'static [u8],
    t: &'static [u8],
    center: i64,
    half_band: usize,
    scoring: Scoring,
    expect: (i32, usize, usize, u64),
}

/// 40-base homopolymer.
const POLY_A: &[u8] = b"AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA";
/// Same length, all-mismatching.
const POLY_C: &[u8] = b"CCCCCCCCCCCCCCCCCCCCCCCCCCCCCCCCCCCCCCCC";
/// Homopolymer with a 4-base deletion relative to POLY_A.
const POLY_A_SHORT: &[u8] = b"AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA";
/// Saturation-boundary scoring: one step from the scalar kernel's
/// NEG_INF = i32::MIN/4 sentinel arithmetic headroom.
const HUGE: Scoring = Scoring { match_score: 1 << 20, mismatch: -(1 << 20), gap: -(1 << 20) };

fn xcases() -> Vec<XCase> {
    vec![
        XCase { name: "both_empty", s: b"", t: b"", scoring: BELLA, x: 5, expect: (0, 0, 0, 0) },
        XCase { name: "s_empty", s: b"", t: b"ACGT", scoring: BELLA, x: 5, expect: (0, 0, 0, 0) },
        XCase { name: "t_empty", s: b"ACGT", t: b"", scoring: BELLA, x: 5, expect: (0, 0, 0, 0) },
        XCase { name: "one_base_match", s: b"A", t: b"A", scoring: BELLA, x: 5, expect: (1, 1, 1, 3) },
        XCase { name: "one_base_mismatch", s: b"A", t: b"C", scoring: BELLA, x: 5, expect: (0, 0, 0, 3) },
        XCase { name: "homopolymer_equal", s: POLY_A, t: POLY_A, scoring: BELLA, x: 10, expect: (40, 40, 40, 624) },
        XCase { name: "homopolymer_indel", s: POLY_A, t: POLY_A_SHORT, scoring: BELLA, x: 10, expect: (36, 36, 36, 582) },
        XCase { name: "all_mismatch", s: POLY_A, t: POLY_C, scoring: BELLA, x: 4, expect: (0, 0, 0, 34) },
        XCase { name: "mismatch_tail", s: b"AAAAGGGG", t: b"AAAACCCC", scoring: BELLA, x: 3, expect: (4, 4, 4, 51) },
        XCase { name: "tiny_x_immediate_stop", s: POLY_A, t: POLY_A, scoring: Scoring { match_score: 1, mismatch: -1, gap: -9 }, x: 1, expect: (0, 0, 0, 2) },
        XCase { name: "huge_scores_match_run", s: POLY_A, t: POLY_A, scoring: HUGE, x: 1 << 20, expect: (41943040, 40, 40, 198) },
        XCase { name: "huge_scores_mismatch", s: POLY_A, t: POLY_C, scoring: HUGE, x: 1 << 20, expect: (0, 0, 0, 7) },
        XCase { name: "asymmetric_lengths", s: b"ACGTACGTACGTACGTACGT", t: b"ACG", scoring: BELLA, x: 8, expect: (3, 3, 3, 39) },
    ]
}

fn bcases() -> Vec<BCase> {
    vec![
        BCase { name: "empty_s", s: b"", t: b"ACGT", center: 0, half_band: 4, scoring: BELLA, expect: (0, 0, 0, 0) },
        BCase { name: "empty_t", s: b"ACGT", t: b"", center: 0, half_band: 4, scoring: BELLA, expect: (0, 0, 0, 0) },
        BCase { name: "diagonal_match", s: POLY_A, t: POLY_A, center: 0, half_band: 2, scoring: BELLA, expect: (40, 40, 40, 194) },
        BCase { name: "all_mismatch", s: POLY_A, t: POLY_C, center: 0, half_band: 3, scoring: BELLA, expect: (0, 0, 0, 268) },
        BCase { name: "band_off_top_edge", s: POLY_A, t: POLY_A, center: 45, half_band: 3, scoring: BELLA, expect: (0, 0, 0, 0) },
        BCase { name: "band_off_bottom_edge", s: POLY_A, t: POLY_A, center: -45, half_band: 3, scoring: BELLA, expect: (0, 0, 0, 0) },
        BCase { name: "band_clipped_at_corner", s: POLY_A, t: POLY_A, center: 38, half_band: 4, scoring: BELLA, expect: (6, 6, 40, 21) },
        BCase { name: "band_wider_than_matrix", s: b"ACGTAC", t: b"GTACGT", center: 0, half_band: 20, scoring: BELLA, expect: (4, 4, 6, 36) },
        BCase { name: "one_base_band", s: b"G", t: b"G", center: 0, half_band: 1, scoring: BELLA, expect: (1, 1, 1, 1) },
        BCase { name: "huge_scores", s: POLY_A, t: POLY_A_SHORT, center: 0, half_band: 6, scoring: HUGE, expect: (37748736, 36, 36, 444) },
    ]
}

/// Prints the scalar oracle's outputs in source form for pasting into the
/// `expect` fields above. Ignored in normal runs.
#[test]
#[ignore = "generator for the committed expectations"]
fn print_golden() {
    let mut ws = AlignWorkspace::new();
    for c in xcases() {
        let e = extend_xdrop_dir_with(c.s, c.t, Dir::Fwd, c.scoring, c.x, &mut ws, KernelImpl::Scalar);
        println!("x {}: ({}, {}, {}, {})", c.name, e.score, e.s_ext, e.t_ext, e.cells);
    }
    for c in bcases() {
        let a = banded_sw_with(c.s, c.t, c.center, c.half_band, c.scoring, &mut ws, KernelImpl::Scalar);
        println!("b {}: ({}, {}, {}, {})", c.name, a.score, a.s_end, a.t_end, a.cells);
    }
}

#[test]
fn xdrop_golden_vectors_on_both_kernels() {
    let mut ws = AlignWorkspace::new();
    for c in xcases() {
        for imp in [KernelImpl::Scalar, KernelImpl::Simd] {
            let e = extend_xdrop_dir_with(c.s, c.t, Dir::Fwd, c.scoring, c.x, &mut ws, imp);
            assert_eq!(
                (e.score, e.s_ext, e.t_ext, e.cells),
                c.expect,
                "xdrop case {:?} on {imp:?}",
                c.name
            );
        }
        // The reverse walk over mirrored inputs must agree with the
        // committed forward expectation on both kernels, too.
        let s_rev: Vec<u8> = c.s.iter().rev().copied().collect();
        let t_rev: Vec<u8> = c.t.iter().rev().copied().collect();
        for imp in [KernelImpl::Scalar, KernelImpl::Simd] {
            let e = extend_xdrop_dir_with(&s_rev, &t_rev, Dir::Rev, c.scoring, c.x, &mut ws, imp);
            assert_eq!(
                (e.score, e.s_ext, e.t_ext, e.cells),
                c.expect,
                "reversed xdrop case {:?} on {imp:?}",
                c.name
            );
        }
    }
}

#[test]
fn banded_golden_vectors_on_both_kernels() {
    let mut ws = AlignWorkspace::new();
    for c in bcases() {
        for imp in [KernelImpl::Scalar, KernelImpl::Simd] {
            let a = banded_sw_with(c.s, c.t, c.center, c.half_band, c.scoring, &mut ws, imp);
            assert_eq!(
                (a.score, a.s_end, a.t_end, a.cells),
                c.expect,
                "banded case {:?} on {imp:?}",
                c.name
            );
        }
    }
}
