//! Portable integer SIMD lanes for the alignment kernels, and the
//! `DIBELLA_SIMD` kernel-selection knob.
//!
//! # Why a hand-rolled lane type
//!
//! The striped/vertical kernels in [`crate::xdrop`] and [`crate::banded`]
//! need exact, deterministic integer arithmetic — their contract is
//! **bit-identity** with the scalar kernels, checked by a differential
//! test suite (`tests/simd_identity.rs`, `tests/kernel_golden.rs`). On
//! stable Rust there is no `std::simd`, and explicit `core::arch`
//! intrinsics would tie the crate to one ISA and drag in `unsafe`. An
//! [`I32x8`] is instead a plain `[i32; 8]` with `#[inline(always)]`
//! lane-wise operations: every op is branchless straight-line integer
//! code, which LLVM auto-vectorizes to SSE2 (`paddd`/`pcmpgtd`/`pand`…)
//! on the x86-64 baseline and to NEON on aarch64 — and on any other
//! target it is still the *same arithmetic*, so results never depend on
//! the ISA. Eight lanes = two SSE2 registers or one AVX2 register,
//! enough for the vectorizer to amortize loop overhead either way.
//!
//! # Kernel selection
//!
//! Two implementations of each hot kernel exist forever (scalar and
//! lane-vectorized); [`KernelImpl`] names them. Which one an
//! auto-dispatching entry point ([`crate::extend_xdrop_with_workspace`],
//! [`crate::banded_sw_with_workspace`], …) runs is resolved from
//! [`SimdMode`]:
//!
//! * a **thread-local override** set via [`set_thread_simd_mode`] (the
//!   pipeline sets it from `PipelineConfig::simd` at the top of every
//!   alignment batch, so rayon workers inherit the config, not ambient
//!   process state);
//! * else the **`DIBELLA_SIMD` environment variable** (`scalar` | `auto`),
//!   read once per process;
//! * else [`SimdMode::Auto`], which runs the vectorized kernels.
//!
//! `scalar` pins the historical kernels — both paths stay reachable on
//! every build, which is what lets CI run the whole test suite under
//! `DIBELLA_SIMD=scalar` and the differential suites flip per call.

use std::cell::Cell;
use std::sync::OnceLock;

/// Lane count of [`I32x8`]. Row buffers used by the vector kernels are
/// padded to a multiple of this (plus sentinel slack) so full-width
/// loads never run out of bounds.
pub const LANES: usize = 8;

/// Which implementation of a hot alignment kernel to run.
///
/// Every auto-dispatching kernel entry point has an `*_with` twin taking
/// this explicitly — the differential tests drive both paths through one
/// shared dirty workspace and assert bit-identical results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelImpl {
    /// The historical branchy scalar kernel.
    Scalar,
    /// The striped/vertical lane-SIMD kernel ([`I32x8`] arithmetic).
    Simd,
}

/// The `DIBELLA_SIMD` knob: how auto-dispatching kernels pick a
/// [`KernelImpl`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SimdMode {
    /// Force the scalar kernels everywhere.
    Scalar,
    /// Use the lane-SIMD kernels (the default; they are portable, so
    /// "auto" resolves to SIMD on every target).
    #[default]
    Auto,
}

impl std::str::FromStr for SimdMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(SimdMode::Scalar),
            "auto" | "simd" => Ok(SimdMode::Auto),
            other => Err(format!("invalid SIMD mode {other:?} (scalar|auto)")),
        }
    }
}

impl std::fmt::Display for SimdMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SimdMode::Scalar => "scalar",
            SimdMode::Auto => "auto",
        })
    }
}

impl SimdMode {
    /// The [`KernelImpl`] this mode resolves to.
    pub fn kernel(self) -> KernelImpl {
        match self {
            SimdMode::Scalar => KernelImpl::Scalar,
            SimdMode::Auto => KernelImpl::Simd,
        }
    }
}

/// `DIBELLA_SIMD` parsed once per process. Panics on an unparsable value
/// — a silently ignored kernel knob is worse than a crash.
fn env_mode() -> SimdMode {
    static ENV: OnceLock<SimdMode> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("DIBELLA_SIMD") {
        Err(_) => SimdMode::default(),
        Ok(v) => v.parse().unwrap_or_else(|e| panic!("DIBELLA_SIMD: {e}")),
    })
}

thread_local! {
    /// Per-thread mode override (see [`set_thread_simd_mode`]).
    static THREAD_MODE: Cell<Option<SimdMode>> = const { Cell::new(None) };
}

/// Set (or with `None`, clear) this thread's kernel-mode override.
///
/// The alignment stage calls this at the top of every batch with the
/// pipeline config's `simd` field, so the choice follows the config onto
/// whichever executor thread runs the batch; `None` falls back to the
/// `DIBELLA_SIMD` environment knob.
pub fn set_thread_simd_mode(mode: Option<SimdMode>) {
    THREAD_MODE.with(|c| c.set(mode));
}

/// The mode auto-dispatching kernels resolve on this thread: the
/// thread-local override if set, else the `DIBELLA_SIMD` environment
/// knob, else [`SimdMode::Auto`].
pub fn thread_simd_mode() -> SimdMode {
    THREAD_MODE.with(|c| c.get()).unwrap_or_else(env_mode)
}

/// Eight `i32` lanes with branchless element-wise operations.
///
/// All arithmetic wraps (masked-out lanes may hold garbage whose sums
/// must not abort a debug build); callers only ever read lanes their
/// masks validate, where wrapping and two's-complement addition agree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct I32x8(pub [i32; LANES]);

impl I32x8 {
    /// All lanes = `v`.
    #[inline(always)]
    pub fn splat(v: i32) -> Self {
        Self([v; LANES])
    }

    /// Lanes `start, start+1, …, start+7`.
    #[inline(always)]
    pub fn iota(start: i32) -> Self {
        let mut a = [0i32; LANES];
        for (k, slot) in a.iter_mut().enumerate() {
            *slot = start.wrapping_add(k as i32);
        }
        Self(a)
    }

    /// Load lanes from `buf[at .. at + LANES]`.
    #[inline(always)]
    pub fn load(buf: &[i32], at: usize) -> Self {
        Self(buf[at..at + LANES].try_into().expect("lane load in bounds"))
    }

    /// Widen `buf[at .. at + LANES]` bytes to `i32` lanes.
    #[inline(always)]
    pub fn load_bytes(buf: &[u8], at: usize) -> Self {
        let b: [u8; LANES] = buf[at..at + LANES].try_into().expect("byte lane load in bounds");
        let mut a = [0i32; LANES];
        for (slot, &v) in a.iter_mut().zip(&b) {
            *slot = v as i32;
        }
        Self(a)
    }

    /// Store lanes into `buf[at .. at + LANES]`.
    #[inline(always)]
    pub fn store(self, buf: &mut [i32], at: usize) {
        buf[at..at + LANES].copy_from_slice(&self.0);
    }

    /// Lane-wise wrapping addition. Deliberately not `std::ops::Add`:
    /// `+` would suggest overflow-checked semantics, but masked-off
    /// lanes legitimately hold garbage that must wrap silently.
    #[inline(always)]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, o: Self) -> Self {
        let mut a = self.0;
        for (x, &y) in a.iter_mut().zip(&o.0) {
            *x = x.wrapping_add(y);
        }
        Self(a)
    }

    /// Lane-wise signed maximum.
    #[inline(always)]
    pub fn max(self, o: Self) -> Self {
        let mut a = self.0;
        for (x, &y) in a.iter_mut().zip(&o.0) {
            *x = (*x).max(y);
        }
        Self(a)
    }

    /// Lane-wise `self >= o` mask: all-ones lanes where true, 0 where
    /// false.
    #[inline(always)]
    pub fn ge(self, o: Self) -> Self {
        let mut a = [0i32; LANES];
        for ((slot, &x), &y) in a.iter_mut().zip(&self.0).zip(&o.0) {
            *slot = -((x >= y) as i32);
        }
        Self(a)
    }

    /// Lane-wise `self <= o` mask.
    #[inline(always)]
    pub fn le(self, o: Self) -> Self {
        let mut a = [0i32; LANES];
        for ((slot, &x), &y) in a.iter_mut().zip(&self.0).zip(&o.0) {
            *slot = -((x <= y) as i32);
        }
        Self(a)
    }

    /// Lane-wise equality mask against another vector.
    #[inline(always)]
    pub fn eq_lanes(self, o: Self) -> Self {
        let mut a = [0i32; LANES];
        for ((slot, &x), &y) in a.iter_mut().zip(&self.0).zip(&o.0) {
            *slot = -((x == y) as i32);
        }
        Self(a)
    }

    /// Lane-wise mask intersection.
    #[inline(always)]
    pub fn and(self, o: Self) -> Self {
        let mut a = self.0;
        for (x, &y) in a.iter_mut().zip(&o.0) {
            *x &= y;
        }
        Self(a)
    }

    /// Treat `self` as a mask: lanes from `on` where the mask is set,
    /// from `off` elsewhere.
    #[inline(always)]
    pub fn blend(self, on: Self, off: Self) -> Self {
        let mut a = [0i32; LANES];
        for (k, slot) in a.iter_mut().enumerate() {
            *slot = (on.0[k] & self.0[k]) | (off.0[k] & !self.0[k]);
        }
        Self(a)
    }

    /// Horizontal maximum over all lanes.
    #[inline(always)]
    pub fn hmax(self) -> i32 {
        let mut m = self.0[0];
        for &v in &self.0[1..] {
            m = m.max(v);
        }
        m
    }
}

/// `len` rounded up to a whole number of [`LANES`].
#[inline(always)]
pub fn round_up_lanes(len: usize) -> usize {
    len.div_ceil(LANES) * LANES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_ops_elementwise() {
        let a = I32x8::iota(0);
        let b = I32x8::splat(3);
        assert_eq!(a.add(b).0, [3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(a.max(b).0, [3, 3, 3, 3, 4, 5, 6, 7]);
        assert_eq!(a.hmax(), 7);
        let m = a.ge(b); // lanes 3..=7 set
        assert_eq!(m.0, [0, 0, 0, -1, -1, -1, -1, -1]);
        let sel = m.blend(I32x8::splat(1), I32x8::splat(-9));
        assert_eq!(sel.0, [-9, -9, -9, 1, 1, 1, 1, 1]);
        let le = a.le(I32x8::splat(2)).and(a.ge(I32x8::splat(1)));
        assert_eq!(le.0, [0, -1, -1, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn byte_lanes_and_eq() {
        let bytes = *b"ACGTACGT";
        let v = I32x8::load_bytes(&bytes, 0);
        assert_eq!(v.0[0], b'A' as i32);
        let eq = v.eq_lanes(I32x8::splat(b'C' as i32));
        assert_eq!(eq.0, [0, -1, 0, 0, 0, -1, 0, 0]);
    }

    #[test]
    fn load_store_roundtrip() {
        let mut buf = vec![0i32; 24];
        I32x8::iota(5).store(&mut buf, 8);
        assert_eq!(I32x8::load(&buf, 8), I32x8::iota(5));
        assert_eq!(round_up_lanes(0), 0);
        assert_eq!(round_up_lanes(1), 8);
        assert_eq!(round_up_lanes(8), 8);
        assert_eq!(round_up_lanes(9), 16);
    }

    #[test]
    fn mode_parsing_and_resolution() {
        assert_eq!("scalar".parse::<SimdMode>().unwrap(), SimdMode::Scalar);
        assert_eq!("AUTO".parse::<SimdMode>().unwrap(), SimdMode::Auto);
        assert!("avx512".parse::<SimdMode>().is_err());
        assert_eq!(SimdMode::Scalar.kernel(), KernelImpl::Scalar);
        assert_eq!(SimdMode::Auto.kernel(), KernelImpl::Simd);
        assert_eq!(SimdMode::Auto.to_string(), "auto");
        // Thread override wins while set, clears back to the env default
        // (DIBELLA_SIMD if the suite runs with it set — CI forces
        // `scalar` in one pass — else Auto).
        let env_default = std::env::var("DIBELLA_SIMD")
            .ok()
            .map_or(SimdMode::Auto, |v| v.parse().expect("valid DIBELLA_SIMD"));
        set_thread_simd_mode(Some(SimdMode::Scalar));
        assert_eq!(thread_simd_mode(), SimdMode::Scalar);
        set_thread_simd_mode(Some(SimdMode::Auto));
        assert_eq!(thread_simd_mode(), SimdMode::Auto);
        set_thread_simd_mode(None);
        assert_eq!(thread_simd_mode(), env_default);
    }
}
