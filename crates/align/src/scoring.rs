//! Alignment scoring schemes.
//!
//! BELLA/diBELLA score with simple unit costs (match +1, mismatch −1,
//! gap −1), which is also what the x-drop termination bound `X` is
//! calibrated against. Affine gaps are unnecessary for the overlap
//! detection role of this kernel (divergent pairs are abandoned by the
//! x-drop long before gap-open modelling matters).

/// Linear-gap scoring parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scoring {
    /// Score for a match (positive).
    pub match_score: i32,
    /// Score for a mismatch (negative).
    pub mismatch: i32,
    /// Score per gap base (negative).
    pub gap: i32,
}

impl Scoring {
    /// BELLA's defaults: +1 / −1 / −1.
    pub const fn bella() -> Self {
        Self {
            match_score: 1,
            mismatch: -1,
            gap: -1,
        }
    }

    /// Construct a custom scheme.
    ///
    /// # Panics
    /// Panics unless `match_score > 0`, `mismatch < 0` and `gap < 0` —
    /// local alignment degenerates otherwise.
    pub fn new(match_score: i32, mismatch: i32, gap: i32) -> Self {
        assert!(match_score > 0, "match score must be positive");
        assert!(mismatch < 0, "mismatch penalty must be negative");
        assert!(gap < 0, "gap penalty must be negative");
        Self {
            match_score,
            mismatch,
            gap,
        }
    }

    /// Substitution score for aligning bytes `a` and `b` (case-sensitive
    /// byte equality; inputs are upper-case ASCII in this pipeline).
    #[inline]
    pub fn substitution(&self, a: u8, b: u8) -> i32 {
        if a == b {
            self.match_score
        } else {
            self.mismatch
        }
    }
}

impl Default for Scoring {
    fn default() -> Self {
        Self::bella()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bella_defaults() {
        let s = Scoring::default();
        assert_eq!(s, Scoring::bella());
        assert_eq!(s.substitution(b'A', b'A'), 1);
        assert_eq!(s.substitution(b'A', b'C'), -1);
        assert_eq!(s.gap, -1);
    }

    #[test]
    #[should_panic(expected = "match score must be positive")]
    fn rejects_non_positive_match() {
        let _ = Scoring::new(0, -1, -1);
    }

    #[test]
    #[should_panic(expected = "gap penalty must be negative")]
    fn rejects_non_negative_gap() {
        let _ = Scoring::new(1, -1, 0);
    }
}
