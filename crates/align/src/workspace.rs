//! Reusable per-thread scratch for the alignment kernels.
//!
//! Pairwise alignment dominates diBELLA's end-to-end runtime (paper §9,
//! Figure 7), and the kernels' only steady-state heap traffic was scratch:
//! a fresh score row per antidiagonal in the x-drop scan, reversed prefix
//! copies per seed extension, two rows per banded call, and a full DP
//! matrix per CIGAR traceback. An [`AlignWorkspace`] owns all of that
//! scratch so the `*_with_workspace` kernel variants
//! ([`crate::extend_xdrop_with_workspace`],
//! [`crate::extend_seed_with_workspace`],
//! [`crate::banded_sw_with_workspace`],
//! [`crate::global_alignment_with_workspace`]) allocate **nothing** once
//! the workspace has warmed up to the largest problem it has seen.
//!
//! # Ownership model
//!
//! One workspace per thread, always: the buffers are plain `Vec`s with no
//! interior synchronization, and every kernel call dirties them. Callers
//! that parallelize (e.g. `dibella-core`'s alignment-stage batch executor)
//! keep one workspace per worker thread and reuse it across every task
//! that worker processes. Reusing a *dirty* workspace is always safe —
//! every kernel fully re-initializes the prefix of each buffer it reads —
//! which is exactly what the bit-identity property tests exercise.

use crate::cigar::CigarOp;

/// Reusable scratch buffers for all alignment kernels.
///
/// Construct once per thread ([`AlignWorkspace::new`] allocates nothing —
/// buffers grow lazily to the largest call seen) and pass to the
/// `*_with_workspace` kernel entry points. Outputs are bit-identical to
/// the legacy allocating kernels for every input and any prior workspace
/// state.
#[derive(Clone, Debug, Default)]
pub struct AlignWorkspace {
    /// Three x-drop score rows (antidiagonals d−2, d−1 and d), rotated in
    /// place instead of cloned per antidiagonal. The scalar kernel sizes
    /// them exactly; the lane-SIMD kernel lays the same buffers out with
    /// a sentinel slot and lane padding. Either kernel fully
    /// re-initializes what it reads, so the implementations share storage
    /// across calls safely.
    pub(crate) xdrop: [Vec<i32>; 3],
    /// Two banded-Smith-Waterman rows (previous and current `i`).
    pub(crate) banded: [Vec<i32>; 2],
    /// Reverse-complement scratch for callers orienting a read before
    /// seeding (take it with [`std::mem::take`] while the kernels borrow
    /// the workspace mutably, and put it back afterwards).
    pub rc: Vec<u8>,
    /// Full DP matrix for the CIGAR traceback of
    /// [`crate::global_alignment_with_workspace`].
    pub(crate) cigar_dp: Vec<i32>,
    /// Reversed op list the CIGAR traceback is accumulated into.
    pub(crate) cigar_ops: Vec<CigarOp>,
    /// Per-antidiagonal substitution scores for the lane-SIMD x-drop
    /// kernel (one lane-padded `i32` per candidate cell; see
    /// `docs/ARCHITECTURE.md` § "SIMD kernels").
    pub(crate) sub_scores: Vec<i32>,
    /// Reversed byte window the SIMD kernels stage the descending-index
    /// sequence side into, so the substitution-score fill reads both
    /// sides forward (and therefore vectorizes).
    pub(crate) rev_bytes: Vec<u8>,
}

impl AlignWorkspace {
    /// An empty workspace. Allocates nothing; buffers grow on first use
    /// and are then reused for every subsequent call.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total heap bytes currently reserved by the scratch buffers — the
    /// per-thread steady-state footprint (reported by the kernel bench
    /// baseline).
    pub fn scratch_bytes(&self) -> usize {
        let i32s = self.xdrop.iter().map(Vec::capacity).sum::<usize>()
            + self.banded.iter().map(Vec::capacity).sum::<usize>()
            + self.cigar_dp.capacity()
            + self.sub_scores.capacity();
        i32s * std::mem::size_of::<i32>()
            + self.rc.capacity()
            + self.rev_bytes.capacity()
            + self.cigar_ops.capacity() * std::mem::size_of::<CigarOp>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::Scoring;

    #[test]
    fn new_workspace_reserves_nothing() {
        let ws = AlignWorkspace::new();
        assert_eq!(ws.scratch_bytes(), 0);
    }

    #[test]
    fn scratch_grows_with_use_then_plateaus() {
        let mut ws = AlignWorkspace::new();
        let s = vec![b'A'; 400];
        let t = vec![b'A'; 400];
        let _ = crate::xdrop::extend_xdrop_with_workspace(&s, &t, Scoring::bella(), 25, &mut ws);
        let after_first = ws.scratch_bytes();
        assert!(after_first > 0);
        let _ = crate::xdrop::extend_xdrop_with_workspace(&s, &t, Scoring::bella(), 25, &mut ws);
        assert_eq!(ws.scratch_bytes(), after_first, "steady state must not grow");
    }
}
