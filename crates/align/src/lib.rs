//! # dibella-align
//!
//! Pairwise alignment kernels for diBELLA's alignment stage: the gapped
//! **x-drop** seed extension used in production (paper §2/§9; a
//! from-scratch equivalent of the SeqAn kernel the authors call), a
//! **banded Smith-Waterman**, and the **full Smith-Waterman** oracle used
//! to validate both. Every kernel reports the number of DP cells it
//! computed — the currency of the cross-architecture cost model and the
//! quantity whose variance produces the alignment-stage load imbalance of
//! Figure 8.

#![warn(missing_docs)]

pub mod banded;
pub mod cigar;
pub mod scoring;
pub mod simd;
pub mod sw;
pub mod workspace;
pub mod xdrop;

pub use banded::{band_for_error_rate, banded_sw, banded_sw_with, banded_sw_with_workspace};
pub use cigar::{global_alignment, global_alignment_with_workspace, Cigar, CigarOp};
pub use scoring::Scoring;
pub use simd::{set_thread_simd_mode, thread_simd_mode, KernelImpl, SimdMode};
pub use sw::{smith_waterman, sw_forward, LocalAlignment};
pub use workspace::AlignWorkspace;
pub use xdrop::{
    extend_seed, extend_seed_with, extend_seed_with_workspace, extend_ungapped, extend_xdrop,
    extend_xdrop_dir_with, extend_xdrop_dir_with_workspace, extend_xdrop_with,
    extend_xdrop_with_workspace, Dir, Extension, SeedAlignment, SeedHit,
};
