//! # dibella-align
//!
//! Pairwise alignment kernels for diBELLA's alignment stage: the gapped
//! **x-drop** seed extension used in production (paper §2/§9; a
//! from-scratch equivalent of the SeqAn kernel the authors call), a
//! **banded Smith-Waterman**, and the **full Smith-Waterman** oracle used
//! to validate both. Every kernel reports the number of DP cells it
//! computed — the currency of the cross-architecture cost model and the
//! quantity whose variance produces the alignment-stage load imbalance of
//! Figure 8.

#![warn(missing_docs)]

pub mod banded;
pub mod cigar;
pub mod scoring;
pub mod sw;
pub mod xdrop;

pub use banded::{band_for_error_rate, banded_sw};
pub use cigar::{global_alignment, Cigar, CigarOp};
pub use scoring::Scoring;
pub use sw::{smith_waterman, sw_forward, LocalAlignment};
pub use xdrop::{extend_seed, extend_ungapped, extend_xdrop, Extension, SeedAlignment, SeedHit};
