//! Full Smith-Waterman local alignment — the O(|s|·|t|) oracle.
//!
//! Paper §2: "Finding an optimal alignment is attainable via a dynamic
//! programming algorithm such as Smith-Waterman". diBELLA never runs the
//! full quadratic kernel in production (the x-drop extension replaces it);
//! here it serves as the ground-truth oracle the x-drop and banded kernels
//! are validated against, and as the "exact" end of the ablation benches.

use crate::scoring::Scoring;

/// Result of a local alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LocalAlignment {
    /// Optimal local score (0 if the best alignment is empty).
    pub score: i32,
    /// Aligned region of `s`: `s_start..s_end`.
    pub s_start: usize,
    /// End (exclusive) in `s`.
    pub s_end: usize,
    /// Aligned region of `t`: `t_start..t_end`.
    pub t_start: usize,
    /// End (exclusive) in `t`.
    pub t_end: usize,
    /// DP cells computed (the cost-model currency).
    pub cells: u64,
}

/// Full Smith-Waterman with linear gaps. Returns the best-scoring local
/// alignment (ties broken toward smaller end coordinates) including its
/// start coordinates, recovered without a traceback matrix by re-running
/// the DP on reversed prefixes.
pub fn smith_waterman(s: &[u8], t: &[u8], scoring: Scoring) -> LocalAlignment {
    let (score, s_end, t_end, cells) = sw_forward(s, t, scoring);
    if score == 0 {
        return LocalAlignment {
            score: 0,
            s_start: 0,
            s_end: 0,
            t_start: 0,
            t_end: 0,
            cells,
        };
    }
    // The start of the optimal alignment ending at (s_end, t_end) is the
    // end of the optimal alignment of the reversed prefixes.
    let s_rev: Vec<u8> = s[..s_end].iter().rev().copied().collect();
    let t_rev: Vec<u8> = t[..t_end].iter().rev().copied().collect();
    let (rev_score, rs_end, rt_end, cells2) = sw_forward(&s_rev, &t_rev, scoring);
    debug_assert_eq!(rev_score, score, "reverse DP must reproduce the score");
    LocalAlignment {
        score,
        s_start: s_end - rs_end,
        s_end,
        t_start: t_end - rt_end,
        t_end,
        cells: cells + cells2,
    }
}

/// Score-only Smith-Waterman (two-row DP): `(score, s_end, t_end, cells)`.
pub fn sw_forward(s: &[u8], t: &[u8], scoring: Scoring) -> (i32, usize, usize, u64) {
    let n = s.len();
    let m = t.len();
    let mut prev = vec![0i32; m + 1];
    let mut cur = vec![0i32; m + 1];
    let mut best = 0i32;
    let mut best_i = 0usize;
    let mut best_j = 0usize;
    for i in 1..=n {
        cur[0] = 0;
        let si = s[i - 1];
        for j in 1..=m {
            let diag = prev[j - 1] + scoring.substitution(si, t[j - 1]);
            let up = prev[j] + scoring.gap;
            let left = cur[j - 1] + scoring.gap;
            let v = diag.max(up).max(left).max(0);
            cur[j] = v;
            if v > best {
                best = v;
                best_i = i;
                best_j = j;
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    (best, best_i, best_j, (n as u64) * (m as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sw(s: &[u8], t: &[u8]) -> LocalAlignment {
        smith_waterman(s, t, Scoring::bella())
    }

    #[test]
    fn identical_sequences() {
        let a = sw(b"ACGTACGT", b"ACGTACGT");
        assert_eq!(a.score, 8);
        assert_eq!((a.s_start, a.s_end), (0, 8));
        assert_eq!((a.t_start, a.t_end), (0, 8));
    }

    #[test]
    fn embedded_match() {
        // t contains s's middle exactly.
        let a = sw(b"TTTTACGTACGTTTTT", b"GGGGGACGTACGTGGG");
        assert_eq!(a.score, 8);
        assert_eq!(&b"TTTTACGTACGTTTTT"[a.s_start..a.s_end], b"ACGTACGT");
        assert_eq!(&b"GGGGGACGTACGTGGG"[a.t_start..a.t_end], b"ACGTACGT");
    }

    #[test]
    fn single_mismatch_bridged() {
        // Bridging one mismatch pays −1 but gains matches on both sides.
        let a = sw(b"AAAACAAAA", b"AAAAGAAAA");
        assert_eq!(a.score, 4 + 4 - 1);
    }

    #[test]
    fn single_gap_bridged() {
        let a = sw(b"AACCGGTT", b"AACGGTT");
        // 7 matches − 1 gap = 6.
        assert_eq!(a.score, 6);
    }

    #[test]
    fn disjoint_sequences_score_zero_or_tiny() {
        let a = sw(b"AAAA", b"GGGG");
        assert_eq!(a.score, 0);
        assert_eq!(a.s_end, 0);
    }

    #[test]
    fn empty_inputs() {
        let a = sw(b"", b"ACGT");
        assert_eq!(a.score, 0);
        assert_eq!(a.cells, 0);
        let b = sw(b"ACGT", b"");
        assert_eq!(b.score, 0);
    }

    #[test]
    fn cells_counted() {
        let a = sw(b"ACGTT", b"ACG");
        // forward 15 + reverse pass over the 3x3-ish prefix.
        assert!(a.cells >= 15);
    }

    #[test]
    fn score_symmetric() {
        let s = b"ACGTTGCAGGTATT";
        let t = b"CGTTGGAGGTAT";
        assert_eq!(sw(s, t).score, sw(t, s).score);
    }
}
