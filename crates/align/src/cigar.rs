//! Alignment paths (CIGAR strings).
//!
//! diBELLA itself reports overlap coordinates and scores — "the edits
//! required to make the overlapping regions identical" (paper §1) are
//! needed by downstream consumers (consensus, assembly polishing), so a
//! production library must be able to produce them. This module computes
//! the optimal global alignment *path* over the region pair that the
//! x-drop kernel identified, with the same scoring scheme, and renders it
//! as a SAM/PAF-style CIGAR (`=`/`X`/`I`/`D` ops; `I` = insertion in the
//! query `a`, consuming `a` only).

use crate::scoring::Scoring;
use crate::workspace::AlignWorkspace;

/// One CIGAR operation kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CigarOp {
    /// Match (`=`): equal bases consumed from both sequences.
    Match,
    /// Mismatch (`X`): unequal bases consumed from both sequences.
    Mismatch,
    /// Insertion (`I`): base present in `a` only.
    Insertion,
    /// Deletion (`D`): base present in `b` only.
    Deletion,
}

impl CigarOp {
    /// SAM character for the op.
    pub fn as_char(self) -> char {
        match self {
            CigarOp::Match => '=',
            CigarOp::Mismatch => 'X',
            CigarOp::Insertion => 'I',
            CigarOp::Deletion => 'D',
        }
    }

    /// Does the op consume a base of `a`?
    pub fn consumes_a(self) -> bool {
        !matches!(self, CigarOp::Deletion)
    }

    /// Does the op consume a base of `b`?
    pub fn consumes_b(self) -> bool {
        !matches!(self, CigarOp::Insertion)
    }
}

/// A run-length-encoded alignment path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cigar {
    runs: Vec<(u32, CigarOp)>,
}

impl Cigar {
    /// Append one op, merging with the previous run when equal.
    pub fn push(&mut self, op: CigarOp) {
        match self.runs.last_mut() {
            Some((n, last)) if *last == op => *n += 1,
            _ => self.runs.push((1, op)),
        }
    }

    /// The `(count, op)` runs in order.
    pub fn runs(&self) -> &[(u32, CigarOp)] {
        &self.runs
    }

    /// Total bases of `a` consumed.
    pub fn a_len(&self) -> usize {
        self.runs
            .iter()
            .filter(|(_, op)| op.consumes_a())
            .map(|&(n, _)| n as usize)
            .sum()
    }

    /// Total bases of `b` consumed.
    pub fn b_len(&self) -> usize {
        self.runs
            .iter()
            .filter(|(_, op)| op.consumes_b())
            .map(|&(n, _)| n as usize)
            .sum()
    }

    /// Alignment-column count (all ops).
    pub fn columns(&self) -> usize {
        self.runs.iter().map(|&(n, _)| n as usize).sum()
    }

    /// Matches / columns — the identity downstream QC tools report.
    pub fn identity(&self) -> f64 {
        let matches: usize = self
            .runs
            .iter()
            .filter(|(_, op)| matches!(op, CigarOp::Match))
            .map(|&(n, _)| n as usize)
            .sum();
        if self.columns() == 0 {
            0.0
        } else {
            matches as f64 / self.columns() as f64
        }
    }

    /// Mismatches + indel bases (Levenshtein-style edit count of the
    /// aligned path).
    pub fn edits(&self) -> usize {
        self.runs
            .iter()
            .filter(|(_, op)| !matches!(op, CigarOp::Match))
            .map(|&(n, _)| n as usize)
            .sum()
    }

    /// Render as a CIGAR string, e.g. `"12=1X3=2D7="`.
    pub fn to_cigar_string(&self) -> String {
        let mut out = String::new();
        for &(n, op) in &self.runs {
            out.push_str(&n.to_string());
            out.push(op.as_char());
        }
        out
    }

    /// Replay the path over `a`: produces the sequence it claims `b` to
    /// be, substituting from `b` at mismatch/deletion columns. Used to
    /// verify path validity (`apply(a, b) == b`).
    pub fn apply(&self, a: &[u8], b: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(b.len());
        let mut ia = 0usize;
        let mut ib = 0usize;
        for &(n, op) in &self.runs {
            for _ in 0..n {
                match op {
                    CigarOp::Match => {
                        out.push(a[ia]);
                        ia += 1;
                        ib += 1;
                    }
                    CigarOp::Mismatch | CigarOp::Deletion => {
                        out.push(b[ib]);
                        if op == CigarOp::Mismatch {
                            ia += 1;
                        }
                        ib += 1;
                    }
                    CigarOp::Insertion => {
                        ia += 1;
                    }
                }
            }
        }
        out
    }
}

impl std::fmt::Display for Cigar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_cigar_string())
    }
}

/// Optimal global alignment of `a` against `b` with linear gaps,
/// returning the score and the full path. O(|a|·|b|) time and memory —
/// intended for the *overlap regions* the x-drop kernel has already
/// localized (paper workflow: locate cheaply, then edit where needed).
///
/// Thin wrapper over [`global_alignment_with_workspace`] with a throwaway
/// workspace.
pub fn global_alignment(a: &[u8], b: &[u8], scoring: Scoring) -> (i32, Cigar) {
    global_alignment_with_workspace(a, b, scoring, &mut AlignWorkspace::new())
}

/// [`global_alignment`] using caller-owned scratch for the DP matrix and
/// the traceback op list. Only the returned [`Cigar`]'s run vector is
/// allocated; output is bit-identical to [`global_alignment`] for every
/// input and any prior workspace state.
pub fn global_alignment_with_workspace(
    a: &[u8],
    b: &[u8],
    scoring: Scoring,
    ws: &mut AlignWorkspace,
) -> (i32, Cigar) {
    let n = a.len();
    let m = b.len();
    const NEG: i32 = i32::MIN / 4;
    // DP with full matrix for traceback. Row-major (n+1) x (m+1).
    let width = m + 1;
    let dp = &mut ws.cigar_dp;
    dp.clear();
    dp.resize((n + 1) * width, NEG);
    dp[0] = 0;
    for (j, cell) in dp.iter_mut().enumerate().take(m + 1).skip(1) {
        *cell = scoring.gap * j as i32;
    }
    for i in 1..=n {
        dp[i * width] = scoring.gap * i as i32;
        for j in 1..=m {
            let diag = dp[(i - 1) * width + j - 1] + scoring.substitution(a[i - 1], b[j - 1]);
            let up = dp[(i - 1) * width + j] + scoring.gap;
            let left = dp[i * width + j - 1] + scoring.gap;
            dp[i * width + j] = diag.max(up).max(left);
        }
    }
    // Traceback (prefer diagonal, then up, then left — deterministic).
    let rev = &mut ws.cigar_ops;
    rev.clear();
    let mut i = n;
    let mut j = m;
    while i > 0 || j > 0 {
        let here = dp[i * width + j];
        if i > 0
            && j > 0
            && here == dp[(i - 1) * width + j - 1] + scoring.substitution(a[i - 1], b[j - 1])
        {
            rev.push(if a[i - 1] == b[j - 1] {
                CigarOp::Match
            } else {
                CigarOp::Mismatch
            });
            i -= 1;
            j -= 1;
        } else if i > 0 && here == dp[(i - 1) * width + j] + scoring.gap {
            rev.push(CigarOp::Insertion);
            i -= 1;
        } else {
            debug_assert!(j > 0 && here == dp[i * width + j - 1] + scoring.gap);
            rev.push(CigarOp::Deletion);
            j -= 1;
        }
    }
    let mut cigar = Cigar::default();
    for &op in rev.iter().rev() {
        cigar.push(op);
    }
    (dp[n * width + m], cigar)
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: Scoring = Scoring::bella();

    #[test]
    fn identical_sequences() {
        let (score, cigar) = global_alignment(b"ACGTACGT", b"ACGTACGT", S);
        assert_eq!(score, 8);
        assert_eq!(cigar.to_cigar_string(), "8=");
        assert_eq!(cigar.identity(), 1.0);
        assert_eq!(cigar.edits(), 0);
    }

    #[test]
    fn single_mismatch() {
        let (score, cigar) = global_alignment(b"AAAACAAA", b"AAAAGAAA", S);
        assert_eq!(score, 7 - 1);
        assert_eq!(cigar.to_cigar_string(), "4=1X3=");
    }

    #[test]
    fn single_insertion_and_deletion() {
        let (score, cigar) = global_alignment(b"ACGGT", b"ACGT", S);
        assert_eq!(score, 4 - 1);
        assert!(cigar.to_cigar_string().contains('I'), "{cigar}");
        assert_eq!(cigar.a_len(), 5);
        assert_eq!(cigar.b_len(), 4);

        let (_, cigar) = global_alignment(b"ACGT", b"ACGGT", S);
        assert!(cigar.to_cigar_string().contains('D'), "{cigar}");
        assert_eq!(cigar.a_len(), 4);
        assert_eq!(cigar.b_len(), 5);
    }

    #[test]
    fn empty_inputs() {
        let (score, cigar) = global_alignment(b"", b"", S);
        assert_eq!(score, 0);
        assert_eq!(cigar.columns(), 0);
        let (score, cigar) = global_alignment(b"ACG", b"", S);
        assert_eq!(score, -3);
        assert_eq!(cigar.to_cigar_string(), "3I");
    }

    #[test]
    fn apply_reconstructs_b() {
        let a = b"ACGTTGCAGGTATT";
        let b = b"ACGTGCAGCGTTT";
        let (_, cigar) = global_alignment(a, b, S);
        assert_eq!(cigar.apply(a, b), b.to_vec());
        assert_eq!(cigar.a_len(), a.len());
        assert_eq!(cigar.b_len(), b.len());
    }

    #[test]
    fn score_matches_cigar_arithmetic() {
        let a = b"ACGTTGCAGGTATTTACGCA";
        let b = b"ACGTGCAGGTTATTTCGCAA";
        let (score, cigar) = global_alignment(a, b, S);
        let mut expect = 0i32;
        for &(n, op) in cigar.runs() {
            expect += n as i32
                * match op {
                    CigarOp::Match => S.match_score,
                    CigarOp::Mismatch => S.mismatch,
                    CigarOp::Insertion | CigarOp::Deletion => S.gap,
                };
        }
        assert_eq!(score, expect);
    }

    #[test]
    fn run_length_merging() {
        let mut c = Cigar::default();
        for _ in 0..3 {
            c.push(CigarOp::Match);
        }
        c.push(CigarOp::Deletion);
        c.push(CigarOp::Match);
        assert_eq!(c.to_cigar_string(), "3=1D1=");
        assert_eq!(c.runs().len(), 3);
    }
}
