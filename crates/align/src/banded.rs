//! Banded Smith-Waterman around a seed diagonal.
//!
//! The paper's §2 names banded Smith-Waterman as the "limited number of
//! mismatches" option alongside x-drop termination. This kernel restricts
//! the DP to a fixed-width band centred on the seed's diagonal
//! (`t_pos − s_pos`), costing O(min(|s|,|t|) · band) instead of
//! O(|s|·|t|). It is used in the kernel ablation benches and as a
//! second reference for the x-drop kernel.

use crate::scoring::Scoring;
use crate::sw::LocalAlignment;
use crate::workspace::AlignWorkspace;

/// Banded local alignment of `s` and `t`, restricted to diagonals
/// `center − half_band ..= center + half_band`, where a cell `(i, j)` lies
/// on diagonal `j − i`.
///
/// Start coordinates are not recovered (score/end only) — the pipeline
/// uses banded alignment for scoring and filtering, like BELLA.
///
/// Thin wrapper over [`banded_sw_with_workspace`] with a throwaway
/// workspace.
///
/// # Panics
/// Panics if `half_band == 0`... zero-width bands cannot host a match run
/// (callers always derive the band from the error rate).
pub fn banded_sw(
    s: &[u8],
    t: &[u8],
    center: i64,
    half_band: usize,
    scoring: Scoring,
) -> LocalAlignment {
    banded_sw_with_workspace(s, t, center, half_band, scoring, &mut AlignWorkspace::new())
}

/// [`banded_sw`] using caller-owned scratch for its two DP rows: zero
/// heap allocations once the workspace has warmed up to the widest band
/// seen. Output is bit-identical to [`banded_sw`] for every input and any
/// prior workspace state.
///
/// # Panics
/// Panics if `half_band == 0`, exactly as [`banded_sw`] does.
pub fn banded_sw_with_workspace(
    s: &[u8],
    t: &[u8],
    center: i64,
    half_band: usize,
    scoring: Scoring,
    ws: &mut AlignWorkspace,
) -> LocalAlignment {
    assert!(half_band > 0, "band must have positive width");
    let n = s.len();
    let m = t.len();
    let width = 2 * half_band + 1;
    // Row-wise DP over i; for each i, j ranges over the band around
    // diagonal `center`: j ∈ [i + center − half_band, i + center + half_band].
    let [prev, cur] = &mut ws.banded;
    prev.clear();
    prev.resize(width, 0);
    cur.clear();
    cur.resize(width, 0);
    let mut best = 0i32;
    let mut best_i = 0usize;
    let mut best_j = 0usize;
    let mut cells = 0u64;

    let band_j = |i: usize, off: usize| -> Option<usize> {
        let j = i as i64 + center - half_band as i64 + off as i64;
        (j >= 1 && j <= m as i64).then_some(j as usize)
    };

    for i in 1..=n {
        for slot in cur.iter_mut() {
            *slot = 0;
        }
        for off in 0..width {
            let Some(j) = band_j(i, off) else { continue };
            cells += 1;
            // In banded coordinates (i, off): moving i → i+1 keeps the
            // same diagonal at the same `off`; cell (i-1, j-1) is at the
            // same off in `prev`, (i-1, j) is at off+1 in `prev`, and
            // (i, j-1) is at off-1 in `cur`.
            let diag = prev[off] + scoring.substitution(s[i - 1], t[j - 1]);
            let up = if off + 1 < width { prev[off + 1] + scoring.gap } else { i32::MIN / 4 };
            let left = if off > 0 { cur[off - 1] + scoring.gap } else { i32::MIN / 4 };
            let v = diag.max(up).max(left).max(0);
            cur[off] = v;
            if v > best {
                best = v;
                best_i = i;
                best_j = j;
            }
        }
        std::mem::swap(prev, cur);
    }
    LocalAlignment {
        score: best,
        s_start: 0,
        s_end: best_i,
        t_start: 0,
        t_end: best_j,
        cells,
    }
}

/// Band half-width needed to absorb the expected indel imbalance of an
/// overlap of length `ov` at error rate `e` (≈ half the errors are
/// insertions/deletions; 3σ headroom).
pub fn band_for_error_rate(ov: usize, e: f64) -> usize {
    let expected_indels = ov as f64 * e * 0.5;
    let sigma = expected_indels.sqrt();
    (expected_indels * 0.2 + 3.0 * sigma).ceil().max(8.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw::smith_waterman;

    const S: Scoring = Scoring::bella();

    #[test]
    fn identical_on_main_diagonal() {
        let a = banded_sw(b"ACGTACGTAC", b"ACGTACGTAC", 0, 4, S);
        assert_eq!(a.score, 10);
        assert_eq!(a.s_end, 10);
        assert_eq!(a.t_end, 10);
    }

    #[test]
    fn matches_full_sw_when_band_is_wide() {
        let s = b"ACGTTGCAGGTATTTACGCAGGAT";
        let t = b"ACGTTGCATGTATTTACCCAGGAT";
        let full = smith_waterman(s, t, S);
        let banded = banded_sw(s, t, 0, s.len().max(t.len()), S);
        assert_eq!(banded.score, full.score);
    }

    #[test]
    fn narrow_band_misses_off_diagonal_alignment() {
        // The true alignment sits on diagonal +8; a ±2 band centred at 0
        // cannot see it.
        let s = b"TTTTTTTTACGTACGTACGT";
        let t = b"ACGTACGTACGTAAAAAAAA";
        let full = smith_waterman(s, t, S);
        assert!(full.score >= 12);
        let narrow = banded_sw(s, t, 0, 2, S);
        assert!(narrow.score < full.score);
        let centered = banded_sw(s, t, -8, 2, S);
        assert_eq!(centered.score, full.score);
    }

    #[test]
    fn cells_bounded_by_band() {
        let s = vec![b'A'; 500];
        let t = vec![b'A'; 500];
        let a = banded_sw(&s, &t, 0, 10, S);
        assert!(a.cells <= 500 * 21);
        assert_eq!(a.score, 500);
    }

    #[test]
    fn band_sizing_grows_with_error_and_length() {
        assert!(band_for_error_rate(2000, 0.15) > band_for_error_rate(2000, 0.05));
        assert!(band_for_error_rate(8000, 0.15) > band_for_error_rate(2000, 0.15));
        assert!(band_for_error_rate(10, 0.0) >= 8);
    }

    #[test]
    fn empty_inputs_score_zero() {
        let a = banded_sw(b"", b"ACGT", 0, 4, S);
        assert_eq!(a.score, 0);
        assert_eq!(a.cells, 0);
    }
}
