//! Banded Smith-Waterman around a seed diagonal.
//!
//! The paper's §2 names banded Smith-Waterman as the "limited number of
//! mismatches" option alongside x-drop termination. This kernel restricts
//! the DP to a fixed-width band centred on the seed's diagonal
//! (`t_pos − s_pos`), costing O(min(|s|,|t|) · band) instead of
//! O(|s|·|t|). It is used in the kernel ablation benches and as a
//! second reference for the x-drop kernel.

use crate::scoring::Scoring;
use crate::simd::{self, I32x8, KernelImpl, LANES};
use crate::sw::LocalAlignment;
use crate::workspace::AlignWorkspace;

/// Score used for out-of-band recurrence terms. Kept well away from
/// `i32::MIN` so arithmetic cannot overflow.
const NEG_INF: i32 = i32::MIN / 4;

/// Banded local alignment of `s` and `t`, restricted to diagonals
/// `center − half_band ..= center + half_band`, where a cell `(i, j)` lies
/// on diagonal `j − i`.
///
/// Start coordinates are not recovered (score/end only) — the pipeline
/// uses banded alignment for scoring and filtering, like BELLA.
///
/// Thin wrapper over the **scalar** kernel with a throwaway workspace,
/// pinned regardless of the `DIBELLA_SIMD` knob so it can serve as the
/// reference oracle in differential tests.
///
/// # Panics
/// Panics if `half_band == 0`... zero-width bands cannot host a match run
/// (callers always derive the band from the error rate).
pub fn banded_sw(
    s: &[u8],
    t: &[u8],
    center: i64,
    half_band: usize,
    scoring: Scoring,
) -> LocalAlignment {
    banded_sw_with(s, t, center, half_band, scoring, &mut AlignWorkspace::new(), KernelImpl::Scalar)
}

/// [`banded_sw`] using caller-owned scratch for its two DP rows: zero
/// heap allocations once the workspace has warmed up to the widest band
/// seen. Runs the kernel implementation selected by the thread's
/// [`crate::simd::SimdMode`] (the `DIBELLA_SIMD` knob); both
/// implementations are bit-identical to [`banded_sw`] for every input and
/// any prior workspace state.
///
/// # Panics
/// Panics if `half_band == 0`, exactly as [`banded_sw`] does.
pub fn banded_sw_with_workspace(
    s: &[u8],
    t: &[u8],
    center: i64,
    half_band: usize,
    scoring: Scoring,
    ws: &mut AlignWorkspace,
) -> LocalAlignment {
    banded_sw_with(s, t, center, half_band, scoring, ws, simd::thread_simd_mode().kernel())
}

/// [`banded_sw_with_workspace`] with the kernel implementation pinned by
/// the caller instead of resolved from the thread's
/// [`crate::simd::SimdMode`] — the entry point the differential
/// bit-identity suites and kernel benchmarks drive both paths through.
///
/// # Panics
/// Panics if `half_band == 0`, exactly as [`banded_sw`] does.
pub fn banded_sw_with(
    s: &[u8],
    t: &[u8],
    center: i64,
    half_band: usize,
    scoring: Scoring,
    ws: &mut AlignWorkspace,
    imp: KernelImpl,
) -> LocalAlignment {
    match imp {
        KernelImpl::Scalar => banded_core_scalar(s, t, center, half_band, scoring, ws),
        KernelImpl::Simd => banded_core_simd(s, t, center, half_band, scoring, ws),
    }
}

/// The reference row-wise scalar banded scan.
fn banded_core_scalar(
    s: &[u8],
    t: &[u8],
    center: i64,
    half_band: usize,
    scoring: Scoring,
    ws: &mut AlignWorkspace,
) -> LocalAlignment {
    assert!(half_band > 0, "band must have positive width");
    let n = s.len();
    let m = t.len();
    let width = 2 * half_band + 1;
    // Row-wise DP over i; for each i, j ranges over the band around
    // diagonal `center`: j ∈ [i + center − half_band, i + center + half_band].
    let [prev, cur] = &mut ws.banded;
    prev.clear();
    prev.resize(width, 0);
    cur.clear();
    cur.resize(width, 0);
    let mut best = 0i32;
    let mut best_i = 0usize;
    let mut best_j = 0usize;
    let mut cells = 0u64;

    let band_j = |i: usize, off: usize| -> Option<usize> {
        let j = i as i64 + center - half_band as i64 + off as i64;
        (j >= 1 && j <= m as i64).then_some(j as usize)
    };

    for i in 1..=n {
        for slot in cur.iter_mut() {
            *slot = 0;
        }
        for off in 0..width {
            let Some(j) = band_j(i, off) else { continue };
            cells += 1;
            // In banded coordinates (i, off): moving i → i+1 keeps the
            // same diagonal at the same `off`; cell (i-1, j-1) is at the
            // same off in `prev`, (i-1, j) is at off+1 in `prev`, and
            // (i, j-1) is at off-1 in `cur`.
            let diag = prev[off] + scoring.substitution(s[i - 1], t[j - 1]);
            let up = if off + 1 < width { prev[off + 1] + scoring.gap } else { i32::MIN / 4 };
            let left = if off > 0 { cur[off - 1] + scoring.gap } else { i32::MIN / 4 };
            let v = diag.max(up).max(left).max(0);
            cur[off] = v;
            if v > best {
                best = v;
                best_i = i;
                best_j = j;
            }
        }
        std::mem::swap(prev, cur);
    }
    LocalAlignment {
        score: best,
        s_start: 0,
        s_end: best_i,
        t_start: 0,
        t_end: best_j,
        cells,
    }
}

/// The lane-SIMD banded scan — bit-identical to [`banded_core_scalar`].
///
/// Within a row the only serial dependency is the `left` term. With a
/// linear gap cost that dependency factors out: `T = max(diag, up, 0)` is
/// independent per cell and vectorizes over [`LANES`]-wide chunks, and the
/// final value is the max-plus prefix scan `v[off] = max(T[off],
/// v[off−1] + gap)` — a cheap branch-free second pass that also carries
/// the scalar kernel's in-order best tracking (so ties break identically).
/// `T ≥ 0` makes the carry into the first in-band cell irrelevant, exactly
/// like the scalar kernel's `left ≤ 0` at the band's left edge. Rows carry
/// one lane of `NEG_INF` padding past the band so the shifted `up` load at
/// `off = width − 1` reads a term that, like the scalar kernel's explicit
/// `NEG_INF`, can never win against the `max(…, 0)`. In-band cells the
/// scalar kernel skips (j out of `[1, m]`) stay 0, exactly as it leaves
/// them.
fn banded_core_simd(
    s: &[u8],
    t: &[u8],
    center: i64,
    half_band: usize,
    scoring: Scoring,
    ws: &mut AlignWorkspace,
) -> LocalAlignment {
    assert!(half_band > 0, "band must have positive width");
    let n = s.len();
    let m = t.len();
    let width = 2 * half_band + 1;
    let [prev, cur] = &mut ws.banded;
    // `width` band slots plus one lane of NEG_INF padding; the padding is
    // written once here and never stored to again.
    let phys = width + LANES;
    prev.clear();
    prev.resize(phys, NEG_INF);
    cur.clear();
    cur.resize(phys, NEG_INF);
    prev[..width].fill(0);
    let mut best = 0i32;
    let mut best_i = 0usize;
    let mut best_j = 0usize;
    let mut cells = 0u64;

    let gap_v = I32x8::splat(scoring.gap);
    let zero_v = I32x8::splat(0);
    let match_v = I32x8::splat(scoring.match_score);
    let mismatch_v = I32x8::splat(scoring.mismatch);

    for i in 1..=n {
        cur[..width].fill(0);
        // Valid slots are the contiguous `off` range keeping
        // j = i + center − half_band + off within [1, m].
        let jbase = i as i64 + center - half_band as i64;
        let f = (1 - jbase).max(0);
        let l = (m as i64 - jbase).min(width as i64 - 1);
        if f > l {
            std::mem::swap(prev, cur);
            continue;
        }
        let (f, l) = (f as usize, l as usize);
        cells += (l - f) as u64 + 1;
        let jf = (jbase + f as i64) as usize;

        // Pass 1: the order-free part of the recurrence,
        // T = max(diag, up, 0), in full-lane chunks with a scalar tail.
        // `t`'s band window is contiguous and ascending; `s[i−1]` is one
        // splat.
        let s_v = I32x8::splat(s[i - 1] as i32);
        let mut off = f;
        while off + LANES <= l + 1 {
            let t_bytes = I32x8::load_bytes(t, jf - 1 + (off - f));
            let sub = t_bytes.eq_lanes(s_v).blend(match_v, mismatch_v);
            let diag = I32x8::load(prev, off).add(sub);
            let up = I32x8::load(prev, off + 1).add(gap_v);
            diag.max(up).max(zero_v).store(cur, off);
            off += LANES;
        }
        while off <= l {
            let j = jf + (off - f);
            let diag = prev[off] + scoring.substitution(s[i - 1], t[j - 1]);
            // At off = width − 1 this reads the NEG_INF pad — same
            // can-never-win value as the scalar kernel's explicit branch.
            let up = prev[off + 1] + scoring.gap;
            cur[off] = diag.max(up).max(0);
            off += 1;
        }

        // Pass 2: fold the serial `left` term in with a max-plus carry
        // and replay the scalar kernel's in-order strict-improvement best
        // update.
        let mut carry = NEG_INF;
        for (off, slot) in cur[f..=l].iter_mut().enumerate() {
            let v = (*slot).max(carry + scoring.gap);
            *slot = v;
            carry = v;
            if v > best {
                best = v;
                best_i = i;
                best_j = jf + off;
            }
        }
        std::mem::swap(prev, cur);
    }
    LocalAlignment {
        score: best,
        s_start: 0,
        s_end: best_i,
        t_start: 0,
        t_end: best_j,
        cells,
    }
}

/// Band half-width needed to absorb the expected indel imbalance of an
/// overlap of length `ov` at error rate `e` (≈ half the errors are
/// insertions/deletions; 3σ headroom).
pub fn band_for_error_rate(ov: usize, e: f64) -> usize {
    let expected_indels = ov as f64 * e * 0.5;
    let sigma = expected_indels.sqrt();
    (expected_indels * 0.2 + 3.0 * sigma).ceil().max(8.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw::smith_waterman;

    const S: Scoring = Scoring::bella();

    #[test]
    fn identical_on_main_diagonal() {
        let a = banded_sw(b"ACGTACGTAC", b"ACGTACGTAC", 0, 4, S);
        assert_eq!(a.score, 10);
        assert_eq!(a.s_end, 10);
        assert_eq!(a.t_end, 10);
    }

    #[test]
    fn matches_full_sw_when_band_is_wide() {
        let s = b"ACGTTGCAGGTATTTACGCAGGAT";
        let t = b"ACGTTGCATGTATTTACCCAGGAT";
        let full = smith_waterman(s, t, S);
        let banded = banded_sw(s, t, 0, s.len().max(t.len()), S);
        assert_eq!(banded.score, full.score);
    }

    #[test]
    fn narrow_band_misses_off_diagonal_alignment() {
        // The true alignment sits on diagonal +8; a ±2 band centred at 0
        // cannot see it.
        let s = b"TTTTTTTTACGTACGTACGT";
        let t = b"ACGTACGTACGTAAAAAAAA";
        let full = smith_waterman(s, t, S);
        assert!(full.score >= 12);
        let narrow = banded_sw(s, t, 0, 2, S);
        assert!(narrow.score < full.score);
        let centered = banded_sw(s, t, -8, 2, S);
        assert_eq!(centered.score, full.score);
    }

    #[test]
    fn cells_bounded_by_band() {
        let s = vec![b'A'; 500];
        let t = vec![b'A'; 500];
        let a = banded_sw(&s, &t, 0, 10, S);
        assert!(a.cells <= 500 * 21);
        assert_eq!(a.score, 500);
    }

    #[test]
    fn band_sizing_grows_with_error_and_length() {
        assert!(band_for_error_rate(2000, 0.15) > band_for_error_rate(2000, 0.05));
        assert!(band_for_error_rate(8000, 0.15) > band_for_error_rate(2000, 0.15));
        assert!(band_for_error_rate(10, 0.0) >= 8);
    }

    #[test]
    fn empty_inputs_score_zero() {
        let a = banded_sw(b"", b"ACGT", 0, 4, S);
        assert_eq!(a.score, 0);
        assert_eq!(a.cells, 0);
    }
}
