//! Gapped x-drop seed extension — diBELLA's production alignment kernel.
//!
//! Paper §2: "in place of full dynamic programming ... one can search only
//! for solutions with a limited number of mismatches (banded
//! Smith-Waterman) and terminate early when the alignment score drops
//! significantly (x-drop) \[37\]. This makes pairwise alignment linear in
//! L." The original algorithm is Zhang, Schwartz, Wagner & Miller (2000);
//! diBELLA calls SeqAn's implementation — this is a from-scratch
//! equivalent (see DESIGN.md §2).
//!
//! The extension walks antidiagonals of the DP matrix keeping only the
//! cells whose score is within `X` of the best score seen so far; the
//! frontier both grows (gaps) and shrinks (pruning), so well-matched
//! sequences stay in a narrow adaptive band while divergent pairs
//! terminate after O(X) antidiagonals — the property behind the alignment
//! stage's x-drop load imbalance (paper §9, Figure 8).

use crate::scoring::Scoring;
use crate::simd::{self, round_up_lanes, I32x8, KernelImpl, LANES};
use crate::workspace::AlignWorkspace;

/// Score used for pruned/unreachable cells. Kept well away from `i32::MIN`
/// so arithmetic cannot overflow.
const NEG_INF: i32 = i32::MIN / 4;

/// Direction an extension walks its input slices in.
///
/// `Fwd` reads `s[i]`; `Rev` reads `s[len − 1 − i]`, i.e. the slice
/// backward **in place** — the copy-free equivalent of extending over a
/// reversed prefix. Used as a `const` generic so the hot loop is
/// monomorphized with no per-base branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Left-to-right (suffix extension).
    Fwd,
    /// Right-to-left (prefix extension, walked without materializing the
    /// reversed copy).
    Rev,
}

/// Base `idx` of `seq` in walk order: identity for the forward direction,
/// mirrored for the reverse direction.
#[inline(always)]
fn base_at<const REV: bool>(seq: &[u8], idx: usize) -> u8 {
    if REV {
        seq[seq.len() - 1 - idx]
    } else {
        seq[idx]
    }
}

/// Outcome of a one-directional x-drop extension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Extension {
    /// Best extension score found (≥ 0; the empty extension scores 0).
    pub score: i32,
    /// Bases of `s` consumed by the best extension.
    pub s_ext: usize,
    /// Bases of `t` consumed by the best extension.
    pub t_ext: usize,
    /// DP cells computed.
    pub cells: u64,
}

/// Extend an alignment from the start of `s` against the start of `t`
/// with gapped x-drop pruning (drop-off parameter `x > 0`).
///
/// Returns the maximum-score pair of prefixes; the extension may be empty
/// (`score = 0`).
///
/// Thin wrapper over the **scalar** kernel with a throwaway workspace;
/// hot callers should hold a per-thread [`AlignWorkspace`] and call the
/// workspace variant directly. Stays pinned to the scalar implementation
/// regardless of the `DIBELLA_SIMD` knob so it can serve as the reference
/// oracle in differential tests.
pub fn extend_xdrop(s: &[u8], t: &[u8], scoring: Scoring, x: i32) -> Extension {
    extend_xdrop_with(s, t, scoring, x, &mut AlignWorkspace::new(), KernelImpl::Scalar)
}

/// [`extend_xdrop`] using caller-owned scratch: zero heap allocations per
/// antidiagonal and — once `ws` has warmed up — zero per call.
///
/// Runs the kernel implementation selected by the thread's
/// [`crate::simd::SimdMode`] (the `DIBELLA_SIMD` knob); both
/// implementations are bit-identical to [`extend_xdrop`] for every input
/// and any prior workspace state.
pub fn extend_xdrop_with_workspace(
    s: &[u8],
    t: &[u8],
    scoring: Scoring,
    x: i32,
    ws: &mut AlignWorkspace,
) -> Extension {
    extend_xdrop_with(s, t, scoring, x, ws, simd::thread_simd_mode().kernel())
}

/// [`extend_xdrop_with_workspace`] with the kernel implementation chosen
/// explicitly — the entry point the differential bit-identity suites
/// drive both paths through.
pub fn extend_xdrop_with(
    s: &[u8],
    t: &[u8],
    scoring: Scoring,
    x: i32,
    ws: &mut AlignWorkspace,
    imp: KernelImpl,
) -> Extension {
    match imp {
        KernelImpl::Scalar => xdrop_core::<false>(s, t, scoring, x, &mut ws.xdrop),
        KernelImpl::Simd => xdrop_core_simd::<false>(s, t, scoring, x, ws),
    }
}

/// The x-drop scan over antidiagonals, generic over walk direction.
///
/// Row storage is the caller's three reusable buffers (antidiagonals d−2,
/// d−1 and the one being filled), **rotated** at the end of each
/// antidiagonal instead of cloned. Pruning no longer copies the surviving
/// span out: each row keeps its physical base offset (`*_base`, the `lo`
/// it was filled at) alongside the logical surviving range
/// (`*_lo ..= *_hi`), and all reads bound-check against the logical range
/// — so the scores read, the candidate ranges derived from them, and the
/// `cells` tally are exactly those of the historical copying
/// implementation.
pub(crate) fn xdrop_core<const REV: bool>(
    s: &[u8],
    t: &[u8],
    scoring: Scoring,
    x: i32,
    rows: &mut [Vec<i32>; 3],
) -> Extension {
    assert!(x > 0, "x-drop threshold must be positive");
    let n = s.len();
    let m = t.len();
    if n == 0 || m == 0 {
        return Extension { score: 0, s_ext: 0, t_ext: 0, cells: 0 };
    }

    // Rows indexed by i (chars of s consumed); row d covers antidiagonal
    // i + j = d over i ∈ [lo, hi].
    let mut best = 0i32;
    let mut best_i = 0usize;
    let mut best_j = 0usize;
    let mut cells = 0u64;

    let [prev2, prev, cur] = rows;

    // d = 0: the single cell (0, 0) = 0.
    prev2.clear();
    prev2.push(0);
    let mut prev2_base = 0usize;
    let mut prev2_lo = 0usize;
    let mut prev2_hi = 0usize;

    // d = 1: cells (0,1) and (1,0), both pure gap (n, m ≥ 1 here).
    prev.clear();
    for i in 0..=1usize {
        let jd = 1 - i;
        if i > n || jd > m {
            prev.push(NEG_INF);
            continue;
        }
        cells += 1;
        prev.push(scoring.gap);
    }
    // Prune row 1 (gap = −1 survives any positive x, but keep the check
    // for exotic scoring schemes).
    if prev.iter().all(|&v| v < best - x) {
        return Extension { score: best, s_ext: best_i, t_ext: best_j, cells };
    }
    let mut prev_base = 0usize;
    let mut prev_lo = 0usize;
    let mut prev_hi = 1usize;

    let mut d = 1usize;
    loop {
        d += 1;
        if d > n + m {
            break;
        }
        // Candidate i range for row d from surviving cells of row d-1:
        // a cell (i, j) on row d is reachable from (i, j-1) [same i] or
        // (i-1, j) [i-1] on row d-1, or (i-1, j-1) on row d-2.
        let lo = prev_lo.max(d.saturating_sub(m));
        let hi = (prev_hi + 1).min(d).min(n);
        if lo > hi {
            break;
        }
        cur.clear();
        cur.resize(hi - lo + 1, NEG_INF);
        let mut any = false;
        for i in lo..=hi {
            let j = d - i;
            if j > m || i > n {
                continue;
            }
            cells += 1;
            let mut v = NEG_INF;
            // Gap in s (from (i, j-1), row d-1, same i).
            if i >= prev_lo && i <= prev_hi && j >= 1 {
                let c = prev[i - prev_base];
                if c > NEG_INF {
                    v = v.max(c + scoring.gap);
                }
            }
            // Gap in t (from (i-1, j), row d-1, index i-1).
            if i > prev_lo && i - 1 <= prev_hi {
                let c = prev[i - 1 - prev_base];
                if c > NEG_INF {
                    v = v.max(c + scoring.gap);
                }
            }
            // Substitution (from (i-1, j-1), row d-2, index i-1).
            if i >= 1 && j >= 1 && i > prev2_lo && i - 1 <= prev2_hi {
                let c = prev2[i - 1 - prev2_base];
                if c > NEG_INF {
                    let sub = scoring
                        .substitution(base_at::<REV>(s, i - 1), base_at::<REV>(t, j - 1));
                    v = v.max(c + sub);
                }
            }
            if v <= NEG_INF {
                continue;
            }
            if v > best {
                best = v;
                best_i = i;
                best_j = j;
            }
            cur[i - lo] = v;
            any = true;
        }
        if !any {
            break;
        }
        // X-drop pruning: restrict the logical range to cells ≥ best − x.
        // No copy, no NEG_INF back-fill: cells outside [first, last] are
        // simply excluded by the next rows' logical-range bound checks.
        let threshold = best - x;
        let first = cur.iter().position(|&v| v >= threshold);
        let last = cur.iter().rposition(|&v| v >= threshold);
        let (first, last) = match (first, last) {
            (Some(f), Some(l)) => (f, l),
            _ => break, // every cell pruned → extension terminates
        };
        // Rotate: d-1 becomes d-2, the filled row becomes d-1, and the
        // old d-2 buffer is recycled as the next row's storage.
        std::mem::swap(prev2, prev);
        std::mem::swap(prev, cur);
        prev2_base = prev_base;
        prev2_lo = prev_lo;
        prev2_hi = prev_hi;
        prev_base = lo;
        prev_lo = lo + first;
        prev_hi = lo + last;
    }

    Extension { score: best, s_ext: best_i, t_ext: best_j, cells }
}

/// The lane-SIMD x-drop scan — same antidiagonal walk, pruning and
/// bookkeeping as [`xdrop_core`], with the per-cell recurrence computed
/// [`LANES`] cells at a time.
///
/// The key observation is that within one antidiagonal the cells are
/// independent: cell `(i, d−i)` reads only rows `d−1` and `d−2`, so the
/// inner loop vectorizes *vertically* with three shifted row loads. The
/// scalar kernel's per-cell range guards become per-term interval masks
/// (each recurrence source is legal on one contiguous `i`-interval), and
/// its incremental best tracking collapses to a per-row maximum plus one
/// rescan on improving rows — the first cell achieving a row's maximum is
/// exactly the cell the scalar scan records. Rows store a `NEG_INF`
/// sentinel at slot 0 (so `i−1` loads never underflow) and are padded to
/// whole lanes (so full-width loads never overflow); pruned cells store
/// exactly `NEG_INF`, as the scalar kernel leaves them. Output is
/// therefore bit-identical to [`xdrop_core`] — scores, extents *and* the
/// `cells` tally — which `tests/simd_identity.rs` and
/// `tests/kernel_golden.rs` enforce.
pub(crate) fn xdrop_core_simd<const REV: bool>(
    s: &[u8],
    t: &[u8],
    scoring: Scoring,
    x: i32,
    ws: &mut AlignWorkspace,
) -> Extension {
    assert!(x > 0, "x-drop threshold must be positive");
    let n = s.len();
    let m = t.len();
    if n == 0 || m == 0 {
        return Extension { score: 0, s_ext: 0, t_ext: 0, cells: 0 };
    }

    let AlignWorkspace { xdrop: rows, sub_scores, rev_bytes, .. } = ws;
    let [prev2, prev, cur] = rows;

    let mut best = 0i32;
    let mut best_i = 0usize;
    let mut best_j = 0usize;
    let mut cells = 0u64;

    // Row layout: slot 0 is a NEG_INF sentinel backing the shifted
    // (`i−1`) loads, slot `1 + (i − base)` holds cell `i`, and the tail
    // is padded so any full-width load launched from a valid cell stays
    // in bounds. A row never exceeds min(n, m) + 1 cells, so one sizing
    // covers the whole call; rows are not re-initialized per
    // antidiagonal — every slot an *unmasked* lane reads was stored by
    // the previous rows' store passes (or is the sentinel), masked lanes
    // tolerate arbitrary stale data, and the post-row scans only look at
    // freshly stored cells.
    let max_len = n.min(m) + 1;
    let phys = 1 + round_up_lanes(max_len) + LANES;
    for row in [&mut *prev2, &mut *prev, &mut *cur] {
        row.clear();
        row.resize(phys, NEG_INF);
    }
    sub_scores.clear();
    sub_scores.resize(round_up_lanes(max_len) + LANES, NEG_INF);

    // d = 0: the single cell (0, 0) = 0.
    prev2[1] = 0;
    let mut prev2_base = 0usize;
    let mut prev2_lo = 0usize;
    let mut prev2_hi = 0usize;

    // d = 1: cells (0,1) and (1,0), both pure gap (n, m ≥ 1 here).
    prev[1] = scoring.gap;
    prev[2] = scoring.gap;
    cells += 2;
    if scoring.gap < best - x {
        return Extension { score: best, s_ext: best_i, t_ext: best_j, cells };
    }
    let mut prev_base = 0usize;
    let mut prev_lo = 0usize;
    let mut prev_hi = 1usize;

    let gap_v = I32x8::splat(scoring.gap);
    let neg_v = I32x8::splat(NEG_INF);

    let mut d = 1usize;
    loop {
        d += 1;
        if d > n + m {
            break;
        }
        let lo = prev_lo.max(d.saturating_sub(m));
        let hi = (prev_hi + 1).min(d).min(n);
        if lo > hi {
            break;
        }
        let len = hi - lo + 1;
        // Every i in [lo, hi] is a computed cell: lo ≥ d − m keeps
        // j = d − i ≤ m and hi ≤ min(d, n) keeps i ≤ n, j ≥ 0 — the
        // scalar kernel's skip guard never fires.
        cells += len as u64;

        // Per-term legal-source intervals of i (empty ⇒ all-false masks):
        // gap in s needs (i, j−1) alive on row d−1 and j ≥ 1; gap in t
        // needs (i−1, j) alive on row d−1; substitution needs (i−1, j−1)
        // alive on row d−2 with i, j ≥ 1.
        let gs_lo = lo.max(prev_lo);
        let gs_hi = hi.min(prev_hi).min(d - 1);
        let gt_lo = lo.max(prev_lo + 1);
        let gt_hi = hi.min(prev_hi + 1);
        let sub_lo = lo.max(1).max(prev2_lo + 1);
        let sub_hi = hi.min(prev2_hi + 1).min(d - 1);

        // Substitution scores for the candidate diagonal cells, staged
        // into a lane-padded scratch row indexed by i − lo (only the
        // `[sub_lo, sub_hi]` window is written; lanes outside it are
        // masked or unused). One side of the antidiagonal walks its
        // sequence backward; copying that side reversed first lets the
        // compare loop run forward over both.
        if sub_lo <= sub_hi {
            rev_bytes.clear();
            let fwd: &[u8] = if REV {
                // Walk-order base of s is s[n − i] (descending with i);
                // of t is t[m − d + i] (ascending).
                rev_bytes.extend(s[n - sub_hi..=n - sub_lo].iter().rev());
                &t[m + sub_lo - d..=m + sub_hi - d]
            } else {
                // s[i − 1] ascends with i; t[d − i − 1] descends.
                rev_bytes.extend(t[d - 1 - sub_hi..=d - 1 - sub_lo].iter().rev());
                &s[sub_lo - 1..=sub_hi - 1]
            };
            let at = sub_lo - lo;
            for (slot, (&p, &q)) in sub_scores[at..].iter_mut().zip(fwd.iter().zip(&*rev_bytes)) {
                *slot = if p == q { scoring.match_score } else { scoring.mismatch };
            }
        }

        let gs_lo_v = I32x8::splat(gs_lo as i32);
        let gs_hi_v = I32x8::splat(gs_hi as i32);
        let gt_lo_v = I32x8::splat(gt_lo as i32);
        let gt_hi_v = I32x8::splat(gt_hi as i32);
        let sub_lo_v = I32x8::splat(sub_lo as i32);
        let sub_hi_v = I32x8::splat(sub_hi as i32);

        // On `[core_lo, core_hi]` every term is legal, so whole chunks
        // inside it skip the interval masks (and share the gap add) —
        // that covers all but the first and last chunks of a typical row.
        let core_lo = gs_lo.max(gt_lo).max(sub_lo);
        let core_hi = gs_hi.min(gt_hi).min(sub_hi);

        let mut rowmax = neg_v;
        let mut i0 = lo;
        while i0 <= hi {
            let v = if i0 >= core_lo && i0 + (LANES - 1) <= core_hi {
                let horiz = I32x8::load(prev, i0 - prev_base + 1)
                    .max(I32x8::load(prev, i0 - prev_base))
                    .add(gap_v);
                let diag =
                    I32x8::load(prev2, i0 - prev2_base).add(I32x8::load(sub_scores, i0 - lo));
                // Clamp: a term fed by a pruned (NEG_INF) cell must store
                // exactly NEG_INF, as the scalar kernel leaves it.
                horiz.max(diag).max(neg_v)
            } else {
                let vi = I32x8::iota(i0 as i32);
                // Gap in s (from (i, j−1), row d−1, same i).
                let c = I32x8::load(prev, i0 - prev_base + 1);
                let mask = vi.ge(gs_lo_v).and(vi.le(gs_hi_v));
                let mut v = mask.blend(c.add(gap_v), neg_v);
                // Gap in t (from (i−1, j), row d−1, cell i−1).
                let c = I32x8::load(prev, i0 - prev_base);
                let mask = vi.ge(gt_lo_v).and(vi.le(gt_hi_v));
                v = v.max(mask.blend(c.add(gap_v), neg_v));
                // Substitution (from (i−1, j−1), row d−2, cell i−1).
                let c = I32x8::load(prev2, i0 - prev2_base);
                let sub = I32x8::load(sub_scores, i0 - lo);
                let mask = vi.ge(sub_lo_v).and(vi.le(sub_hi_v));
                v = v.max(mask.blend(c.add(sub), neg_v));
                v.max(neg_v)
            };
            v.store(cur, i0 - lo + 1);
            rowmax = rowmax.max(v);
            i0 += LANES;
        }

        let rm = rowmax.hmax();
        if rm <= NEG_INF {
            break; // no reachable cell on this antidiagonal
        }
        if rm > best {
            // The scalar scan's incremental `v > best` updates land on the
            // first cell achieving the row maximum; recover it by rescan.
            let off = cur[1..1 + len]
                .iter()
                .position(|&v| v == rm)
                .expect("row maximum must be present");
            best = rm;
            best_i = lo + off;
            best_j = d - best_i;
        }
        // X-drop pruning on the logical range, exactly as the scalar scan.
        let threshold = best - x;
        let live = &cur[1..1 + len];
        let first = live.iter().position(|&v| v >= threshold);
        let last = live.iter().rposition(|&v| v >= threshold);
        let (first, last) = match (first, last) {
            (Some(f), Some(l)) => (f, l),
            _ => break, // every cell pruned → extension terminates
        };
        std::mem::swap(prev2, prev);
        std::mem::swap(prev, cur);
        prev2_base = prev_base;
        prev2_lo = prev_lo;
        prev2_hi = prev_hi;
        prev_base = lo;
        prev_lo = lo + first;
        prev_hi = lo + last;
    }

    Extension { score: best, s_ext: best_i, t_ext: best_j, cells }
}

/// Ungapped x-drop extension along the main diagonal (the cheap variant
/// BLAST uses before gapped extension; exposed for the kernel ablation).
pub fn extend_ungapped(s: &[u8], t: &[u8], scoring: Scoring, x: i32) -> Extension {
    assert!(x > 0);
    let mut score = 0i32;
    let mut best = 0i32;
    let mut best_len = 0usize;
    let mut cells = 0u64;
    for (i, (&a, &b)) in s.iter().zip(t.iter()).enumerate() {
        cells += 1;
        score += scoring.substitution(a, b);
        if score > best {
            best = score;
            best_len = i + 1;
        }
        if score < best - x {
            break;
        }
    }
    Extension { score: best, s_ext: best_len, t_ext: best_len, cells }
}

/// A shared-seed alignment task between two oriented sequences.
///
/// Positions refer to the *oriented* sequences handed to
/// [`extend_seed`] — the overlap stage resolves canonical-k-mer strands
/// before building tasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedHit {
    /// Seed start in `a`.
    pub a_pos: usize,
    /// Seed start in `b` (oriented coordinates).
    pub b_pos: usize,
    /// Seed length (the k-mer length).
    pub k: usize,
}

/// A completed seed-and-extend alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedAlignment {
    /// Total score: left extension + seed + right extension.
    pub score: i32,
    /// Aligned range in `a`.
    pub a_start: usize,
    /// End (exclusive) in `a`.
    pub a_end: usize,
    /// Aligned range in `b` (oriented coordinates).
    pub b_start: usize,
    /// End (exclusive) in `b`.
    pub b_end: usize,
    /// Total DP cells computed (both directions).
    pub cells: u64,
}

/// Directional [`extend_xdrop_with_workspace`]: `Dir::Fwd` extends over
/// the slices left-to-right; `Dir::Rev` extends right-to-left **in
/// place**, equivalent to (and bit-identical with) extending over
/// materialized reversed copies — without the copies.
pub fn extend_xdrop_dir_with_workspace(
    s: &[u8],
    t: &[u8],
    dir: Dir,
    scoring: Scoring,
    x: i32,
    ws: &mut AlignWorkspace,
) -> Extension {
    extend_xdrop_dir_with(s, t, dir, scoring, x, ws, simd::thread_simd_mode().kernel())
}

/// [`extend_xdrop_dir_with_workspace`] with the kernel implementation
/// pinned by the caller instead of resolved from the thread's
/// [`crate::simd::SimdMode`]. This is the entry point the differential
/// tests and the kernel benchmarks use to drive both implementations over
/// the same (dirty) workspace.
pub fn extend_xdrop_dir_with(
    s: &[u8],
    t: &[u8],
    dir: Dir,
    scoring: Scoring,
    x: i32,
    ws: &mut AlignWorkspace,
    imp: KernelImpl,
) -> Extension {
    match (dir, imp) {
        (Dir::Fwd, KernelImpl::Scalar) => xdrop_core::<false>(s, t, scoring, x, &mut ws.xdrop),
        (Dir::Rev, KernelImpl::Scalar) => xdrop_core::<true>(s, t, scoring, x, &mut ws.xdrop),
        (Dir::Fwd, KernelImpl::Simd) => xdrop_core_simd::<false>(s, t, scoring, x, ws),
        (Dir::Rev, KernelImpl::Simd) => xdrop_core_simd::<true>(s, t, scoring, x, ws),
    }
}

/// Seed-and-extend with gapped x-drop in both directions from a shared
/// k-mer (paper §4 step 4: "perform alignment on these read pairs using
/// the shared k-mer as the starting position (seed)").
///
/// Thin wrapper over the **scalar** kernel with a throwaway workspace,
/// pinned regardless of the `DIBELLA_SIMD` knob so it can serve as the
/// reference oracle in differential tests.
///
/// # Panics
/// Panics if the seed exceeds either sequence.
pub fn extend_seed(a: &[u8], b: &[u8], seed: SeedHit, scoring: Scoring, x: i32) -> SeedAlignment {
    extend_seed_with(a, b, seed, scoring, x, &mut AlignWorkspace::new(), KernelImpl::Scalar)
}

/// [`extend_seed`] using caller-owned scratch. The left extension walks
/// the two prefixes backward in place ([`Dir::Rev`]) instead of
/// materializing reversed copies, so the per-task steady state performs
/// zero heap allocations.
///
/// # Panics
/// Panics if the seed exceeds either sequence.
pub fn extend_seed_with_workspace(
    a: &[u8],
    b: &[u8],
    seed: SeedHit,
    scoring: Scoring,
    x: i32,
    ws: &mut AlignWorkspace,
) -> SeedAlignment {
    extend_seed_with(a, b, seed, scoring, x, ws, simd::thread_simd_mode().kernel())
}

/// [`extend_seed_with_workspace`] with the kernel implementation pinned
/// by the caller (both directional extensions run on the chosen kernel;
/// the seed-region prologue is scalar by nature and shared).
///
/// # Panics
/// Panics if the seed exceeds either sequence.
pub fn extend_seed_with(
    a: &[u8],
    b: &[u8],
    seed: SeedHit,
    scoring: Scoring,
    x: i32,
    ws: &mut AlignWorkspace,
    imp: KernelImpl,
) -> SeedAlignment {
    assert!(seed.a_pos + seed.k <= a.len(), "seed out of range in a");
    assert!(seed.b_pos + seed.k <= b.len(), "seed out of range in b");

    // Score the seed region itself (normally k matches; sequencing errors
    // can make canonical-strand seeds imperfect, so score actual bases).
    // Iterating the two base slices directly lets the compiler hoist the
    // bounds checks out of the per-task prologue.
    let seed_score: i32 = a[seed.a_pos..seed.a_pos + seed.k]
        .iter()
        .zip(&b[seed.b_pos..seed.b_pos + seed.k])
        .map(|(&ab, &bb)| scoring.substitution(ab, bb))
        .sum();

    // Left: the prefixes, walked backward in place.
    let left = extend_xdrop_dir_with(
        &a[..seed.a_pos],
        &b[..seed.b_pos],
        Dir::Rev,
        scoring,
        x,
        ws,
        imp,
    );

    // Right: suffixes.
    let right = extend_xdrop_dir_with(
        &a[seed.a_pos + seed.k..],
        &b[seed.b_pos + seed.k..],
        Dir::Fwd,
        scoring,
        x,
        ws,
        imp,
    );

    SeedAlignment {
        score: left.score + seed_score + right.score,
        a_start: seed.a_pos - left.s_ext,
        a_end: seed.a_pos + seed.k + right.s_ext,
        b_start: seed.b_pos - left.t_ext,
        b_end: seed.b_pos + seed.k + right.t_ext,
        cells: left.cells + right.cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw::smith_waterman;

    const S: Scoring = Scoring::bella();

    #[test]
    fn identical_extension_runs_to_the_end() {
        let e = extend_xdrop(b"ACGTACGTGG", b"ACGTACGTGG", S, 10);
        assert_eq!(e.score, 10);
        assert_eq!(e.s_ext, 10);
        assert_eq!(e.t_ext, 10);
    }

    #[test]
    fn empty_inputs() {
        let e = extend_xdrop(b"", b"", S, 5);
        assert_eq!(e.score, 0);
        let e = extend_xdrop(b"ACGT", b"", S, 5);
        assert_eq!((e.score, e.s_ext, e.t_ext), (0, 0, 0));
    }

    #[test]
    fn mismatch_tail_is_not_included() {
        let e = extend_xdrop(b"AAAAGGGG", b"AAAACCCC", S, 3);
        assert_eq!(e.score, 4);
        assert_eq!(e.s_ext, 4);
    }

    #[test]
    fn bridges_single_gap() {
        // s has an extra base; gapped extension must recover the match run.
        let e = extend_xdrop(b"AAAACAAAAAAA", b"AAAAAAAAAAA", S, 6);
        // 11 matches − 1 gap = 10.
        assert_eq!(e.score, 10);
        assert_eq!(e.s_ext, 12);
        assert_eq!(e.t_ext, 11);
    }

    #[test]
    fn xdrop_terminates_early_on_divergence() {
        // After 6 matching bases the sequences are unrelated; with a small
        // X the extension must stop long before the end.
        let mut s = b"ACGTGC".to_vec();
        let mut t = b"ACGTGC".to_vec();
        s.extend(std::iter::repeat_n(b'A', 4000));
        t.extend(std::iter::repeat_n(b'C', 4000));
        let e = extend_xdrop(&s, &t, S, 10);
        assert_eq!(e.score, 6);
        assert!(e.cells < 2_000, "expected early exit, computed {} cells", e.cells);
    }

    #[test]
    fn larger_x_never_scores_lower() {
        let s = b"ACGTTGCAGGTATTTACGCAGGATACGGATTACA";
        let t = b"ACGTTGCAGCTATTTACGCAGCATACGGTTTACA";
        let mut prev = 0;
        for x in [1, 2, 5, 10, 50] {
            let e = extend_xdrop(s, t, S, x);
            assert!(e.score >= prev, "x={x}");
            prev = e.score;
        }
    }

    #[test]
    fn huge_x_matches_best_prefix_pair_score() {
        // With X → ∞ the x-drop finds the global best prefix-pair score,
        // which for these inputs equals the SW local score anchored at 0,0.
        let s = b"ACGTACGTAC";
        let t = b"ACGTACGTAC";
        let e = extend_xdrop(s, t, S, 1_000_000);
        assert_eq!(e.score, 10);
    }

    #[test]
    fn ungapped_stops_at_best() {
        let e = extend_ungapped(b"AAAATTTT", b"AAAACCCC", S, 2);
        assert_eq!(e.score, 4);
        assert_eq!(e.s_ext, 4);
        assert!(e.cells <= 8);
    }

    #[test]
    fn seed_extension_full_overlap() {
        //        0123456789
        let a = b"TTTTACGTACGTAAAA";
        let b = b"TTTTACGTACGTAAAA";
        let seed = SeedHit { a_pos: 4, b_pos: 4, k: 8 };
        let al = extend_seed(a, b, seed, S, 20);
        assert_eq!(al.score, 16);
        assert_eq!((al.a_start, al.a_end), (0, 16));
        assert_eq!((al.b_start, al.b_end), (0, 16));
    }

    #[test]
    fn seed_extension_offset_overlap() {
        // b is a shifted window of a: suffix of a overlaps prefix of b.
        let a = b"GGGGGGACGTACGTTTTT";
        let b = b"ACGTACGTTTTTCCCCCC";
        let seed = SeedHit { a_pos: 6, b_pos: 0, k: 8 };
        let al = extend_seed(a, b, seed, S, 10);
        // Overlap region is 12 bases (ACGTACGTTTTT).
        assert_eq!(al.score, 12);
        assert_eq!((al.a_start, al.a_end), (6, 18));
        assert_eq!((al.b_start, al.b_end), (0, 12));
    }

    #[test]
    fn seed_alignment_never_beats_smith_waterman() {
        let a = b"ACGTTGCAGGTATTTACGCAGGATACGGATTACA";
        let b = b"TTGCAGGTATTAACGCAGGATACGG";
        // Seed at a true shared 8-mer: a[4..12] == b[1..9].
        assert_eq!(&a[4..12], &b[1..9]);
        let al = extend_seed(a, b, SeedHit { a_pos: 4, b_pos: 1, k: 8 }, S, 50);
        let oracle = smith_waterman(a, b, S);
        assert!(al.score <= oracle.score, "xdrop {} > SW {}", al.score, oracle.score);
        assert!(al.score > 0);
    }

    #[test]
    #[should_panic(expected = "seed out of range")]
    fn seed_bounds_checked() {
        let _ = extend_seed(b"ACGT", b"ACGT", SeedHit { a_pos: 2, b_pos: 0, k: 4 }, S, 5);
    }

    #[test]
    fn divergent_pair_cheap_vs_true_pair_expensive() {
        // The Fig-8 load-imbalance mechanism: a true overlapping pair costs
        // DP work proportional to the overlap, a spurious pair terminates
        // after ~X antidiagonals regardless of read length.
        let unit = b"ACGTTGCAGGTATTTACGCA";
        let long: Vec<u8> = unit.iter().cycle().take(2000).copied().collect();
        let seed = SeedHit { a_pos: 0, b_pos: 0, k: 8 };
        let good = extend_seed(&long, &long.clone(), seed, S, 15);
        let mut bad_b = long[..20].to_vec();
        bad_b.extend(std::iter::repeat_n(b'T', 1980));
        let bad = extend_seed(&long, &bad_b, seed, S, 15);
        assert!(
            good.cells > 5 * bad.cells,
            "good={} bad={}",
            good.cells,
            bad.cells
        );
        assert!(good.score > bad.score);
    }
}
