//! Gapped x-drop seed extension — diBELLA's production alignment kernel.
//!
//! Paper §2: "in place of full dynamic programming ... one can search only
//! for solutions with a limited number of mismatches (banded
//! Smith-Waterman) and terminate early when the alignment score drops
//! significantly (x-drop) \[37\]. This makes pairwise alignment linear in
//! L." The original algorithm is Zhang, Schwartz, Wagner & Miller (2000);
//! diBELLA calls SeqAn's implementation — this is a from-scratch
//! equivalent (see DESIGN.md §2).
//!
//! The extension walks antidiagonals of the DP matrix keeping only the
//! cells whose score is within `X` of the best score seen so far; the
//! frontier both grows (gaps) and shrinks (pruning), so well-matched
//! sequences stay in a narrow adaptive band while divergent pairs
//! terminate after O(X) antidiagonals — the property behind the alignment
//! stage's x-drop load imbalance (paper §9, Figure 8).

use crate::scoring::Scoring;
use crate::workspace::AlignWorkspace;

/// Score used for pruned/unreachable cells. Kept well away from `i32::MIN`
/// so arithmetic cannot overflow.
const NEG_INF: i32 = i32::MIN / 4;

/// Direction an extension walks its input slices in.
///
/// `Fwd` reads `s[i]`; `Rev` reads `s[len − 1 − i]`, i.e. the slice
/// backward **in place** — the copy-free equivalent of extending over a
/// reversed prefix. Used as a `const` generic so the hot loop is
/// monomorphized with no per-base branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Left-to-right (suffix extension).
    Fwd,
    /// Right-to-left (prefix extension, walked without materializing the
    /// reversed copy).
    Rev,
}

/// Base `idx` of `seq` in walk order: identity for the forward direction,
/// mirrored for the reverse direction.
#[inline(always)]
fn base_at<const REV: bool>(seq: &[u8], idx: usize) -> u8 {
    if REV {
        seq[seq.len() - 1 - idx]
    } else {
        seq[idx]
    }
}

/// Outcome of a one-directional x-drop extension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Extension {
    /// Best extension score found (≥ 0; the empty extension scores 0).
    pub score: i32,
    /// Bases of `s` consumed by the best extension.
    pub s_ext: usize,
    /// Bases of `t` consumed by the best extension.
    pub t_ext: usize,
    /// DP cells computed.
    pub cells: u64,
}

/// Extend an alignment from the start of `s` against the start of `t`
/// with gapped x-drop pruning (drop-off parameter `x > 0`).
///
/// Returns the maximum-score pair of prefixes; the extension may be empty
/// (`score = 0`).
///
/// Thin wrapper over [`extend_xdrop_with_workspace`] with a throwaway
/// workspace; hot callers should hold a per-thread [`AlignWorkspace`] and
/// call the workspace variant directly.
pub fn extend_xdrop(s: &[u8], t: &[u8], scoring: Scoring, x: i32) -> Extension {
    extend_xdrop_with_workspace(s, t, scoring, x, &mut AlignWorkspace::new())
}

/// [`extend_xdrop`] using caller-owned scratch: zero heap allocations per
/// antidiagonal and — once `ws` has warmed up — zero per call.
///
/// Output is bit-identical to [`extend_xdrop`] for every input and any
/// prior workspace state.
pub fn extend_xdrop_with_workspace(
    s: &[u8],
    t: &[u8],
    scoring: Scoring,
    x: i32,
    ws: &mut AlignWorkspace,
) -> Extension {
    xdrop_core::<false>(s, t, scoring, x, &mut ws.xdrop)
}

/// The x-drop scan over antidiagonals, generic over walk direction.
///
/// Row storage is the caller's three reusable buffers (antidiagonals d−2,
/// d−1 and the one being filled), **rotated** at the end of each
/// antidiagonal instead of cloned. Pruning no longer copies the surviving
/// span out: each row keeps its physical base offset (`*_base`, the `lo`
/// it was filled at) alongside the logical surviving range
/// (`*_lo ..= *_hi`), and all reads bound-check against the logical range
/// — so the scores read, the candidate ranges derived from them, and the
/// `cells` tally are exactly those of the historical copying
/// implementation.
pub(crate) fn xdrop_core<const REV: bool>(
    s: &[u8],
    t: &[u8],
    scoring: Scoring,
    x: i32,
    rows: &mut [Vec<i32>; 3],
) -> Extension {
    assert!(x > 0, "x-drop threshold must be positive");
    let n = s.len();
    let m = t.len();
    if n == 0 || m == 0 {
        return Extension { score: 0, s_ext: 0, t_ext: 0, cells: 0 };
    }

    // Rows indexed by i (chars of s consumed); row d covers antidiagonal
    // i + j = d over i ∈ [lo, hi].
    let mut best = 0i32;
    let mut best_i = 0usize;
    let mut best_j = 0usize;
    let mut cells = 0u64;

    let [prev2, prev, cur] = rows;

    // d = 0: the single cell (0, 0) = 0.
    prev2.clear();
    prev2.push(0);
    let mut prev2_base = 0usize;
    let mut prev2_lo = 0usize;
    let mut prev2_hi = 0usize;

    // d = 1: cells (0,1) and (1,0), both pure gap (n, m ≥ 1 here).
    prev.clear();
    for i in 0..=1usize {
        let jd = 1 - i;
        if i > n || jd > m {
            prev.push(NEG_INF);
            continue;
        }
        cells += 1;
        prev.push(scoring.gap);
    }
    // Prune row 1 (gap = −1 survives any positive x, but keep the check
    // for exotic scoring schemes).
    if prev.iter().all(|&v| v < best - x) {
        return Extension { score: best, s_ext: best_i, t_ext: best_j, cells };
    }
    let mut prev_base = 0usize;
    let mut prev_lo = 0usize;
    let mut prev_hi = 1usize;

    let mut d = 1usize;
    loop {
        d += 1;
        if d > n + m {
            break;
        }
        // Candidate i range for row d from surviving cells of row d-1:
        // a cell (i, j) on row d is reachable from (i, j-1) [same i] or
        // (i-1, j) [i-1] on row d-1, or (i-1, j-1) on row d-2.
        let lo = prev_lo.max(d.saturating_sub(m));
        let hi = (prev_hi + 1).min(d).min(n);
        if lo > hi {
            break;
        }
        cur.clear();
        cur.resize(hi - lo + 1, NEG_INF);
        let mut any = false;
        for i in lo..=hi {
            let j = d - i;
            if j > m || i > n {
                continue;
            }
            cells += 1;
            let mut v = NEG_INF;
            // Gap in s (from (i, j-1), row d-1, same i).
            if i >= prev_lo && i <= prev_hi && j >= 1 {
                let c = prev[i - prev_base];
                if c > NEG_INF {
                    v = v.max(c + scoring.gap);
                }
            }
            // Gap in t (from (i-1, j), row d-1, index i-1).
            if i > prev_lo && i - 1 <= prev_hi {
                let c = prev[i - 1 - prev_base];
                if c > NEG_INF {
                    v = v.max(c + scoring.gap);
                }
            }
            // Substitution (from (i-1, j-1), row d-2, index i-1).
            if i >= 1 && j >= 1 && i > prev2_lo && i - 1 <= prev2_hi {
                let c = prev2[i - 1 - prev2_base];
                if c > NEG_INF {
                    let sub = scoring
                        .substitution(base_at::<REV>(s, i - 1), base_at::<REV>(t, j - 1));
                    v = v.max(c + sub);
                }
            }
            if v <= NEG_INF {
                continue;
            }
            if v > best {
                best = v;
                best_i = i;
                best_j = j;
            }
            cur[i - lo] = v;
            any = true;
        }
        if !any {
            break;
        }
        // X-drop pruning: restrict the logical range to cells ≥ best − x.
        // No copy, no NEG_INF back-fill: cells outside [first, last] are
        // simply excluded by the next rows' logical-range bound checks.
        let threshold = best - x;
        let first = cur.iter().position(|&v| v >= threshold);
        let last = cur.iter().rposition(|&v| v >= threshold);
        let (first, last) = match (first, last) {
            (Some(f), Some(l)) => (f, l),
            _ => break, // every cell pruned → extension terminates
        };
        // Rotate: d-1 becomes d-2, the filled row becomes d-1, and the
        // old d-2 buffer is recycled as the next row's storage.
        std::mem::swap(prev2, prev);
        std::mem::swap(prev, cur);
        prev2_base = prev_base;
        prev2_lo = prev_lo;
        prev2_hi = prev_hi;
        prev_base = lo;
        prev_lo = lo + first;
        prev_hi = lo + last;
    }

    Extension { score: best, s_ext: best_i, t_ext: best_j, cells }
}

/// Ungapped x-drop extension along the main diagonal (the cheap variant
/// BLAST uses before gapped extension; exposed for the kernel ablation).
pub fn extend_ungapped(s: &[u8], t: &[u8], scoring: Scoring, x: i32) -> Extension {
    assert!(x > 0);
    let mut score = 0i32;
    let mut best = 0i32;
    let mut best_len = 0usize;
    let mut cells = 0u64;
    for (i, (&a, &b)) in s.iter().zip(t.iter()).enumerate() {
        cells += 1;
        score += scoring.substitution(a, b);
        if score > best {
            best = score;
            best_len = i + 1;
        }
        if score < best - x {
            break;
        }
    }
    Extension { score: best, s_ext: best_len, t_ext: best_len, cells }
}

/// A shared-seed alignment task between two oriented sequences.
///
/// Positions refer to the *oriented* sequences handed to
/// [`extend_seed`] — the overlap stage resolves canonical-k-mer strands
/// before building tasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedHit {
    /// Seed start in `a`.
    pub a_pos: usize,
    /// Seed start in `b` (oriented coordinates).
    pub b_pos: usize,
    /// Seed length (the k-mer length).
    pub k: usize,
}

/// A completed seed-and-extend alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedAlignment {
    /// Total score: left extension + seed + right extension.
    pub score: i32,
    /// Aligned range in `a`.
    pub a_start: usize,
    /// End (exclusive) in `a`.
    pub a_end: usize,
    /// Aligned range in `b` (oriented coordinates).
    pub b_start: usize,
    /// End (exclusive) in `b`.
    pub b_end: usize,
    /// Total DP cells computed (both directions).
    pub cells: u64,
}

/// Directional [`extend_xdrop_with_workspace`]: `Dir::Fwd` extends over
/// the slices left-to-right; `Dir::Rev` extends right-to-left **in
/// place**, equivalent to (and bit-identical with) extending over
/// materialized reversed copies — without the copies.
pub fn extend_xdrop_dir_with_workspace(
    s: &[u8],
    t: &[u8],
    dir: Dir,
    scoring: Scoring,
    x: i32,
    ws: &mut AlignWorkspace,
) -> Extension {
    match dir {
        Dir::Fwd => xdrop_core::<false>(s, t, scoring, x, &mut ws.xdrop),
        Dir::Rev => xdrop_core::<true>(s, t, scoring, x, &mut ws.xdrop),
    }
}

/// Seed-and-extend with gapped x-drop in both directions from a shared
/// k-mer (paper §4 step 4: "perform alignment on these read pairs using
/// the shared k-mer as the starting position (seed)").
///
/// Thin wrapper over [`extend_seed_with_workspace`] with a throwaway
/// workspace.
///
/// # Panics
/// Panics if the seed exceeds either sequence.
pub fn extend_seed(a: &[u8], b: &[u8], seed: SeedHit, scoring: Scoring, x: i32) -> SeedAlignment {
    extend_seed_with_workspace(a, b, seed, scoring, x, &mut AlignWorkspace::new())
}

/// [`extend_seed`] using caller-owned scratch. The left extension walks
/// the two prefixes backward in place ([`Dir::Rev`]) instead of
/// materializing reversed copies, so the per-task steady state performs
/// zero heap allocations.
///
/// # Panics
/// Panics if the seed exceeds either sequence.
pub fn extend_seed_with_workspace(
    a: &[u8],
    b: &[u8],
    seed: SeedHit,
    scoring: Scoring,
    x: i32,
    ws: &mut AlignWorkspace,
) -> SeedAlignment {
    assert!(seed.a_pos + seed.k <= a.len(), "seed out of range in a");
    assert!(seed.b_pos + seed.k <= b.len(), "seed out of range in b");

    // Score the seed region itself (normally k matches; sequencing errors
    // can make canonical-strand seeds imperfect, so score actual bases).
    // Iterating the two base slices directly lets the compiler hoist the
    // bounds checks out of the per-task prologue.
    let seed_score: i32 = a[seed.a_pos..seed.a_pos + seed.k]
        .iter()
        .zip(&b[seed.b_pos..seed.b_pos + seed.k])
        .map(|(&ab, &bb)| scoring.substitution(ab, bb))
        .sum();

    // Left: the prefixes, walked backward in place.
    let left = extend_xdrop_dir_with_workspace(
        &a[..seed.a_pos],
        &b[..seed.b_pos],
        Dir::Rev,
        scoring,
        x,
        ws,
    );

    // Right: suffixes.
    let right = extend_xdrop_dir_with_workspace(
        &a[seed.a_pos + seed.k..],
        &b[seed.b_pos + seed.k..],
        Dir::Fwd,
        scoring,
        x,
        ws,
    );

    SeedAlignment {
        score: left.score + seed_score + right.score,
        a_start: seed.a_pos - left.s_ext,
        a_end: seed.a_pos + seed.k + right.s_ext,
        b_start: seed.b_pos - left.t_ext,
        b_end: seed.b_pos + seed.k + right.t_ext,
        cells: left.cells + right.cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw::smith_waterman;

    const S: Scoring = Scoring::bella();

    #[test]
    fn identical_extension_runs_to_the_end() {
        let e = extend_xdrop(b"ACGTACGTGG", b"ACGTACGTGG", S, 10);
        assert_eq!(e.score, 10);
        assert_eq!(e.s_ext, 10);
        assert_eq!(e.t_ext, 10);
    }

    #[test]
    fn empty_inputs() {
        let e = extend_xdrop(b"", b"", S, 5);
        assert_eq!(e.score, 0);
        let e = extend_xdrop(b"ACGT", b"", S, 5);
        assert_eq!((e.score, e.s_ext, e.t_ext), (0, 0, 0));
    }

    #[test]
    fn mismatch_tail_is_not_included() {
        let e = extend_xdrop(b"AAAAGGGG", b"AAAACCCC", S, 3);
        assert_eq!(e.score, 4);
        assert_eq!(e.s_ext, 4);
    }

    #[test]
    fn bridges_single_gap() {
        // s has an extra base; gapped extension must recover the match run.
        let e = extend_xdrop(b"AAAACAAAAAAA", b"AAAAAAAAAAA", S, 6);
        // 11 matches − 1 gap = 10.
        assert_eq!(e.score, 10);
        assert_eq!(e.s_ext, 12);
        assert_eq!(e.t_ext, 11);
    }

    #[test]
    fn xdrop_terminates_early_on_divergence() {
        // After 6 matching bases the sequences are unrelated; with a small
        // X the extension must stop long before the end.
        let mut s = b"ACGTGC".to_vec();
        let mut t = b"ACGTGC".to_vec();
        s.extend(std::iter::repeat_n(b'A', 4000));
        t.extend(std::iter::repeat_n(b'C', 4000));
        let e = extend_xdrop(&s, &t, S, 10);
        assert_eq!(e.score, 6);
        assert!(e.cells < 2_000, "expected early exit, computed {} cells", e.cells);
    }

    #[test]
    fn larger_x_never_scores_lower() {
        let s = b"ACGTTGCAGGTATTTACGCAGGATACGGATTACA";
        let t = b"ACGTTGCAGCTATTTACGCAGCATACGGTTTACA";
        let mut prev = 0;
        for x in [1, 2, 5, 10, 50] {
            let e = extend_xdrop(s, t, S, x);
            assert!(e.score >= prev, "x={x}");
            prev = e.score;
        }
    }

    #[test]
    fn huge_x_matches_best_prefix_pair_score() {
        // With X → ∞ the x-drop finds the global best prefix-pair score,
        // which for these inputs equals the SW local score anchored at 0,0.
        let s = b"ACGTACGTAC";
        let t = b"ACGTACGTAC";
        let e = extend_xdrop(s, t, S, 1_000_000);
        assert_eq!(e.score, 10);
    }

    #[test]
    fn ungapped_stops_at_best() {
        let e = extend_ungapped(b"AAAATTTT", b"AAAACCCC", S, 2);
        assert_eq!(e.score, 4);
        assert_eq!(e.s_ext, 4);
        assert!(e.cells <= 8);
    }

    #[test]
    fn seed_extension_full_overlap() {
        //        0123456789
        let a = b"TTTTACGTACGTAAAA";
        let b = b"TTTTACGTACGTAAAA";
        let seed = SeedHit { a_pos: 4, b_pos: 4, k: 8 };
        let al = extend_seed(a, b, seed, S, 20);
        assert_eq!(al.score, 16);
        assert_eq!((al.a_start, al.a_end), (0, 16));
        assert_eq!((al.b_start, al.b_end), (0, 16));
    }

    #[test]
    fn seed_extension_offset_overlap() {
        // b is a shifted window of a: suffix of a overlaps prefix of b.
        let a = b"GGGGGGACGTACGTTTTT";
        let b = b"ACGTACGTTTTTCCCCCC";
        let seed = SeedHit { a_pos: 6, b_pos: 0, k: 8 };
        let al = extend_seed(a, b, seed, S, 10);
        // Overlap region is 12 bases (ACGTACGTTTTT).
        assert_eq!(al.score, 12);
        assert_eq!((al.a_start, al.a_end), (6, 18));
        assert_eq!((al.b_start, al.b_end), (0, 12));
    }

    #[test]
    fn seed_alignment_never_beats_smith_waterman() {
        let a = b"ACGTTGCAGGTATTTACGCAGGATACGGATTACA";
        let b = b"TTGCAGGTATTAACGCAGGATACGG";
        // Seed at a true shared 8-mer: a[4..12] == b[1..9].
        assert_eq!(&a[4..12], &b[1..9]);
        let al = extend_seed(a, b, SeedHit { a_pos: 4, b_pos: 1, k: 8 }, S, 50);
        let oracle = smith_waterman(a, b, S);
        assert!(al.score <= oracle.score, "xdrop {} > SW {}", al.score, oracle.score);
        assert!(al.score > 0);
    }

    #[test]
    #[should_panic(expected = "seed out of range")]
    fn seed_bounds_checked() {
        let _ = extend_seed(b"ACGT", b"ACGT", SeedHit { a_pos: 2, b_pos: 0, k: 4 }, S, 5);
    }

    #[test]
    fn divergent_pair_cheap_vs_true_pair_expensive() {
        // The Fig-8 load-imbalance mechanism: a true overlapping pair costs
        // DP work proportional to the overlap, a spurious pair terminates
        // after ~X antidiagonals regardless of read length.
        let unit = b"ACGTTGCAGGTATTTACGCA";
        let long: Vec<u8> = unit.iter().cycle().take(2000).copied().collect();
        let seed = SeedHit { a_pos: 0, b_pos: 0, k: 8 };
        let good = extend_seed(&long, &long.clone(), seed, S, 15);
        let mut bad_b = long[..20].to_vec();
        bad_b.extend(std::iter::repeat_n(b'T', 1980));
        let bad = extend_seed(&long, &bad_b, seed, S, 15);
        assert!(
            good.cells > 5 * bad.cells,
            "good={} bad={}",
            good.cells,
            bad.cells
        );
        assert!(good.score > bad.score);
    }
}
