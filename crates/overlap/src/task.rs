//! Overlap pairs, shared seeds, and the task-owner heuristic.

use dibella_io::ReadId;

/// An unordered pair of distinct reads, stored normalized (`a < b`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReadPair {
    /// Smaller read ID.
    pub a: ReadId,
    /// Larger read ID.
    pub b: ReadId,
}

impl ReadPair {
    /// Normalize two distinct read IDs into a pair.
    ///
    /// # Panics
    /// Panics if `x == y` — self-overlaps are skipped upstream.
    pub fn new(x: ReadId, y: ReadId) -> Self {
        assert_ne!(x, y, "self-pair");
        if x < y {
            Self { a: x, b: y }
        } else {
            Self { a: y, b: x }
        }
    }
}

/// A k-mer shared by both reads of a pair: the candidate alignment seed.
///
/// Positions are on each read's own forward orientation; `reverse` records
/// whether the two reads observed the canonical k-mer on opposite strands
/// (in which case read `b` must be reverse-complemented for alignment).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SharedSeed {
    /// k-mer position in read `a`.
    pub a_pos: u32,
    /// k-mer position in read `b`.
    pub b_pos: u32,
    /// Relative orientation: `true` if strands differ.
    pub reverse: bool,
}

/// An alignment task: one read pair plus its (filtered) seed list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OverlapTask {
    /// The read pair to align.
    pub pair: ReadPair,
    /// Seeds to explore, in increasing `a_pos` order.
    pub seeds: Vec<SharedSeed>,
}

/// The odd/even task-placement heuristic (Algorithm 1): choose which of
/// the pair's two reads "homes" the task, so that alignment work lands
/// where one of the reads already lives and the load spreads over both
/// endpoints.
///
/// The paper's literal predicate
/// ```text
/// if ra%2 = 0 AND ra > rb + 1 then buffer[owner(ra)]
/// else if ra%2 ≠ 0 AND ra < rb + 1 then buffer[owner(ra)]
/// else buffer[owner(rb)]
/// ```
/// is *order-sensitive*: a pair discovered through two different k-mers
/// (possibly on different ranks, in different occurrence orders) could be
/// homed at both endpoints, splitting its seed list. We use the
/// order-independent variant with the same structure — ID parity selects
/// the endpoint — which homes every pair uniquely and splits load evenly:
/// the pair goes to its smaller read when the ID sum is even, to the
/// larger when odd.
pub fn task_home(ra: ReadId, rb: ReadId) -> ReadId {
    let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
    if (lo + hi) % 2 == 0 {
        lo
    } else {
        hi
    }
}

/// Task placement strategies for the overlap → alignment hand-off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TaskPlacement {
    /// The parity heuristic ([`task_home`]): near-perfect *count* balance,
    /// indifferent to read length — the paper's production choice.
    #[default]
    Parity,
    /// Paper §9 future work ("a smarter read-to-processor assignment
    /// could optimize for variable read lengths, eliminating the exchange
    /// imbalance"): home the task with the *longer* read's owner, so only
    /// the shorter sequence is ever fetched. Trades task-count balance
    /// for minimum read-exchange volume.
    LongerRead,
}

impl TaskPlacement {
    /// Choose the home read of a task. `lengths` maps read ID → length
    /// and is required by [`TaskPlacement::LongerRead`].
    pub fn home(self, ra: ReadId, rb: ReadId, lengths: Option<&[u32]>) -> ReadId {
        match self {
            TaskPlacement::Parity => task_home(ra, rb),
            TaskPlacement::LongerRead => {
                let lens = lengths.expect("LongerRead placement needs read lengths");
                let (la, lb) = (lens[ra as usize], lens[rb as usize]);
                match la.cmp(&lb) {
                    std::cmp::Ordering::Greater => ra,
                    std::cmp::Ordering::Less => rb,
                    std::cmp::Ordering::Equal => task_home(ra, rb),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_normalizes() {
        assert_eq!(ReadPair::new(5, 2), ReadPair::new(2, 5));
        assert_eq!(ReadPair::new(2, 5).a, 2);
    }

    #[test]
    #[should_panic(expected = "self-pair")]
    fn self_pair_rejected() {
        let _ = ReadPair::new(3, 3);
    }

    #[test]
    fn heuristic_parity_cases() {
        // Even ID sum → smaller endpoint.
        assert_eq!(task_home(10, 4), 4);
        assert_eq!(task_home(3, 9), 3);
        // Odd ID sum → larger endpoint.
        assert_eq!(task_home(4, 9), 9);
        assert_eq!(task_home(9, 2), 9);
    }

    #[test]
    fn heuristic_is_order_independent() {
        for a in 0u32..20 {
            for b in 0u32..20 {
                if a != b {
                    assert_eq!(task_home(a, b), task_home(b, a));
                }
            }
        }
    }

    #[test]
    fn heuristic_splits_load_between_endpoints() {
        // Over all unordered pairs in a range, each read should home
        // roughly the same number of tasks (the heuristic's purpose).
        let n: u32 = 64;
        let mut per_read = vec![0usize; n as usize];
        for a in 0..n {
            for b in (a + 1)..n {
                per_read[task_home(a, b) as usize] += 1;
            }
        }
        let avg = per_read.iter().sum::<usize>() as f64 / n as f64;
        let max = *per_read.iter().max().unwrap() as f64;
        let min = *per_read.iter().min().unwrap() as f64;
        assert!(max < avg * 1.4, "max {max} vs avg {avg}");
        assert!(min > avg * 0.4, "min {min} vs avg {avg}");
    }

    #[test]
    fn heuristic_is_total() {
        // A home is always produced and it is one of the two reads.
        for (a, b) in [(0u32, 1u32), (7, 2), (100, 101), (55, 54)] {
            let h = task_home(a, b);
            assert!(h == a || h == b);
        }
    }
}
