//! # dibella-overlap
//!
//! Stage 3 of the diBELLA pipeline (paper §8): traverse the reliable-k-mer
//! hash table partitions in parallel, form every pair of reads sharing a
//! retained k-mer (Algorithm 1), place each alignment task with the owner
//! of one of its reads via the odd/even heuristic, exchange tasks with a
//! single irregular all-to-all, consolidate per-pair seed lists, and
//! filter seeds by the run's exploration policy (one seed / min-distance).
//! Under the minimizer seed mode an optional colinear chain filter
//! ([`chain`]) runs between consolidation and the policy.
//!
//! The exchange half is pluggable ([`OverlapEngine`]): the default
//! `pairs` engine is Algorithm 1 verbatim, while the [`spgemm`] engine
//! computes the same pair multiset as a blocked `A·Aᵀ` sparse matrix
//! product with source-side per-pair seed consolidation — bit-identical
//! alignments, strictly fewer wire bytes whenever pairs share seeds.

#![warn(missing_docs)]

pub mod chain;
pub mod policy;
pub mod spgemm;
pub mod stage;
pub mod task;

pub use chain::{chain_seeds, ChainConfig};
pub use policy::SeedPolicy;
pub use spgemm::{decode_pair_records, pack_row_block, SpgemmAccumulator, SpgemmBlockOut};
pub use stage::{
    overlap_stage, overlap_stage_with_lengths, reference_pairs, OverlapConfig, OverlapCounters,
    OverlapEngine, OverlapOutput,
};
pub use task::{task_home, OverlapTask, ReadPair, SharedSeed, TaskPlacement};
