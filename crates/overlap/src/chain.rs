//! Colinear chaining of shared seeds (minimap-style anchor chains).
//!
//! Minimizer hits are sparser than reliable-k-mer hits but also noisier:
//! two reads can share an isolated selected k-mer without any genomic
//! overlap (a repeat fragment, an error coincidence). Chaining keeps, per
//! candidate pair, the largest subset of seeds consistent with *one*
//! relative placement of the two reads — seed positions strictly
//! increasing in both reads for a same-strand overlap, increasing in A
//! and decreasing in B for an opposite-strand one — and drops the pair
//! entirely when even the best chain is too short to be trusted. The
//! surviving chain replaces the pair's seed list before the
//! [`crate::SeedPolicy`] runs, so the alignment stage downstream is
//! untouched.
//!
//! The LIS-style O(n²) dynamic program is deterministic: ties prefer the
//! earliest predecessor and the earliest chain end (in the sorted seed
//! order), and a forward chain beats a reverse chain of equal length.

use crate::task::SharedSeed;

/// Chain-filter configuration (`OverlapConfig::chain`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainConfig {
    /// Minimum seeds the best chain must contain; a pair whose best
    /// chain is shorter is dropped before task construction.
    pub min_chain_seeds: usize,
}

impl Default for ChainConfig {
    fn default() -> Self {
        Self { min_chain_seeds: 2 }
    }
}

/// Reduce `seeds` — sorted ascending and deduplicated — to the best
/// colinear chain, in place. Returns `false` (leaving `seeds` in an
/// unspecified state) when the best chain is shorter than
/// `cfg.min_chain_seeds`: the caller drops the pair.
pub fn chain_seeds(seeds: &mut Vec<SharedSeed>, cfg: &ChainConfig) -> bool {
    debug_assert!(
        seeds.windows(2).all(|w| w[0] < w[1]),
        "chain_seeds requires sorted, deduplicated seeds"
    );
    let fwd = best_chain(seeds, false);
    let rev = best_chain(seeds, true);
    // Longer chain wins; a tie keeps the forward interpretation.
    let best = if rev.len() > fwd.len() { rev } else { fwd };
    if best.len() < cfg.min_chain_seeds {
        return false;
    }
    *seeds = best;
    true
}

/// Best (longest, earliest on ties) strictly-monotone chain among the
/// seeds of one orientation. Returned in ascending `a_pos` order.
fn best_chain(seeds: &[SharedSeed], reverse: bool) -> Vec<SharedSeed> {
    let subset: Vec<SharedSeed> =
        seeds.iter().copied().filter(|s| s.reverse == reverse).collect();
    let n = subset.len();
    if n == 0 {
        return Vec::new();
    }
    let mut len = vec![1u32; n];
    let mut pred = vec![usize::MAX; n];
    for i in 1..n {
        for j in 0..i {
            let colinear = subset[j].a_pos < subset[i].a_pos
                && if reverse {
                    subset[j].b_pos > subset[i].b_pos
                } else {
                    subset[j].b_pos < subset[i].b_pos
                };
            // Strict improvement only → the earliest maximal predecessor.
            if colinear && len[j] + 1 > len[i] {
                len[i] = len[j] + 1;
                pred[i] = j;
            }
        }
    }
    let mut best = 0usize;
    for (i, &l) in len.iter().enumerate() {
        if l > len[best] {
            best = i;
        }
    }
    let mut chain = Vec::with_capacity(len[best] as usize);
    let mut i = best;
    loop {
        chain.push(subset[i]);
        if pred[i] == usize::MAX {
            break;
        }
        i = pred[i];
    }
    chain.reverse();
    chain
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed(a: u32, b: u32, rev: bool) -> SharedSeed {
        SharedSeed { a_pos: a, b_pos: b, reverse: rev }
    }

    fn chained(mut seeds: Vec<SharedSeed>, min: usize) -> Option<Vec<SharedSeed>> {
        seeds.sort_unstable();
        seeds.dedup();
        chain_seeds(&mut seeds, &ChainConfig { min_chain_seeds: min }).then_some(seeds)
    }

    #[test]
    fn colinear_forward_seeds_all_survive() {
        let seeds = vec![seed(10, 110, false), seed(40, 140, false), seed(90, 190, false)];
        assert_eq!(chained(seeds.clone(), 2), Some(seeds));
    }

    #[test]
    fn off_diagonal_seed_is_pruned() {
        // The (50, 20) anchor contradicts the +100 diagonal the other
        // three agree on — the chain excludes it.
        let seeds =
            vec![seed(10, 110, false), seed(40, 140, false), seed(50, 20, false), seed(90, 190, false)];
        let want = vec![seed(10, 110, false), seed(40, 140, false), seed(90, 190, false)];
        assert_eq!(chained(seeds, 2), Some(want));
    }

    #[test]
    fn reverse_orientation_chains_on_antidiagonal() {
        // Opposite-strand overlap: A ascending while B descends.
        let seeds = vec![seed(10, 190, true), seed(40, 160, true), seed(90, 110, true)];
        assert_eq!(chained(seeds.clone(), 3), Some(seeds));
        // Ascending b_pos is NOT a valid reverse chain: only one survives
        // and a min of 2 drops the pair.
        let bad = vec![seed(10, 110, true), seed(40, 140, true)];
        assert_eq!(chained(bad, 2), None);
    }

    #[test]
    fn orientations_compete_and_majority_wins() {
        let seeds = vec![
            seed(10, 110, false),
            seed(40, 140, false),
            seed(90, 190, false),
            seed(20, 180, true),
            seed(60, 120, true),
        ];
        let want = vec![seed(10, 110, false), seed(40, 140, false), seed(90, 190, false)];
        assert_eq!(chained(seeds, 2), Some(want));
    }

    #[test]
    fn equal_length_tie_keeps_forward() {
        let seeds = vec![seed(10, 110, false), seed(40, 140, false), seed(20, 180, true), seed(60, 120, true)];
        let got = chained(seeds, 2).unwrap();
        assert!(got.iter().all(|s| !s.reverse));
    }

    #[test]
    fn short_chain_drops_pair() {
        assert_eq!(chained(vec![seed(10, 110, false)], 2), None);
        // But survives a min of 1.
        assert_eq!(chained(vec![seed(10, 110, false)], 1), Some(vec![seed(10, 110, false)]));
        // Empty input never chains.
        assert_eq!(chained(vec![], 1), None);
    }

    #[test]
    fn equal_a_pos_seeds_cannot_co_chain() {
        // Strict monotonicity in a_pos: two seeds at the same A offset
        // are alternatives, not chain links.
        let seeds = vec![seed(10, 110, false), seed(10, 140, false)];
        let got = chained(seeds, 1).unwrap();
        assert_eq!(got.len(), 1);
        // Earliest end on ties → the smaller b_pos survives.
        assert_eq!(got[0], seed(10, 110, false));
    }

    #[test]
    fn chain_output_is_sorted_for_the_policy() {
        let seeds = vec![
            seed(90, 190, false),
            seed(10, 110, false),
            seed(50, 20, false),
            seed(40, 140, false),
        ];
        let got = chained(seeds, 2).unwrap();
        assert!(got.windows(2).all(|w| w[0].a_pos < w[1].a_pos));
    }
}
