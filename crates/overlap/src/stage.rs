//! Stage 3 — distributed overlap detection (paper §8, Algorithm 1).
//!
//! Each rank walks its hash-table partition, forms every pair of reads
//! sharing a retained k-mer, routes the task to the home of one of its
//! reads via the odd/even heuristic, streams the tasks out in
//! byte-bounded [`dibella_comm::RoundExchange`] rounds
//! (packing each round while the previous one is in flight), and
//! consolidates per-pair seed lists, which are then filtered by the run's
//! [`SeedPolicy`]. With the round cap unbounded this degenerates to the
//! single monolithic all-to-all of the paper's Algorithm 1; the results
//! are bit-identical either way.
//!
//! Two interchangeable **engines** implement the exchange half
//! ([`OverlapEngine`], `--overlap-engine`): the default `pairs` engine
//! below is the paper's Algorithm 1 — one fixed-size task record per
//! shared-seed instance, consolidated at the destination — while the
//! `spgemm` engine ([`crate::spgemm`]) reformulates the enumeration as
//! the sparse matrix product `A·Aᵀ` and consolidates *at the source*,
//! shipping one variable-length record per (pair, source rank). Both feed
//! the identical consolidate → chain → policy epilogue here, and both
//! produce bit-identical alignments; only wire bytes, pack time, and the
//! physical `rounds` count differ.
//!
//! Pair enumeration is threaded through the shared
//! [`BatchedExecutor`]: prefix sums over each entry's occurrence-pair
//! bound `n(n−1)/2` form a global *pair-index* space, a round is a cut of
//! that space, each round is sharded into fixed `pair_batch` batches
//! enumerated in parallel, and per-destination buffers are concatenated
//! in batch order — so the task stream is bit-identical at any thread
//! count (and downstream sort/dedup makes the *output* independent even
//! of the table's iteration order).

use crate::chain::{chain_seeds, ChainConfig};
use crate::policy::SeedPolicy;
use crate::spgemm::spgemm_exchange;
use crate::task::{OverlapTask, ReadPair, SharedSeed, TaskPlacement};
use dibella_comm::{
    decode_iter, encode_slice, records_per_round, BatchedExecutor, Comm, MultisetUnion,
    RoundExchange, RoundPlan, Wire,
};
use dibella_io::{ReadId, ReadPartition};
use dibella_kcount::{KmerHashTable, Occurrence};
use dibella_kmer::Strand;
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// Which exchange engine the overlap stage runs (`--overlap-engine`).
/// Final alignments are bit-identical across engines; the choice trades
/// pack time and wire bytes (see [`crate::spgemm`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverlapEngine {
    /// Algorithm 1 verbatim: one 20-byte task record per shared-seed
    /// instance, consolidated at the destination rank.
    #[default]
    Pairs,
    /// Blocked `A·Aᵀ` SpGEMM with source-side per-pair consolidation.
    Spgemm,
}

impl FromStr for OverlapEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "pairs" => Ok(Self::Pairs),
            "spgemm" => Ok(Self::Spgemm),
            other => Err(format!("unknown overlap engine '{other}' (expected pairs|spgemm)")),
        }
    }
}

impl fmt::Display for OverlapEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Pairs => "pairs",
            Self::Spgemm => "spgemm",
        })
    }
}

/// Overlap-stage configuration.
#[derive(Clone, Copy, Debug)]
pub struct OverlapConfig {
    /// Seed exploration policy.
    pub policy: SeedPolicy,
    /// Hard cap on seeds explored per pair ("maximum number of seeds to
    /// explore per overlap", §8).
    pub max_seeds_per_pair: usize,
    /// Task placement strategy (parity heuristic, or the §9 future-work
    /// longer-read placement).
    pub placement: TaskPlacement,
    /// Byte cap per rank and exchange round (`usize::MAX` = unbounded,
    /// i.e. one monolithic exchange). The pipeline plumbs `--round-mb`
    /// through here.
    pub max_exchange_bytes_per_round: usize,
    /// Pair indices per executor batch when enumeration is threaded. Pure
    /// function of the input — never of the thread count — so any value
    /// is deterministic; tests shrink it to force many batches.
    pub pair_batch: usize,
    /// Colinear chain filter applied between consolidation and the seed
    /// policy (`None` = off). The minimizer seed mode turns it on: sparse
    /// sketch hits need a consistency check that dense reliable k-mers
    /// get for free from their sheer count.
    pub chain: Option<ChainConfig>,
    /// Which exchange engine runs the discovery half (`--overlap-engine`).
    pub engine: OverlapEngine,
    /// Rows per SpGEMM block when `engine == Spgemm` — the executor batch
    /// unit (`--spgemm-block`). Pure function of the input, so any value
    /// is deterministic; tests shrink it to force many blocks.
    pub spgemm_block: usize,
}

impl OverlapConfig {
    /// Default executor batch size for threaded pair enumeration.
    pub const DEFAULT_PAIR_BATCH: usize = 1024;
    /// Default rows per SpGEMM row block.
    pub const DEFAULT_SPGEMM_BLOCK: usize = 64;
}

impl Default for OverlapConfig {
    fn default() -> Self {
        Self {
            policy: SeedPolicy::Single,
            max_seeds_per_pair: 16,
            placement: TaskPlacement::Parity,
            max_exchange_bytes_per_round: usize::MAX,
            pair_batch: Self::DEFAULT_PAIR_BATCH,
            chain: None,
            engine: OverlapEngine::Pairs,
            spgemm_block: Self::DEFAULT_SPGEMM_BLOCK,
        }
    }
}

/// `(i, j)` of the `t`-th pair in the nested-loop order over `n`
/// occurrences (`i < j`, row-major: all `(0, _)` pairs, then `(1, _)`, …).
/// Rows shrink by one each step, so a short walk recovers the row; batch
/// starts pay O(n), every following pair is O(1) via the `j += 1` advance
/// in the caller.
fn pair_at(n: usize, mut t: u64) -> (usize, usize) {
    let mut i = 0usize;
    loop {
        let row = (n - 1 - i) as u64;
        if t < row {
            return (i, i + 1 + t as usize);
        }
        t -= row;
        i += 1;
    }
}

/// Enumerate the global pair-index range `[lo, hi)` of Algorithm 1's
/// nested loop, routing each cross-read pair to its home rank's buffer.
/// Same-read pairs (a k-mer repeated within one read witnesses no
/// overlap) occupy indices but emit nothing. Returns the per-destination
/// wire bytes and the emitted-record count — one executor batch.
#[allow(clippy::too_many_arguments)]
fn pack_pair_range(
    entries: &[&[Occurrence]],
    prefix: &[u64],
    lo: u64,
    hi: u64,
    read_part: &ReadPartition,
    cfg: &OverlapConfig,
    lengths: Option<&[u32]>,
    ranks: usize,
) -> (Vec<Vec<u8>>, u64) {
    let mut bufs: Vec<Vec<TaskMsg>> = vec![Vec::new(); ranks];
    let mut emitted = 0u64;
    // First entry whose pair-index interval contains `lo`.
    let mut e = prefix.partition_point(|&start| start <= lo).saturating_sub(1);
    let mut cursor = lo;
    while cursor < hi {
        let end = prefix[e + 1];
        if end <= cursor {
            // Zero-pair entry (or one fully before the range) — skip.
            e += 1;
            continue;
        }
        let occs = entries[e];
        let stop = end.min(hi);
        let (mut i, mut j) = pair_at(occs.len(), cursor - prefix[e]);
        for _ in cursor..stop {
            let (oi, oj) = (&occs[i], &occs[j]);
            if oi.read != oj.read {
                emitted += 1;
                let home: ReadId = cfg.placement.home(oi.read, oj.read, lengths);
                // Normalize so the receiving side sees a < b.
                let (pair, a_pos, b_pos) = if oi.read < oj.read {
                    (ReadPair::new(oi.read, oj.read), oi.pos, oj.pos)
                } else {
                    (ReadPair::new(oj.read, oi.read), oj.pos, oi.pos)
                };
                let reverse = oi.strand != oj.strand;
                bufs[read_part.owner_of(home)].push((
                    pair.a,
                    pair.b,
                    (a_pos, b_pos, reverse as u32),
                ));
            }
            j += 1;
            if j >= occs.len() {
                i += 1;
                j = i + 1;
            }
        }
        cursor = stop;
        e += 1;
    }
    (bufs.into_iter().map(|b| encode_slice(&b)).collect(), emitted)
}

/// Work counters for the cost model and the figure harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OverlapCounters {
    /// Retained k-mers traversed in this rank's partition (the rate unit
    /// of Figure 6).
    pub retained_kmers: u64,
    /// Shared-seed instances emitted into the exchange (before any
    /// consolidation) — engine-invariant: the `spgemm` engine counts every
    /// seed its consolidated records carry.
    pub pairs_emitted: u64,
    /// Wire records emitted. Equals `pairs_emitted` for the `pairs`
    /// engine (one record per seed); for `spgemm` it is the number of
    /// source-consolidated `(pair, source rank)` records.
    pub candidate_pairs_emitted: u64,
    /// Seed instances the `spgemm` engine merged away at the source
    /// (`pairs_emitted − candidate_pairs_emitted`; 0 for `pairs`).
    pub pairs_deduped_at_source: u64,
    /// Shared-seed instances received in the exchange (engine-invariant;
    /// world-summed it always equals `pairs_emitted`).
    pub tasks_received: u64,
    /// Distinct pairs after consolidation on this rank.
    pub pairs_consolidated: u64,
    /// Seeds kept after policy filtering.
    pub seeds_kept: u64,
    /// Seeds dropped by the policy (and, when chaining is on, by the
    /// chain filter — off-chain seeds of kept pairs and all seeds of
    /// dropped pairs).
    pub seeds_dropped: u64,
    /// Pairs dropped because their best colinear chain was below
    /// `ChainConfig::min_chain_seeds` (0 when chaining is off).
    pub pairs_chain_dropped: u64,
    /// Bulk-synchronous exchange rounds executed (equals the stage's
    /// `alltoallv` call count; 1 unless a round cap forces streaming).
    /// Physical, not logical: the two engines plan rounds over different
    /// record streams, so this counter may legitimately differ between
    /// them under a byte cap.
    pub rounds: u64,
}

/// Result of the overlap stage on one rank.
#[derive(Debug, Default)]
pub struct OverlapOutput {
    /// Alignment tasks homed on this rank, sorted by pair, seeds sorted by
    /// `a_pos` — deterministic across world sizes.
    pub tasks: Vec<OverlapTask>,
    /// Work counters.
    pub counters: OverlapCounters,
}

/// Task wire record: `(ra, rb, (a_pos, b_pos, reverse))` — 20 bytes.
type TaskMsg = (u32, u32, (u32, u32, u32));

/// What an engine's exchange half hands to the shared epilogue: the
/// consolidated per-pair seed multisets plus the emission counters. Both
/// engines produce the same logical multiset; only the record geometry
/// (and hence `emitted_records` and the physical round count) differs.
pub(crate) struct ExchangeOut {
    /// Per-pair seed lists as received (pre-canonicalization).
    pub pairs: MultisetUnion<ReadPair, SharedSeed>,
    /// Shared-seed instances emitted (engine-invariant).
    pub emitted_seeds: u64,
    /// Shared-seed instances received (engine-invariant).
    pub received_seeds: u64,
    /// Wire records emitted (engine-dependent; = `emitted_seeds` for the
    /// pairs engine).
    pub emitted_records: u64,
    /// Executed exchange rounds.
    pub rounds: u64,
}

/// Run the overlap stage.
///
/// `table` is this rank's reliable-k-mer partition (after
/// `retain_reliable`); `read_part` maps read IDs to their owning ranks.
pub fn overlap_stage(
    comm: &Comm,
    table: &KmerHashTable,
    read_part: &ReadPartition,
    cfg: &OverlapConfig,
    exec: &BatchedExecutor,
) -> OverlapOutput {
    overlap_stage_with_lengths(comm, table, read_part, cfg, None, exec)
}

/// [`overlap_stage`] with global read lengths available for length-aware
/// task placement (`TaskPlacement::LongerRead`).
pub fn overlap_stage_with_lengths(
    comm: &Comm,
    table: &KmerHashTable,
    read_part: &ReadPartition,
    cfg: &OverlapConfig,
    lengths: Option<&[u32]>,
    exec: &BatchedExecutor,
) -> OverlapOutput {
    let exch = match cfg.engine {
        OverlapEngine::Pairs => pairs_exchange(comm, table, read_part, cfg, lengths, exec),
        OverlapEngine::Spgemm => spgemm_exchange(comm, table, read_part, cfg, lengths, exec),
    };
    let mut counters = OverlapCounters {
        retained_kmers: table.len() as u64,
        pairs_emitted: exch.emitted_seeds,
        candidate_pairs_emitted: exch.emitted_records,
        pairs_deduped_at_source: exch.emitted_seeds - exch.emitted_records,
        tasks_received: exch.received_seeds,
        rounds: exch.rounds,
        ..Default::default()
    };

    // ---- chain, filter seeds, emit deterministic task list ---------------
    // Shared epilogue: both engines deliver the same per-pair seed
    // multisets, so everything from here on is engine-independent.
    let mut tasks: Vec<OverlapTask> = exch
        .pairs
        .into_map()
        .into_iter()
        .filter_map(|(pair, mut seeds)| {
            seeds.sort_unstable();
            seeds.dedup();
            if let Some(chain_cfg) = &cfg.chain {
                let before = seeds.len() as u64;
                if !chain_seeds(&mut seeds, chain_cfg) {
                    counters.pairs_chain_dropped += 1;
                    counters.seeds_dropped += before;
                    return None;
                }
                counters.seeds_dropped += before - seeds.len() as u64;
            }
            counters.pairs_consolidated += 1;
            let dropped = cfg.policy.apply(&mut seeds, cfg.max_seeds_per_pair);
            counters.seeds_dropped += dropped as u64;
            counters.seeds_kept += seeds.len() as u64;
            Some(OverlapTask { pair, seeds })
        })
        .collect();
    tasks.sort_unstable_by_key(|t| t.pair);

    OverlapOutput { tasks, counters }
}

/// The `pairs` engine's exchange half — Algorithm 1 verbatim.
fn pairs_exchange(
    comm: &Comm,
    table: &KmerHashTable,
    read_part: &ReadPartition,
    cfg: &OverlapConfig,
    lengths: Option<&[u32]>,
    exec: &BatchedExecutor,
) -> ExchangeOut {
    let p = comm.size();

    // ---- Algorithm 1, batched over the pair-index space ------------------
    // Prefix sums over each entry's occurrence-pair bound `n(n−1)/2` give
    // every pair of Algorithm 1's nested loop a global index. Rounds and
    // executor batches are cuts of that index space, so the decomposition
    // is a pure function of the table — identical at any thread count. The
    // round budget counts the same-read pairs the enumeration skips, so a
    // rank whose entries yield nothing simply ships lighter (or empty)
    // rounds.
    let entries: Vec<&[Occurrence]> = table.iter().map(|(_, e)| e.occurrences.as_slice()).collect();
    let mut prefix: Vec<u64> = Vec::with_capacity(entries.len() + 1);
    prefix.push(0);
    for occs in &entries {
        let n = occs.len() as u64;
        prefix.push(prefix.last().unwrap() + n * n.saturating_sub(1) / 2);
    }
    let pair_bound = *prefix.last().unwrap();
    let per_round = records_per_round(
        <TaskMsg as Wire>::SIZE,
        usize::MAX,
        cfg.max_exchange_bytes_per_round,
    );
    let batch = cfg.pair_batch.max(1) as u64;
    let mut emitted = 0u64;
    let mut received = 0u64;
    let mut pairs: MultisetUnion<ReadPair, SharedSeed> = MultisetUnion::new();

    let rounds = RoundExchange::run(
        comm,
        RoundPlan::for_records(pair_bound, per_round),
        |round| {
            let lo = (round * per_round as u64).min(pair_bound);
            let hi = lo.saturating_add(per_round as u64).min(pair_bound);
            let n_batches = (hi - lo).div_ceil(batch) as usize;
            let parts = exec.map_indexed(n_batches, |b| {
                let blo = lo + b as u64 * batch;
                let bhi = blo.saturating_add(batch).min(hi);
                pack_pair_range(&entries, &prefix, blo, bhi, read_part, cfg, lengths, p)
            });
            // Merge in batch order: concatenating each destination's encoded
            // slices equals encoding the concatenated record stream, so the
            // wire bytes match the sequential enumeration exactly.
            let mut merged: Vec<Vec<u8>> = vec![Vec::new(); p];
            for (wire, n) in parts {
                emitted += n;
                for (dest, bytes) in merged.iter_mut().zip(wire) {
                    if dest.is_empty() {
                        *dest = bytes;
                    } else {
                        dest.extend_from_slice(&bytes);
                    }
                }
            }
            merged
        },
        // ---- consolidate per-pair seed lists, as rounds arrive ----------
        |_round, recv| {
            for buf in recv {
                for (a, b, (a_pos, b_pos, rev)) in decode_iter::<TaskMsg>(&buf) {
                    received += 1;
                    pairs.push(ReadPair { a, b }, SharedSeed { a_pos, b_pos, reverse: rev != 0 });
                }
            }
        },
    );
    ExchangeOut {
        pairs,
        emitted_seeds: emitted,
        received_seeds: received,
        // One wire record per seed instance: nothing dedups at the source.
        emitted_records: emitted,
        rounds,
    }
}

/// Serial reference for tests and the single-node baseline: all pairs of
/// reads sharing a retained k-mer, with unfiltered seed lists, computed
/// from merged table partitions.
pub fn reference_pairs(tables: &[&KmerHashTable]) -> HashMap<ReadPair, Vec<SharedSeed>> {
    let mut out: HashMap<ReadPair, Vec<SharedSeed>> = HashMap::new();
    for table in tables {
        for (_kmer, entry) in table.iter() {
            let occs = &entry.occurrences;
            for i in 0..occs.len() {
                for j in (i + 1)..occs.len() {
                    let (oi, oj) = (&occs[i], &occs[j]);
                    if oi.read == oj.read {
                        continue;
                    }
                    let (pair, a_pos, b_pos) = if oi.read < oj.read {
                        (ReadPair::new(oi.read, oj.read), oi.pos, oj.pos)
                    } else {
                        (ReadPair::new(oj.read, oi.read), oj.pos, oi.pos)
                    };
                    out.entry(pair).or_default().push(SharedSeed {
                        a_pos,
                        b_pos,
                        reverse: oi.strand != oj.strand,
                    });
                }
            }
        }
    }
    for seeds in out.values_mut() {
        seeds.sort_unstable();
        seeds.dedup();
    }
    out
}

/// Convenience for tests: was this occurrence pair orientation-flipped?
pub fn relative_orientation(a: Strand, b: Strand) -> bool {
    a != b
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibella_comm::CommWorld;
    use dibella_io::{partition_reads, Read, ReadSet};
    use dibella_kcount::{bloom_stage, hash_stage, KcountConfig};

    fn kc_cfg(k: usize, m: u32) -> KcountConfig {
        KcountConfig {
            k,
            max_multiplicity: m,
            bloom_fp_rate: 0.01,
            expected_distinct: 10_000,
            max_kmers_per_round: 1 << 14,
            max_exchange_bytes_per_round: usize::MAX,
            extract_batch: 16,
        }
    }

    /// Reads sampled from one synthetic "genome" string so that genuine
    /// overlaps exist. (The genome must be non-periodic or every k-mer
    /// becomes a high-frequency repeat and gets filtered.)
    fn overlapping_reads(n: usize, read_len: usize, stride: usize) -> ReadSet {
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let genome: Vec<u8> = (0..(n * stride + read_len))
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                b"ACGT"[(state % 4) as usize]
            })
            .collect();
        (0..n as u32)
            .map(|i| {
                let s = i as usize * stride;
                Read::new(i, format!("r{i}"), genome[s..s + read_len].to_vec())
            })
            .collect()
    }

    /// Run stages 1–3 on `p` ranks; return every rank's tasks merged,
    /// sorted by pair.
    fn run_pipeline_to_overlap(
        reads: &ReadSet,
        p: usize,
        kc: &KcountConfig,
        oc: &OverlapConfig,
    ) -> Vec<OverlapTask> {
        let (part, chunks) = partition_reads(reads, p);
        let results = CommWorld::run(p, |comm| {
            let exec = BatchedExecutor::sequential();
            let local = chunks[comm.rank()].reads();
            let bloom = bloom_stage(comm, local, kc, &exec);
            let mut table = bloom.table;
            let _ = hash_stage(comm, local, &mut table, kc, &exec);
            overlap_stage(comm, &table, &part, oc, &exec)
        });
        let mut all: Vec<OverlapTask> = results.into_iter().flat_map(|o| o.tasks).collect();
        all.sort_unstable_by_key(|t| t.pair);
        all
    }

    #[test]
    fn neighbours_share_overlaps() {
        let reads = overlapping_reads(8, 60, 20);
        let kc = kc_cfg(9, 16);
        let oc = OverlapConfig { policy: SeedPolicy::MinDistance(9), max_seeds_per_pair: 64, ..Default::default() };
        let tasks = run_pipeline_to_overlap(&reads, 3, &kc, &oc);
        // Adjacent reads overlap by 40 bases → must be found.
        for i in 0..7u32 {
            assert!(
                tasks.iter().any(|t| t.pair == ReadPair::new(i, i + 1)),
                "missing pair ({i},{})",
                i + 1
            );
        }
        // Every task has at least one seed.
        assert!(tasks.iter().all(|t| !t.seeds.is_empty()));
    }

    #[test]
    fn distributed_matches_serial_world() {
        let reads = overlapping_reads(10, 50, 15);
        let kc = kc_cfg(9, 16);
        let oc = OverlapConfig { policy: SeedPolicy::MinDistance(9), max_seeds_per_pair: 64, ..Default::default() };
        let serial = run_pipeline_to_overlap(&reads, 1, &kc, &oc);
        for p in [2usize, 3, 5] {
            let dist = run_pipeline_to_overlap(&reads, p, &kc, &oc);
            assert_eq!(dist, serial, "p={p}");
        }
    }

    #[test]
    fn each_pair_appears_on_exactly_one_rank() {
        let reads = overlapping_reads(12, 50, 10);
        let kc = kc_cfg(9, 24);
        let oc = OverlapConfig::default();
        let (part, chunks) = partition_reads(&reads, 4);
        let results = CommWorld::run(4, |comm| {
            let exec = BatchedExecutor::sequential();
            let local = chunks[comm.rank()].reads();
            let bloom = bloom_stage(comm, local, &kc, &exec);
            let mut table = bloom.table;
            let _ = hash_stage(comm, local, &mut table, &kc, &exec);
            overlap_stage(comm, &table, &part, &oc, &exec)
        });
        let mut seen = std::collections::HashSet::new();
        for out in &results {
            for t in &out.tasks {
                assert!(seen.insert(t.pair), "pair {:?} duplicated", t.pair);
            }
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn tasks_land_on_the_home_reads_owner() {
        let reads = overlapping_reads(12, 50, 10);
        let kc = kc_cfg(9, 24);
        let oc = OverlapConfig::default();
        let (part, chunks) = partition_reads(&reads, 4);
        let results = CommWorld::run(4, |comm| {
            let exec = BatchedExecutor::sequential();
            let local = chunks[comm.rank()].reads();
            let bloom = bloom_stage(comm, local, &kc, &exec);
            let mut table = bloom.table;
            let _ = hash_stage(comm, local, &mut table, &kc, &exec);
            (comm.rank(), overlap_stage(comm, &table, &part, &oc, &exec))
        });
        for (rank, out) in &results {
            for t in &out.tasks {
                // The task's home read must be owned by this rank. The
                // home is one of the two endpoints (heuristic could have
                // been evaluated in either discovery order).
                let owners = [part.owner_of(t.pair.a), part.owner_of(t.pair.b)];
                assert!(owners.contains(rank), "task {:?} on rank {rank}", t.pair);
            }
        }
    }

    #[test]
    fn single_policy_yields_single_seed() {
        let reads = overlapping_reads(6, 60, 12);
        let kc = kc_cfg(9, 24);
        let oc = OverlapConfig { policy: SeedPolicy::Single, max_seeds_per_pair: 1, ..Default::default() };
        let tasks = run_pipeline_to_overlap(&reads, 2, &kc, &oc);
        assert!(!tasks.is_empty());
        assert!(tasks.iter().all(|t| t.seeds.len() == 1));
    }

    #[test]
    fn counters_add_up() {
        let reads = overlapping_reads(10, 50, 10);
        let kc = kc_cfg(9, 24);
        let oc = OverlapConfig { policy: SeedPolicy::MinDistance(9), max_seeds_per_pair: 64, ..Default::default() };
        let (part, chunks) = partition_reads(&reads, 3);
        let outs = CommWorld::run(3, |comm| {
            let exec = BatchedExecutor::sequential();
            let local = chunks[comm.rank()].reads();
            let bloom = bloom_stage(comm, local, &kc, &exec);
            let mut table = bloom.table;
            let _ = hash_stage(comm, local, &mut table, &kc, &exec);
            overlap_stage(comm, &table, &part, &oc, &exec).counters
        });
        let emitted: u64 = outs.iter().map(|c| c.pairs_emitted).sum();
        let received: u64 = outs.iter().map(|c| c.tasks_received).sum();
        assert_eq!(emitted, received, "task records lost in exchange");
        let kept: u64 = outs.iter().map(|c| c.seeds_kept).sum();
        let dropped: u64 = outs.iter().map(|c| c.seeds_dropped).sum();
        // kept + dropped ≤ received (dedup may shrink before filtering).
        assert!(kept + dropped <= received);
        assert!(kept > 0);
    }

    #[test]
    fn reverse_orientation_detected() {
        // One read and (a copy whose middle is) its reverse complement
        // share canonical k-mers with opposite strands.
        let mut state = 0xFEED_F00Du64;
        let fwd: Vec<u8> = (0..80)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                b"ACGT"[(state % 4) as usize]
            })
            .collect();
        let rc = dibella_kmer::base::reverse_complement_ascii(&fwd);
        let reads: ReadSet = vec![
            Read::new(0, "fwd", fwd),
            Read::new(1, "rc", rc),
        ]
        .into_iter()
        .collect();
        let kc = kc_cfg(9, 8);
        let oc = OverlapConfig { policy: SeedPolicy::MinDistance(9), max_seeds_per_pair: 64, ..Default::default() };
        let tasks = run_pipeline_to_overlap(&reads, 2, &kc, &oc);
        let t = tasks
            .iter()
            .find(|t| t.pair == ReadPair::new(0, 1))
            .expect("rc pair not found");
        assert!(t.seeds.iter().all(|s| s.reverse), "strand flags wrong");
    }

    #[test]
    fn chain_filter_prunes_seeds_but_keeps_true_pairs() {
        let reads = overlapping_reads(8, 60, 20);
        let kc = kc_cfg(9, 16);
        let base = OverlapConfig {
            policy: SeedPolicy::MinDistance(9),
            max_seeds_per_pair: 64,
            ..Default::default()
        };
        let plain = run_pipeline_to_overlap(&reads, 3, &kc, &base);
        // min_chain_seeds = 1 never drops a pair — it only reduces each
        // seed list to its best colinear chain.
        let chained_cfg = OverlapConfig { chain: Some(ChainConfig { min_chain_seeds: 1 }), ..base };
        let chained = run_pipeline_to_overlap(&reads, 3, &kc, &chained_cfg);
        let pairs = |ts: &[OverlapTask]| ts.iter().map(|t| t.pair).collect::<Vec<_>>();
        assert_eq!(pairs(&plain), pairs(&chained));
        let total = |ts: &[OverlapTask]| ts.iter().map(|t| t.seeds.len()).sum::<usize>();
        assert!(total(&chained) <= total(&plain));
        assert!(chained.iter().all(|t| !t.seeds.is_empty()));
        // Chain output stays sorted for the policy's contract.
        for t in &chained {
            assert!(t.seeds.windows(2).all(|w| w[0].a_pos <= w[1].a_pos));
        }
        // An unsatisfiable chain requirement drops every pair — counted,
        // and nothing reaches the task list.
        let strict = OverlapConfig { chain: Some(ChainConfig { min_chain_seeds: 1000 }), ..base };
        let (part, chunks) = partition_reads(&reads, 3);
        let outs = CommWorld::run(3, |comm| {
            let exec = BatchedExecutor::sequential();
            let local = chunks[comm.rank()].reads();
            let bloom = bloom_stage(comm, local, &kc, &exec);
            let mut table = bloom.table;
            let _ = hash_stage(comm, local, &mut table, &kc, &exec);
            overlap_stage(comm, &table, &part, &strict, &exec)
        });
        let dropped: u64 = outs.iter().map(|o| o.counters.pairs_chain_dropped).sum();
        assert!(dropped > 0);
        assert!(outs.iter().all(|o| o.tasks.is_empty()));
        assert!(outs.iter().all(|o| o.counters.seeds_kept == 0));
    }

    #[test]
    fn pair_at_matches_nested_loop_order() {
        for n in 2..=7usize {
            let mut t = 0u64;
            for i in 0..n {
                for j in (i + 1)..n {
                    assert_eq!(pair_at(n, t), (i, j), "n={n} t={t}");
                    t += 1;
                }
            }
        }
    }

    #[test]
    fn engine_flag_parses_and_displays() {
        assert_eq!("pairs".parse::<OverlapEngine>().unwrap(), OverlapEngine::Pairs);
        assert_eq!("spgemm".parse::<OverlapEngine>().unwrap(), OverlapEngine::Spgemm);
        assert_eq!(OverlapEngine::Pairs.to_string(), "pairs");
        assert_eq!(OverlapEngine::Spgemm.to_string(), "spgemm");
        assert!("bella".parse::<OverlapEngine>().is_err());
        assert_eq!(OverlapEngine::default(), OverlapEngine::Pairs);
    }

    /// The SpGEMM engine produces the pairs engine's exact tasks and
    /// logical counters, per rank, and dedups shipped records at the
    /// source whenever pairs share seeds.
    #[test]
    fn spgemm_engine_is_bit_identical_and_dedups_at_source() {
        let reads = overlapping_reads(12, 60, 12);
        let kc = kc_cfg(9, 24);
        let base = OverlapConfig {
            policy: SeedPolicy::MinDistance(9),
            max_seeds_per_pair: 64,
            ..Default::default()
        };
        let (part, chunks) = partition_reads(&reads, 3);
        let run = |oc: OverlapConfig| {
            CommWorld::run(3, |comm| {
                let exec = BatchedExecutor::sequential();
                let local = chunks[comm.rank()].reads();
                let bloom = bloom_stage(comm, local, &kc, &exec);
                let mut table = bloom.table;
                let _ = hash_stage(comm, local, &mut table, &kc, &exec);
                overlap_stage(comm, &table, &part, &oc, &exec)
            })
        };
        let pairs_out = run(base);
        let spgemm_out = run(OverlapConfig {
            engine: OverlapEngine::Spgemm,
            spgemm_block: 2, // force several row blocks
            ..base
        });
        for (p_rank, s_rank) in pairs_out.iter().zip(&spgemm_out) {
            assert_eq!(p_rank.tasks, s_rank.tasks, "tasks diverge between engines");
            // Logical counters are engine-invariant...
            let (p, s) = (p_rank.counters, s_rank.counters);
            assert_eq!(p.retained_kmers, s.retained_kmers);
            assert_eq!(p.pairs_emitted, s.pairs_emitted);
            assert_eq!(p.pairs_consolidated, s.pairs_consolidated);
            assert_eq!(p.seeds_kept, s.seeds_kept);
            assert_eq!(p.seeds_dropped, s.seeds_dropped);
            // ...and the pairs engine never dedups at the source.
            assert_eq!(p.candidate_pairs_emitted, p.pairs_emitted);
            assert_eq!(p.pairs_deduped_at_source, 0);
            assert_eq!(
                s.pairs_deduped_at_source,
                s.pairs_emitted - s.candidate_pairs_emitted
            );
        }
        // Overlapping synthetic reads share many k-mers per pair, so the
        // SpGEMM engine must merge records at the source.
        let deduped: u64 = spgemm_out.iter().map(|o| o.counters.pairs_deduped_at_source).sum();
        assert!(deduped > 0, "expected source-side dedup on seed-rich pairs");
        // Received seeds balance across the world for both engines.
        for outs in [&pairs_out, &spgemm_out] {
            let emitted: u64 = outs.iter().map(|o| o.counters.pairs_emitted).sum();
            let received: u64 = outs.iter().map(|o| o.counters.tasks_received).sum();
            assert_eq!(emitted, received);
        }
    }

    /// Tentpole invariant: threaded pair enumeration with a tiny batch size
    /// (forcing many batches per round) produces the exact tasks and
    /// counters of the sequential run, per rank, with and without a round
    /// cap.
    #[test]
    fn threaded_enumeration_is_bit_identical_to_sequential() {
        let reads = overlapping_reads(14, 60, 12);
        let kc = kc_cfg(9, 24);
        for cap in [usize::MAX, 600] {
            let oc_seq = OverlapConfig {
                policy: SeedPolicy::MinDistance(9),
                max_seeds_per_pair: 64,
                max_exchange_bytes_per_round: cap,
                ..Default::default()
            };
            let (part, chunks) = partition_reads(&reads, 3);
            let run = |threads: usize, oc: OverlapConfig| {
                CommWorld::run(3, |comm| {
                    let exec = BatchedExecutor::new(threads);
                    let local = chunks[comm.rank()].reads();
                    let bloom = bloom_stage(comm, local, &kc, &exec);
                    let mut table = bloom.table;
                    let _ = hash_stage(comm, local, &mut table, &kc, &exec);
                    let out = overlap_stage(comm, &table, &part, &oc, &exec);
                    (out.tasks, out.counters)
                })
            };
            let baseline = run(1, oc_seq);
            for threads in [2usize, 4] {
                let oc_par = OverlapConfig { pair_batch: 7, ..oc_seq };
                let got = run(threads, oc_par);
                assert_eq!(got, baseline, "threads={threads} cap={cap}");
            }
        }
    }
}
