//! Seed-exploration policies (paper §5, §8).
//!
//! "At the two extremes, the one-seed option computes pairwise alignment
//! on exactly one seed per pair, while the all-seed option computes
//! pairwise alignment on all the available seeds separated by at least the
//! k-mer length. As an intermediate point we consider only seeds separated
//! by 1,000 bps." These are the three computational-intensity settings of
//! Figures 9–11.

use crate::task::SharedSeed;

/// Which of a pair's shared seeds are explored by the alignment stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SeedPolicy {
    /// Exactly one seed per pair (the paper's minimum-intensity setting).
    Single,
    /// All seeds separated by at least this many bases on read `a`.
    /// `MinDistance(k)` is the paper's "all seeds" setting;
    /// `MinDistance(1000)` is the intermediate one.
    MinDistance(u32),
}

impl SeedPolicy {
    /// The paper's three named settings, for sweeps.
    pub fn paper_settings(k: usize) -> [(&'static str, SeedPolicy); 3] {
        [
            ("one-seed", SeedPolicy::Single),
            ("d=1K", SeedPolicy::MinDistance(1000)),
            ("d=k", SeedPolicy::MinDistance(k as u32)),
        ]
    }

    /// Filter a pair's seed list in place.
    ///
    /// Seeds must arrive sorted by `a_pos` (consolidation guarantees it);
    /// the greedy spacing filter keeps a seed iff it lies at least the
    /// required distance beyond the last kept seed, up to
    /// `max_seeds_per_pair`. Returns the number of dropped seeds.
    pub fn apply(&self, seeds: &mut Vec<SharedSeed>, max_seeds_per_pair: usize) -> usize {
        debug_assert!(seeds.windows(2).all(|w| w[0].a_pos <= w[1].a_pos));
        let before = seeds.len();
        match self {
            SeedPolicy::Single => seeds.truncate(1),
            SeedPolicy::MinDistance(d) => {
                let mut kept = 0usize;
                let mut last_a: Option<u32> = None;
                let mut last_rev: Option<bool> = None;
                seeds.retain(|s| {
                    if kept >= max_seeds_per_pair {
                        return false;
                    }
                    // Seeds of different orientation are independent
                    // candidate overlaps; spacing applies per orientation
                    // run (a simple, deterministic approximation of
                    // BELLA's chaining).
                    let far_enough = match (last_a, last_rev) {
                        (Some(a), Some(rev)) if rev == s.reverse => {
                            s.a_pos >= a.saturating_add(*d)
                        }
                        _ => true,
                    };
                    if far_enough {
                        kept += 1;
                        last_a = Some(s.a_pos);
                        last_rev = Some(s.reverse);
                        true
                    } else {
                        false
                    }
                });
            }
        }
        before - seeds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed(a: u32, rev: bool) -> SharedSeed {
        SharedSeed { a_pos: a, b_pos: a, reverse: rev }
    }

    #[test]
    fn single_keeps_first() {
        let mut seeds = vec![seed(5, false), seed(100, false), seed(900, false)];
        let dropped = SeedPolicy::Single.apply(&mut seeds, 100);
        assert_eq!(dropped, 2);
        assert_eq!(seeds, vec![seed(5, false)]);
    }

    #[test]
    fn min_distance_spacing() {
        let mut seeds = vec![
            seed(0, false),
            seed(500, false),
            seed(999, false),
            seed(1001, false),
            seed(2500, false),
        ];
        SeedPolicy::MinDistance(1000).apply(&mut seeds, 100);
        assert_eq!(
            seeds.iter().map(|s| s.a_pos).collect::<Vec<_>>(),
            vec![0, 1001, 2500]
        );
    }

    #[test]
    fn min_distance_k_keeps_non_overlapping_seeds() {
        let mut seeds: Vec<SharedSeed> = (0..10).map(|i| seed(i * 17, false)).collect();
        SeedPolicy::MinDistance(17).apply(&mut seeds, 100);
        assert_eq!(seeds.len(), 10);
        let mut dense: Vec<SharedSeed> = (0..10).map(|i| seed(i, false)).collect();
        SeedPolicy::MinDistance(17).apply(&mut dense, 100);
        assert_eq!(dense.len(), 1);
    }

    #[test]
    fn orientation_change_resets_spacing() {
        let mut seeds = vec![seed(0, false), seed(5, true), seed(10, false)];
        SeedPolicy::MinDistance(1000).apply(&mut seeds, 100);
        // Each orientation flip is kept despite proximity.
        assert_eq!(seeds.len(), 3);
    }

    #[test]
    fn cap_respected() {
        let mut seeds: Vec<SharedSeed> = (0..50).map(|i| seed(i * 2000, false)).collect();
        SeedPolicy::MinDistance(1000).apply(&mut seeds, 8);
        assert_eq!(seeds.len(), 8);
    }

    #[test]
    fn empty_seed_list_is_a_no_op() {
        for policy in [SeedPolicy::Single, SeedPolicy::MinDistance(1000)] {
            let mut seeds: Vec<SharedSeed> = Vec::new();
            assert_eq!(policy.apply(&mut seeds, 4), 0);
            assert!(seeds.is_empty());
        }
    }

    #[test]
    fn cap_interacts_with_orientation_runs() {
        // Alternating orientations: every flip resets the spacing rule,
        // so all seeds are spacing-eligible and the cap alone truncates.
        let mut seeds: Vec<SharedSeed> = (0..10).map(|i| seed(i, i % 2 == 1)).collect();
        let dropped = SeedPolicy::MinDistance(1000).apply(&mut seeds, 4);
        assert_eq!(dropped, 6);
        assert_eq!(
            seeds.iter().map(|s| (s.a_pos, s.reverse)).collect::<Vec<_>>(),
            vec![(0, false), (1, true), (2, false), (3, true)],
            "cap must keep the first four in a_pos order, orientations intact"
        );
    }

    #[test]
    fn cap_applies_after_spacing_within_a_run() {
        // Same-orientation seeds at half the spacing distance: the
        // spacing rule halves them first, then the cap truncates the
        // survivors — so the kept set is the first `max` *spaced* seeds,
        // not the first `max` raw seeds.
        let mut seeds: Vec<SharedSeed> = (0..20).map(|i| seed(i * 500, false)).collect();
        let dropped = SeedPolicy::MinDistance(1000).apply(&mut seeds, 3);
        assert_eq!(
            seeds.iter().map(|s| s.a_pos).collect::<Vec<_>>(),
            vec![0, 1000, 2000]
        );
        assert_eq!(dropped, 17);
    }

    #[test]
    fn zero_cap_drops_everything_under_min_distance() {
        let mut seeds = vec![seed(0, false), seed(5000, true)];
        assert_eq!(SeedPolicy::MinDistance(1000).apply(&mut seeds, 0), 2);
        assert!(seeds.is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "seeds.windows")]
    fn unsorted_input_is_rejected_in_debug() {
        let mut seeds = vec![seed(10, false), seed(0, false)];
        SeedPolicy::MinDistance(5).apply(&mut seeds, 4);
    }

    #[test]
    fn paper_settings_cover_three_points() {
        let s = SeedPolicy::paper_settings(17);
        assert_eq!(s[0].1, SeedPolicy::Single);
        assert_eq!(s[1].1, SeedPolicy::MinDistance(1000));
        assert_eq!(s[2].1, SeedPolicy::MinDistance(17));
    }
}
