//! SpGEMM overlap engine: blocked `A·Aᵀ` pair discovery with
//! merge-at-source deduplication (the BELLA / diBELLA-2D formulation).
//!
//! The paper's Algorithm 1 (the `pairs` engine in [`crate::stage`])
//! enumerates every occurrence pair of every retained k-mer, so a read
//! pair sharing `m` seeds is encoded and shipped `m` times — one 20-byte
//! record per seed — before the destination rank consolidates. This
//! engine reformulates the same enumeration as the sparse matrix product
//! `A·Aᵀ` of the read-by-k-mer matrix ([`dibella_kcount::ReadKmerCsr`])
//! and merges per pair *at the source*:
//!
//! 1. rows (local reads) are cut into fixed `spgemm_block`-row blocks —
//!    the parallel decomposition, fanned out on the shared
//!    [`BatchedExecutor`] and merged in block order;
//! 2. each row `i` runs a Gustavson accumulation: for every row entry
//!    `(c, pos, strand)` and every occurrence `(j, pos_j, strand_j)` of
//!    column `c` with `read_j > read_i`, accumulate the seed under key
//!    `read_j` (strictly upper triangular, so each unordered occurrence
//!    pair is produced by exactly one row — the smaller read's);
//! 3. per pair `(a, b)` one variable-length wire record carries *all*
//!    locally discovered seeds:
//!
//!    ```text
//!    ┌────────┬────────┬────────┬──────────────────────────────────┐
//!    │ a: u32 │ b: u32 │ n: u32 │ n × (a_pos: u32, b_pos | rev<<31)│
//!    └────────┴────────┴────────┴──────────────────────────────────┘
//!        12-byte header                 8 bytes per seed
//!    ```
//!
//!    versus the pairs engine's `20·n` bytes — equal at `n = 1`,
//!    strictly smaller whenever a pair shares more than one seed;
//! 4. the per-destination record streams ship through the standard
//!    [`ByteRounds`]-planned [`RoundExchange`], so the engine stays
//!    memory-bounded under `--round-mb`, and the destination consolidates
//!    with the same [`MultisetUnion`] the pairs engine uses.
//!
//! Determinism: column order is the CSR's canonical k-mer sort, row order
//! is ascending read ID, blocks are a pure function of the row count, and
//! both accumulator variants ([`SpgemmAccumulator::Dense`] /
//! [`SpgemmAccumulator::Hash`]) emit candidate reads in ascending-`b`
//! order with seeds in row-entry (column) order — so the wire bytes are
//! bit-identical across thread counts, accumulator choices, and round
//! caps, and the shared consolidate/chain/policy epilogue in
//! [`crate::stage`] produces bit-identical alignments.

use crate::stage::{ExchangeOut, OverlapConfig};
use crate::task::{ReadPair, SharedSeed, TaskPlacement};
use dibella_comm::{BatchedExecutor, ByteRounds, Comm, MultisetUnion, RoundExchange};
use dibella_io::ReadPartition;
use dibella_kcount::{KmerHashTable, ReadKmerCsr};
use std::collections::HashMap;
use std::ops::Range;

/// Bytes of a pair record's `(a, b, n)` header.
pub const RECORD_HEADER_BYTES: usize = 12;
/// Bytes per seed within a pair record.
pub const SEED_BYTES: usize = 8;

/// Gustavson row-accumulator variant. The two implementations traverse
/// identically and emit identical bytes — only the `b → seeds` lookup
/// structure differs, which is what the `spgemm_rows_per_sec` bench
/// compares.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpgemmAccumulator {
    /// Per block, pick [`Self::Dense`] when the block's flop bound is at
    /// least a quarter of the global read count (the dense array's
    /// O(reads) touch cost is amortized), else [`Self::Hash`]. A pure
    /// function of the input — never of the thread count.
    #[default]
    Auto,
    /// Dense: a `Vec` slot per global read plus a touched list — O(1)
    /// accumulation, best for dense row blocks.
    Dense,
    /// Hash: a `HashMap` keyed by candidate read — O(touched) memory,
    /// best for sparse row blocks.
    Hash,
}

/// One row block's packed output: per-destination wire bytes, the record
/// geometry [`ByteRounds`] plans with, and the emission counters.
#[derive(Debug, Default)]
pub struct SpgemmBlockOut {
    /// Per-destination encoded pair records.
    pub bufs: Vec<Vec<u8>>,
    /// Per-destination record lengths, in send order.
    pub lens: Vec<Vec<usize>>,
    /// Wire records emitted (source-consolidated candidate pairs).
    pub records: u64,
    /// Seed contributions carried (the pairs engine's per-record unit).
    pub seeds: u64,
}

/// Per-row accumulator: `b → seeds`, drained in ascending `b`.
enum Acc {
    Dense { slots: Vec<Vec<SharedSeed>>, touched: Vec<u32> },
    Hash { map: HashMap<u32, Vec<SharedSeed>> },
}

impl Acc {
    fn new(kind: SpgemmAccumulator, csr: &ReadKmerCsr, rows: &Range<usize>, n_reads: usize) -> Self {
        let kind = match kind {
            SpgemmAccumulator::Auto => {
                if csr.block_flops(rows.start, rows.end) >= n_reads as u64 / 4 {
                    SpgemmAccumulator::Dense
                } else {
                    SpgemmAccumulator::Hash
                }
            }
            pinned => pinned,
        };
        match kind {
            SpgemmAccumulator::Dense => Acc::Dense {
                slots: vec![Vec::new(); n_reads],
                touched: Vec::new(),
            },
            _ => Acc::Hash { map: HashMap::new() },
        }
    }

    #[inline]
    fn add(&mut self, b: u32, seed: SharedSeed) {
        match self {
            Acc::Dense { slots, touched } => {
                let slot = &mut slots[b as usize];
                if slot.is_empty() {
                    touched.push(b);
                }
                slot.push(seed);
            }
            Acc::Hash { map } => map.entry(b).or_default().push(seed),
        }
    }

    /// Emit `(b, seeds)` in ascending `b`, then reset for the next row.
    fn drain(&mut self, mut f: impl FnMut(u32, &[SharedSeed])) {
        match self {
            Acc::Dense { slots, touched } => {
                touched.sort_unstable();
                for &b in touched.iter() {
                    f(b, &slots[b as usize]);
                }
                for &b in touched.iter() {
                    slots[b as usize].clear();
                }
                touched.clear();
            }
            Acc::Hash { map } => {
                let mut keys: Vec<u32> = map.keys().copied().collect();
                keys.sort_unstable();
                for b in keys {
                    f(b, &map[&b]);
                }
                map.clear();
            }
        }
    }
}

/// Expand row range `rows` of the `A·Aᵀ` product into per-destination
/// pair records — one executor batch of the SpGEMM engine, also driven
/// directly by the `spgemm_rows_per_sec` bench. Deterministic: identical
/// bytes for every accumulator variant and thread count.
#[allow(clippy::too_many_arguments)]
pub fn pack_row_block(
    csr: &ReadKmerCsr,
    rows: Range<usize>,
    read_part: &ReadPartition,
    placement: TaskPlacement,
    lengths: Option<&[u32]>,
    ranks: usize,
    acc_kind: SpgemmAccumulator,
) -> SpgemmBlockOut {
    let mut out = SpgemmBlockOut {
        bufs: vec![Vec::new(); ranks],
        lens: vec![Vec::new(); ranks],
        records: 0,
        seeds: 0,
    };
    let mut acc = Acc::new(acc_kind, csr, &rows, read_part.n_reads());
    for r in rows {
        let a = csr.row_read(r);
        for e in csr.row(r) {
            for occ in csr.col(e.col) {
                // Strictly upper triangular: the smaller read's row owns
                // the pair, so each cross-read occurrence pair is produced
                // exactly once (same-read occurrence pairs witness no
                // overlap and are skipped by `occ.read == a`).
                if occ.read > a {
                    acc.add(
                        occ.read,
                        SharedSeed { a_pos: e.pos, b_pos: occ.pos, reverse: e.strand != occ.strand },
                    );
                }
            }
        }
        acc.drain(|b, seeds| {
            let dest = read_part.owner_of(placement.home(a, b, lengths));
            let buf = &mut out.bufs[dest];
            buf.extend_from_slice(&a.to_le_bytes());
            buf.extend_from_slice(&b.to_le_bytes());
            buf.extend_from_slice(&(seeds.len() as u32).to_le_bytes());
            for s in seeds {
                debug_assert!(s.b_pos < 1 << 31, "b_pos must leave the orientation bit free");
                buf.extend_from_slice(&s.a_pos.to_le_bytes());
                buf.extend_from_slice(&(s.b_pos | (s.reverse as u32) << 31).to_le_bytes());
            }
            out.lens[dest].push(RECORD_HEADER_BYTES + SEED_BYTES * seeds.len());
            out.records += 1;
            out.seeds += seeds.len() as u64;
        });
    }
    out
}

/// Decode a buffer of pair records, invoking `f(pair, seed)` for every
/// carried seed (in record, then seed order). Returns the record count.
///
/// # Panics
/// Panics if `buf` is not a whole number of records.
pub fn decode_pair_records(buf: &[u8], mut f: impl FnMut(ReadPair, SharedSeed)) -> u64 {
    let u32_at = |off: usize| u32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
    let mut off = 0usize;
    let mut records = 0u64;
    while off < buf.len() {
        assert!(buf.len() - off >= RECORD_HEADER_BYTES, "truncated record header");
        let (a, b, n) = (u32_at(off), u32_at(off + 4), u32_at(off + 8) as usize);
        off += RECORD_HEADER_BYTES;
        assert!(buf.len() - off >= SEED_BYTES * n, "truncated seed list");
        for _ in 0..n {
            let (a_pos, packed) = (u32_at(off), u32_at(off + 4));
            off += SEED_BYTES;
            f(
                ReadPair { a, b },
                SharedSeed { a_pos, b_pos: packed & !(1 << 31), reverse: packed >> 31 == 1 },
            );
        }
        records += 1;
    }
    records
}

/// The SpGEMM engine's exchange half: build the CSR, expand row blocks on
/// the executor, plan the variable-length record stream with
/// [`ByteRounds`], stream it through [`RoundExchange`], and consolidate
/// arrivals into the shared [`MultisetUnion`]. The caller (the engine
/// dispatch in [`crate::stage`]) runs the common epilogue.
pub(crate) fn spgemm_exchange(
    comm: &Comm,
    table: &KmerHashTable,
    read_part: &ReadPartition,
    cfg: &OverlapConfig,
    lengths: Option<&[u32]>,
    exec: &BatchedExecutor,
) -> ExchangeOut {
    let p = comm.size();
    let csr = ReadKmerCsr::from_table(table);
    let block = cfg.spgemm_block.max(1);
    let n_blocks = csr.n_rows().div_ceil(block);

    // Row blocks are the parallel decomposition: fixed-size cuts of the
    // row axis, expanded independently and merged in block order — the
    // record stream is bit-identical at any thread count.
    let parts = exec.map_indexed(n_blocks, |bi| {
        let lo = bi * block;
        let hi = (lo + block).min(csr.n_rows());
        pack_row_block(&csr, lo..hi, read_part, cfg.placement, lengths, p, SpgemmAccumulator::Auto)
    });
    let mut bufs: Vec<Vec<u8>> = vec![Vec::new(); p];
    let mut lens: Vec<Vec<usize>> = vec![Vec::new(); p];
    let mut emitted_records = 0u64;
    let mut emitted_seeds = 0u64;
    for part in parts {
        emitted_records += part.records;
        emitted_seeds += part.seeds;
        for (dest, bytes) in bufs.iter_mut().zip(part.bufs) {
            if dest.is_empty() {
                *dest = bytes;
            } else {
                dest.extend_from_slice(&bytes);
            }
        }
        for (dest, l) in lens.iter_mut().zip(part.lens) {
            dest.extend_from_slice(&l);
        }
    }

    let split = ByteRounds::plan(&lens, cfg.max_exchange_bytes_per_round);
    let mut pairs: MultisetUnion<ReadPair, SharedSeed> = MultisetUnion::new();
    let mut received_seeds = 0u64;
    let rounds = RoundExchange::run(
        comm,
        split.round_plan(),
        |round| split.pack(round, &bufs),
        |_round, recv| {
            for buf in recv {
                decode_pair_records(&buf, |pair, seed| {
                    received_seeds += 1;
                    pairs.push(pair, seed);
                });
            }
        },
    );
    ExchangeOut {
        pairs,
        emitted_seeds,
        received_seeds,
        emitted_records,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibella_kcount::{KcountConfig, Occurrence};
    use dibella_kmer::{Kmer1, Strand};

    fn kc() -> KcountConfig {
        KcountConfig {
            k: 5,
            max_multiplicity: 16,
            bloom_fp_rate: 0.05,
            expected_distinct: 64,
            max_kmers_per_round: 1 << 16,
            max_exchange_bytes_per_round: usize::MAX,
            extract_batch: KcountConfig::DEFAULT_EXTRACT_BATCH,
        }
    }

    fn table_with(entries: &[(&[u8], Vec<Occurrence>)]) -> KmerHashTable {
        let c = kc();
        let mut t = KmerHashTable::with_capacity(entries.len());
        for (s, occs) in entries {
            let km = Kmer1::from_ascii(s).unwrap();
            t.insert_key(km);
            for o in occs {
                assert!(t.record_occurrence(&km, *o, &c));
            }
        }
        t
    }

    fn occ(read: u32, pos: u32, strand: Strand) -> Occurrence {
        Occurrence { read, pos, strand }
    }

    /// Shared-seed pairs come out as one record carrying all seeds, and
    /// the decode round-trips the pack exactly.
    #[test]
    fn pack_consolidates_and_roundtrips() {
        // Reads 0 and 1 share two k-mers; read 2 shares one with read 0.
        let t = table_with(&[
            (b"ACGTA", vec![occ(0, 3, Strand::Forward), occ(1, 7, Strand::Forward)]),
            (b"CATCA", vec![occ(0, 9, Strand::Forward), occ(1, 1, Strand::Reverse)]),
            (b"GGGTG", vec![occ(0, 20, Strand::Forward), occ(2, 5, Strand::Forward)]),
        ]);
        let csr = ReadKmerCsr::from_table(&t);
        let part = ReadPartition::from_counts(&[3]);
        let out = pack_row_block(
            &csr,
            0..csr.n_rows(),
            &part,
            TaskPlacement::Parity,
            None,
            1,
            SpgemmAccumulator::Auto,
        );
        assert_eq!(out.records, 2, "one record per pair");
        assert_eq!(out.seeds, 3, "three seed contributions");
        assert_eq!(
            out.bufs[0].len(),
            2 * RECORD_HEADER_BYTES + 3 * SEED_BYTES,
            "12 + 8n bytes per record"
        );
        assert_eq!(out.lens[0].iter().sum::<usize>(), out.bufs[0].len());
        let mut got: Vec<(ReadPair, SharedSeed)> = Vec::new();
        let records = decode_pair_records(&out.bufs[0], |p, s| got.push((p, s)));
        assert_eq!(records, 2);
        let mut want = vec![
            (ReadPair::new(0, 1), SharedSeed { a_pos: 3, b_pos: 7, reverse: false }),
            (ReadPair::new(0, 1), SharedSeed { a_pos: 9, b_pos: 1, reverse: true }),
            (ReadPair::new(0, 2), SharedSeed { a_pos: 20, b_pos: 5, reverse: false }),
        ];
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    /// Dense and hash accumulators emit byte-identical streams, and block
    /// size never changes the concatenated bytes.
    #[test]
    fn accumulator_variants_and_blocking_are_byte_identical() {
        let t = table_with(&[
            (
                b"ACGTA",
                vec![occ(0, 0, Strand::Forward), occ(2, 4, Strand::Reverse), occ(5, 9, Strand::Forward)],
            ),
            (
                b"CATCA",
                vec![occ(2, 1, Strand::Forward), occ(5, 3, Strand::Forward), occ(0, 8, Strand::Forward)],
            ),
            (b"TTTCT", vec![occ(1, 2, Strand::Forward), occ(4, 6, Strand::Reverse)]),
            (
                b"GGGTG",
                vec![occ(0, 11, Strand::Forward), occ(1, 13, Strand::Forward), occ(2, 15, Strand::Forward)],
            ),
        ]);
        let csr = ReadKmerCsr::from_table(&t);
        let part = ReadPartition::from_counts(&[3, 3]);
        let run = |acc: SpgemmAccumulator, block: usize| {
            let mut merged: Vec<Vec<u8>> = vec![Vec::new(); 2];
            for lo in (0..csr.n_rows()).step_by(block) {
                let hi = (lo + block).min(csr.n_rows());
                let out = pack_row_block(&csr, lo..hi, &part, TaskPlacement::Parity, None, 2, acc);
                for (d, b) in merged.iter_mut().zip(out.bufs) {
                    d.extend_from_slice(&b);
                }
            }
            merged
        };
        let baseline = run(SpgemmAccumulator::Dense, csr.n_rows());
        for acc in [SpgemmAccumulator::Hash, SpgemmAccumulator::Auto] {
            for block in [1usize, 2, 3, 64] {
                assert_eq!(run(acc, block), baseline, "acc={acc:?} block={block}");
            }
        }
    }

    /// The orientation bit survives packing next to a large position.
    #[test]
    fn orientation_bit_does_not_corrupt_positions() {
        let t = table_with(&[(
            b"ACGTA",
            vec![occ(0, 123_456, Strand::Forward), occ(1, 654_321, Strand::Reverse)],
        )]);
        let csr = ReadKmerCsr::from_table(&t);
        let part = ReadPartition::from_counts(&[2]);
        let out = pack_row_block(
            &csr,
            0..csr.n_rows(),
            &part,
            TaskPlacement::Parity,
            None,
            1,
            SpgemmAccumulator::Hash,
        );
        let mut got = Vec::new();
        decode_pair_records(&out.bufs[0], |p, s| got.push((p, s)));
        assert_eq!(
            got,
            vec![(
                ReadPair::new(0, 1),
                SharedSeed { a_pos: 123_456, b_pos: 654_321, reverse: true }
            )]
        );
    }
}
