//! Property tests for the overlap stage: Algorithm 1's output is a
//! partition-independent, exactly-once, seed-complete task set.

use dibella_comm::{BatchedExecutor, CommWorld};
use dibella_io::{partition_reads, Read, ReadSet};
use dibella_kcount::{bloom_stage, hash_stage, KcountConfig};
use dibella_overlap::{overlap_stage, task_home, OverlapConfig, OverlapTask, SeedPolicy};
use proptest::prelude::*;

fn genome_reads() -> impl Strategy<Value = ReadSet> {
    (40usize..120, 4usize..10, any::<u64>()).prop_map(|(read_len, n, seed)| {
        let stride = read_len / 3;
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let genome: Vec<u8> = (0..(n * stride + read_len))
            .map(|_| b"ACGT"[(rnd() % 4) as usize])
            .collect();
        (0..n as u32)
            .map(|i| {
                Read::new(i, format!("r{i}"), genome[i as usize * stride..][..read_len].to_vec())
            })
            .collect()
    })
}

fn run_to_overlap(reads: &ReadSet, p: usize, policy: SeedPolicy) -> Vec<OverlapTask> {
    let kc = KcountConfig {
        k: 9,
        max_multiplicity: 32,
        bloom_fp_rate: 0.02,
        expected_distinct: 4096,
        max_kmers_per_round: 1 << 12,
        max_exchange_bytes_per_round: usize::MAX,
        extract_batch: 16,
    };
    let oc = OverlapConfig { policy, max_seeds_per_pair: 64, ..Default::default() };
    let (part, chunks) = partition_reads(reads, p);
    let outs = CommWorld::run(p, |comm| {
        let exec = BatchedExecutor::sequential();
        let local = chunks[comm.rank()].reads();
        let bloom = bloom_stage(comm, local, &kc, &exec);
        let mut table = bloom.table;
        let _ = hash_stage(comm, local, &mut table, &kc, &exec);
        overlap_stage(comm, &table, &part, &oc, &exec)
    });
    let mut all: Vec<OverlapTask> = outs.into_iter().flat_map(|o| o.tasks).collect();
    all.sort_unstable_by_key(|t| t.pair);
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The task set (pairs + filtered seed lists) is identical for every
    /// world size.
    #[test]
    fn world_size_invariant(reads in genome_reads(), p in 2usize..6) {
        let serial = run_to_overlap(&reads, 1, SeedPolicy::MinDistance(9));
        let dist = run_to_overlap(&reads, p, SeedPolicy::MinDistance(9));
        prop_assert_eq!(dist, serial);
    }

    /// Pairs are unique, ordered, non-self, and each task's seeds are
    /// strictly within both reads.
    #[test]
    fn tasks_well_formed(reads in genome_reads(), p in 1usize..5) {
        let tasks = run_to_overlap(&reads, p, SeedPolicy::MinDistance(9));
        for w in tasks.windows(2) {
            prop_assert!(w[0].pair < w[1].pair, "duplicate or unsorted pair");
        }
        for t in &tasks {
            prop_assert!(t.pair.a < t.pair.b);
            prop_assert!(!t.seeds.is_empty());
            let la = reads.reads()[t.pair.a as usize].len();
            let lb = reads.reads()[t.pair.b as usize].len();
            for s in &t.seeds {
                prop_assert!((s.a_pos as usize) + 9 <= la);
                prop_assert!((s.b_pos as usize) + 9 <= lb);
            }
        }
    }

    /// The Single policy yields exactly one seed; MinDistance(d) respects
    /// the spacing within each orientation run.
    #[test]
    fn policies_respected(reads in genome_reads(), d in 5u32..40) {
        let single = run_to_overlap(&reads, 2, SeedPolicy::Single);
        prop_assert!(single.iter().all(|t| t.seeds.len() == 1));
        let spaced = run_to_overlap(&reads, 2, SeedPolicy::MinDistance(d));
        for t in &spaced {
            for w in t.seeds.windows(2) {
                if w[0].reverse == w[1].reverse {
                    prop_assert!(
                        w[1].a_pos >= w[0].a_pos + d,
                        "seeds {}/{} closer than {d}",
                        w[0].a_pos,
                        w[1].a_pos
                    );
                }
            }
        }
    }

    /// The home heuristic is symmetric, total and roughly balanced over a
    /// random pair population.
    #[test]
    fn home_heuristic_properties(n in 8u32..200) {
        let mut per_read = vec![0u32; n as usize];
        for a in 0..n {
            for b in (a + 1)..n {
                let h = task_home(a, b);
                prop_assert!(h == a || h == b);
                prop_assert_eq!(h, task_home(b, a));
                per_read[h as usize] += 1;
            }
        }
        let avg = (n - 1) as f64 / 2.0;
        for (r, &c) in per_read.iter().enumerate() {
            prop_assert!(
                (c as f64) < avg * 1.6 + 4.0,
                "read {r} homes {c} of avg {avg}"
            );
        }
    }
}
