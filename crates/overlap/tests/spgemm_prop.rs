//! Property tests for the SpGEMM overlap engine: on arbitrary k-mer
//! tables, the blocked `A·Aᵀ` expansion emits exactly Algorithm 1's
//! cross-read (pair, seed) multiset — no duplicates, no losses — and the
//! dense/hash accumulator variants are byte-identical at every block
//! size and rank count.

use dibella_io::ReadPartition;
use dibella_kcount::{KcountConfig, KmerHashTable, Occurrence, ReadKmerCsr};
use dibella_kmer::{Kmer1, Strand};
use dibella_overlap::{
    decode_pair_records, pack_row_block, ReadPair, SharedSeed, SpgemmAccumulator, TaskPlacement,
};
use proptest::prelude::*;

const K: usize = 9;
const N_READS: u32 = 12;

fn kc() -> KcountConfig {
    KcountConfig {
        k: K,
        max_multiplicity: 64,
        bloom_fp_rate: 0.05,
        expected_distinct: 256,
        max_kmers_per_round: 1 << 16,
        max_exchange_bytes_per_round: usize::MAX,
        extract_batch: 16,
    }
}

/// An arbitrary table: up to 10 random k-mers (reverse-complement
/// collisions between them are fine — every consumer sees the same
/// table), each with 2–8 random occurrences over 12 reads.
fn tables() -> impl Strategy<Value = KmerHashTable> {
    prop::collection::vec(
        (
            prop::collection::vec(0u8..4, K),
            prop::collection::vec((0..N_READS, 0u32..1000, any::<bool>()), 2..8),
        ),
        1..10,
    )
    .prop_map(|entries| {
        let c = kc();
        let mut t = KmerHashTable::with_capacity(entries.len());
        for (bases, occs) in entries {
            let ascii: Vec<u8> = bases.iter().map(|&b| b"ACGT"[b as usize]).collect();
            let km = Kmer1::from_ascii(&ascii).unwrap();
            t.insert_key(km);
            for (read, pos, rev) in occs {
                let strand = if rev { Strand::Reverse } else { Strand::Forward };
                assert!(t.record_occurrence(&km, Occurrence { read, pos, strand }, &c));
            }
        }
        t
    })
}

/// Algorithm 1's double loop over the same table: every cross-read
/// occurrence pair, normalized `a < b`, as a multiset.
fn reference_multiset(table: &KmerHashTable) -> Vec<(ReadPair, SharedSeed)> {
    let mut out = Vec::new();
    for (_, entry) in table.iter() {
        let occs = &entry.occurrences;
        for i in 0..occs.len() {
            for j in (i + 1)..occs.len() {
                let (oi, oj) = (&occs[i], &occs[j]);
                if oi.read == oj.read {
                    continue;
                }
                let (pair, a_pos, b_pos) = if oi.read < oj.read {
                    (ReadPair::new(oi.read, oj.read), oi.pos, oj.pos)
                } else {
                    (ReadPair::new(oj.read, oi.read), oj.pos, oi.pos)
                };
                out.push((pair, SharedSeed { a_pos, b_pos, reverse: oi.strand != oj.strand }));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Pack every row block and decode everything that would ship, as a
/// sorted multiset, plus the per-destination raw bytes.
fn spgemm_multiset(
    table: &KmerHashTable,
    ranks: usize,
    block: usize,
    acc: SpgemmAccumulator,
) -> (Vec<(ReadPair, SharedSeed)>, Vec<Vec<u8>>) {
    let csr = ReadKmerCsr::from_table(table);
    let per = (N_READS as usize).div_ceil(ranks);
    let counts: Vec<usize> = (0..ranks)
        .map(|r| per.min((N_READS as usize).saturating_sub(r * per)))
        .collect();
    let part = ReadPartition::from_counts(&counts);
    let mut bufs: Vec<Vec<u8>> = vec![Vec::new(); ranks];
    let mut seeds = Vec::new();
    for lo in (0..csr.n_rows()).step_by(block.max(1)) {
        let hi = (lo + block.max(1)).min(csr.n_rows());
        let out = pack_row_block(&csr, lo..hi, &part, TaskPlacement::Parity, None, ranks, acc);
        assert_eq!(out.lens.iter().flatten().sum::<usize>(), out.bufs.iter().map(Vec::len).sum());
        for (d, b) in bufs.iter_mut().zip(out.bufs) {
            d.extend_from_slice(&b);
        }
    }
    for buf in &bufs {
        decode_pair_records(buf, |p, s| seeds.push((p, s)));
    }
    seeds.sort_unstable();
    (seeds, bufs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The SpGEMM expansion is exactly Algorithm 1: same (pair, seed)
    /// multiset, for any rank count and block size.
    #[test]
    fn spgemm_multiset_equals_algorithm_one(
        table in tables(),
        ranks in 1usize..4,
        block in 1usize..6,
    ) {
        let want = reference_multiset(&table);
        let (got, _) = spgemm_multiset(&table, ranks, block, SpgemmAccumulator::Auto);
        prop_assert_eq!(got, want);
    }

    /// Dense and hash accumulators produce byte-identical streams at
    /// every block size.
    #[test]
    fn accumulators_byte_identical(table in tables(), block in 1usize..6) {
        let (_, dense) = spgemm_multiset(&table, 3, block, SpgemmAccumulator::Dense);
        let (_, hash) = spgemm_multiset(&table, 3, block, SpgemmAccumulator::Hash);
        prop_assert_eq!(dense, hash);
        // Blocking never changes the concatenated stream either.
        let (_, whole) = spgemm_multiset(&table, 3, usize::MAX >> 1, SpgemmAccumulator::Auto);
        let (_, blocked) = spgemm_multiset(&table, 3, block, SpgemmAccumulator::Auto);
        prop_assert_eq!(whole, blocked);
    }
}
