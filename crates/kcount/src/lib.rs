//! # dibella-kcount
//!
//! Stages 1 and 2 of the diBELLA pipeline: the distributed Bloom-filter
//! pass that eliminates singleton k-mers and initializes the hash table
//! with non-singleton keys (paper §6), and the distributed hash-table pass
//! that attaches (read, position, strand) occurrence lists and filters to
//! the *reliable* k-mer set (paper §7). Under `--seed-mode minimizer`
//! both passes are replaced by a single sketch pass
//! ([`stages::minimizer_stage`]) that exchanges only (w, k) window-minimum
//! k-mers — a small fraction of the traffic — into the same table shape.
//!
//! Both passes are SPMD functions over a [`dibella_comm::Comm`] handle and
//! stream their input in bounded rounds of irregular `Alltoallv`
//! exchanges.

#![warn(missing_docs)]

pub mod cardinality;
pub mod config;
pub mod csr;
pub mod stages;
pub mod table;

pub use cardinality::hll_cardinality;
pub use config::KcountConfig;
pub use csr::{CsrEntry, ReadKmerCsr};
pub use stages::{
    bloom_stage, bloom_stage_overlapping, hash_stage, hash_stage_prepacked, minimizer_stage,
    BloomOutput, HashOutput, KmerStageCounters, MinimizerOutput, PrepackedKmerRound,
};
pub use table::{FilterStats, KmerEntry, KmerHashTable, Occurrence};
