//! Distributed cardinality estimation (paper §6).
//!
//! diBELLA normally sizes its Bloom filter from the Eq.-2 estimate
//! (`#k-mers ≈ G·d` times a typical distinct ratio), but notes that "for
//! extremely large ... and repetitive genomes ... the more expensive
//! HyperLogLog algorithm in HipMer" may be required. This is that path: a
//! single streaming pass builds per-rank HLL sketches, which merge with a
//! register-wise max all-reduce — communication is `2^precision` bytes per
//! rank regardless of input size.

use dibella_comm::Comm;
use dibella_io::Read;
use dibella_kmer::KmerIter;
use dibella_sketch::HyperLogLog;

/// Estimate the number of distinct canonical k-mers across all ranks'
/// reads. Every rank receives the same estimate.
///
/// `precision` trades accuracy for sketch size (`2^precision` registers;
/// 12 → ±1.6 %).
pub fn hll_cardinality(comm: &Comm, reads: &[Read], k: usize, precision: u8) -> u64 {
    let mut sketch = HyperLogLog::new(precision);
    for r in reads {
        for hit in KmerIter::<1>::new(&r.seq, k) {
            sketch.insert(hit.kmer.hash64());
        }
    }
    // Register-wise max is associative and commutative — a textbook
    // all-reduce combiner.
    let merged = comm.allreduce(sketch.registers().to_vec(), |mut a, b| {
        for (x, y) in a.iter_mut().zip(&b) {
            *x = (*x).max(*y);
        }
        a
    });
    HyperLogLog::from_registers(merged).estimate().round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibella_comm::CommWorld;
    use dibella_io::{partition_reads, ReadSet};
    use dibella_kmer::Kmer1;
    use std::collections::HashSet;

    fn random_reads(n: usize, len: usize, seed: u64) -> ReadSet {
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n as u32)
            .map(|i| {
                let seq: Vec<u8> = (0..len).map(|_| b"ACGT"[(rnd() % 4) as usize]).collect();
                Read::new(i, format!("r{i}"), seq)
            })
            .collect()
    }

    fn true_distinct(reads: &ReadSet, k: usize) -> u64 {
        let mut set: HashSet<Kmer1> = HashSet::new();
        for r in reads {
            for h in KmerIter::<1>::new(&r.seq, k) {
                set.insert(h.kmer);
            }
        }
        set.len() as u64
    }

    #[test]
    fn estimate_close_to_truth_across_world_sizes() {
        let reads = random_reads(60, 800, 5);
        let truth = true_distinct(&reads, 15) as f64;
        for p in [1usize, 3, 6] {
            let (_, chunks) = partition_reads(&reads, p);
            let ests = CommWorld::run(p, |comm| {
                hll_cardinality(comm, chunks[comm.rank()].reads(), 15, 12)
            });
            // Every rank agrees.
            assert!(ests.windows(2).all(|w| w[0] == w[1]));
            let rel = (ests[0] as f64 - truth).abs() / truth;
            assert!(rel < 0.10, "p={p}: est {} vs truth {truth} ({rel:.3})", ests[0]);
        }
    }

    #[test]
    fn merge_is_world_size_invariant() {
        let reads = random_reads(24, 500, 9);
        let mut answers = Vec::new();
        for p in [1usize, 2, 4] {
            let (_, chunks) = partition_reads(&reads, p);
            let ests = CommWorld::run(p, |comm| {
                hll_cardinality(comm, chunks[comm.rank()].reads(), 13, 10)
            });
            answers.push(ests[0]);
        }
        // The merged sketch is exactly the union sketch → identical
        // estimates regardless of partitioning.
        assert!(answers.windows(2).all(|w| w[0] == w[1]), "{answers:?}");
    }
}
