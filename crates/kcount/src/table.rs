//! The distributed k-mer hash table (one partition per rank).
//!
//! Unlike HipMer's de Bruijn hash table, diBELLA's stores, per k-mer, the
//! list of *(read ID, position, strand)* occurrences (paper §7, §11): the
//! table "represents a read graph with read vertices connected to each
//! other by shared k-mers". Keys are inserted during the Bloom pass
//! (second sighting), occurrences during the hash pass, and a final local
//! scan drops false-positive singletons and the > m tail.

use crate::config::KcountConfig;
use dibella_io::ReadId;
use dibella_kmer::{Kmer1, Strand};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// One observed k-mer instance: where it occurred.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Occurrence {
    /// Read in which the (canonical) k-mer appeared.
    pub read: ReadId,
    /// Offset of the k-mer within the read.
    pub pos: u32,
    /// Strand on which the canonical form was observed.
    pub strand: Strand,
}

/// Value stored per k-mer key.
#[derive(Clone, Debug, Default)]
pub struct KmerEntry {
    /// Total occurrences seen in the hash pass (may exceed
    /// `occurrences.len()` once the entry is known to be over-threshold).
    pub count: u32,
    /// Occurrence list, capped at `m + 1` entries — entries past the
    /// threshold are doomed to be filtered, so storing their tails would
    /// only waste the memory the paper's design is protecting.
    pub occurrences: Vec<Occurrence>,
}

/// Pass-through hasher: k-mer keys are pre-mixed by
/// `dibella_kmer::hash::kmer_hash_words`, so the map hasher only needs to
/// fold the already-uniform word stream.
#[derive(Default)]
pub struct KmerKeyHasher(u64);

impl Hasher for KmerKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fold 8-byte chunks with the splitmix64 finalizer.
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.0 = dibella_kmer::mix64(self.0 ^ u64::from_le_bytes(w));
        }
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = dibella_kmer::mix64(self.0 ^ v);
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.0 = dibella_kmer::mix64(self.0 ^ v as u64);
    }
}

type Build = BuildHasherDefault<KmerKeyHasher>;

/// Statistics of the final reliable-k-mer filter (paper §7).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Keys removed because only one occurrence arrived (Bloom false
    /// positives let a few singletons through).
    pub singletons_removed: u64,
    /// Keys removed for exceeding the high-occurrence threshold `m`.
    pub high_freq_removed: u64,
    /// Keys retained (the *reliable* k-mers).
    pub retained: u64,
}

/// One rank's partition of the distributed k-mer hash table.
#[derive(Debug, Default)]
pub struct KmerHashTable {
    map: HashMap<Kmer1, KmerEntry, Build>,
}

impl KmerHashTable {
    /// Empty table with capacity for `expected_keys`.
    pub fn with_capacity(expected_keys: usize) -> Self {
        Self {
            map: HashMap::with_capacity_and_hasher(expected_keys, Build::default()),
        }
    }

    /// Number of resident keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if no keys are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Insert a key with an empty occurrence list (Bloom-pass promotion).
    /// Idempotent.
    pub fn insert_key(&mut self, kmer: Kmer1) {
        self.map.entry(kmer).or_default();
    }

    /// Whether `kmer` is resident.
    pub fn contains(&self, kmer: &Kmer1) -> bool {
        self.map.contains_key(kmer)
    }

    /// Record an occurrence *iff* the key is resident (hash-pass rule:
    /// "Insert into the distributed hash table only if the k-mer is
    /// already resident", §4). Returns `true` if recorded.
    ///
    /// The occurrence list is capped at `cfg.max_multiplicity + 1`
    /// entries; the count keeps increasing so the filter can still detect
    /// over-threshold keys.
    pub fn record_occurrence(&mut self, kmer: &Kmer1, occ: Occurrence, cfg: &KcountConfig) -> bool {
        match self.map.get_mut(kmer) {
            None => false,
            Some(entry) => {
                entry.count += 1;
                if entry.occurrences.len() <= cfg.max_multiplicity as usize {
                    entry.occurrences.push(occ);
                }
                true
            }
        }
    }

    /// Record an occurrence, creating the key on first sighting. This is
    /// the minimizer-pass rule: that pass has no Bloom pre-pass (the
    /// sketch itself bounds the key set to ~`2/(w+1)` of all k-mer
    /// instances), so every arriving record is welcome. Returns `true`
    /// if the key was newly created. The occurrence list obeys the same
    /// `m + 1` cap as [`Self::record_occurrence`].
    pub fn record_or_insert(&mut self, kmer: Kmer1, occ: Occurrence, cfg: &KcountConfig) -> bool {
        use std::collections::hash_map::Entry;
        let (created, entry) = match self.map.entry(kmer) {
            Entry::Occupied(e) => (false, e.into_mut()),
            Entry::Vacant(v) => (true, v.insert(KmerEntry::default())),
        };
        entry.count += 1;
        if entry.occurrences.len() <= cfg.max_multiplicity as usize {
            entry.occurrences.push(occ);
        }
        created
    }

    /// Final local filter: drop singletons (count < 2) and high-frequency
    /// keys (count > m). Survivors are the *retained* k-mers.
    pub fn retain_reliable(&mut self, max_multiplicity: u32) -> FilterStats {
        let mut stats = FilterStats::default();
        self.map.retain(|_, entry| {
            if entry.count < 2 {
                stats.singletons_removed += 1;
                false
            } else if entry.count > max_multiplicity {
                stats.high_freq_removed += 1;
                false
            } else {
                debug_assert_eq!(entry.count as usize, entry.occurrences.len());
                stats.retained += 1;
                true
            }
        });
        self.map.shrink_to_fit();
        stats
    }

    /// Iterate over resident entries.
    pub fn iter(&self) -> impl Iterator<Item = (&Kmer1, &KmerEntry)> {
        self.map.iter()
    }

    /// Insert a fully-formed entry under `kmer`, replacing any resident
    /// one. This is the checkpoint-restore path: a table reloaded from a
    /// stage checkpoint must reproduce exactly the entries the original
    /// pass built, including counts that exceed the stored occurrence
    /// list's length.
    pub fn insert_entry(&mut self, kmer: Kmer1, entry: KmerEntry) {
        self.map.insert(kmer, entry);
    }

    /// Approximate resident bytes (keys + entries + occurrence lists) —
    /// the per-rank working set fed to the cache model.
    pub fn memory_bytes(&self) -> u64 {
        let fixed = std::mem::size_of::<(Kmer1, KmerEntry)>() as u64;
        let occs: u64 = self
            .map
            .values()
            .map(|e| (e.occurrences.len() * std::mem::size_of::<Occurrence>()) as u64)
            .sum();
        self.map.len() as u64 * fixed + occs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(m: u32) -> KcountConfig {
        KcountConfig {
            k: 5,
            max_multiplicity: m,
            bloom_fp_rate: 0.05,
            expected_distinct: 1024,
            max_kmers_per_round: 1 << 16,
            max_exchange_bytes_per_round: usize::MAX,
            extract_batch: KcountConfig::DEFAULT_EXTRACT_BATCH,
        }
    }

    fn km(s: &[u8]) -> Kmer1 {
        Kmer1::from_ascii(s).unwrap()
    }

    fn occ(read: ReadId, pos: u32) -> Occurrence {
        Occurrence { read, pos, strand: Strand::Forward }
    }

    #[test]
    fn occurrences_only_for_resident_keys() {
        let mut t = KmerHashTable::with_capacity(8);
        let c = cfg(4);
        assert!(!t.record_occurrence(&km(b"ACGTA"), occ(0, 0), &c));
        t.insert_key(km(b"ACGTA"));
        assert!(t.record_occurrence(&km(b"ACGTA"), occ(0, 0), &c));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn insert_key_idempotent() {
        let mut t = KmerHashTable::with_capacity(8);
        t.insert_key(km(b"ACGTA"));
        t.insert_key(km(b"ACGTA"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn filter_removes_singletons_and_repeats() {
        let mut t = KmerHashTable::with_capacity(8);
        let c = cfg(3);
        // Singleton (bloom false positive scenario).
        t.insert_key(km(b"AAAAA"));
        t.record_occurrence(&km(b"AAAAA"), occ(0, 0), &c);
        // Reliable: 3 occurrences.
        t.insert_key(km(b"CCCCC"));
        for i in 0..3 {
            t.record_occurrence(&km(b"CCCCC"), occ(i, i), &c);
        }
        // Repeat: 6 occurrences > m = 3.
        t.insert_key(km(b"GGGGG"));
        for i in 0..6 {
            t.record_occurrence(&km(b"GGGGG"), occ(i, i), &c);
        }
        // Key that never saw an occurrence (pure FP promotion).
        t.insert_key(km(b"TTTTT"));

        let stats = t.retain_reliable(3);
        assert_eq!(stats.singletons_removed, 2);
        assert_eq!(stats.high_freq_removed, 1);
        assert_eq!(stats.retained, 1);
        assert_eq!(t.len(), 1);
        assert!(t.contains(&km(b"CCCCC")));
    }

    #[test]
    fn record_or_insert_creates_then_records() {
        let mut t = KmerHashTable::with_capacity(4);
        let c = cfg(3);
        assert!(t.record_or_insert(km(b"ACGTA"), occ(0, 0), &c), "first sighting creates");
        assert!(!t.record_or_insert(km(b"ACGTA"), occ(1, 5), &c), "second records in place");
        let entry = t.iter().next().unwrap().1;
        assert_eq!(entry.count, 2);
        assert_eq!(entry.occurrences.len(), 2);
        // The m + 1 cap applies here too.
        for i in 0..100 {
            t.record_or_insert(km(b"ACGTA"), occ(i, 0), &c);
        }
        let entry = t.iter().next().unwrap().1;
        assert_eq!(entry.count, 102);
        assert_eq!(entry.occurrences.len(), 4);
    }

    #[test]
    fn occurrence_list_is_capped() {
        let mut t = KmerHashTable::with_capacity(4);
        let c = cfg(3);
        t.insert_key(km(b"ACGTA"));
        for i in 0..100 {
            t.record_occurrence(&km(b"ACGTA"), occ(i, 0), &c);
        }
        let entry = t.iter().next().unwrap().1;
        assert_eq!(entry.count, 100);
        assert_eq!(entry.occurrences.len(), 4); // m + 1
    }

    #[test]
    fn memory_accounting_monotone() {
        let mut t = KmerHashTable::with_capacity(4);
        let c = cfg(8);
        let m0 = t.memory_bytes();
        t.insert_key(km(b"ACGTA"));
        let m1 = t.memory_bytes();
        t.record_occurrence(&km(b"ACGTA"), occ(0, 0), &c);
        t.record_occurrence(&km(b"ACGTA"), occ(1, 0), &c);
        let m2 = t.memory_bytes();
        assert!(m0 < m1 && m1 < m2);
    }
}
