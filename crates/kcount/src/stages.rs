//! The two distributed k-mer passes (paper §6 and §7).
//!
//! Both passes stream the local reads in bounded *rounds* so that no rank
//! ever materializes its whole k-mer bag (paper §4: "diBELLA executes in a
//! streaming fashion with a subset of input data at a time to limit the
//! memory consumption"). Each pass is one
//! [`dibella_comm::RoundExchange`] drive: a shared packer
//! (`pack_kmer_round`) walks the rank's k-mer stream and routes records
//! to their owners, the engine agrees the world-wide round count and
//! overlaps each round's exchange with the packing of the next, and the
//! pass's consumer folds received records into its Bloom/hash partition.
//!
//! Wire sizes mirror the paper's volumes: a Bloom-pass record is the
//! 8-byte packed k-mer, a hash-pass record adds read ID, position and
//! strand for 20 bytes — the 2.5× volume ratio called out in §7.

use crate::config::KcountConfig;
use crate::table::{KmerHashTable, Occurrence};
use dibella_comm::{
    decode_iter, encode_slice, records_per_round, Comm, RoundExchange, RoundPlan, Wire,
};
use dibella_io::Read;
use dibella_kmer::{kmer_count, Kmer1, KmerHit, KmerIter, Strand};
use dibella_sketch::BloomFilter;

/// Bloom-pass record: the packed canonical k-mer word.
type BloomMsg = u64;

/// Hash-pass record: `(kmer word, read id, position, strand)`.
type HashMsg = (u64, u32, u32, u32);

/// Work counters shared by both passes, consumed by the cost model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KmerStageCounters {
    /// k-mers parsed and packed on the sending side.
    pub kmers_parsed: u64,
    /// k-mer records processed on the owning side.
    pub kmers_received: u64,
    /// Bulk-synchronous exchange rounds executed.
    pub rounds: u64,
    /// Bloom pass: keys promoted into the hash table (second sightings).
    pub promoted_keys: u64,
    /// Hash pass: occurrences recorded into resident keys.
    pub recorded_occurrences: u64,
}

/// Result of the Bloom-filter pass.
#[derive(Debug)]
pub struct BloomOutput {
    /// Hash-table partition initialized with the keys of (probable)
    /// non-singleton k-mers.
    pub table: KmerHashTable,
    /// Peak Bloom filter memory (freed on return, as in the paper).
    pub bloom_bytes: usize,
    /// Bloom filter fill ratio at the end of the pass (diagnostic).
    pub bloom_fill: f64,
    /// Work counters.
    pub counters: KmerStageCounters,
}

/// Iterate `(read, hit)` pairs over a read slice in k-mer order.
fn kmer_stream<'a>(
    reads: &'a [Read],
    k: usize,
) -> impl Iterator<Item = (&'a Read, KmerHit<1>)> + 'a {
    reads
        .iter()
        .flat_map(move |r| KmerIter::<1>::new(&r.seq, k).map(move |h| (r, h)))
}

/// Pack one exchange round of both k-mer passes: draw up to `per_round`
/// k-mers from `stream`, route each to its owner's rank by hash, and
/// encode the per-destination buffers to wire bytes. `to_msg` is the only
/// thing that differs between the passes — the bare packed word for the
/// Bloom pass, the word plus `(read, position, strand)` for the hash pass.
fn pack_kmer_round<'a, M, I, F>(
    stream: &mut I,
    per_round: usize,
    ranks: usize,
    parsed: &mut u64,
    to_msg: F,
) -> Vec<Vec<u8>>
where
    M: Wire + Clone,
    I: Iterator<Item = (&'a Read, KmerHit<1>)>,
    F: Fn(&Read, &KmerHit<1>) -> M,
{
    let mut bufs: Vec<Vec<M>> = vec![Vec::new(); ranks];
    for (read, hit) in stream.by_ref().take(per_round) {
        *parsed += 1;
        bufs[hit.kmer.owner(ranks)].push(to_msg(read, &hit));
    }
    bufs.into_iter().map(|b| encode_slice(&b)).collect()
}

/// The per-round k-mer budget of a pass: the record cap and the byte cap,
/// whichever is tighter.
fn kmers_per_round<M: Wire>(cfg: &KcountConfig) -> usize {
    records_per_round(
        <M as Wire>::SIZE,
        cfg.max_kmers_per_round,
        cfg.max_exchange_bytes_per_round,
    )
}

/// Stage 1 — distributed Bloom filter construction (paper §6).
///
/// Every rank parses its reads into canonical k-mers, routes each to its
/// owner by hash, and the owner inserts it into its Bloom partition; a
/// k-mer already present is promoted into the hash-table partition. The
/// filter is dropped on return ("After the hash table is initialized with
/// k-mer keys, the Bloom filter is freed").
pub fn bloom_stage(comm: &Comm, reads: &[Read], cfg: &KcountConfig) -> BloomOutput {
    let p = comm.size();
    let mut bloom = BloomFilter::for_items(
        cfg.expected_distinct_per_rank(p),
        cfg.bloom_fp_rate,
    );
    let mut table = KmerHashTable::with_capacity(1024);
    let mut counters = KmerStageCounters::default();

    let local_kmers: u64 = reads.iter().map(|r| kmer_count(r.len(), cfg.k) as u64).sum();
    let per_round = kmers_per_round::<BloomMsg>(cfg);
    let mut stream = kmer_stream(reads, cfg.k);
    let mut parsed = 0u64;
    let mut received = 0u64;
    let mut promoted = 0u64;

    let rounds = RoundExchange::run(
        comm,
        RoundPlan::for_records(local_kmers, per_round),
        |_round| {
            pack_kmer_round::<BloomMsg, _, _>(&mut stream, per_round, p, &mut parsed, |_, hit| {
                hit.kmer.words()[0]
            })
        },
        |_round, recv| {
            for buf in recv {
                for word in decode_iter::<BloomMsg>(&buf) {
                    received += 1;
                    let kmer = Kmer1::from_words([word], cfg.k as u16);
                    debug_assert_eq!(kmer.owner(p), comm.rank(), "misrouted k-mer");
                    if bloom.insert(kmer.hash64()) {
                        // Second (apparent) sighting → promote to hash table.
                        if !table.contains(&kmer) {
                            promoted += 1;
                            table.insert_key(kmer);
                        }
                    }
                }
            }
        },
    );
    counters.kmers_parsed = parsed;
    counters.kmers_received = received;
    counters.promoted_keys = promoted;
    counters.rounds = rounds;

    let bloom_bytes = bloom.memory_bytes();
    let bloom_fill = bloom.fill_ratio();
    bloom.clear_and_shrink();
    BloomOutput { table, bloom_bytes, bloom_fill, counters }
}

/// Result of the hash-table pass.
#[derive(Debug)]
pub struct HashOutput {
    /// Reliable-k-mer filter statistics (singletons / high-frequency
    /// removals, retained count).
    pub filter: crate::table::FilterStats,
    /// Work counters.
    pub counters: KmerStageCounters,
}

/// Stage 2 — hash table construction (paper §7).
///
/// The reads are parsed *again*; this time each k-mer instance carries its
/// (read, position, strand) metadata. Owners record occurrences only for
/// resident keys, then scan their partition to drop false-positive
/// singletons and k-mers over the threshold `m`.
pub fn hash_stage(
    comm: &Comm,
    reads: &[Read],
    table: &mut KmerHashTable,
    cfg: &KcountConfig,
) -> HashOutput {
    let p = comm.size();
    let mut counters = KmerStageCounters::default();

    let local_kmers: u64 = reads.iter().map(|r| kmer_count(r.len(), cfg.k) as u64).sum();
    let per_round = kmers_per_round::<HashMsg>(cfg);
    debug_assert_eq!(<HashMsg as Wire>::SIZE, 20, "2.5x the 8-byte Bloom record");
    let mut stream = kmer_stream(reads, cfg.k);
    let mut parsed = 0u64;
    let mut received = 0u64;
    let mut recorded = 0u64;

    let rounds = RoundExchange::run(
        comm,
        RoundPlan::for_records(local_kmers, per_round),
        |_round| {
            pack_kmer_round::<HashMsg, _, _>(&mut stream, per_round, p, &mut parsed, |read, hit| {
                (
                    hit.kmer.words()[0],
                    read.id,
                    hit.pos,
                    hit.strand.as_u8() as u32,
                )
            })
        },
        |_round, recv| {
            for buf in recv {
                for (word, rid, pos, strand) in decode_iter::<HashMsg>(&buf) {
                    received += 1;
                    let kmer = Kmer1::from_words([word], cfg.k as u16);
                    let occ = Occurrence {
                        read: rid,
                        pos,
                        strand: Strand::from_u8(strand as u8),
                    };
                    if table.record_occurrence(&kmer, occ, cfg) {
                        recorded += 1;
                    }
                }
            }
        },
    );
    counters.kmers_parsed = parsed;
    counters.kmers_received = received;
    counters.recorded_occurrences = recorded;
    counters.rounds = rounds;

    let filter = table.retain_reliable(cfg.max_multiplicity);
    HashOutput { filter, counters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibella_comm::CommWorld;
    use dibella_io::partition_reads;
    use dibella_io::ReadSet;
    use std::collections::HashMap;

    fn test_cfg(k: usize, m: u32) -> KcountConfig {
        KcountConfig {
            k,
            max_multiplicity: m,
            bloom_fp_rate: 0.01,
            expected_distinct: 10_000,
            max_kmers_per_round: 64, // tiny cap → exercises multi-round path
            max_exchange_bytes_per_round: usize::MAX,
        }
    }

    /// Serial reference: canonical k-mer → (count, occurrences).
    fn reference_counts(reads: &ReadSet, k: usize) -> HashMap<Kmer1, u32> {
        let mut out: HashMap<Kmer1, u32> = HashMap::new();
        for r in reads {
            for h in KmerIter::<1>::new(&r.seq, k) {
                *out.entry(h.kmer).or_default() += 1;
            }
        }
        out
    }

    fn make_reads(n: usize, len: usize, seed: u64) -> ReadSet {
        // Deterministic pseudo-random reads with some shared content:
        // half the reads share a common 40-base core to create reliable
        // k-mers.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let core: Vec<u8> = (0..40).map(|i| b"ACGT"[(i * 7 + 1) % 4]).collect();
        (0..n as u32)
            .map(|i| {
                let mut seq: Vec<u8> = (0..len).map(|_| b"ACGT"[(next() % 4) as usize]).collect();
                if i % 2 == 0 {
                    let at = (next() as usize) % (len - core.len());
                    seq[at..at + core.len()].copy_from_slice(&core);
                }
                dibella_io::Read::new(i, format!("r{i}"), seq)
            })
            .collect()
    }

    /// Run both passes on `p` ranks and merge the resulting partitions.
    fn run_distributed(
        reads: &ReadSet,
        p: usize,
        cfg: &KcountConfig,
    ) -> HashMap<Kmer1, Vec<Occurrence>> {
        let (_, chunks) = partition_reads(reads, p);
        let results = CommWorld::run(p, |comm| {
            let local = chunks[comm.rank()].reads();
            let bloom = bloom_stage(comm, local, cfg);
            let mut table = bloom.table;
            let _ = hash_stage(comm, local, &mut table, cfg);
            table
                .iter()
                .map(|(k, e)| (*k, e.occurrences.clone()))
                .collect::<Vec<_>>()
        });
        let mut merged = HashMap::new();
        for part in results {
            for (k, occs) in part {
                assert!(merged.insert(k, occs).is_none(), "key on two ranks");
            }
        }
        merged
    }

    #[test]
    fn retained_set_matches_serial_reference() {
        let reads = make_reads(24, 120, 99);
        let cfg = test_cfg(9, 20);
        let reference: HashMap<Kmer1, u32> = reference_counts(&reads, 9)
            .into_iter()
            .filter(|&(_, c)| (2..=20).contains(&c))
            .collect();
        for p in [1usize, 2, 4, 7] {
            let dist = run_distributed(&reads, p, &cfg);
            assert_eq!(dist.len(), reference.len(), "p={p}");
            for (k, occs) in &dist {
                let want = reference.get(k).copied().unwrap_or(0);
                assert_eq!(occs.len() as u32, want, "p={p} kmer={k}");
            }
        }
    }

    #[test]
    fn occurrences_point_back_into_reads() {
        let reads = make_reads(10, 80, 5);
        let cfg = test_cfg(7, 30);
        let dist = run_distributed(&reads, 3, &cfg);
        assert!(!dist.is_empty());
        for (kmer, occs) in &dist {
            for o in occs {
                let read = &reads.reads()[o.read as usize];
                let window = &read.seq[o.pos as usize..o.pos as usize + 7];
                let (canon, strand) = Kmer1::from_ascii(window).unwrap().canonical();
                assert_eq!(&canon, kmer, "occurrence does not spell the k-mer");
                assert_eq!(strand, o.strand);
            }
        }
    }

    #[test]
    fn high_frequency_kmers_filtered() {
        // Every read contains the same 12-base core → its k-mers recur in
        // all 30 reads; with m = 5 those must be filtered out.
        let core = b"ACGTACGTACGT";
        let reads: ReadSet = (0..30u32)
            .map(|i| {
                let mut seq = vec![b"ACGT"[(i as usize) % 4]; 10];
                seq.extend_from_slice(core);
                seq.extend(vec![b"ACGT"[(i as usize + 1) % 4]; 10]);
                dibella_io::Read::new(i, format!("r{i}"), seq)
            })
            .collect();
        let cfg = test_cfg(9, 5);
        let dist = run_distributed(&reads, 4, &cfg);
        let core_kmer = Kmer1::from_ascii(&core[..9]).unwrap().canonical().0;
        assert!(!dist.contains_key(&core_kmer), "repeat k-mer not filtered");
    }

    #[test]
    fn counters_are_consistent() {
        let reads = make_reads(12, 100, 3);
        let cfg = test_cfg(9, 20);
        let (_, chunks) = partition_reads(&reads, 3);
        let outs = CommWorld::run(3, |comm| {
            let local = chunks[comm.rank()].reads();
            let b = bloom_stage(comm, local, &cfg);
            let mut table = b.table;
            let h = hash_stage(comm, local, &mut table, &cfg);
            (b.counters, h.counters)
        });
        let total_kmers: u64 = reads
            .iter()
            .map(|r| kmer_count(r.len(), 9) as u64)
            .sum();
        let parsed_b: u64 = outs.iter().map(|(b, _)| b.kmers_parsed).sum();
        let recv_b: u64 = outs.iter().map(|(b, _)| b.kmers_received).sum();
        let parsed_h: u64 = outs.iter().map(|(_, h)| h.kmers_parsed).sum();
        assert_eq!(parsed_b, total_kmers);
        assert_eq!(recv_b, total_kmers, "k-mers lost in the exchange");
        assert_eq!(parsed_h, total_kmers);
        // Multi-round: the tiny cap forces > 1 round for these sizes.
        assert!(outs.iter().all(|(b, _)| b.rounds > 1));
    }

    #[test]
    fn bloom_memory_reported_and_freed() {
        let reads = make_reads(6, 60, 1);
        let cfg = test_cfg(7, 10);
        let (_, chunks) = partition_reads(&reads, 2);
        let outs = CommWorld::run(2, |comm| {
            bloom_stage(comm, chunks[comm.rank()].reads(), &cfg)
        });
        for o in outs {
            assert!(o.bloom_bytes > 0);
            assert!(o.bloom_fill > 0.0 && o.bloom_fill < 0.9);
        }
    }
}
