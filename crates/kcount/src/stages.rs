//! The two distributed k-mer passes (paper §6 and §7).
//!
//! Both passes stream the local reads in bounded *rounds* so that no rank
//! ever materializes its whole k-mer bag (paper §4: "diBELLA executes in a
//! streaming fashion with a subset of input data at a time to limit the
//! memory consumption"). Each pass is one
//! [`dibella_comm::RoundExchange`] drive: a shared packer
//! (`pack_kmer_windows`) extracts and routes the rank's k-mers to their
//! owners, the engine agrees the world-wide round count and overlaps each
//! round's exchange with the packing of the next, and the pass's consumer
//! folds received records into its Bloom/hash partition.
//!
//! Extraction is *threaded* through the shared
//! [`BatchedExecutor`]: a round's window range (a cut of the rank-global
//! [`WindowIndex`] space) is sharded into fixed `extract_batch`-window
//! batches, each batch extracts and routes into its own per-destination
//! buffers, and buffers are concatenated in batch order — wire bytes are
//! bit-identical at any thread count. Cross-stage overlap: while the
//! Bloom pass's **last** round is in flight,
//! [`bloom_stage_overlapping`] pre-packs the hash pass's first round (the
//! reads are local, so it depends on nothing in flight), which
//! [`hash_stage_prepacked`] then ships as its round 0.
//!
//! Wire sizes mirror the paper's volumes: a Bloom-pass record is the
//! 8-byte packed k-mer, a hash-pass record adds read ID, position and
//! strand for 20 bytes — the 2.5× volume ratio called out in §7.

use crate::config::KcountConfig;
use crate::table::{KmerHashTable, Occurrence};
use dibella_comm::{
    decode_iter, encode_slice, records_per_round, BatchedExecutor, Comm, RoundExchange, RoundPlan,
    Wire,
};
use dibella_io::Read;
use dibella_kmer::{minimizer_window_hits, window_hits, Kmer1, KmerHit, Strand, WindowIndex};
use dibella_sketch::BloomFilter;
use std::cell::RefCell;
use std::time::{Duration, Instant};

/// Bloom-pass record: the packed canonical k-mer word.
type BloomMsg = u64;

/// Hash-pass record: `(kmer word, read id, position, strand)`.
type HashMsg = (u64, u32, u32, u32);

/// Work counters shared by both passes, consumed by the cost model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KmerStageCounters {
    /// k-mers parsed and packed on the sending side.
    pub kmers_parsed: u64,
    /// k-mer records processed on the owning side.
    pub kmers_received: u64,
    /// Bulk-synchronous exchange rounds executed.
    pub rounds: u64,
    /// Bloom pass: keys promoted into the hash table (second sightings).
    pub promoted_keys: u64,
    /// Hash pass: occurrences recorded into resident keys.
    pub recorded_occurrences: u64,
}

/// Result of the Bloom-filter pass.
#[derive(Debug)]
pub struct BloomOutput {
    /// Hash-table partition initialized with the keys of (probable)
    /// non-singleton k-mers.
    pub table: KmerHashTable,
    /// Peak Bloom filter memory (freed on return, as in the paper).
    pub bloom_bytes: usize,
    /// Bloom filter fill ratio at the end of the pass (diagnostic).
    pub bloom_fill: f64,
    /// Work counters.
    pub counters: KmerStageCounters,
}

/// The Bloom-pass record for one k-mer hit.
fn bloom_msg(_read: &Read, hit: &KmerHit<1>) -> BloomMsg {
    hit.kmer.words()[0]
}

/// The hash-pass record for one k-mer hit.
fn hash_msg(read: &Read, hit: &KmerHit<1>) -> HashMsg {
    (
        hit.kmer.words()[0],
        read.id,
        hit.pos,
        hit.strand.as_u8() as u32,
    )
}

/// Pack the global window range `[lo, hi)` of both k-mer passes: shard it
/// into fixed `batch_windows`-window executor batches, extract each
/// batch's k-mers ([`window_hits`] over the [`WindowIndex`] pieces), route
/// every hit to its owner's rank by hash and encode per-destination wire
/// bytes — then concatenate the buffers in batch order. Concatenating
/// encoded slices equals encoding the concatenated record stream, so the
/// result is byte-identical to a sequential single-pass pack at any
/// thread count. Returns the buffers and the number of hits parsed
/// (ambiguous bases make hits < windows).
///
/// `to_msg` is the only thing that differs between the passes — the bare
/// packed word for the Bloom pass, the word plus `(read, position,
/// strand)` for the hash pass.
#[allow(clippy::too_many_arguments)]
fn pack_kmer_windows<M, F>(
    reads: &[Read],
    idx: &WindowIndex,
    lo: u64,
    hi: u64,
    ranks: usize,
    batch_windows: usize,
    exec: &BatchedExecutor,
    to_msg: &F,
) -> (Vec<Vec<u8>>, u64)
where
    M: Wire + Clone + Send,
    F: Fn(&Read, &KmerHit<1>) -> M + Sync,
{
    let k = idx.k();
    let batch_windows = batch_windows.max(1) as u64;
    let n_batches = (hi.saturating_sub(lo)).div_ceil(batch_windows) as usize;
    let batches = exec.map_indexed(n_batches, |b| {
        let blo = lo + b as u64 * batch_windows;
        let bhi = (blo + batch_windows).min(hi);
        let mut bufs: Vec<Vec<M>> = vec![Vec::new(); ranks];
        let mut parsed = 0u64;
        for (ri, plo, phi) in idx.pieces(blo, bhi) {
            let read = &reads[ri];
            for hit in window_hits::<1>(&read.seq, k, plo, phi) {
                parsed += 1;
                bufs[hit.kmer.owner(ranks)].push(to_msg(read, &hit));
            }
        }
        let wire: Vec<Vec<u8>> = bufs.into_iter().map(|b| encode_slice(&b)).collect();
        (wire, parsed)
    });

    merge_packed_batches(batches, ranks)
}

/// Concatenate per-batch per-destination wire buffers in batch order and
/// sum the per-batch hit counts. Concatenating encoded slices equals
/// encoding the concatenated record stream, so the merge preserves the
/// bit-identity of a sequential pack.
fn merge_packed_batches(batches: Vec<(Vec<Vec<u8>>, u64)>, ranks: usize) -> (Vec<Vec<u8>>, u64) {
    let mut merged: Vec<Vec<u8>> = vec![Vec::new(); ranks];
    let mut parsed = 0u64;
    for (wire, n) in batches {
        parsed += n;
        for (d, b) in wire.into_iter().enumerate() {
            if merged[d].is_empty() {
                merged[d] = b;
            } else {
                merged[d].extend_from_slice(&b);
            }
        }
    }
    (merged, parsed)
}

/// Pack the global window range `[lo, hi)` of the minimizer pass: same
/// batch sharding and batch-order merge as [`pack_kmer_windows`], but
/// each piece yields only its (w, k) minimizers
/// ([`minimizer_window_hits`] re-derives a piece with `w − 1` windows of
/// context on each side, so cutting the window space at round or batch
/// boundaries never changes which k-mers are selected). Records use the
/// hash-pass wire layout.
#[allow(clippy::too_many_arguments)]
fn pack_minimizer_windows(
    reads: &[Read],
    idx: &WindowIndex,
    lo: u64,
    hi: u64,
    ranks: usize,
    w: usize,
    batch_windows: usize,
    exec: &BatchedExecutor,
) -> (Vec<Vec<u8>>, u64) {
    let k = idx.k();
    let batch_windows = batch_windows.max(1) as u64;
    let n_batches = (hi.saturating_sub(lo)).div_ceil(batch_windows) as usize;
    let batches = exec.map_indexed(n_batches, |b| {
        let blo = lo + b as u64 * batch_windows;
        let bhi = (blo + batch_windows).min(hi);
        let mut bufs: Vec<Vec<HashMsg>> = vec![Vec::new(); ranks];
        let mut parsed = 0u64;
        for (ri, plo, phi) in idx.pieces(blo, bhi) {
            let read = &reads[ri];
            for hit in minimizer_window_hits(&read.seq, k, w, plo, phi) {
                parsed += 1;
                bufs[hit.kmer.owner(ranks)].push(hash_msg(read, &hit));
            }
        }
        let wire: Vec<Vec<u8>> = bufs.into_iter().map(|b| encode_slice(&b)).collect();
        (wire, parsed)
    });
    merge_packed_batches(batches, ranks)
}

/// The per-round k-mer budget of a pass: the record cap and the byte cap,
/// whichever is tighter.
fn kmers_per_round<M: Wire>(cfg: &KcountConfig) -> usize {
    records_per_round(
        <M as Wire>::SIZE,
        cfg.max_kmers_per_round,
        cfg.max_exchange_bytes_per_round,
    )
}

/// The hash pass's first round, packed ahead of time by
/// [`bloom_stage_overlapping`] while the Bloom pass's last exchange is in
/// flight, and shipped by [`hash_stage_prepacked`] as its round 0. Opaque:
/// its buffers are byte-identical to what the hash pass would pack itself,
/// it just packs them under communication the rank is waiting on anyway.
#[derive(Debug)]
pub struct PrepackedKmerRound {
    /// Per-destination wire buffers of hash-pass records.
    bufs: Vec<Vec<u8>>,
    /// Hits parsed while packing (the hash pass's round-0 `kmers_parsed`).
    parsed: u64,
    /// Window range covered, for cross-checking against the hash plan.
    windows: u64,
    /// k it was packed for.
    k: usize,
    /// Wall time the pack took under the Bloom pass's last exchange. It
    /// is credited to `CommStats::pack_wall` by the stage that *ships*
    /// the buffers ([`hash_stage_prepacked`]), not the stage that packed
    /// them — so the hash pass's reported pack wall covers all of its
    /// rounds even though round 0 was packed early.
    pack_wall: Duration,
}

/// Stage 1 — distributed Bloom filter construction (paper §6).
///
/// Every rank parses its reads into canonical k-mers (threaded through
/// `exec`, deterministically — see `pack_kmer_windows`), routes each to
/// its owner by hash, and the owner inserts it into its Bloom partition; a
/// k-mer already present is promoted into the hash-table partition. The
/// filter is dropped on return ("After the hash table is initialized with
/// k-mer keys, the Bloom filter is freed").
pub fn bloom_stage(
    comm: &Comm,
    reads: &[Read],
    cfg: &KcountConfig,
    exec: &BatchedExecutor,
) -> BloomOutput {
    bloom_stage_impl(comm, reads, cfg, exec, false).0
}

/// [`bloom_stage`] with cross-stage overlap: while the Bloom pass's final
/// exchange round is in flight, the rank thread pre-packs the **hash**
/// pass's first round from its local reads (which depend on nothing in
/// flight). Feed the token to [`hash_stage_prepacked`]; results are
/// bit-identical to the non-overlapped path.
pub fn bloom_stage_overlapping(
    comm: &Comm,
    reads: &[Read],
    cfg: &KcountConfig,
    exec: &BatchedExecutor,
) -> (BloomOutput, PrepackedKmerRound) {
    let (out, pp) = bloom_stage_impl(comm, reads, cfg, exec, true);
    (out, pp.expect("tail always packs when requested"))
}

fn bloom_stage_impl(
    comm: &Comm,
    reads: &[Read],
    cfg: &KcountConfig,
    exec: &BatchedExecutor,
    prepack_hash: bool,
) -> (BloomOutput, Option<PrepackedKmerRound>) {
    let p = comm.size();
    let mut bloom = BloomFilter::for_items(
        cfg.expected_distinct_per_rank(p),
        cfg.bloom_fp_rate,
    );
    let mut table = KmerHashTable::with_capacity(1024);
    let mut counters = KmerStageCounters::default();

    let idx = WindowIndex::new(reads.iter().map(|r| r.len()), cfg.k);
    let total = idx.total_windows();
    let per_round = kmers_per_round::<BloomMsg>(cfg) as u64;
    let mut parsed = 0u64;
    let mut received = 0u64;
    let mut promoted = 0u64;
    let prepacked: RefCell<Option<PrepackedKmerRound>> = RefCell::new(None);

    let rounds = RoundExchange::run_with_tail(
        comm,
        RoundPlan::for_records(total, per_round as usize),
        |round| {
            let lo = (round * per_round).min(total);
            let hi = ((round + 1) * per_round).min(total);
            let (bufs, n) = pack_kmer_windows::<BloomMsg, _>(
                reads,
                &idx,
                lo,
                hi,
                p,
                cfg.extract_batch,
                exec,
                &bloom_msg,
            );
            parsed += n;
            bufs
        },
        |_round, recv| {
            for buf in recv {
                for word in decode_iter::<BloomMsg>(&buf) {
                    received += 1;
                    let kmer = Kmer1::from_words([word], cfg.k as u16);
                    debug_assert_eq!(kmer.owner(p), comm.rank(), "misrouted k-mer");
                    if bloom.insert(kmer.hash64()) {
                        // Second (apparent) sighting → promote to hash table.
                        if !table.contains(&kmer) {
                            promoted += 1;
                            table.insert_key(kmer);
                        }
                    }
                }
            }
        },
        || {
            if prepack_hash {
                *prepacked.borrow_mut() = Some(prepack_hash_round0(reads, &idx, cfg, p, exec));
            }
        },
    );
    counters.kmers_parsed = parsed;
    counters.kmers_received = received;
    counters.promoted_keys = promoted;
    counters.rounds = rounds;

    let bloom_bytes = bloom.memory_bytes();
    let bloom_fill = bloom.fill_ratio();
    bloom.clear_and_shrink();
    (
        BloomOutput { table, bloom_bytes, bloom_fill, counters },
        prepacked.into_inner(),
    )
}

/// Pack the hash pass's round 0 — byte-identical to what
/// [`hash_stage_prepacked`] would pack itself on its first round.
fn prepack_hash_round0(
    reads: &[Read],
    idx: &WindowIndex,
    cfg: &KcountConfig,
    ranks: usize,
    exec: &BatchedExecutor,
) -> PrepackedKmerRound {
    let per_round = kmers_per_round::<HashMsg>(cfg) as u64;
    let hi = per_round.min(idx.total_windows());
    let t = Instant::now();
    let (bufs, parsed) =
        pack_kmer_windows::<HashMsg, _>(reads, idx, 0, hi, ranks, cfg.extract_batch, exec, &hash_msg);
    PrepackedKmerRound { bufs, parsed, windows: hi, k: cfg.k, pack_wall: t.elapsed() }
}

/// Result of the hash-table pass.
#[derive(Debug)]
pub struct HashOutput {
    /// Reliable-k-mer filter statistics (singletons / high-frequency
    /// removals, retained count).
    pub filter: crate::table::FilterStats,
    /// Work counters.
    pub counters: KmerStageCounters,
}

/// Stage 2 — hash table construction (paper §7).
///
/// The reads are parsed *again* (threaded through `exec`); this time each
/// k-mer instance carries its (read, position, strand) metadata. Owners
/// record occurrences only for resident keys, then scan their partition to
/// drop false-positive singletons and k-mers over the threshold `m`.
pub fn hash_stage(
    comm: &Comm,
    reads: &[Read],
    table: &mut KmerHashTable,
    cfg: &KcountConfig,
    exec: &BatchedExecutor,
) -> HashOutput {
    hash_stage_prepacked(comm, reads, table, cfg, exec, None)
}

/// [`hash_stage`] that ships a [`PrepackedKmerRound`] (packed by
/// [`bloom_stage_overlapping`] under the Bloom pass's last exchange) as
/// its round 0 instead of packing it afresh. `None` degrades to the plain
/// path; results are identical either way.
pub fn hash_stage_prepacked(
    comm: &Comm,
    reads: &[Read],
    table: &mut KmerHashTable,
    cfg: &KcountConfig,
    exec: &BatchedExecutor,
    prepacked: Option<PrepackedKmerRound>,
) -> HashOutput {
    let p = comm.size();
    let mut counters = KmerStageCounters::default();

    let idx = WindowIndex::new(reads.iter().map(|r| r.len()), cfg.k);
    let total = idx.total_windows();
    let per_round = kmers_per_round::<HashMsg>(cfg) as u64;
    debug_assert_eq!(<HashMsg as Wire>::SIZE, 20, "2.5x the 8-byte Bloom record");
    let mut prepacked = prepacked;
    let mut parsed = 0u64;
    let mut received = 0u64;
    let mut recorded = 0u64;

    let rounds = RoundExchange::run(
        comm,
        RoundPlan::for_records(total, per_round as usize),
        |round| {
            let lo = (round * per_round).min(total);
            let hi = ((round + 1) * per_round).min(total);
            if round == 0 {
                if let Some(pp) = prepacked.take() {
                    debug_assert_eq!(pp.k, cfg.k, "prepacked round for a different k");
                    debug_assert_eq!(pp.windows, hi, "prepacked round for a different cap");
                    parsed += pp.parsed;
                    // The pack ran under the Bloom pass's last exchange,
                    // but the bytes ship here — credit the pack wall to
                    // this stage's stats window so `pack_s_max` reflects
                    // every round the hash pass sends.
                    comm.add_pack_wall(pp.pack_wall);
                    return pp.bufs;
                }
            }
            let (bufs, n) = pack_kmer_windows::<HashMsg, _>(
                reads,
                &idx,
                lo,
                hi,
                p,
                cfg.extract_batch,
                exec,
                &hash_msg,
            );
            parsed += n;
            bufs
        },
        |_round, recv| {
            for buf in recv {
                for (word, rid, pos, strand) in decode_iter::<HashMsg>(&buf) {
                    received += 1;
                    let kmer = Kmer1::from_words([word], cfg.k as u16);
                    let occ = Occurrence {
                        read: rid,
                        pos,
                        strand: Strand::from_u8(strand as u8),
                    };
                    if table.record_occurrence(&kmer, occ, cfg) {
                        recorded += 1;
                    }
                }
            }
        },
    );
    counters.kmers_parsed = parsed;
    counters.kmers_received = received;
    counters.recorded_occurrences = recorded;
    counters.rounds = rounds;

    let filter = table.retain_reliable(cfg.max_multiplicity);
    HashOutput { filter, counters }
}

/// Result of the single-pass minimizer-sketch stage.
#[derive(Debug)]
pub struct MinimizerOutput {
    /// Hash-table partition keyed by the retained minimizer k-mers, with
    /// full (read, position, strand) occurrence lists — the same shape
    /// the reliable path hands to the overlap stage.
    pub table: KmerHashTable,
    /// Reliable filter statistics over the minimizer key set.
    pub filter: crate::table::FilterStats,
    /// Work counters (`kmers_parsed` counts *selected* minimizers, not
    /// windows; `promoted_keys` counts keys created on first sighting).
    pub counters: KmerStageCounters,
}

/// Single-pass distributed minimizer index construction — the sketch
/// front end that replaces stages 1 + 2 under `--seed-mode minimizer`.
///
/// Each rank extracts the (w, k) minimizers of its reads
/// ([`minimizer_window_hits`], threaded over `exec` with the same
/// fixed-batch window sharding as the reliable passes) and routes each
/// selected k-mer, with its occurrence metadata, to its owner by
/// canonical hash — the identical 20-byte wire record and
/// [`RoundExchange`] drive as the hash pass. Owners insert-or-record
/// (no Bloom pre-pass: the sketch keeps only ~`2/(w+1)` of k-mer
/// instances, so the key set is already bounded), then apply the same
/// reliable filter — singletons witness no read pairs, and keys over
/// `m` occurrences are repeat-masked exactly as in the reliable path.
///
/// Rounds are planned over the full window index space (selected
/// minimizers are a subset of windows), so the per-round record and
/// byte caps hold as upper bounds and the round structure is a pure
/// function of the input — bit-identical wire bytes at any thread
/// count, transport, or `--round-mb` cap.
pub fn minimizer_stage(
    comm: &Comm,
    reads: &[Read],
    w: usize,
    cfg: &KcountConfig,
    exec: &BatchedExecutor,
) -> MinimizerOutput {
    let p = comm.size();
    let mut table = KmerHashTable::with_capacity(1024);
    let mut counters = KmerStageCounters::default();

    let idx = WindowIndex::new(reads.iter().map(|r| r.len()), cfg.k);
    let total = idx.total_windows();
    let per_round = kmers_per_round::<HashMsg>(cfg) as u64;
    let mut parsed = 0u64;
    let mut received = 0u64;
    let mut promoted = 0u64;
    let mut recorded = 0u64;

    let rounds = RoundExchange::run(
        comm,
        RoundPlan::for_records(total, per_round as usize),
        |round| {
            let lo = (round * per_round).min(total);
            let hi = ((round + 1) * per_round).min(total);
            let (bufs, n) =
                pack_minimizer_windows(reads, &idx, lo, hi, p, w, cfg.extract_batch, exec);
            parsed += n;
            bufs
        },
        |_round, recv| {
            for buf in recv {
                for (word, rid, pos, strand) in decode_iter::<HashMsg>(&buf) {
                    received += 1;
                    let kmer = Kmer1::from_words([word], cfg.k as u16);
                    debug_assert_eq!(kmer.owner(p), comm.rank(), "misrouted minimizer");
                    let occ = Occurrence {
                        read: rid,
                        pos,
                        strand: Strand::from_u8(strand as u8),
                    };
                    if table.record_or_insert(kmer, occ, cfg) {
                        promoted += 1;
                    }
                    recorded += 1;
                }
            }
        },
    );
    counters.kmers_parsed = parsed;
    counters.kmers_received = received;
    counters.promoted_keys = promoted;
    counters.recorded_occurrences = recorded;
    counters.rounds = rounds;

    let filter = table.retain_reliable(cfg.max_multiplicity);
    MinimizerOutput { table, filter, counters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibella_comm::CommWorld;
    use dibella_io::partition_reads;
    use dibella_io::ReadSet;
    use dibella_kmer::{kmer_count, KmerIter};
    use std::collections::HashMap;

    fn test_cfg(k: usize, m: u32) -> KcountConfig {
        KcountConfig {
            k,
            max_multiplicity: m,
            bloom_fp_rate: 0.01,
            expected_distinct: 10_000,
            max_kmers_per_round: 64, // tiny cap → exercises multi-round path
            max_exchange_bytes_per_round: usize::MAX,
            extract_batch: 16, // tiny batch → many executor batches per round
        }
    }

    /// Serial reference: canonical k-mer → (count, occurrences).
    fn reference_counts(reads: &ReadSet, k: usize) -> HashMap<Kmer1, u32> {
        let mut out: HashMap<Kmer1, u32> = HashMap::new();
        for r in reads {
            for h in KmerIter::<1>::new(&r.seq, k) {
                *out.entry(h.kmer).or_default() += 1;
            }
        }
        out
    }

    fn make_reads(n: usize, len: usize, seed: u64) -> ReadSet {
        // Deterministic pseudo-random reads with some shared content:
        // half the reads share a common 40-base core to create reliable
        // k-mers.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let core: Vec<u8> = (0..40).map(|i| b"ACGT"[(i * 7 + 1) % 4]).collect();
        (0..n as u32)
            .map(|i| {
                let mut seq: Vec<u8> = (0..len).map(|_| b"ACGT"[(next() % 4) as usize]).collect();
                if i % 2 == 0 {
                    let at = (next() as usize) % (len - core.len());
                    seq[at..at + core.len()].copy_from_slice(&core);
                }
                dibella_io::Read::new(i, format!("r{i}"), seq)
            })
            .collect()
    }

    /// Run both passes on `p` ranks and merge the resulting partitions.
    fn run_distributed(
        reads: &ReadSet,
        p: usize,
        cfg: &KcountConfig,
    ) -> HashMap<Kmer1, Vec<Occurrence>> {
        let (_, chunks) = partition_reads(reads, p);
        let results = CommWorld::run(p, |comm| {
            let exec = BatchedExecutor::sequential();
            let local = chunks[comm.rank()].reads();
            let bloom = bloom_stage(comm, local, cfg, &exec);
            let mut table = bloom.table;
            let _ = hash_stage(comm, local, &mut table, cfg, &exec);
            table
                .iter()
                .map(|(k, e)| (*k, e.occurrences.clone()))
                .collect::<Vec<_>>()
        });
        let mut merged = HashMap::new();
        for part in results {
            for (k, occs) in part {
                assert!(merged.insert(k, occs).is_none(), "key on two ranks");
            }
        }
        merged
    }

    #[test]
    fn retained_set_matches_serial_reference() {
        let reads = make_reads(24, 120, 99);
        let cfg = test_cfg(9, 20);
        let reference: HashMap<Kmer1, u32> = reference_counts(&reads, 9)
            .into_iter()
            .filter(|&(_, c)| (2..=20).contains(&c))
            .collect();
        for p in [1usize, 2, 4, 7] {
            let dist = run_distributed(&reads, p, &cfg);
            assert_eq!(dist.len(), reference.len(), "p={p}");
            for (k, occs) in &dist {
                let want = reference.get(k).copied().unwrap_or(0);
                assert_eq!(occs.len() as u32, want, "p={p} kmer={k}");
            }
        }
    }

    #[test]
    fn occurrences_point_back_into_reads() {
        let reads = make_reads(10, 80, 5);
        let cfg = test_cfg(7, 30);
        let dist = run_distributed(&reads, 3, &cfg);
        assert!(!dist.is_empty());
        for (kmer, occs) in &dist {
            for o in occs {
                let read = &reads.reads()[o.read as usize];
                let window = &read.seq[o.pos as usize..o.pos as usize + 7];
                let (canon, strand) = Kmer1::from_ascii(window).unwrap().canonical();
                assert_eq!(&canon, kmer, "occurrence does not spell the k-mer");
                assert_eq!(strand, o.strand);
            }
        }
    }

    #[test]
    fn high_frequency_kmers_filtered() {
        // Every read contains the same 12-base core → its k-mers recur in
        // all 30 reads; with m = 5 those must be filtered out.
        let core = b"ACGTACGTACGT";
        let reads: ReadSet = (0..30u32)
            .map(|i| {
                let mut seq = vec![b"ACGT"[(i as usize) % 4]; 10];
                seq.extend_from_slice(core);
                seq.extend(vec![b"ACGT"[(i as usize + 1) % 4]; 10]);
                dibella_io::Read::new(i, format!("r{i}"), seq)
            })
            .collect();
        let cfg = test_cfg(9, 5);
        let dist = run_distributed(&reads, 4, &cfg);
        let core_kmer = Kmer1::from_ascii(&core[..9]).unwrap().canonical().0;
        assert!(!dist.contains_key(&core_kmer), "repeat k-mer not filtered");
    }

    #[test]
    fn counters_are_consistent() {
        let reads = make_reads(12, 100, 3);
        let cfg = test_cfg(9, 20);
        let (_, chunks) = partition_reads(&reads, 3);
        let outs = CommWorld::run(3, |comm| {
            let exec = BatchedExecutor::sequential();
            let local = chunks[comm.rank()].reads();
            let b = bloom_stage(comm, local, &cfg, &exec);
            let mut table = b.table;
            let h = hash_stage(comm, local, &mut table, &cfg, &exec);
            (b.counters, h.counters)
        });
        let total_kmers: u64 = reads
            .iter()
            .map(|r| kmer_count(r.len(), 9) as u64)
            .sum();
        let parsed_b: u64 = outs.iter().map(|(b, _)| b.kmers_parsed).sum();
        let recv_b: u64 = outs.iter().map(|(b, _)| b.kmers_received).sum();
        let parsed_h: u64 = outs.iter().map(|(_, h)| h.kmers_parsed).sum();
        assert_eq!(parsed_b, total_kmers);
        assert_eq!(recv_b, total_kmers, "k-mers lost in the exchange");
        assert_eq!(parsed_h, total_kmers);
        // Multi-round: the tiny cap forces > 1 round for these sizes.
        assert!(outs.iter().all(|(b, _)| b.rounds > 1));
    }

    /// Full distributed run of both passes returning everything
    /// comparable: per-rank sorted table contents and both counter blocks.
    #[allow(clippy::type_complexity)]
    fn run_for_identity(
        reads: &ReadSet,
        p: usize,
        cfg: &KcountConfig,
        threads: usize,
        overlapped: bool,
    ) -> Vec<(Vec<(Kmer1, Vec<Occurrence>)>, KmerStageCounters, KmerStageCounters)> {
        let (_, chunks) = partition_reads(reads, p);
        CommWorld::run(p, |comm| {
            let exec = BatchedExecutor::new(threads);
            let local = chunks[comm.rank()].reads();
            let (b, pp) = if overlapped {
                let (b, pp) = bloom_stage_overlapping(comm, local, cfg, &exec);
                (b, Some(pp))
            } else {
                (bloom_stage(comm, local, cfg, &exec), None)
            };
            let mut table = b.table;
            let h = hash_stage_prepacked(comm, local, &mut table, cfg, &exec, pp);
            let mut entries: Vec<(Kmer1, Vec<Occurrence>)> = table
                .iter()
                .map(|(k, e)| (*k, e.occurrences.clone()))
                .collect();
            entries.sort_unstable_by_key(|(k, _)| *k);
            (entries, b.counters, h.counters)
        })
    }

    #[test]
    fn threaded_extraction_is_bit_identical_to_sequential() {
        // The tiny extract_batch (16) and round cap (64) force many
        // executor batches per round and several rounds — every thread
        // count must reproduce the sequential tables AND counters exactly,
        // on every rank.
        let reads = make_reads(24, 120, 77);
        let cfg = test_cfg(9, 20);
        let baseline = run_for_identity(&reads, 4, &cfg, 1, false);
        for threads in [2usize, 4] {
            let got = run_for_identity(&reads, 4, &cfg, threads, false);
            assert_eq!(got, baseline, "threads = {threads}");
        }
    }

    #[test]
    fn overlapped_bloom_to_hash_path_matches_plain_path() {
        // Pre-packing the hash round 0 under the Bloom pass's last
        // exchange must change nothing observable: tables, counters, and
        // (via the engine's invariants) rounds all equal the plain path.
        let reads = make_reads(20, 110, 123);
        let cfg = test_cfg(9, 20);
        for threads in [1usize, 4] {
            let plain = run_for_identity(&reads, 3, &cfg, threads, false);
            let overlapped = run_for_identity(&reads, 3, &cfg, threads, true);
            assert_eq!(overlapped, plain, "threads = {threads}");
        }
    }

    #[test]
    fn dirty_reads_shard_identically() {
        // Ambiguous bases make hits < windows; window-range sharding must
        // still agree with the serial reference at any thread count.
        let clean = make_reads(12, 90, 9);
        let reads: ReadSet = clean
            .iter()
            .map(|r| {
                let mut seq = r.seq.clone();
                let step = 17 + (r.id as usize % 5);
                let mut i = step;
                while i < seq.len() {
                    seq[i] = b'N';
                    i += step;
                }
                dibella_io::Read::new(r.id, r.name.clone(), seq)
            })
            .collect();
        let cfg = test_cfg(7, 30);
        let baseline = run_for_identity(&reads, 3, &cfg, 1, false);
        let total_hits: u64 = reads
            .iter()
            .flat_map(|r| KmerIter::<1>::new(&r.seq, 7))
            .count() as u64;
        let parsed: u64 = baseline.iter().map(|(_, b, _)| b.kmers_parsed).sum();
        assert_eq!(parsed, total_hits, "parsed must count hits, not windows");
        for threads in [2usize, 4] {
            assert_eq!(run_for_identity(&reads, 3, &cfg, threads, false), baseline);
        }
    }

    /// Serial minimizer reference: canonical k-mer → occurrence list over
    /// all reads, filtered to counts in `[2, m]`.
    fn reference_minimizer_index(
        reads: &ReadSet,
        k: usize,
        w: usize,
        m: u32,
    ) -> HashMap<Kmer1, Vec<Occurrence>> {
        let mut all: HashMap<Kmer1, Vec<Occurrence>> = HashMap::new();
        for r in reads {
            for h in dibella_kmer::minimizers(&r.seq, k, w) {
                all.entry(h.kmer).or_default().push(Occurrence {
                    read: r.id,
                    pos: h.pos,
                    strand: h.strand,
                });
            }
        }
        all.retain(|_, occs| (2..=m as usize).contains(&occs.len()));
        all
    }

    #[allow(clippy::type_complexity)]
    fn run_minimizer(
        reads: &ReadSet,
        p: usize,
        w: usize,
        cfg: &KcountConfig,
        threads: usize,
    ) -> Vec<(Vec<(Kmer1, Vec<Occurrence>)>, KmerStageCounters)> {
        let (_, chunks) = partition_reads(reads, p);
        CommWorld::run(p, |comm| {
            let exec = BatchedExecutor::new(threads);
            let out = minimizer_stage(comm, chunks[comm.rank()].reads(), w, cfg, &exec);
            let mut entries: Vec<(Kmer1, Vec<Occurrence>)> = out
                .table
                .iter()
                .map(|(k, e)| (*k, e.occurrences.clone()))
                .collect();
            entries.sort_unstable_by_key(|(k, _)| *k);
            (entries, out.counters)
        })
    }

    #[test]
    fn minimizer_index_matches_serial_reference() {
        let reads = make_reads(24, 120, 42);
        let (k, w, m) = (9usize, 4usize, 20u32);
        let cfg = test_cfg(k, m);
        let reference = reference_minimizer_index(&reads, k, w, m);
        assert!(!reference.is_empty(), "weak test: no shared minimizers");
        for p in [1usize, 2, 4, 7] {
            let parts = run_minimizer(&reads, p, w, &cfg, 1);
            let mut merged: HashMap<Kmer1, Vec<Occurrence>> = HashMap::new();
            for (entries, _) in &parts {
                for (kmer, occs) in entries {
                    assert!(
                        merged.insert(*kmer, occs.clone()).is_none(),
                        "key on two ranks"
                    );
                }
            }
            assert_eq!(merged.len(), reference.len(), "p={p}");
            for (kmer, occs) in &merged {
                let mut want = reference.get(kmer).cloned().unwrap_or_default();
                let mut got = occs.clone();
                let sort_key = |o: &Occurrence| (o.read, o.pos);
                want.sort_unstable_by_key(sort_key);
                got.sort_unstable_by_key(sort_key);
                assert_eq!(got, want, "p={p} kmer={kmer}");
            }
        }
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn minimizer_stage_is_bit_identical_across_threads() {
        // Tiny round cap (64 records) and extract batch (16) force many
        // batch cuts through read interiors — selection context must
        // make every cut invisible.
        let reads = make_reads(24, 120, 314);
        let cfg = test_cfg(9, 20);
        let baseline = run_minimizer(&reads, 4, 5, &cfg, 1);
        assert!(baseline.iter().all(|(_, c)| c.rounds > 1), "want multi-round");
        for threads in [2usize, 4] {
            assert_eq!(run_minimizer(&reads, 4, 5, &cfg, threads), baseline, "threads={threads}");
        }
        // A different round cap regroups arrivals (occurrence-list order
        // is round-interleaved, as in the reliable path — downstream
        // sorts seeds) but must select the exact same occurrence *sets*.
        let mut wide = test_cfg(9, 20);
        wide.max_kmers_per_round = 1 << 20;
        let wide_run = run_minimizer(&reads, 4, 5, &wide, 4);
        let strip = |v: &[(Vec<(Kmer1, Vec<Occurrence>)>, KmerStageCounters)]| {
            v.iter()
                .map(|(e, _)| {
                    e.iter()
                        .map(|(k, occs)| {
                            let mut occs = occs.clone();
                            occs.sort_unstable_by_key(|o| (o.read, o.pos));
                            (*k, occs)
                        })
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&wide_run), strip(&baseline));
    }

    #[test]
    fn minimizer_stage_parses_fewer_kmers_than_windows() {
        let reads = make_reads(16, 200, 8);
        let cfg = test_cfg(11, 30);
        let w = 8usize;
        let parts = run_minimizer(&reads, 3, w, &cfg, 1);
        let parsed: u64 = parts.iter().map(|(_, c)| c.kmers_parsed).sum();
        let received: u64 = parts.iter().map(|(_, c)| c.kmers_received).sum();
        let windows: u64 = reads.iter().map(|r| kmer_count(r.len(), 11) as u64).sum();
        let serial: u64 = reads
            .iter()
            .map(|r| dibella_kmer::minimizers(&r.seq, 11, w).len() as u64)
            .sum();
        assert_eq!(parsed, serial, "distributed selection != serial selection");
        assert_eq!(received, parsed, "minimizers lost in the exchange");
        assert!(
            (parsed as f64) < 0.4 * windows as f64,
            "sketch too dense: {parsed} of {windows} windows"
        );
    }

    #[test]
    fn bloom_memory_reported_and_freed() {
        let reads = make_reads(6, 60, 1);
        let cfg = test_cfg(7, 10);
        let (_, chunks) = partition_reads(&reads, 2);
        let outs = CommWorld::run(2, |comm| {
            bloom_stage(comm, chunks[comm.rank()].reads(), &cfg, &BatchedExecutor::sequential())
        });
        for o in outs {
            assert!(o.bloom_bytes > 0);
            assert!(o.bloom_fill > 0.0 && o.bloom_fill < 0.9);
        }
    }
}
