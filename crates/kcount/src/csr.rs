//! Read-by-k-mer sparse matrix view of a [`KmerHashTable`] partition.
//!
//! The BELLA / diBELLA-2D lineage reformulates overlap detection as the
//! sparse matrix product `A·Aᵀ`, where `A` is the read-by-k-mer matrix:
//! `A[i][c] ≠ 0` iff read `i` contains retained k-mer `c`, and the
//! "value" is the occurrence (position, strand). [`ReadKmerCsr`] is the
//! CSR (row-major) export of one rank's table partition, built once per
//! overlap stage and consumed by the row-blocked Gustavson accumulator in
//! `dibella-overlap::spgemm`.
//!
//! Determinism: the hash table iterates in arbitrary order, so the export
//! canonicalizes both axes —
//!
//! * **columns** are the table's entries sorted by `(packed k-mer words,
//!   k)` (the same total order the checkpoint codec uses), and
//! * **rows** are the distinct read IDs appearing in this partition's
//!   occurrence lists, ascending; each row's entries are appended in
//!   column order, preserving each column's occurrence order within the
//!   row.
//!
//! A read occurring several times in one k-mer's list (a repeat within
//! the read) contributes one row entry per occurrence — the matrix is a
//! multi-CSR, which is exactly what makes the SpGEMM pair multiset equal
//! Algorithm 1's.

use crate::table::{KmerHashTable, Occurrence};
use dibella_io::ReadId;
use dibella_kmer::Strand;

/// One stored nonzero of a CSR row: which column, and the occurrence's
/// position/strand in the row's read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CsrEntry {
    /// Column index (into the sorted k-mer axis).
    pub col: u32,
    /// k-mer position within the row's read.
    pub pos: u32,
    /// Strand on which the canonical k-mer was observed.
    pub strand: Strand,
}

/// CSR export of one rank's read-by-k-mer matrix partition (see module
/// docs for the canonical ordering).
#[derive(Debug, Default)]
pub struct ReadKmerCsr {
    /// Distinct read IDs with at least one occurrence here, ascending.
    rows: Vec<ReadId>,
    /// Row pointer: row `r`'s entries are
    /// `entries[row_ptr[r]..row_ptr[r + 1]]`.
    row_ptr: Vec<usize>,
    /// Row entries, grouped by row, column-ordered within each row.
    entries: Vec<CsrEntry>,
    /// Column pointer: column `c`'s occurrences are
    /// `col_occs[col_ptr[c]..col_ptr[c + 1]]`.
    col_ptr: Vec<usize>,
    /// Concatenated per-column occurrence lists, in table entry order.
    col_occs: Vec<Occurrence>,
}

impl ReadKmerCsr {
    /// Build the CSR view of `table`. Deterministic for a given key→entry
    /// mapping regardless of the hash map's iteration order.
    pub fn from_table(table: &KmerHashTable) -> Self {
        // Canonical column order: sort entries by packed k-mer words.
        let mut cols: Vec<_> = table.iter().collect();
        cols.sort_unstable_by_key(|(kmer, _)| (*kmer.words(), kmer.k()));

        let mut col_ptr = Vec::with_capacity(cols.len() + 1);
        col_ptr.push(0usize);
        let mut col_occs = Vec::new();
        for (_, entry) in &cols {
            col_occs.extend_from_slice(&entry.occurrences);
            col_ptr.push(col_occs.len());
        }

        // Canonical row order: distinct reads ascending.
        let mut rows: Vec<ReadId> = col_occs.iter().map(|o| o.read).collect();
        rows.sort_unstable();
        rows.dedup();
        let row_of = |read: ReadId| rows.binary_search(&read).expect("row for occurrence");

        // Count, then fill, each row's entries in column order.
        let mut counts = vec![0usize; rows.len()];
        for occ in &col_occs {
            counts[row_of(occ.read)] += 1;
        }
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        row_ptr.push(0usize);
        for c in &counts {
            row_ptr.push(row_ptr.last().unwrap() + c);
        }
        let mut cursor = row_ptr.clone();
        let mut entries = vec![
            CsrEntry { col: 0, pos: 0, strand: Strand::Forward };
            col_occs.len()
        ];
        for (c, window) in col_ptr.windows(2).enumerate() {
            for occ in &col_occs[window[0]..window[1]] {
                let r = row_of(occ.read);
                entries[cursor[r]] = CsrEntry { col: c as u32, pos: occ.pos, strand: occ.strand };
                cursor[r] += 1;
            }
        }

        Self { rows, row_ptr, entries, col_ptr, col_occs }
    }

    /// Number of rows (distinct local reads).
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns (retained k-mers in this partition).
    pub fn n_cols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    /// Stored nonzeros (total occurrences).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The read ID of row `r`.
    pub fn row_read(&self, r: usize) -> ReadId {
        self.rows[r]
    }

    /// Row `r`'s entries, in column order.
    pub fn row(&self, r: usize) -> &[CsrEntry] {
        &self.entries[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Column `c`'s occurrence list, in table order.
    pub fn col(&self, c: u32) -> &[Occurrence] {
        &self.col_occs[self.col_ptr[c as usize]..self.col_ptr[c as usize + 1]]
    }

    /// The Gustavson flop bound of row range `[lo, hi)`: Σ over the
    /// range's entries of their column lengths — the work (and candidate
    /// count) of expanding those rows. Drives the dense/hash accumulator
    /// choice per row block.
    pub fn block_flops(&self, lo: usize, hi: usize) -> u64 {
        (lo..hi)
            .flat_map(|r| self.row(r))
            .map(|e| (self.col_ptr[e.col as usize + 1] - self.col_ptr[e.col as usize]) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KcountConfig;
    use dibella_kmer::Kmer1;

    fn cfg() -> KcountConfig {
        KcountConfig {
            k: 5,
            max_multiplicity: 16,
            bloom_fp_rate: 0.05,
            expected_distinct: 64,
            max_kmers_per_round: 1 << 16,
            max_exchange_bytes_per_round: usize::MAX,
            extract_batch: KcountConfig::DEFAULT_EXTRACT_BATCH,
        }
    }

    fn occ(read: ReadId, pos: u32, strand: Strand) -> Occurrence {
        Occurrence { read, pos, strand }
    }

    fn table_with(entries: &[(&[u8], Vec<Occurrence>)]) -> KmerHashTable {
        let c = cfg();
        let mut t = KmerHashTable::with_capacity(entries.len());
        for (s, occs) in entries {
            let km = Kmer1::from_ascii(s).unwrap();
            t.insert_key(km);
            for o in occs {
                assert!(t.record_occurrence(&km, *o, &c));
            }
        }
        t
    }

    #[test]
    fn csr_axes_are_canonical_and_complete() {
        let t = table_with(&[
            (b"ACGTA", vec![occ(3, 10, Strand::Forward), occ(1, 4, Strand::Reverse)]),
            (b"CCCCC", vec![occ(1, 0, Strand::Forward), occ(7, 2, Strand::Forward)]),
            (b"GGGGG", vec![occ(3, 5, Strand::Forward)]),
        ]);
        let csr = ReadKmerCsr::from_table(&t);
        assert_eq!(csr.n_cols(), 3);
        assert_eq!(csr.nnz(), 5);
        // Rows: distinct reads ascending.
        assert_eq!(csr.n_rows(), 3);
        assert_eq!(
            (0..csr.n_rows()).map(|r| csr.row_read(r)).collect::<Vec<_>>(),
            vec![1, 3, 7]
        );
        // Every row entry points back into its column's occurrence list,
        // and each row's entries are column-sorted.
        let mut seen = 0usize;
        for r in 0..csr.n_rows() {
            let read = csr.row_read(r);
            let row = csr.row(r);
            assert!(row.windows(2).all(|w| w[0].col <= w[1].col), "row {read} unsorted");
            for e in row {
                seen += 1;
                assert!(csr
                    .col(e.col)
                    .iter()
                    .any(|o| o.read == read && o.pos == e.pos && o.strand == e.strand));
            }
        }
        assert_eq!(seen, csr.nnz(), "every occurrence appears in exactly one row");
    }

    #[test]
    fn repeated_read_in_one_column_keeps_both_entries() {
        // One k-mer occurring twice in the same read: the row holds both.
        let t = table_with(&[(
            b"ACGTA",
            vec![occ(2, 1, Strand::Forward), occ(2, 9, Strand::Forward), occ(5, 0, Strand::Forward)],
        )]);
        let csr = ReadKmerCsr::from_table(&t);
        assert_eq!(csr.n_rows(), 2);
        assert_eq!(csr.row(0).len(), 2, "read 2 contributes two entries");
        assert_eq!(csr.col(0).len(), 3);
    }

    #[test]
    fn flops_count_candidate_expansions() {
        let t = table_with(&[
            (b"ACGTA", vec![occ(0, 0, Strand::Forward), occ(1, 0, Strand::Forward)]),
            (b"CCCCC", vec![occ(0, 3, Strand::Forward), occ(2, 1, Strand::Forward)]),
        ]);
        let csr = ReadKmerCsr::from_table(&t);
        // Whole matrix: each of the 4 entries expands against a column of
        // length 2 → 8 flops.
        assert_eq!(csr.block_flops(0, csr.n_rows()), 8);
        assert!(csr.block_flops(0, 1) > 0);
        assert_eq!(csr.block_flops(1, 1), 0);
    }

    #[test]
    fn empty_table_yields_empty_csr() {
        let t = KmerHashTable::default();
        let csr = ReadKmerCsr::from_table(&t);
        assert_eq!(csr.n_rows(), 0);
        assert_eq!(csr.n_cols(), 0);
        assert_eq!(csr.nnz(), 0);
    }
}
