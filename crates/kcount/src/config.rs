//! Configuration for the k-mer analysis stages.

use dibella_kmer::params;

/// Parameters of the two k-mer passes (paper §6–§7).
#[derive(Clone, Debug)]
pub struct KcountConfig {
    /// k-mer length (≤ 32; diBELLA uses 17 for PacBio data).
    pub k: usize,
    /// High-occurrence threshold `m`: k-mers seen more often are treated
    /// as repeats and discarded (paper §2).
    pub max_multiplicity: u32,
    /// Bloom filter false-positive target.
    pub bloom_fp_rate: f64,
    /// Estimated distinct k-mers across the whole input (Eq. 2 × typical
    /// distinct ratio) used to size the distributed Bloom filter without a
    /// counting pass.
    pub expected_distinct: u64,
    /// Memory cap per rank and round: at most this many k-mer records are
    /// buffered before an exchange is forced. The paper streams "a subset
    /// of input data at a time to limit the memory consumption" (§4).
    pub max_kmers_per_round: usize,
    /// Byte cap per rank and exchange round (`usize::MAX` = unbounded).
    /// Whichever of this and [`KcountConfig::max_kmers_per_round`] is
    /// tighter bounds a round — the `--round-mb` knob every stage of the
    /// pipeline shares.
    pub max_exchange_bytes_per_round: usize,
    /// Windows per executor batch when extraction is threaded: each
    /// exchange round's window range is cut into fixed batches of this
    /// many k-mer windows, extracted in parallel and merged in batch
    /// order. Pure function of the input — never of the thread count — so
    /// any value is deterministic; tests shrink it to force many batches
    /// on tiny reads.
    pub extract_batch: usize,
}

impl KcountConfig {
    /// Derive a configuration from dataset statistics, mirroring
    /// BELLA/diBELLA's data-driven parameter selection.
    ///
    /// * `total_bases` — `N = G·d` (size of the read set in bases);
    /// * `depth` — coverage `d`;
    /// * `error_rate` — per-base error rate `e`.
    pub fn from_dataset(total_bases: u64, depth: f64, error_rate: f64, k: usize) -> Self {
        assert!((4..=32).contains(&k), "k = {k} unsupported (need 4..=32)");
        let m = params::reliable_max_multiplicity(depth, error_rate, k, params::defaults::EPSILON);
        // k-mer bag ≈ total bases (Eq. 2); distinct ≈ bag × typical ratio.
        let expected_distinct =
            params::estimate_cardinality(total_bases, params::defaults::DISTINCT_RATIO).max(1024);
        Self {
            k,
            max_multiplicity: m,
            bloom_fp_rate: 0.05,
            expected_distinct,
            max_kmers_per_round: 1 << 20,
            max_exchange_bytes_per_round: usize::MAX,
            extract_batch: Self::DEFAULT_EXTRACT_BATCH,
        }
    }

    /// Default executor batch size for threaded extraction: big enough to
    /// amortize per-batch routing buffers, small enough that a default
    /// round (2²⁰ k-mers) splits into ~1k batches for dynamic scheduling.
    pub const DEFAULT_EXTRACT_BATCH: usize = 1024;

    /// Per-rank share of the expected distinct k-mer set.
    pub fn expected_distinct_per_rank(&self, ranks: usize) -> u64 {
        (self.expected_distinct / ranks as u64).max(256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derives_paper_like_parameters() {
        // E. coli 30x-like: 139 Mb of reads at depth 30, 15% error, k=17.
        let cfg = KcountConfig::from_dataset(139_200_000, 30.0, 0.15, 17);
        assert_eq!(cfg.k, 17);
        assert!((2..=12).contains(&cfg.max_multiplicity));
        assert!(cfg.expected_distinct > 50_000_000);
        assert!(cfg.expected_distinct < 139_200_000);
    }

    #[test]
    fn deeper_coverage_raises_m() {
        let c30 = KcountConfig::from_dataset(1_000_000, 30.0, 0.15, 17);
        let c100 = KcountConfig::from_dataset(1_000_000, 100.0, 0.14, 17);
        assert!(c100.max_multiplicity > c30.max_multiplicity);
    }

    #[test]
    fn per_rank_share() {
        let cfg = KcountConfig::from_dataset(1_000_000, 30.0, 0.15, 17);
        assert!(cfg.expected_distinct_per_rank(4) >= cfg.expected_distinct / 4);
        assert!(cfg.expected_distinct_per_rank(1 << 30) >= 256);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn k_bounds() {
        let _ = KcountConfig::from_dataset(1000, 30.0, 0.15, 33);
    }
}
