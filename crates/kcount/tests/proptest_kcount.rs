//! Property tests: the distributed two-pass k-mer analysis equals a
//! serial reference count for arbitrary read sets, world sizes and
//! streaming caps.

use dibella_comm::{BatchedExecutor, CommWorld};
use dibella_io::{partition_reads, Read, ReadSet};
use dibella_kcount::{bloom_stage, hash_stage, KcountConfig};
use dibella_kmer::{Kmer1, KmerIter};
use proptest::prelude::*;
use std::collections::HashMap;

fn reads_strategy() -> impl Strategy<Value = ReadSet> {
    // A pool of short motifs reused across reads guarantees shared k-mers.
    let motif = prop::collection::vec(prop::sample::select(b"ACGT".to_vec()), 12..20);
    let motifs = prop::collection::vec(motif, 2..5);
    (motifs, 3usize..12, any::<u64>()).prop_map(|(motifs, n_reads, seed)| {
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n_reads as u32)
            .map(|i| {
                let mut seq: Vec<u8> = Vec::new();
                for _ in 0..3 {
                    // Random filler + one motif from the pool.
                    for _ in 0..(rnd() % 20 + 5) {
                        seq.push(b"ACGT"[(rnd() % 4) as usize]);
                    }
                    let m = &motifs[(rnd() as usize) % motifs.len()];
                    seq.extend_from_slice(m);
                }
                Read::new(i, format!("r{i}"), seq)
            })
            .collect()
    })
}

fn reference(reads: &ReadSet, k: usize, m: u32) -> HashMap<Kmer1, u32> {
    let mut counts: HashMap<Kmer1, u32> = HashMap::new();
    for r in reads {
        for h in KmerIter::<1>::new(&r.seq, k) {
            *counts.entry(h.kmer).or_default() += 1;
        }
    }
    counts.retain(|_, c| *c >= 2 && *c <= m);
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any reads / world size / round cap, the retained k-mer set and
    /// every occurrence count match the serial reference exactly.
    #[test]
    fn distributed_counts_equal_serial(
        reads in reads_strategy(),
        p in 1usize..6,
        cap in prop::sample::select(vec![16usize, 64, 1 << 12]),
    ) {
        let k = 9usize;
        let m = 30u32;
        let cfg = KcountConfig {
            k,
            max_multiplicity: m,
            bloom_fp_rate: 0.02,
            expected_distinct: 4096,
            max_kmers_per_round: cap,
            max_exchange_bytes_per_round: usize::MAX,
            extract_batch: 16,
        };
        let want = reference(&reads, k, m);
        let (_, chunks) = partition_reads(&reads, p);
        let parts = CommWorld::run(p, |comm| {
            let exec = BatchedExecutor::sequential();
            let local = chunks[comm.rank()].reads();
            let bloom = bloom_stage(comm, local, &cfg, &exec);
            let mut table = bloom.table;
            let _ = hash_stage(comm, local, &mut table, &cfg, &exec);
            table.iter().map(|(k, e)| (*k, e.count)).collect::<Vec<_>>()
        });
        let mut got: HashMap<Kmer1, u32> = HashMap::new();
        for part in parts {
            for (kmer, count) in part {
                prop_assert!(got.insert(kmer, count).is_none(), "key on two ranks");
            }
        }
        prop_assert_eq!(got, want);
    }

    /// Filter statistics are an exact partition of the table keys.
    #[test]
    fn filter_stats_partition_keys(reads in reads_strategy(), p in 1usize..5) {
        let cfg = KcountConfig {
            k: 9,
            max_multiplicity: 4,
            bloom_fp_rate: 0.02,
            expected_distinct: 4096,
            max_kmers_per_round: 1 << 12,
            max_exchange_bytes_per_round: usize::MAX,
            extract_batch: 16,
        };
        let (_, chunks) = partition_reads(&reads, p);
        let outs = CommWorld::run(p, |comm| {
            let exec = BatchedExecutor::sequential();
            let local = chunks[comm.rank()].reads();
            let bloom = bloom_stage(comm, local, &cfg, &exec);
            let keys_before = bloom.table.len() as u64;
            let mut table = bloom.table;
            let h = hash_stage(comm, local, &mut table, &cfg, &exec);
            (keys_before, h.filter, table.len() as u64)
        });
        for (before, stats, after) in outs {
            prop_assert_eq!(
                before,
                stats.singletons_removed + stats.high_freq_removed + stats.retained
            );
            prop_assert_eq!(after, stats.retained);
        }
    }
}
