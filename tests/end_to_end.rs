//! End-to-end integration tests over the whole workspace: synthetic
//! PacBio-like data → full distributed pipeline → ground-truth recall,
//! world-size invariance, baseline agreement and the parallel-input path.

use dibella::datagen::{ecoli_30x_like, simulate_reads, ErrorModel, GenomeSpec, ReadSimSpec};
use dibella::prelude::*;
use std::collections::HashSet;

fn toy_dataset(seed: u64) -> dibella::datagen::SyntheticDataset {
    let genome = GenomeSpec { size: 15_000, seed, ..Default::default() }.generate();
    simulate_reads(
        &genome,
        &ReadSimSpec {
            depth: 10.0,
            mean_len: 2_000,
            min_len: 400,
            errors: ErrorModel::pacbio(0.12),
            seed: seed ^ 0xABCD,
            ..Default::default()
        },
    )
}

fn toy_cfg() -> PipelineConfig {
    PipelineConfig {
        k: 15,
        depth: 10.0,
        error_rate: 0.12,
        seed_policy: SeedPolicy::Single,
        max_kmers_per_round: 4096, // force multi-round exchanges
        ..Default::default()
    }
}

/// The headline scientific claim: overlapping noisy long reads are found
/// via shared reliable k-mers with high recall.
#[test]
fn recall_on_noisy_reads() {
    let ds = toy_dataset(1);
    let res = run_pipeline(&ds.reads, 4, &toy_cfg());
    let found: HashSet<(u32, u32)> = res.alignments.iter().map(|a| (a.pair.a, a.pair.b)).collect();
    let truth = ds.true_overlaps(1_000);
    assert!(truth.len() > 50, "weak test: only {} true pairs", truth.len());
    let recalled = truth.iter().filter(|p| found.contains(p)).count();
    let recall = recalled as f64 / truth.len() as f64;
    assert!(recall >= 0.95, "recall {recall:.3} below 95%");
}

/// Alignments returned must correspond to genuinely similar reads: every
/// accepted record with a solid score is a true genomic overlap.
#[test]
fn precision_of_confident_alignments() {
    let ds = toy_dataset(2);
    let cfg = PipelineConfig { min_align_score: 300, ..toy_cfg() };
    let res = run_pipeline(&ds.reads, 3, &cfg);
    assert!(!res.alignments.is_empty());
    let truth: HashSet<(u32, u32)> = ds.true_overlaps(200).into_iter().collect();
    let bad: Vec<_> = res
        .alignments
        .iter()
        .filter(|a| !truth.contains(&(a.pair.a, a.pair.b)))
        .collect();
    assert!(
        bad.len() * 50 <= res.alignments.len(),
        "{} of {} confident alignments are not true overlaps",
        bad.len(),
        res.alignments.len()
    );
}

/// Distributed-equals-serial: the pipeline's output is identical for any
/// world size (the paper's correctness invariant for its parallelization).
#[test]
fn world_size_invariance_on_noisy_data() {
    let ds = toy_dataset(3);
    let cfg = toy_cfg();
    let serial = run_pipeline(&ds.reads, 1, &cfg);
    for p in [2usize, 5, 16] {
        let par = run_pipeline(&ds.reads, p, &cfg);
        assert_eq!(par.alignments, serial.alignments, "P={p}");
    }
}

/// The FASTQ parallel-input path (block partitioning + exscan ID
/// assignment) produces the same result as the in-memory path.
#[test]
fn fastq_round_trip_pipeline() {
    let ds = toy_dataset(4);
    let mut fastq = Vec::new();
    dibella::io::write_fastq(&mut fastq, &ds.reads).unwrap();
    let cfg = toy_cfg();
    let a = run_pipeline(&ds.reads, 4, &cfg);
    let b = run_pipeline_fastq(&fastq, 4, &cfg);
    assert_eq!(a.alignments, b.alignments);
}

/// The DALIGNER-style baseline and the distributed pipeline implement the
/// same overlap semantics: identical filtering and kernel ⇒ identical
/// alignment sets.
#[test]
fn baseline_agrees_with_pipeline() {
    let ds = toy_dataset(5);
    let cfg = toy_cfg();
    let pipe = run_pipeline(&ds.reads, 4, &cfg);
    let bres = dibella::baseline::run_baseline(
        &ds.reads,
        &dibella::baseline::BaselineConfig {
            k: cfg.k,
            max_multiplicity: cfg.multiplicity_threshold(),
            seed_min_distance: None, // Single policy
            max_seeds_per_pair: cfg.max_seeds_per_pair,
            xdrop: cfg.xdrop,
            scoring: cfg.scoring,
            min_score: cfg.min_align_score,
        },
    );
    let pipe_set: Vec<(u32, u32, bool, i32)> = pipe
        .alignments
        .iter()
        .map(|a| (a.pair.a, a.pair.b, a.reverse, a.score))
        .collect();
    let base_set: Vec<(u32, u32, bool, i32)> = bres
        .alignments
        .iter()
        .map(|a| (a.a, a.b, a.reverse, a.score))
        .collect();
    assert_eq!(pipe_set, base_set);
}

/// Reverse-complement orientation handling end to end: flipping every
/// read's strand must not change which pairs are found.
#[test]
fn strand_invariance() {
    let ds = toy_dataset(6);
    let cfg = toy_cfg();
    let forward = run_pipeline(&ds.reads, 2, &cfg);

    let flipped: ReadSet = ds
        .reads
        .iter()
        .map(|r| {
            Read::new(
                r.id,
                r.name.clone(),
                dibella::kmer::base::reverse_complement_ascii(&r.seq),
            )
        })
        .collect();
    let reversed = run_pipeline(&flipped, 2, &cfg);

    let pairs = |res: &PipelineResult| -> HashSet<(u32, u32)> {
        res.alignments.iter().map(|a| (a.pair.a, a.pair.b)).collect()
    };
    let a = pairs(&forward);
    let b = pairs(&reversed);
    let common = a.intersection(&b).count();
    // Canonical k-mers make discovery strand-independent; allow a tiny
    // fringe from boundary effects.
    assert!(
        common * 100 >= a.len() * 97 && common * 100 >= b.len() * 97,
        "pair sets differ: {} vs {} (common {common})",
        a.len(),
        b.len()
    );
}

/// The E. coli 30×-like preset at small scale exercises every stage and
/// meets the paper's filtering expectations (most k-mers are singletons;
/// retained fraction is small).
#[test]
fn ecoli_preset_statistics() {
    let ds = ecoli_30x_like(0.004, 9);
    let cfg = PipelineConfig { k: 17, depth: 30.0, error_rate: 0.15, ..Default::default() };
    let res = run_pipeline(&ds.reads, 4, &cfg);
    let singles: u64 = res.reports.iter().map(|r| r.filter.singletons_removed).sum();
    let retained: u64 = res.reports.iter().map(|r| r.filter.retained).sum();
    let highf: u64 = res.reports.iter().map(|r| r.filter.high_freq_removed).sum();
    let kmers: u64 = res.reports.iter().map(|r| r.bloom.kmers_received).sum();
    // §6: up to 98% of long-read k-mers are singletons. At 15% error and
    // k=17 the singleton fraction of the distinct set is overwhelming.
    // The Bloom filter already absorbed most singletons: table keys ≪ bag.
    let table_total = singles + retained + highf;
    assert!(
        table_total < kmers / 2,
        "Bloom filter ineffective: {table_total} keys from {kmers} k-mers"
    );
    assert!(retained > 0);
    // Retained set is a small fraction of the k-mer bag (filtering
    // reduces the k-mer set by 85–98%, §9).
    assert!(
        (retained as f64) < 0.15 * kmers as f64,
        "retained fraction too high: {retained}/{kmers}"
    );
    // And overlaps were actually found.
    assert!(res.n_pairs() > 100);
}

/// Memory-bound streaming: shrinking the per-round cap changes rounds,
/// traffic chunking and nothing else.
#[test]
fn round_cap_invariance() {
    let ds = toy_dataset(7);
    let base_cfg = toy_cfg();
    let small_rounds = PipelineConfig { max_kmers_per_round: 512, ..base_cfg.clone() };
    let big_rounds = PipelineConfig { max_kmers_per_round: 1 << 22, ..base_cfg };
    let a = run_pipeline(&ds.reads, 3, &small_rounds);
    let b = run_pipeline(&ds.reads, 3, &big_rounds);
    assert_eq!(a.alignments, b.alignments);
    let rounds_a: u64 = a.reports.iter().map(|r| r.bloom.rounds).max().unwrap();
    let rounds_b: u64 = b.reports.iter().map(|r| r.bloom.rounds).max().unwrap();
    assert!(rounds_a > rounds_b, "cap did not change round count");
}
